//! The six audit topics from the paper's Appendix A, with the generation
//! parameters the synthetic platform needs to reproduce each topic's
//! observed behaviour.
//!
//! Every topic fixes a *focal date* (the event's D-day); the audit collects
//! videos published between 14 days before and 14 days after it. The
//! remaining fields calibrate the synthetic corpus to the paper's Tables 1
//! and 4: how many videos match the query platform-wide (`pool_size`,
//! driving `pageInfo.totalResults` and the consistency of returns), how the
//! topical interest is spread over the 28-day window, and which subtopic
//! vocabulary exists for the §6.1 query-splitting strategy experiment.

use crate::time::Timestamp;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The six topics audited in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Topic {
    /// Black Lives Matter; focal date = killing of George Floyd
    /// (2020-05-25). The topical peak lags the focal date (Blackout
    /// Tuesday), which Figure 2 highlights.
    Blm,
    /// Brexit; focal date = referendum day (2016-06-23).
    Brexit,
    /// US Capitol riots; focal date = the January 6th attack (2021-01-06).
    Capitol,
    /// Grammy Awards 2024; focal date = the ceremony (2024-02-04).
    Grammys,
    /// Higgs boson; focal date = the discovery announcement (2012-07-04).
    /// By far the smallest pool and the most consistent topic.
    Higgs,
    /// FIFA World Cup 2014; focal date = opening game (2014-06-12). An
    /// ongoing tournament, so interest stays high through the window.
    WorldCup,
}

impl Topic {
    /// All six topics in the paper's presentation order.
    pub const ALL: [Topic; 6] = [
        Topic::Blm,
        Topic::Brexit,
        Topic::Capitol,
        Topic::Grammys,
        Topic::Higgs,
        Topic::WorldCup,
    ];

    /// This topic's position in [`Topic::ALL`] — the canonical row index
    /// for per-topic tables. Infallible by construction, unlike searching
    /// `ALL` with `position()`.
    pub const fn index(self) -> usize {
        match self {
            Topic::Blm => 0,
            Topic::Brexit => 1,
            Topic::Capitol => 2,
            Topic::Grammys => 3,
            Topic::Higgs => 4,
            Topic::WorldCup => 5,
        }
    }

    /// Short machine key (used in file names and regression dummies).
    pub fn key(self) -> &'static str {
        match self {
            Topic::Blm => "blm",
            Topic::Brexit => "brexit",
            Topic::Capitol => "capriot",
            Topic::Grammys => "grammys",
            Topic::Higgs => "higgs",
            Topic::WorldCup => "worldcup",
        }
    }

    /// Human-readable name as the paper's tables print it.
    pub fn display_name(self) -> &'static str {
        match self {
            Topic::Blm => "BLM",
            Topic::Brexit => "Brexit",
            Topic::Capitol => "Capitol",
            Topic::Grammys => "Grammys",
            Topic::Higgs => "Higgs",
            Topic::WorldCup => "World Cup",
        }
    }

    /// The full generation/audit specification for this topic.
    pub fn spec(self) -> TopicSpec {
        match self {
            Topic::Blm => TopicSpec {
                topic: self,
                query: "black lives matter",
                focal_date: ymd(2020, 5, 25),
                // Table 4: mean pool 982k, mode at the 1M cap.
                pool_size: 1_070_000,
                // Table 1: mean 743.44 videos returned per collection.
                returned_target: 743.0,
                // Interest peaks ~8 days *after* the focal date (Blackout
                // Tuesday, 2020-06-02) and stays elevated.
                peak_offset_days: 8.0,
                peak_width_days: 3.5,
                background_level: 0.30,
                stability: 0.36,
                subtopics: &[
                    "george floyd",
                    "protest",
                    "blackout tuesday",
                    "minneapolis",
                    "police",
                    "justice",
                ],
                nested_comments: true,
            },
            Topic::Brexit => TopicSpec {
                topic: self,
                query: "brexit referendum",
                focal_date: ymd(2016, 6, 23),
                // Table 4: mean 624k, mode 613k (below the cap).
                pool_size: 625_000,
                returned_target: 560.0,
                peak_offset_days: 1.0,
                peak_width_days: 2.0,
                background_level: 0.22,
                stability: 0.62,
                subtopics: &[
                    "leave",
                    "remain",
                    "eu",
                    "cameron",
                    "farage",
                    "article 50",
                ],
                nested_comments: true,
            },
            Topic::Capitol => TopicSpec {
                topic: self,
                query: "us capitol",
                focal_date: ymd(2021, 1, 6),
                // Table 4: mean 966k, mode 1M.
                pool_size: 1_050_000,
                returned_target: 572.0,
                peak_offset_days: 0.3,
                peak_width_days: 1.2,
                background_level: 0.12,
                stability: 0.40,
                subtopics: &[
                    "january 6",
                    "riot",
                    "congress",
                    "electoral college",
                    "impeachment",
                    "trump",
                ],
                nested_comments: true,
            },
            Topic::Grammys => TopicSpec {
                topic: self,
                query: "grammy awards",
                focal_date: ymd(2024, 2, 4),
                // Table 4: mean 150k, mode 123k.
                pool_size: 152_000,
                returned_target: 659.0,
                peak_offset_days: 0.2,
                peak_width_days: 1.0,
                background_level: 0.15,
                stability: 0.44,
                subtopics: &[
                    "red carpet",
                    "performance",
                    "album of the year",
                    "taylor swift",
                    "nominees",
                    "acceptance speech",
                ],
                nested_comments: true,
            },
            Topic::Higgs => TopicSpec {
                topic: self,
                query: "higgs boson",
                focal_date: ymd(2012, 7, 4),
                // Table 4: mean 40.2k, max 65.2k — orders of magnitude
                // smaller than the political topics.
                pool_size: 41_000,
                returned_target: 507.0,
                peak_offset_days: 0.5,
                peak_width_days: 1.5,
                background_level: 0.25,
                stability: 0.95,
                subtopics: &[
                    "cern",
                    "lhc",
                    "god particle",
                    "particle physics",
                    "standard model",
                    "atlas",
                ],
                // The 2012 comment-reply affordance predates threaded
                // replies; Table 5 reports N/A for nested Higgs comments.
                nested_comments: false,
            },
            Topic::WorldCup => TopicSpec {
                topic: self,
                query: "fifa world cup",
                focal_date: ymd(2014, 6, 12),
                // Table 4: mean 998k, mode 1M.
                pool_size: 1_080_000,
                returned_target: 502.0,
                // A month-long tournament: interest is high throughout the
                // window, so the density peak is broad and the background
                // strong — peaks sit at lower absolute values (Figure 2).
                peak_offset_days: 3.0,
                peak_width_days: 9.0,
                background_level: 0.55,
                stability: 0.37,
                subtopics: &[
                    "brazil",
                    "germany",
                    "messi",
                    "neymar",
                    "group stage",
                    "goal",
                ],
                nested_comments: true,
            },
        }
    }

    /// `publishedAfter` for the audit window: focal date − 14 days.
    pub fn window_start(self) -> Timestamp {
        self.spec().focal_date.add_days(-14)
    }

    /// `publishedBefore` for the audit window: focal date + 14 days.
    pub fn window_end(self) -> Timestamp {
        self.spec().focal_date.add_days(14)
    }
}

impl fmt::Display for Topic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.display_name())
    }
}

const fn ymd(y: i32, m: u32, d: u32) -> Timestamp {
    // All paper focal dates are literals; `from_ymd_const` turns an
    // invalid one into a compile error, so no runtime panic path exists.
    Timestamp::from_ymd_const(y, m, d)
}

/// Generation and audit parameters for one topic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopicSpec {
    /// The topic this spec describes.
    pub topic: Topic,
    /// The exact `q` parameter from the paper's Appendix A.
    pub query: &'static str,
    /// The event's D-day at midnight UTC.
    pub focal_date: Timestamp,
    /// Platform-wide number of videos matching the query (drives
    /// `pageInfo.totalResults` and randomization intensity).
    pub pool_size: u64,
    /// Calibrated mean number of videos a full 28-day hourly collection
    /// returns (Table 1).
    pub returned_target: f64,
    /// Days between the focal date and the interest peak (positive = peak
    /// after D-day).
    pub peak_offset_days: f64,
    /// Standard deviation of the interest burst, in days.
    pub peak_width_days: f64,
    /// Relative background interest level outside the burst, in (0, 1].
    /// High values (World Cup) flatten the density; low values (Capitol)
    /// concentrate returns at the spike.
    pub background_level: f64,
    /// How deterministic the search sampler is for this topic, in (0, 1]:
    /// the weight of the *static* per-video component of the sampling
    /// score. High stability (Higgs) keeps snapshots nearly identical; low
    /// stability (BLM) lets the rolling-window noise churn the returned
    /// set. Calibrated to reproduce Figure 1's per-topic ordering.
    pub stability: f64,
    /// Subtopic phrases usable as additional AND terms (§6.1 strategy
    /// experiment). Each phrase tokenizes into extra searchable terms.
    pub subtopics: &'static [&'static str],
    /// Whether the platform generates nested replies for this topic's
    /// comments (false only for Higgs/2012).
    pub nested_comments: bool,
}

impl TopicSpec {
    /// Tokenizes this topic's query the way the search endpoint does:
    /// lowercase, split on whitespace.
    pub fn query_tokens(&self) -> Vec<String> {
        tokenize(self.query)
    }
}

/// Lowercases and splits a query string into match tokens. Shared by the
/// platform's indexer and the API's query parser so both sides agree.
pub fn tokenize(query: &str) -> Vec<String> {
    query
        .split_whitespace()
        .map(|t| t.to_lowercase())
        .filter(|t| !t.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_topics_with_distinct_keys() {
        let keys: std::collections::HashSet<_> = Topic::ALL.iter().map(|t| t.key()).collect();
        assert_eq!(keys.len(), 6);
    }

    #[test]
    fn index_matches_all_order() {
        for (i, topic) in Topic::ALL.iter().enumerate() {
            assert_eq!(topic.index(), i, "{topic}");
        }
    }

    #[test]
    fn focal_dates_match_appendix_a() {
        assert_eq!(Topic::Blm.spec().focal_date.to_rfc3339(), "2020-05-25T00:00:00Z");
        assert_eq!(Topic::Brexit.spec().focal_date.to_rfc3339(), "2016-06-23T00:00:00Z");
        assert_eq!(Topic::Capitol.spec().focal_date.to_rfc3339(), "2021-01-06T00:00:00Z");
        assert_eq!(Topic::Grammys.spec().focal_date.to_rfc3339(), "2024-02-04T00:00:00Z");
        assert_eq!(Topic::Higgs.spec().focal_date.to_rfc3339(), "2012-07-04T00:00:00Z");
        assert_eq!(Topic::WorldCup.spec().focal_date.to_rfc3339(), "2014-06-12T00:00:00Z");
    }

    #[test]
    fn windows_span_28_days() {
        for topic in Topic::ALL {
            let start = topic.window_start();
            let end = topic.window_end();
            assert_eq!(end.days_since(start), 28, "{topic}");
            assert_eq!(end.hours_since(start), 672, "{topic}");
        }
    }

    #[test]
    fn pool_ordering_matches_table_4() {
        // Higgs ≪ Grammys ≪ Brexit < the 1M-capped trio.
        let pool = |t: Topic| t.spec().pool_size;
        assert!(pool(Topic::Higgs) < pool(Topic::Grammys));
        assert!(pool(Topic::Grammys) < pool(Topic::Brexit));
        assert!(pool(Topic::Brexit) < pool(Topic::Capitol));
        assert!(pool(Topic::Capitol) <= pool(Topic::WorldCup));
    }

    #[test]
    fn queries_match_appendix_a() {
        assert_eq!(Topic::Blm.spec().query, "black lives matter");
        assert_eq!(Topic::Higgs.spec().query, "higgs boson");
        assert_eq!(Topic::WorldCup.spec().query, "fifa world cup");
    }

    #[test]
    fn tokenizer_lowercases_and_splits() {
        assert_eq!(tokenize("FIFA World  Cup"), vec!["fifa", "world", "cup"]);
        assert_eq!(tokenize("  higgs   BOSON "), vec!["higgs", "boson"]);
        assert!(tokenize("   ").is_empty());
    }

    #[test]
    fn only_higgs_lacks_nested_comments() {
        for topic in Topic::ALL {
            assert_eq!(topic.spec().nested_comments, topic != Topic::Higgs, "{topic}");
        }
    }

    #[test]
    fn stability_ordering_matches_figure_1() {
        // Higgs is by far the most consistent; Brexit clearly second.
        let st = |t: Topic| t.spec().stability;
        assert!(st(Topic::Higgs) > st(Topic::Brexit));
        assert!(st(Topic::Brexit) > st(Topic::Grammys));
        for t in Topic::ALL {
            assert!(st(t) > 0.0 && st(t) <= 1.0, "{t}");
        }
    }

    #[test]
    fn every_topic_has_subtopics_for_strategy_experiment() {
        for topic in Topic::ALL {
            assert!(topic.spec().subtopics.len() >= 4, "{topic}");
        }
    }
}
