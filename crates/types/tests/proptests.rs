//! Property-based tests for the civil-time and identifier primitives.

use proptest::prelude::*;
use ytaudit_types::time::{days_in_month, CivilDate, HOUR};
use ytaudit_types::{ChannelId, CommentId, IsoDuration, Timestamp, VideoId};

proptest! {
    /// Any in-range timestamp formats to RFC 3339 and parses back exactly.
    #[test]
    fn rfc3339_round_trip(secs in -4_000_000_000i64..10_000_000_000i64) {
        let ts = Timestamp(secs);
        let text = ts.to_rfc3339();
        prop_assert_eq!(Timestamp::parse_rfc3339(&text).unwrap(), ts);
    }

    /// Civil date <-> day-count conversion is a bijection.
    #[test]
    fn civil_date_round_trip(days in -1_000_000i64..1_000_000i64) {
        let date = CivilDate::from_days_since_epoch(days);
        prop_assert_eq!(date.days_since_epoch(), days);
        // And the components are always in range.
        prop_assert!((1..=12).contains(&date.month()));
        prop_assert!(date.day() >= 1 && date.day() <= days_in_month(date.year(), date.month()));
    }

    /// Consecutive day counts yield consecutive civil dates.
    #[test]
    fn civil_dates_are_monotone(days in -1_000_000i64..1_000_000i64) {
        let a = CivilDate::from_days_since_epoch(days);
        let b = CivilDate::from_days_since_epoch(days + 1);
        prop_assert!(b > a);
    }

    /// ISO-8601 durations round-trip through their canonical rendering.
    #[test]
    fn duration_round_trip(secs in 0u64..100_000_000u64) {
        let d = IsoDuration::from_secs(secs);
        prop_assert_eq!(IsoDuration::parse(&d.format()).unwrap(), d);
    }

    /// floor_hour always lands on an hour boundary at or before the input,
    /// less than one hour away.
    #[test]
    fn floor_hour_properties(secs in -10_000_000_000i64..10_000_000_000i64) {
        let ts = Timestamp(secs);
        let floored = ts.floor_hour();
        prop_assert!(floored <= ts);
        prop_assert!(ts.as_secs() - floored.as_secs() < HOUR);
        prop_assert_eq!(floored.as_secs().rem_euclid(HOUR), 0);
    }

    /// hours_since tiles the timeline: every instant falls in exactly one
    /// hourly bin relative to any origin.
    #[test]
    fn hour_bins_tile(origin in -1_000_000i64..1_000_000i64, offset in -1_000_000i64..1_000_000i64) {
        let origin = Timestamp(origin * 977);
        let ts = Timestamp(origin.as_secs() + offset);
        let bin = ts.hours_since(origin);
        let bin_start = origin.as_secs() + bin * HOUR;
        prop_assert!(bin_start <= ts.as_secs());
        prop_assert!(ts.as_secs() < bin_start + HOUR);
    }

    /// Minted identifiers are deterministic in (seed, index) and extremely
    /// unlikely to collide across nearby indices.
    #[test]
    fn id_minting_deterministic(seed in any::<u64>(), index in 0u64..1_000_000u64) {
        prop_assert_eq!(VideoId::mint(seed, index), VideoId::mint(seed, index));
        prop_assert_ne!(VideoId::mint(seed, index), VideoId::mint(seed, index + 1));
        prop_assert_eq!(ChannelId::mint(seed, index), ChannelId::mint(seed, index));
    }

    /// Reply IDs always recover their parent.
    #[test]
    fn reply_parent_round_trip(seed in any::<u64>(), index in 0u64..10_000u64, reply in 0u64..100u64) {
        let parent = CommentId::mint_top_level(seed, index);
        let child = parent.mint_reply(reply);
        prop_assert_eq!(child.parent().unwrap(), parent);
    }

    /// Uploads playlists round-trip to their channel.
    #[test]
    fn uploads_playlist_round_trip(seed in any::<u64>(), index in 0u64..100_000u64) {
        let channel = ChannelId::mint(seed, index);
        prop_assert_eq!(channel.uploads_playlist().uploads_channel().unwrap(), channel);
    }
}
