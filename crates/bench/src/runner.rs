//! Dataset acquisition with on-disk caching.
//!
//! The full paper-scale collection issues 64 512 search calls plus the
//! metadata and comment fetches; at simulator speed that is tens of
//! seconds in release mode. The result is a pure function of the corpus
//! seed, so it is cached as JSON in `target/ytaudit-cache/` and reused by
//! every table/figure binary. Set `YTAUDIT_FRESH=1` to force
//! re-collection, or `YTAUDIT_QUICK=1` to run all binaries on a reduced
//! collection (useful for smoke-testing the pipeline).

use std::path::PathBuf;
use std::time::Instant;
use ytaudit_core::testutil::full_scale_client;
use ytaudit_core::{AuditDataset, Collector, CollectorConfig};
use ytaudit_types::Topic;

fn cache_dir() -> PathBuf {
    // Keep the cache inside target/ so `cargo clean` clears it.
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    // Walk up to the workspace root if invoked from a crate dir.
    while !dir.join("Cargo.toml").exists() && dir.pop() {}
    dir.join("target").join("ytaudit-cache")
}

fn load_cached(name: &str) -> Option<AuditDataset> {
    if std::env::var("YTAUDIT_FRESH").is_ok_and(|v| v == "1") {
        return None;
    }
    let path = cache_dir().join(name);
    let text = std::fs::read_to_string(path).ok()?;
    AuditDataset::from_json(&text).ok()
}

fn store_cached(name: &str, dataset: &AuditDataset) {
    let dir = cache_dir();
    if std::fs::create_dir_all(&dir).is_ok() {
        if let Ok(json) = dataset.to_json() {
            let _ = std::fs::write(dir.join(name), json);
        }
    }
}

/// The full paper-scale dataset: six topics, sixteen snapshots, hourly
/// bins, metadata, channels, and comments. Cached on disk.
pub fn full_dataset() -> AuditDataset {
    if std::env::var("YTAUDIT_QUICK").is_ok_and(|v| v == "1") {
        return quick_dataset();
    }
    if let Some(dataset) = load_cached("full.json") {
        eprintln!("[ytaudit-bench] using cached full dataset ({} snapshots)", dataset.len());
        return dataset;
    }
    eprintln!("[ytaudit-bench] collecting full dataset (6 topics × 16 snapshots × 672 hourly queries)…");
    // ytlint: allow(determinism) — benches report real elapsed wall-clock
    let started = Instant::now();
    let (client, _service) = full_scale_client();
    let dataset = Collector::new(&client, CollectorConfig::paper())
        .run()
        .expect("full collection succeeds");
    eprintln!(
        "[ytaudit-bench] collected in {:.1}s ({} quota units)",
        started.elapsed().as_secs_f64(),
        dataset.quota_units_spent
    );
    store_cached("full.json", &dataset);
    dataset
}

/// A reduced dataset (three topics, five snapshots) for smoke runs and
/// the Criterion experiment benches. Cached on disk.
pub fn quick_dataset() -> AuditDataset {
    if let Some(dataset) = load_cached("quick.json") {
        return dataset;
    }
    let (client, _service) = full_scale_client();
    let mut config = CollectorConfig::quick(vec![Topic::Blm, Topic::Brexit, Topic::Higgs], 5);
    config.fetch_comments = true;
    let dataset = Collector::new(&client, config)
        .run()
        .expect("quick collection succeeds");
    store_cached("quick.json", &dataset);
    dataset
}
