//! The paper's reported numbers, embedded for side-by-side comparison.
//!
//! Absolute values are not expected to match (the substrate is a
//! synthetic simulator, not YouTube); the *shape* — orderings, signs,
//! significance patterns, caps — is what EXPERIMENTS.md compares.

#![allow(clippy::type_complexity)] // reference tables are literal tuples by design

use ytaudit_types::Topic;

/// Table 1 (videos returned per collection): (topic, min, max, mean, std).
pub const TABLE1: [(Topic, usize, usize, f64, f64); 6] = [
    (Topic::Blm, 639, 765, 743.44, 27.86),
    (Topic::Brexit, 478, 573, 559.81, 21.86),
    (Topic::Capitol, 507, 590, 571.81, 17.35),
    (Topic::Grammys, 564, 677, 659.13, 25.45),
    (Topic::Higgs, 476, 512, 507.44, 8.32),
    (Topic::WorldCup, 419, 516, 502.5, 21.96),
];

/// Table 2 (per-hour returns): (topic, mean, min, max, std, rho, stars, N).
pub const TABLE2: [(Topic, f64, usize, usize, f64, f64, &str, usize); 6] = [
    (Topic::Blm, 1.10, 0, 17, 2.33, 0.13, "**", 267),
    (Topic::Brexit, 0.83, 0, 13, 1.57, 0.15, "***", 324),
    (Topic::Capitol, 0.85, 0, 28, 2.54, 0.29, "***", 242),
    (Topic::Grammys, 0.98, 0, 21, 2.22, 0.26, "***", 387),
    (Topic::Higgs, 0.75, 0, 14, 1.62, -0.11, "", 216),
    (Topic::WorldCup, 0.75, 0, 31, 1.37, 0.12, "*", 418),
];

/// Table 3 (binned ordinal logit): (predictor, beta, stars).
pub const TABLE3: [(&str, f64, &str); 14] = [
    ("SD (quality)", -0.018, ""),
    ("brexit (topic)", 1.231, "***"),
    ("capriot (topic)", -0.160, ""),
    ("grammys (topic)", 0.171, "*"),
    ("higgs (topic)", 3.10, "***"),
    ("worldcup (topic)", 0.161, ""),
    ("duration", -0.115, "***"),
    ("views", 0.161, ""),
    ("likes", 0.285, "**"),
    ("comments", 0.069, ""),
    ("channel age", 0.049, ""),
    ("channel views", 0.3176, "*"),
    ("channel subs", -0.3784, "**"),
    ("# channel videos", -0.0212, ""),
];

/// Table 3 model-level stats: (LR χ², df, pseudo-R²).
pub const TABLE3_MODEL: (f64, usize, f64) = (1137.63, 14, 0.079);

/// Table 4 (pool sizes): (topic, min, max, mean, mode).
pub const TABLE4: [(Topic, u64, u64, u64, u64); 6] = [
    (Topic::Blm, 679_000, 1_000_000, 982_000, 1_000_000),
    (Topic::Brexit, 247_000, 786_000, 624_000, 613_000),
    (Topic::Capitol, 515_000, 1_000_000, 966_000, 1_000_000),
    (Topic::Grammys, 12_800, 1_000_000, 150_000, 123_000),
    (Topic::Higgs, 5_500, 65_200, 40_200, 39_000),
    (Topic::WorldCup, 634_000, 1_000_000, 998_000, 1_000_000),
];

/// Table 5 (comment Jaccards): (topic, TL_NS, N_NS, TL_S, N_S); `None` =
/// the paper's N/A.
pub const TABLE5: [(Topic, Option<f64>, Option<f64>, Option<f64>, Option<f64>); 6] = [
    (Topic::Blm, Some(0.329), Some(0.307), Some(0.976), Some(0.983)),
    (Topic::Brexit, Some(0.381), Some(0.339), Some(0.999), Some(0.999)),
    (Topic::Capitol, Some(0.648), Some(0.625), Some(0.998), Some(0.994)),
    (Topic::Grammys, Some(0.728), Some(0.737), Some(0.996), Some(0.992)),
    (Topic::Higgs, Some(0.974), None, Some(0.998), None),
    (Topic::WorldCup, Some(0.470), Some(0.532), Some(0.999), Some(0.999)),
];

/// Table 6 (OLS + HC1): (predictor, beta, stars).
pub const TABLE6: [(&str, f64, &str); 14] = [
    ("SD (quality)", 0.0712, ""),
    ("brexit (topic)", 3.416, "***"),
    ("capriot (topic)", -0.283, ""),
    ("grammys (topic)", 0.571, "*"),
    ("higgs (topic)", 6.718, "***"),
    ("worldcup (topic)", 0.438, ""),
    ("duration", -0.285, "***"),
    ("views", 0.429, ""),
    ("likes", 0.713, "**"),
    ("comments", 0.242, ""),
    ("channel age", 0.113, ""),
    ("channel views", 1.079, "**"),
    ("channel subs", -1.157, "***"),
    ("# channel videos", -0.2212, ""),
];

/// Table 6 model-level stats: (R², F, df1, df2).
pub const TABLE6_MODEL: (f64, f64, usize, usize) = (0.164, 122.3, 14, 5348);

/// Table 7 (non-binned ordinal cloglog): (predictor, beta, stars).
pub const TABLE7: [(&str, f64, &str); 14] = [
    ("SD (quality)", 0.0228, ""),
    ("brexit (topic)", 0.9207, "***"),
    ("capriot (topic)", -0.0412, ""),
    ("grammys (topic)", 0.2395, "***"),
    ("higgs (topic)", 2.2998, "***"),
    ("worldcup (topic)", 0.1338, "*"),
    ("duration", -0.0710, "***"),
    ("views", 0.0352, ""),
    ("likes", 0.2051, "**"),
    ("comments", 0.0656, ""),
    ("channel age", 0.0355, ""),
    ("channel views", 0.2852, "**"),
    ("channel subs", -0.2734, "**"),
    ("# channel videos", -0.0958, ""),
];

/// Table 7 model-level stats: (LR χ², pseudo-R²).
pub const TABLE7_MODEL: (f64, f64) = (1167.64, 0.04);

/// Figure 1's headline: the approximate final J(Sₜ, S₁) band per topic,
/// read off the published figure.
pub const FIGURE1_FINAL_BAND: [(Topic, f64, f64); 6] = [
    (Topic::Blm, 0.25, 0.50),
    (Topic::Brexit, 0.45, 0.75),
    (Topic::Capitol, 0.25, 0.55),
    (Topic::Grammys, 0.30, 0.60),
    (Topic::Higgs, 0.80, 1.00),
    (Topic::WorldCup, 0.25, 0.55),
];

/// Star coding used across the paper's tables.
pub fn stars(p: f64) -> &'static str {
    if p < 0.001 {
        "***"
    } else if p < 0.01 {
        "**"
    } else if p < 0.05 {
        "*"
    } else {
        ""
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_tables_cover_all_topics() {
        for topic in Topic::ALL {
            assert!(TABLE1.iter().any(|r| r.0 == topic));
            assert!(TABLE2.iter().any(|r| r.0 == topic));
            assert!(TABLE4.iter().any(|r| r.0 == topic));
            assert!(TABLE5.iter().any(|r| r.0 == topic));
            assert!(FIGURE1_FINAL_BAND.iter().any(|r| r.0 == topic));
        }
        assert_eq!(TABLE3.len(), 14);
        assert_eq!(TABLE6.len(), 14);
        assert_eq!(TABLE7.len(), 14);
    }

    #[test]
    fn star_thresholds() {
        assert_eq!(stars(0.0001), "***");
        assert_eq!(stars(0.005), "**");
        assert_eq!(stars(0.02), "*");
        assert_eq!(stars(0.5), "");
    }

    #[test]
    fn higgs_nested_is_na_in_reference() {
        let higgs = TABLE5.iter().find(|r| r.0 == Topic::Higgs).unwrap();
        assert!(higgs.2.is_none());
        assert!(higgs.4.is_none());
    }
}
