//! Plain-text table rendering for the regeneration binaries.

/// Renders an aligned text table: a header row plus data rows. Columns
/// are right-aligned except the first.
pub fn render(header: &[&str], rows: &[Vec<String>]) -> String {
    let n_cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(n_cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            if i == 0 {
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            } else {
                line.push_str(&format!("{:>width$}", cell, width = widths[i]));
            }
        }
        line
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (n_cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders the same table as GitHub-flavoured Markdown (EXPERIMENTS.md).
pub fn render_markdown(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::from("| ");
    out.push_str(&header.join(" | "));
    out.push_str(" |\n|");
    for _ in header {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

/// Formats a float to 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float to 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a coefficient with its significance stars (paper style:
/// stars prefix the value).
pub fn starred(beta: f64, p: f64) -> String {
    format!("{}{:.3}", crate::paper::stars(p), beta)
}

/// Formats a pool size the way the paper does (`982k`, `1M`, `5.50k`).
pub fn pool(v: u64) -> String {
    if v >= 1_000_000 {
        "1M".to_string()
    } else if v >= 100_000 {
        format!("{}k", v / 1_000)
    } else if v >= 10_000 {
        format!("{:.1}k", v as f64 / 1_000.0)
    } else {
        format!("{:.2}k", v as f64 / 1_000.0)
    }
}

/// Formats an optional similarity (`N/A` for the paper's missing cells).
pub fn opt3(v: Option<f64>) -> String {
    v.map_or_else(|| "N/A".to_string(), |x| format!("{x:.3}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let out = render(
            &["topic", "min", "max"],
            &[
                vec!["BLM".into(), "639".into(), "765".into()],
                vec!["World Cup".into(), "419".into(), "516".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("topic"));
        assert!(lines[2].starts_with("BLM"));
        // Numbers right-aligned under their headers.
        assert!(lines[3].contains("419"));
    }

    #[test]
    fn markdown_has_separator_row() {
        let md = render_markdown(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn pool_formatting_matches_paper_style() {
        assert_eq!(pool(1_000_000), "1M");
        assert_eq!(pool(982_431), "982k");
        assert_eq!(pool(40_200), "40.2k");
        assert_eq!(pool(5_500), "5.50k");
        assert_eq!(pool(613_000), "613k");
    }

    #[test]
    fn starred_coefficients() {
        assert_eq!(starred(3.1, 0.0001), "***3.100");
        assert_eq!(starred(-0.115, 0.02), "*-0.115");
        assert_eq!(starred(0.161, 0.4), "0.161");
    }

    #[test]
    fn optional_similarity() {
        assert_eq!(opt3(Some(0.9764)), "0.976");
        assert_eq!(opt3(None), "N/A");
    }
}
