//! # ytaudit-bench
//!
//! Regeneration harness for every table and figure in the paper, plus
//! Criterion micro/meso-benchmarks.
//!
//! Each `src/bin/<id>.rs` binary reproduces one experiment:
//!
//! | binary     | reproduces |
//! |------------|------------|
//! | `table1`   | per-topic videos returned per collection |
//! | `table2`   | per-hour stats + Spearman ρ |
//! | `table3`   | binned ordinal (logit) regression |
//! | `table4`   | `totalResults` pool estimates |
//! | `table5`   | comment-set similarities |
//! | `table6`   | OLS with HC1 robust SEs |
//! | `table7`   | non-binned ordinal (cloglog) regression |
//! | `fig1`     | rolling Jaccard decay + error bars |
//! | `fig2`     | daily frequencies + daily Jaccard |
//! | `fig3`     | second-order Markov transitions |
//! | `fig4`     | `Videos: list` coverage/stability |
//! | `strategy` | §6.1/6.2 restriction-ladder & topic-splitting |
//! | `ablation` | per-mechanism ablations of the hidden sampler |
//! | `periodicity` | §6.2 sparse-collection periodicity scan |
//! | `serp_audit`  | §6.2 sockpuppet-SERP vs API comparison |
//! | `repro`    | everything, writing `EXPERIMENTS.md` |
//!
//! The full 16-snapshot collection is expensive (64 512 search calls), so
//! the binaries cache the collected dataset as JSON under `target/` and
//! reuse it; set `YTAUDIT_FRESH=1` to force a re-collection.

#![forbid(unsafe_code)]

pub mod paper;
pub mod runner;
pub mod tables;

pub use runner::{full_dataset, quick_dataset};
