//! Regenerates Table 7: the non-binned ordinal regression with a
//! complementary log-log link (16 outcome levels).

use ytaudit_bench::{full_dataset, paper, tables};
use ytaudit_core::regression::{build_regression_data, table7};

fn main() {
    let dataset = full_dataset();
    let data = build_regression_data(&dataset).expect("regression data builds");
    let fit = table7(&data).expect("ordinal cloglog converges");
    println!(
        "Table 7 — non-binned ordinal (cloglog) regression, N = {}, {} outcome levels\n",
        fit.n, fit.n_categories
    );
    let mut rows = Vec::new();
    for (i, name) in fit.names.iter().enumerate() {
        let reference = paper::TABLE7.iter().find(|r| r.0 == name);
        rows.push(vec![
            name.clone(),
            tables::starred(fit.coefficients[i], fit.p_values[i]),
            tables::f3(fit.std_errors[i]),
            format!("[{:.3}, {:.3}]", fit.ci_low[i], fit.ci_high[i]),
            reference.map_or(String::from("—"), |r| format!("{}{}", r.2, r.1)),
        ]);
    }
    print!(
        "{}",
        tables::render(&["variable", "beta", "SE", "95% CI", "paper"], &rows)
    );
    println!(
        "\nmodel: LR chi2 = {:.2} (p = {:.3e}), McFadden pseudo-R2 = {:.3}",
        fit.lr_chi2, fit.lr_p, fit.pseudo_r2
    );
    println!(
        "paper:  LR chi2 = {:.2}, pseudo-R2 = {:.3}",
        paper::TABLE7_MODEL.0,
        paper::TABLE7_MODEL.1
    );
    println!(
        "\nShape check: consistent with Tables 3/6; the paper notes World Cup\n\
         turns marginally significant under this specification."
    );
}
