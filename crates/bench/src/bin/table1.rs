//! Regenerates Table 1: descriptive statistics for the number of videos
//! returned per topic across collections.

use ytaudit_bench::{full_dataset, paper, tables};
use ytaudit_core::consistency::table1;

fn main() {
    let dataset = full_dataset();
    let rows = table1(&dataset);
    let mut printable = Vec::new();
    for row in &rows {
        let reference = paper::TABLE1
            .iter()
            .find(|r| r.0 == row.topic)
            .expect("all topics covered");
        printable.push(vec![
            row.topic.display_name().to_string(),
            row.min.to_string(),
            row.max.to_string(),
            tables::f2(row.mean),
            tables::f2(row.std),
            format!("{}/{}/{}/{}", reference.1, reference.2, reference.3, reference.4),
        ]);
    }
    println!("Table 1 — videos returned per topic across collections");
    println!("(last column: paper's min/max/mean/std)\n");
    print!(
        "{}",
        tables::render(
            &["topic", "min", "max", "mean", "std", "paper"],
            &printable
        )
    );
    println!(
        "\nShape check: per-snapshot totals sit in the paper's ~420–770 band\n\
         with std ≪ mean, despite pool sizes spanning 25× (Table 4)."
    );
}
