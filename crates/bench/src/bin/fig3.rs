//! Regenerates Figure 3: second-order Markov transition probabilities for
//! the presence/absence of videos across collections.

use ytaudit_bench::{full_dataset, tables};
use ytaudit_core::attrition::figure3;

fn main() {
    let dataset = full_dataset();
    let fig3 = figure3(&dataset).expect("16 snapshots provide ample transitions");
    println!("Figure 3 — second-order Markov transitions (P = present, A = absent)\n");
    let labels = ["PP", "PA", "AP", "AA"];
    let rows: Vec<Vec<String>> = labels
        .iter()
        .enumerate()
        .map(|(i, label)| {
            vec![
                label.to_string(),
                tables::f3(fig3.transitions[i][0]),
                tables::f3(fig3.transitions[i][1]),
                fig3.counts[i].to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        tables::render(&["history", "→P", "→A", "n"], &rows)
    );
    println!();
    println!("P(P|PP) = {:.3}   P(A|AA) = {:.3}", fig3.p_stay_present(), fig3.p_stay_absent());
    let second_order_present = fig3.transitions[0][0] > fig3.transitions[2][0];
    let second_order_absent = fig3.transitions[3][1] > fig3.transitions[1][1];
    println!(
        "second-order refinement: P(P|PP) > P(P|AP): {second_order_present};  P(A|AA) > P(A|PA): {second_order_absent}"
    );
    println!(
        "\nShape check (paper): drop-ins and drop-outs are the normative\n\
         behaviour — presence/absence in the immediately previous collection\n\
         predicts the next state, more strongly when both previous states\n\
         agree (the 'rolling window')."
    );
}
