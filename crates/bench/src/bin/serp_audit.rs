//! The §6.2 SERP experiment: can the search endpoint serve as a
//! low-resource proxy for sockpuppet SERP audits?

use ytaudit_bench::tables;
use ytaudit_core::serp::serp_vs_api;
use ytaudit_core::testutil::full_scale_client;
use ytaudit_types::{Timestamp, Topic};

fn main() {
    let (client, service) = full_scale_client();
    let date = Timestamp::from_ymd(2025, 2, 9).unwrap();
    println!("§6.2 SERP-vs-API comparison — 6 puppets per topic, overlap@20\n");
    let mut rows = Vec::new();
    for topic in Topic::ALL {
        let cmp = serp_vs_api(service.platform(), &client, topic, 6, date).expect("comparison");
        rows.push(vec![
            topic.display_name().to_string(),
            tables::f3(cmp.puppet_pairwise_overlap),
            tables::f3(cmp.api_serp_overlap),
            format!("{:.4}", cmp.random_baseline),
            format!("{:.0}x", cmp.api_serp_overlap / cmp.random_baseline.max(1e-9)),
        ]);
    }
    print!(
        "{}",
        tables::render(
            &["topic", "puppet-puppet", "API-SERP", "random", "lift"],
            &rows
        )
    );
    println!(
        "\nReading: fresh sockpuppets agree strongly with each other; the\n\
         API's relevance-ordered page overlaps their SERPs far above the\n\
         random baseline but below puppet-puppet agreement — the search\n\
         endpoint is a usable (not perfect) low-resource SERP-audit proxy,\n\
         as §6.2 hypothesized."
    );
}
