//! Ablation study: run a reduced audit with each sampler mechanism
//! switched off in turn and report which of the paper's signatures
//! disappears — evidence that every mechanism DESIGN.md encodes is
//! individually load-bearing.

use ytaudit_bench::tables;
use ytaudit_core::ablation::{run_variant, standard_variants};

fn main() {
    println!("Ablation study — Capitol + Higgs, 6 snapshots, full corpus scale\n");
    let mut rows = Vec::new();
    for (label, sampler) in standard_variants() {
        eprintln!("[ablation] running variant {label}…");
        let outcome = run_variant(label, sampler, 1.0, 6).expect("variant runs");
        rows.push(vec![
            outcome.variant.clone(),
            tables::f3(outcome.final_jaccard),
            tables::f3(outcome.mean_adjacent_jaccard),
            format!("{:.1}%", outcome.zero_hour_share * 100.0),
            outcome.gated_hour_returns.to_string(),
            if outcome.likes_coefficient.is_nan() {
                "—".to_string()
            } else {
                tables::f3(outcome.likes_coefficient)
            },
            if outcome.p_stay_present.is_nan() {
                "—".to_string()
            } else {
                tables::f3(outcome.p_stay_present)
            },
        ]);
    }
    print!(
        "{}",
        tables::render(
            &[
                "variant",
                "J(final,first)",
                "J(adjacent)",
                "zero hours",
                "gated returns",
                "likes beta",
                "P(P|PP)"
            ],
            &rows
        )
    );
    println!(
        "\nReading guide:\n\
         • frozen        → J ≈ 1: no churn at all, Figures 1/3 vanish.\n\
         • memoryless    → adjacent J collapses toward the random floor:\n\
           the 'rolling window' (Figure 3) requires the noise's memory.\n\
         • no-gating     → returns appear in hours the density gate\n\
           suppresses (the paper's forced-zero observation).\n\
         • no-propensity → the likes coefficient goes to ~0: Table 3's\n\
           popularity bias is carried entirely by the propensity term."
    );
}
