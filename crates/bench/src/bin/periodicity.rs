//! The §6.2 periodicity experiment: a sparse, long collection scanned
//! for cycles in set similarity — run twice, once against the calibrated
//! (aperiodic) sampler and once against a sampler with a planted 20-day
//! cycle, to show the detector separates the two.

use ytaudit_bench::tables;
use ytaudit_core::ablation::client_with_sampler;
use ytaudit_core::{Collector, CollectorConfig, Schedule};
use ytaudit_platform::SamplerConfig;
use ytaudit_types::{Timestamp, Topic};

fn run(label: &str, sampler: SamplerConfig) -> Vec<String> {
    let (client, _service) = client_with_sampler(1.0, sampler);
    let config = CollectorConfig {
        topics: vec![Topic::Capitol],
        // §6.2: "more sparse collections over a longer period" — every
        // 5 days for 24 snapshots = 120 days (vs the paper's 80).
        schedule: Schedule::every(Timestamp::from_ymd(2025, 2, 9).unwrap(), 5, 24),
        hourly_bins: true,
        fetch_metadata: false,
        fetch_channels: false,
        fetch_comments: false,
        shard: None,
        platform: ytaudit_types::PlatformKind::Youtube,
    };
    let dataset = Collector::new(&client, config).run().expect("collection");
    let report =
        ytaudit_core::periodicity::analyze(&dataset, Topic::Capitol, Some(7)).expect("analysis");
    vec![
        label.to_string(),
        report.dominant_lag.to_string(),
        format!("{} days", report.dominant_lag * 5),
        tables::f3(report.strength),
        tables::f3(report.threshold),
        report.significant.to_string(),
        format!("{:.3}", report.ljung_box_p),
    ]
}

fn main() {
    println!("§6.2 periodicity check — Capitol, 24 snapshots every 5 days\n");
    let rows = vec![
        run("calibrated (aperiodic)", SamplerConfig::default()),
        run(
            "planted 20-day cycle",
            SamplerConfig::default().with_seasonality(20.0, 0.22),
        ),
    ];
    print!(
        "{}",
        tables::render(
            &[
                "sampler",
                "dominant lag",
                "period",
                "ACF",
                "threshold",
                "significant",
                "Ljung-Box p"
            ],
            &rows
        )
    );
    println!(
        "\nReading: the detector flags the planted cycle at its true period\n\
         and stays quiet on the calibrated sampler — ready to run against\n\
         the real API the day someone has 6 months of quota."
    );
}
