//! Regenerates Figure 1: Jaccard similarities of video-ID sets relative
//! to the previous and the first collection, with set-difference "error
//! bars".

use ytaudit_bench::{full_dataset, paper, tables};
use ytaudit_core::consistency::figure1;

fn main() {
    let dataset = full_dataset();
    println!("Figure 1 — rolling Jaccard similarity per topic\n");
    for tc in figure1(&dataset) {
        let band = paper::FIGURE1_FINAL_BAND
            .iter()
            .find(|b| b.0 == tc.topic)
            .expect("all topics covered");
        println!(
            "{} — final J(St,S1) = {:.3} (paper band {:.2}–{:.2}), mean J(St,St-1) = {:.3}",
            tc.topic.display_name(),
            tc.final_jaccard_first(),
            band.1,
            band.2,
            tc.mean_jaccard_prev(),
        );
        let rows: Vec<Vec<String>> = tc
            .points
            .iter()
            .map(|p| {
                vec![
                    p.snapshot.to_string(),
                    p.returned.to_string(),
                    tables::f3(p.jaccard_prev),
                    tables::f3(p.jaccard_first),
                    format!("-{}", p.dropped_out),
                    format!("+{}", p.dropped_in),
                ]
            })
            .collect();
        print!(
            "{}",
            tables::render(
                &["t", "returned", "J(St,St-1)", "J(St,S1)", "out", "in"],
                &rows
            )
        );
        println!();
    }
    println!(
        "Shape check: J(St,S1) decays over the 12 weeks while J(St,St-1)\n\
         stays high; Higgs is by far the most stable; the '+in' column is\n\
         non-zero — historical queries GAIN videos, so deletions cannot\n\
         explain the churn."
    );
}
