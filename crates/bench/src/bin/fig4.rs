//! Regenerates Figure 4: `Videos: list` metadata coverage and stability
//! across collections.

use ytaudit_bench::{full_dataset, tables};
use ytaudit_core::idcheck::figure4;

fn main() {
    let dataset = full_dataset();
    println!("Figure 4 — Videos:list coverage on common videos per comparison\n");
    for ft in figure4(&dataset) {
        println!("{}", ft.topic.display_name());
        let rows: Vec<Vec<String>> = ft
            .vs_previous
            .iter()
            .zip(&ft.vs_first)
            .map(|(prev, first)| {
                vec![
                    prev.comparison_id.to_string(),
                    format!("{:.1}%", prev.coverage_current),
                    format!("{:.1}%", prev.coverage_reference),
                    tables::f3(prev.jaccard_common),
                    tables::f3(first.jaccard_common),
                ]
            })
            .collect();
        print!(
            "{}",
            tables::render(
                &["t", "cov(t)", "cov(t-1)", "J vs prev", "J vs first"],
                &rows
            )
        );
        println!();
    }
    println!(
        "Shape check: coverage is uniformly high with no pattern across\n\
         comparison IDs — the gaps are random errors, not systematic API\n\
         behaviour; Jaccards on common videos dwarf the raw search Jaccards\n\
         of Figure 1."
    );
}
