//! Regenerates Table 5: Jaccard similarities between first- and
//! last-collection comment sets.

use ytaudit_bench::{full_dataset, paper, tables};
use ytaudit_core::comments::table5;

fn main() {
    let dataset = full_dataset();
    let rows = table5(&dataset);
    let mut printable = Vec::new();
    for row in &rows {
        let reference = paper::TABLE5
            .iter()
            .find(|r| r.0 == row.topic)
            .expect("all topics covered");
        printable.push(vec![
            row.topic.display_name().to_string(),
            tables::opt3(row.top_level_non_shared),
            tables::opt3(row.nested_non_shared),
            tables::opt3(row.top_level_shared),
            tables::opt3(row.nested_shared),
            format!(
                "{}/{}/{}/{}",
                tables::opt3(reference.1),
                tables::opt3(reference.2),
                tables::opt3(reference.3),
                tables::opt3(reference.4)
            ),
        ]);
    }
    println!("Table 5 — comment-set similarity, first vs last collection");
    println!("(TL = top-level, N = nested; NS = all videos, S = shared videos; last column: paper)\n");
    print!(
        "{}",
        tables::render(
            &["topic", "TL,NS", "N,NS", "TL,S", "N,S", "paper"],
            &printable
        )
    );
    println!(
        "\nShape check: shared-video similarities are ~1 (the comment\n\
         endpoints are stable); full-set similarities are much lower because\n\
         they inherit the search endpoint's video churn; Higgs nested = N/A\n\
         (2012 predates threaded replies)."
    );
}
