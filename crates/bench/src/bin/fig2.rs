//! Regenerates Figure 2: daily frequencies of videos returned (first,
//! last, and average collections) with daily first-vs-last Jaccard.

use ytaudit_bench::{full_dataset, tables};
use ytaudit_core::randomization::figure2;
use ytaudit_stats::rank::pearson;

fn main() {
    let dataset = full_dataset();
    println!("Figure 2 — daily return frequencies and daily Jaccard\n");
    for ft in figure2(&dataset) {
        let spec = ft.topic.spec();
        println!(
            "{} (focal day = 14, interest peak ≈ day {:.0})",
            ft.topic.display_name(),
            14.0 + spec.peak_offset_days
        );
        let rows: Vec<Vec<String>> = ft
            .days
            .iter()
            .map(|d| {
                vec![
                    d.day.to_string(),
                    d.first.to_string(),
                    d.last.to_string(),
                    tables::f2(d.avg),
                    tables::f3(d.jaccard_first_last),
                ]
            })
            .collect();
        print!(
            "{}",
            tables::render(&["day", "first", "last", "avg", "J(first,last)"], &rows)
        );
        // The headline correlations.
        let first: Vec<f64> = ft.days.iter().map(|d| d.first as f64).collect();
        let last: Vec<f64> = ft.days.iter().map(|d| d.last as f64).collect();
        let avg: Vec<f64> = ft.days.iter().map(|d| d.avg).collect();
        let js: Vec<f64> = ft.days.iter().map(|d| d.jaccard_first_last).collect();
        let shape_r = pearson(&first, &last).map(|c| c.coefficient).unwrap_or(f64::NAN);
        let vol_vs_j = pearson(&avg, &js).map(|c| c.coefficient).unwrap_or(f64::NAN);
        println!(
            "  first-vs-last daily-shape r = {shape_r:.3} (paper: 'map almost perfectly'),\n  volume-vs-Jaccard r = {vol_vs_j:.3} (paper: no consistent mapping)\n"
        );
    }
    println!(
        "Shape check: the frequency curves of different snapshots coincide\n\
         (the API samples a fixed interest density); the Jaccard column does\n\
         not track volume; peaks sit near each topic's focal date, with BLM's\n\
         lagging ~8 days (Blackout Tuesday)."
    );
}
