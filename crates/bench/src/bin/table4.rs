//! Regenerates Table 4: potential video pool size per topic
//! (`pageInfo.totalResults` estimates).

use ytaudit_bench::{full_dataset, paper, tables};
use ytaudit_core::poolsize::table4;

fn main() {
    let dataset = full_dataset();
    let rows = table4(&dataset);
    let mut printable = Vec::new();
    for row in &rows {
        let reference = paper::TABLE4
            .iter()
            .find(|r| r.0 == row.topic)
            .expect("all topics covered");
        printable.push(vec![
            row.topic.display_name().to_string(),
            tables::pool(row.min),
            tables::pool(row.max),
            tables::pool(row.mean),
            tables::pool(row.mode),
            format!(
                "{}/{}/{}/{}",
                tables::pool(reference.1),
                tables::pool(reference.2),
                tables::pool(reference.3),
                tables::pool(reference.4)
            ),
        ]);
    }
    println!("Table 4 — potential video pool size per topic (totalResults)");
    println!("(last column: paper's min/max/mean/mode)\n");
    print!(
        "{}",
        tables::render(&["topic", "min", "max", "mean", "mode"
, "paper"], &printable)
    );
    println!(
        "\nShape check: Higgs is orders of magnitude smaller than the\n\
         political topics; BLM/Capitol/World Cup pin their mode at the 1M\n\
         cap; Brexit and Grammys mode below it — and the three smallest\n\
         pools are exactly the three most-consistent topics of Table 3."
    );
}
