//! The §6.1/§6.2 strategy experiments: the restriction ladder
//! (progressively more AND terms) and broad-vs-split topic collection.
//!
//! These validate the paper's recommendations experimentally: narrower
//! queries report smaller pools and replicate better, and splitting a
//! topic into subtopic queries beats one broad query on replicability.

use ytaudit_bench::tables;
use ytaudit_core::strategy::{restriction_ladder, split_topics, StrategyConfig};
use ytaudit_core::testutil::full_scale_client;
use ytaudit_types::Topic;

fn main() {
    let (client, _service) = full_scale_client();
    println!("Strategy experiment 1 — restriction ladder (hourly-binned collections)\n");
    for topic in [Topic::WorldCup, Topic::Blm, Topic::Grammys] {
        let config = StrategyConfig {
            levels: 3,
            hourly: true,
            ..StrategyConfig::new(topic)
        };
        let ladder = restriction_ladder(&client, &config).expect("ladder runs");
        println!("{}:", topic.display_name());
        let rows: Vec<Vec<String>> = ladder
            .iter()
            .map(|p| {
                vec![
                    p.level.to_string(),
                    format!("\"{}\"", p.query),
                    tables::pool(p.pool_mean),
                    p.returned_first.to_string(),
                    p.returned_last.to_string(),
                    tables::f3(p.jaccard),
                ]
            })
            .collect();
        print!(
            "{}",
            tables::render(
                &["level", "query", "pool", "n(first)", "n(last)", "J(first,last)"],
                &rows
            )
        );
        println!();
    }

    println!("Strategy experiment 2 — broad query vs split subtopic queries\n");
    let mut rows = Vec::new();
    for topic in [Topic::WorldCup, Topic::Blm, Topic::Capitol] {
        let config = StrategyConfig {
            hourly: true,
            ..StrategyConfig::new(topic)
        };
        let cmp = split_topics(&client, &config).expect("split comparison runs");
        rows.push(vec![
            topic.display_name().to_string(),
            tables::f3(cmp.broad_jaccard),
            tables::f3(cmp.split_jaccard),
            cmp.broad_returned.to_string(),
            cmp.split_returned.to_string(),
            cmp.broad_quota.to_string(),
            cmp.split_quota.to_string(),
        ]);
    }
    print!(
        "{}",
        tables::render(
            &[
                "topic",
                "J broad",
                "J split",
                "n broad",
                "n split",
                "quota broad",
                "quota split"
            ],
            &rows
        )
    );
    println!(
        "\nShape check (paper §6.1): lower totalResults ⇒ more stable returns;\n\
         splitting topics beats splitting time frames, at proportionally\n\
         higher quota cost when hourly-binned."
    );
    println!(
        "\nTotal quota consumed by this experiment: {} units\n\
         (= {:.1} default-key days; researcher quotas exist for a reason).",
        client.budget().units_spent(),
        client.budget().days_of_quota(ytaudit_api::DEFAULT_DAILY_QUOTA)
    );
}
