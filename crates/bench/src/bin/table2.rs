//! Regenerates Table 2: per-hour return statistics and the Spearman
//! correlation between per-hour consistency and per-hour volume — the
//! ceiling-effect test.

use ytaudit_bench::{full_dataset, paper, tables};
use ytaudit_core::randomization::table2;

fn main() {
    let dataset = full_dataset();
    let rows = table2(&dataset);
    let mut printable = Vec::new();
    for row in &rows {
        let reference = paper::TABLE2
            .iter()
            .find(|r| r.0 == row.topic)
            .expect("all topics covered");
        printable.push(vec![
            row.topic.display_name().to_string(),
            tables::f2(row.mean),
            row.min.to_string(),
            row.max.to_string(),
            tables::f2(row.std),
            format!("{}{:.2}", paper::stars(row.rho_p), row.rho),
            row.n_hours.to_string(),
            format!("{}{:.2} (N={})", reference.6, reference.5, reference.7),
        ]);
    }
    println!("Table 2 — per-hour number of videos returned");
    println!("(rho: Spearman between per-hour J(T1,TL) and mean hourly count; last column: paper)\n");
    print!(
        "{}",
        tables::render(
            &["topic", "mean", "min", "max", "std", "rho", "N", "paper rho"],
            &printable
        )
    );
    println!(
        "\nShape check: maxima stay far below the 50-per-page cap (no\n\
         ceiling effect); correlations are weakly positive for the large\n\
         topics and absent/negative for Higgs."
    );
}
