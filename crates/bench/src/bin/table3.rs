//! Regenerates Table 3: the binned ordinal (logit) regression of
//! appearance frequency on video/channel features.

use ytaudit_bench::{full_dataset, paper, tables};
use ytaudit_core::regression::{build_regression_data, table3};

fn main() {
    let dataset = full_dataset();
    let data = build_regression_data(&dataset).expect("regression data builds");
    let fit = table3(&data).expect("ordinal logit converges");
    println!(
        "Table 3 — binned ordinal (logit) regression, N = {}, bins 1–5/6–10/11–15/16\n",
        fit.n
    );
    let mut rows = Vec::new();
    for (i, name) in fit.names.iter().enumerate() {
        let reference = paper::TABLE3.iter().find(|r| r.0 == name);
        rows.push(vec![
            name.clone(),
            tables::starred(fit.coefficients[i], fit.p_values[i]),
            tables::f3(fit.std_errors[i]),
            format!("[{:.3}, {:.3}]", fit.ci_low[i], fit.ci_high[i]),
            reference.map_or(String::from("—"), |r| format!("{}{}", r.2, r.1)),
        ]);
    }
    print!(
        "{}",
        tables::render(&["variable", "beta", "SE", "95% CI", "paper"], &rows)
    );
    println!(
        "\nmodel: LR chi2 = {:.2} on {} df (p = {:.3e}), McFadden pseudo-R2 = {:.3}",
        fit.lr_chi2, fit.lr_df, fit.lr_p, fit.pseudo_r2
    );
    println!(
        "paper:  LR chi2 = {:.2} on {} df, pseudo-R2 = {:.3}",
        paper::TABLE3_MODEL.0,
        paper::TABLE3_MODEL.1,
        paper::TABLE3_MODEL.2
    );
    println!(
        "\nShape check: duration −, likes +, channel views +, channel subs −;\n\
         higgs/brexit strongly +; views/comments absorbed by likes\n\
         (collinearity); overall fit low — most variance is the sampler's\n\
         randomization, exactly the paper's reading."
    );
}
