//! Regenerates Table 6: OLS regression (robust HC1 standard errors) of
//! appearance frequency, treated as continuous.

use ytaudit_bench::{full_dataset, paper, tables};
use ytaudit_core::regression::{build_regression_data, table6};

fn main() {
    let dataset = full_dataset();
    let data = build_regression_data(&dataset).expect("regression data builds");
    let fit = table6(&data).expect("OLS fits");
    println!(
        "Table 6 — OLS with HC1 robust SEs, N = {}, frequency continuous\n",
        fit.n
    );
    let mut rows = Vec::new();
    for (i, name) in fit.names.iter().enumerate().skip(1) {
        let reference = paper::TABLE6.iter().find(|r| r.0 == name);
        rows.push(vec![
            name.clone(),
            tables::starred(fit.coefficients[i], fit.p_values[i]),
            tables::f3(fit.std_errors[i]),
            format!("[{:.3}, {:.3}]", fit.ci_low[i], fit.ci_high[i]),
            reference.map_or(String::from("—"), |r| format!("{}{}", r.2, r.1)),
        ]);
    }
    print!(
        "{}",
        tables::render(&["variable", "beta", "SE", "95% CI", "paper"], &rows)
    );
    println!(
        "\nmodel: R2 = {:.3}, F({}, {}) = {:.1} (p = {:.3e})",
        fit.r_squared,
        fit.names.len() - 1,
        fit.df_resid,
        fit.f_statistic,
        fit.f_p_value
    );
    println!(
        "paper:  R2 = {:.3}, F({}, {}) = {:.1}",
        paper::TABLE6_MODEL.0,
        paper::TABLE6_MODEL.2,
        paper::TABLE6_MODEL.3,
        paper::TABLE6_MODEL.1
    );
    println!("\nShape check: identical sign/significance pattern to Table 3.");
}
