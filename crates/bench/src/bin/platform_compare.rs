//! The same audit, two platforms: runs an identical collection plan
//! against the YouTube simulator and the TikTok-shaped backend, and
//! renders the side-by-side table the README quotes — what each API
//! charged, what it returned, and how consistent its answers were.
//!
//! The methodology layer is the byte-for-byte same code for both rows;
//! only the `core::Platform` implementation underneath differs.

use ytaudit_bench::tables;
use ytaudit_core::testutil::test_client;
use ytaudit_core::{Collector, CollectorConfig};
use ytaudit_stats::sets::jaccard;
use ytaudit_tiktok_sim::testutil::test_tiktok_client;
use ytaudit_types::{PlatformKind, Topic};

const SCALE: f64 = 0.08;
const SNAPSHOTS: usize = 4;

fn plan(platform: PlatformKind) -> CollectorConfig {
    CollectorConfig {
        platform,
        fetch_comments: true,
        ..CollectorConfig::quick(vec![Topic::Higgs, Topic::Blm], SNAPSHOTS)
    }
}

fn rows_for(
    label: &str,
    dataset: &ytaudit_core::AuditDataset,
    spent: u64,
    spent_unit: &str,
) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for &topic in &[Topic::Higgs, Topic::Blm] {
        let first = dataset.id_set(topic, 0);
        let last = dataset.id_set(topic, SNAPSHOTS - 1);
        rows.push(vec![
            label.to_string(),
            format!("{topic:?}"),
            first.len().to_string(),
            last.len().to_string(),
            tables::f3(jaccard(&last, &first)),
            format!("{spent} {spent_unit}"),
        ]);
    }
    rows
}

fn main() {
    println!("Platform comparison — {SNAPSHOTS} snapshots, 2 topics, corpus scale {SCALE}\n");

    let (yt_client, _yt_service) = test_client(SCALE);
    let yt = Collector::new(&yt_client, plan(PlatformKind::Youtube))
        .run()
        .expect("youtube collection");
    let yt_units = yt_client.budget().units_spent();

    let (tk_client, _tk_service) = test_tiktok_client(SCALE);
    let tk = Collector::new(&tk_client, plan(PlatformKind::Tiktok))
        .run()
        .expect("tiktok collection");
    let tk_requests = tk_client.requests_issued();

    let mut rows = rows_for("youtube", &yt, yt_units, "units");
    rows.extend(rows_for("tiktok", &tk, tk_requests, "requests"));
    print!(
        "{}",
        tables::render(
            &[
                "platform",
                "topic",
                "|S₁|",
                "|S_last|",
                "J(S_last,S₁)",
                "spend"
            ],
            &rows
        )
    );
    println!(
        "\nReading: both backends drift — identical historical queries return\n\
         different sets at different request dates — but their economics\n\
         differ completely: YouTube prices a search page at 100 units of a\n\
         per-endpoint budget, TikTok charges 1 request per call against a\n\
         daily request pool, and its hidden window cap plus dropped tail\n\
         pages shave the retrievable sample on top."
    );
}
