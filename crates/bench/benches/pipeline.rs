//! Criterion benchmarks for HTTP/1.1 pipelining: the same batch of
//! small GETs against a loopback server at in-flight depths 1, 4, and
//! 8. Depth 1 is plain sequential keep-alive; deeper pipelines should
//! win by hiding per-request round-trip latency, which is exactly the
//! shape of the audit's thousands of small `Search: list` calls.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use ytaudit_net::{HttpClient, Request, Response, Server, ServerConfig, StatusCode, Url};

/// Requests per batch: wide enough that the pipeline refills many times
/// at every depth under test.
const BATCH: usize = 64;

fn bench_pipeline_depths(c: &mut Criterion) {
    let handler = Arc::new(|req: &Request| {
        Response::text(
            StatusCode::OK,
            format!("ok {}?{}", req.path, req.query.encode()),
        )
    });
    let server = Server::bind("127.0.0.1:0", handler, ServerConfig::default())
        .expect("bind loopback bench server");
    let url = Url::parse(&server.base_url()).unwrap();
    let requests: Vec<Request> = (0..BATCH)
        .map(|i| Request::get(format!("/item/{i}")))
        .collect();

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(20);
    for depth in [1usize, 4, 8] {
        // One client per depth, created outside the timing loop: the
        // connection is opened once and kept alive, so the measurement
        // is per-request pipelining, not dialing.
        let client = HttpClient::new();
        group.bench_function(format!("loopback_64_gets_depth_{depth}"), |b| {
            b.iter(|| {
                let results = client.send_pipelined(&url, &requests, depth);
                for result in &results {
                    black_box(result.as_ref().expect("bench request failed").status);
                }
            })
        });
    }
    group.finish();
    server.shutdown();
}

criterion_group!(benches, bench_pipeline_depths);
criterion_main!(benches);
