//! Criterion microbenchmarks for the substrates: HTTP stack, search
//! sampler, corpus generation, and the statistics routines the audit
//! leans on. These quantify the cost of one audit "unit of work".

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashSet;
use std::hint::black_box;
use std::sync::Arc;
use ytaudit_net::{HttpClient, Request, Response, Server, ServerConfig, StatusCode};
use ytaudit_platform::{Corpus, CorpusConfig, Platform, SearchOrder, SearchParams};
use ytaudit_stats::ols::{OlsFit, OlsOptions};
use ytaudit_stats::ordinal::OrdinalModel;
use ytaudit_stats::rank::spearman;
use ytaudit_stats::sets::jaccard;
use ytaudit_types::{Timestamp, Topic};

fn bench_http(c: &mut Criterion) {
    let handler = Arc::new(|_: &Request| Response::json(StatusCode::OK, br#"{"items":[]}"#.to_vec()));
    let server = Server::bind("127.0.0.1:0", handler, ServerConfig::default()).unwrap();
    let client = HttpClient::new();
    let url = format!("{}/youtube/v3/search?part=snippet&q=higgs+boson", server.base_url());
    c.bench_function("http_get_keepalive_round_trip", |b| {
        b.iter(|| {
            let resp = client.get(black_box(&url)).unwrap();
            black_box(resp.status);
        })
    });
    server.shutdown();
}

fn bench_framing(c: &mut Criterion) {
    let body = vec![b'x'; 8 * 1024];
    c.bench_function("http_response_encode_decode_8k", |b| {
        b.iter(|| {
            let resp = Response::json(StatusCode::OK, body.clone());
            let mut wire = Vec::with_capacity(10 * 1024);
            ytaudit_net::framing::write_response(&mut wire, &resp, true).unwrap();
            let parsed = ytaudit_net::framing::MessageReader::new(std::io::Cursor::new(wire))
                .read_response(&ytaudit_net::framing::FrameLimits::default(), false)
                .unwrap();
            black_box(parsed.body.len());
        })
    });
}

fn bench_search(c: &mut Criterion) {
    let platform = Platform::small(1.0);
    let now = Timestamp::from_ymd(2025, 2, 9).unwrap();
    let topic = Topic::Blm;
    let hourly = SearchParams {
        tokens: topic.spec().query_tokens(),
        published_after: Some(topic.spec().focal_date),
        published_before: Some(topic.spec().focal_date.add_hours(1)),
        order: SearchOrder::Date,
        channel_id: None,
    };
    c.bench_function("search_one_hour_bin", |b| {
        b.iter(|| black_box(platform.search(black_box(&hourly), now).video_ids.len()))
    });
    let full = SearchParams {
        published_after: Some(topic.window_start()),
        published_before: Some(topic.window_end()),
        ..hourly.clone()
    };
    c.bench_function("search_full_28day_window", |b| {
        b.iter(|| black_box(platform.search(black_box(&full), now).video_ids.len()))
    });
}

fn bench_corpus(c: &mut Criterion) {
    let mut group = c.benchmark_group("corpus");
    group.sample_size(10);
    group.bench_function("generate_scale_0.25", |b| {
        b.iter(|| {
            let corpus = Corpus::generate(CorpusConfig {
                scale: 0.25,
                ..CorpusConfig::default()
            });
            black_box(corpus.video_count());
        })
    });
    group.finish();
}

fn bench_stats(c: &mut Criterion) {
    // Deterministic synthetic data sized like the paper's regression.
    let n = 2_000;
    let k = 8;
    let x: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..k)
                .map(|j| ((i * 37 + j * 101) % 997) as f64 / 997.0 - 0.5)
                .collect()
        })
        .collect();
    let y: Vec<f64> = x
        .iter()
        .enumerate()
        .map(|(i, row)| row.iter().sum::<f64>() + ((i * 17) % 13) as f64 * 0.1)
        .collect();
    let names: Vec<&str> = (0..k).map(|_| "x").collect();
    c.bench_function("ols_hc1_2000x8", |b| {
        b.iter(|| {
            black_box(
                OlsFit::fit(&names, &x, &y, OlsOptions { robust_hc1: true })
                    .unwrap()
                    .r_squared,
            )
        })
    });

    let cats: Vec<usize> = y
        .iter()
        .map(|v| {
            if *v < -1.0 {
                0
            } else if *v < 1.0 {
                1
            } else {
                2
            }
        })
        .collect();
    let mut group = c.benchmark_group("ordinal");
    group.sample_size(20);
    group.bench_function("ordinal_logit_2000x8x3", |b| {
        b.iter(|| {
            black_box(
                OrdinalModel::logit()
                    .fit(&names, &x, &cats)
                    .unwrap()
                    .log_likelihood,
            )
        })
    });
    group.finish();

    let a: Vec<f64> = (0..672).map(|i| ((i * 31) % 113) as f64).collect();
    let bvec: Vec<f64> = (0..672).map(|i| ((i * 57) % 97) as f64).collect();
    c.bench_function("spearman_672", |b| {
        b.iter(|| black_box(spearman(&a, &bvec).unwrap().coefficient))
    });

    let set_a: HashSet<u32> = (0..700).collect();
    let set_b: HashSet<u32> = (350..1_050).collect();
    c.bench_function("jaccard_700", |b| {
        b.iter(|| black_box(jaccard(&set_a, &set_b)))
    });
}

criterion_group!(
    benches,
    bench_http,
    bench_framing,
    bench_search,
    bench_corpus,
    bench_stats
);
criterion_main!(benches);
