//! Criterion benchmarks for the experiment pipelines: how long each
//! table/figure analysis takes on a collected dataset, plus the cost of
//! one full snapshot collection. One benchmark per experiment family.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ytaudit_bench::quick_dataset;
use ytaudit_core::testutil::test_client;
use ytaudit_core::{Collector, CollectorConfig};
use ytaudit_types::Topic;

fn bench_collection(c: &mut Criterion) {
    let mut group = c.benchmark_group("collection");
    group.sample_size(10);
    group.bench_function("one_topic_snapshot_672_hourly_queries", |b| {
        let (client, _service) = test_client(0.5);
        let config = CollectorConfig {
            fetch_metadata: false,
            fetch_channels: false,
            ..CollectorConfig::quick(vec![Topic::Higgs], 1)
        };
        b.iter(|| {
            let dataset = Collector::new(&client, config.clone()).run().unwrap();
            black_box(dataset.snapshots.len());
        })
    });
    group.finish();
}

fn bench_analyses(c: &mut Criterion) {
    let dataset = quick_dataset();
    c.bench_function("table1_and_fig1_consistency", |b| {
        b.iter(|| {
            black_box(ytaudit_core::consistency::figure1(&dataset).len());
            black_box(ytaudit_core::consistency::table1(&dataset).len());
        })
    });
    c.bench_function("table2_fig2_randomization", |b| {
        b.iter(|| {
            black_box(ytaudit_core::randomization::table2(&dataset).len());
            black_box(ytaudit_core::randomization::figure2(&dataset).len());
        })
    });
    c.bench_function("fig3_markov", |b| {
        b.iter(|| black_box(ytaudit_core::attrition::figure3(&dataset).is_some()))
    });
    c.bench_function("table4_poolsize", |b| {
        b.iter(|| black_box(ytaudit_core::poolsize::table4(&dataset).len()))
    });
    c.bench_function("table5_comments", |b| {
        b.iter(|| black_box(ytaudit_core::comments::table5(&dataset).len()))
    });
    c.bench_function("fig4_idcheck", |b| {
        b.iter(|| black_box(ytaudit_core::idcheck::figure4(&dataset).len()))
    });

    let data = ytaudit_core::regression::build_regression_data(&dataset)
        .expect("regression data builds");
    let mut group = c.benchmark_group("regressions");
    group.sample_size(10);
    group.bench_function("build_design_matrix", |b| {
        b.iter(|| {
            black_box(
                ytaudit_core::regression::build_regression_data(&dataset)
                    .unwrap()
                    .x
                    .len(),
            )
        })
    });
    group.bench_function("table3_ordinal_logit", |b| {
        b.iter(|| black_box(ytaudit_core::regression::table3(&data).unwrap().log_likelihood))
    });
    group.bench_function("table6_ols_hc1", |b| {
        b.iter(|| black_box(ytaudit_core::regression::table6(&data).unwrap().r_squared))
    });
    group.bench_function("table7_ordinal_cloglog", |b| {
        b.iter(|| black_box(ytaudit_core::regression::table7(&data).unwrap().log_likelihood))
    });
    group.finish();
}

criterion_group!(benches, bench_collection, bench_analyses);
criterion_main!(benches);
