//! Criterion benchmarks for the snapshot store: record-log append
//! throughput, replay (reopen) cost on a populated store, slice loads,
//! and the content-addressed dedup ratio on overlapping snapshots.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::path::Path;
use ytaudit_core::dataset::{HourlyResult, TopicSnapshot};
use ytaudit_core::TopicCommit;
use ytaudit_store::log::RecordLog;
use ytaudit_store::{CollectionMeta, Store, TempDir};
use ytaudit_types::{Timestamp, Topic, VideoId};

const TOPICS: [Topic; 2] = [Topic::Higgs, Topic::Blm];
const SNAPSHOTS: usize = 8;
const HOURS: u32 = 24;
const IDS_PER_HOUR: u32 = 20;
/// Adjacent snapshots share 70% of their IDs — the overlap the paper
/// observes between consecutive collection dates, and the case the
/// content-addressed blob layer exists for.
const ID_STRIDE: u32 = (HOURS * IDS_PER_HOUR) * 3 / 10;

fn pair_data(topic_ix: u32, snapshot: usize) -> TopicSnapshot {
    let base = topic_ix * 1_000_000 + snapshot as u32 * ID_STRIDE;
    TopicSnapshot {
        hours: (0..HOURS)
            .map(|h| HourlyResult {
                hour: h,
                video_ids: (0..IDS_PER_HOUR)
                    .map(|v| VideoId::new(format!("vid-{:08}", base + h * IDS_PER_HOUR + v)))
                    .collect(),
                total_results: 40_000,
            })
            .collect(),
        meta_returned: Vec::new(),
    }
}

/// Builds a store shaped like a real multi-snapshot collection.
fn build_store(path: &Path) -> Store {
    let meta = CollectionMeta {
        topics: TOPICS.to_vec(),
        dates: (0..SNAPSHOTS as i64)
            .map(|i| Timestamp::from_ymd(2025, 2, 9).unwrap().add_days(5 * i))
            .collect(),
        hourly_bins: true,
        fetch_metadata: false,
        fetch_channels: false,
        fetch_comments: false,
        shard: None,
    };
    let mut store = Store::create(path).unwrap();
    store.begin_collection(meta.clone()).unwrap();
    for (snapshot, &date) in meta.dates.iter().enumerate() {
        for (topic_ix, &topic) in TOPICS.iter().enumerate() {
            store
                .commit_snapshot(&TopicCommit {
                    topic,
                    snapshot,
                    date,
                    data: &pair_data(topic_ix as u32, snapshot),
                    comments: None,
                    videos: &[],
                    quota_delta: 680,
                })
                .unwrap();
        }
    }
    store.finish_collection(&[], 0).unwrap();
    store
}

fn bench_append(c: &mut Criterion) {
    let dir = TempDir::new("bench-append");
    let payload = vec![0xA5u8; 256];
    let mut group = c.benchmark_group("store");
    group.sample_size(20);
    group.bench_function("log_append_1k_x_256b_then_sync", |b| {
        b.iter_batched(
            || {
                let path = dir.file("append.log");
                let _ = std::fs::remove_file(&path);
                let log = RecordLog::create(&path).unwrap();
                // Unlink while the handle is open so repeated setups
                // never accumulate on disk.
                let _ = std::fs::remove_file(&path);
                log
            },
            |mut log| {
                for _ in 0..1_000 {
                    log.append(black_box(&payload)).unwrap();
                }
                log.sync().unwrap();
                black_box(log.len())
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

fn bench_replay_and_load(c: &mut Criterion) {
    let dir = TempDir::new("bench-replay");
    let path = dir.file("audit.yts");
    let mut store = build_store(&path);

    let stats = store.stats();
    eprintln!(
        "store: {} blobs / {} refs, dedup ratio {:.2}x, {} bytes on disk",
        stats.blobs, stats.refs_total, stats.dedup_ratio(), stats.log_len
    );

    let mut group = c.benchmark_group("store");
    group.bench_function("replay_open_16_pairs", |b| {
        b.iter(|| {
            let reopened = Store::open(black_box(&path)).unwrap();
            black_box(reopened.committed_pairs())
        })
    });
    group.bench_function("load_one_hour_slice", |b| {
        b.iter(|| {
            let hour = store
                .load_hour(black_box(Topic::Blm), 3, 12)
                .unwrap()
                .expect("indexed hour");
            black_box(hour.video_ids.len())
        })
    });
    group.bench_function("load_one_topic_snapshot", |b| {
        b.iter(|| {
            let snap = store.load_topic_snapshot(black_box(Topic::Higgs), 5).unwrap();
            black_box(snap.hours.len())
        })
    });
    group.sample_size(20);
    group.bench_function("load_full_dataset", |b| {
        b.iter(|| black_box(store.load_dataset().unwrap().snapshots.len()))
    });
    group.finish();
}

criterion_group!(benches, bench_append, bench_replay_and_load);
criterion_main!(benches);
