//! Criterion benchmarks for the concurrent collection scheduler:
//! wall-clock of the same reduced plan through the sequential collector
//! and through worker pools of 2, 4, and 8, all against one shared
//! in-process platform. The interesting number is the ratio — the
//! dataset is identical in every row by construction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use ytaudit_core::testutil::test_client;
use ytaudit_core::{Collector, CollectorConfig, MemorySink};
use ytaudit_sched::{InProcessFactory, Scheduler, SchedulerConfig};
use ytaudit_types::Topic;

const SCALE: f64 = 0.05;
const KEY: &str = "research-key";

fn config() -> CollectorConfig {
    CollectorConfig::quick(vec![Topic::Higgs, Topic::Blm], 2)
}

fn bench_collect(c: &mut Criterion) {
    let (client, service) = test_client(SCALE);
    // Criterion repeats each run many times; lift the key's daily limit
    // so the ledger never 403s mid-benchmark.
    service.quota().register(KEY, u64::MAX / 2);
    let factory = InProcessFactory::new(Arc::clone(&service));

    let mut group = c.benchmark_group("sched");
    group.sample_size(10);

    group.bench_function("sequential", |b| {
        b.iter(|| {
            let dataset = Collector::new(&client, config()).run().unwrap();
            black_box(dataset.snapshots.len())
        })
    });

    for workers in [2usize, 4, 8] {
        group.bench_function(format!("workers_{workers}"), |b| {
            b.iter(|| {
                let scheduler =
                    Scheduler::new(&factory, config(), SchedulerConfig::new(workers, KEY));
                let mut sink = MemorySink::new();
                let report = scheduler.run(&mut sink).unwrap();
                assert!(report.completed());
                black_box(report.pairs_committed)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_collect);
criterion_main!(benches);
