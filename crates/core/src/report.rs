//! The combined analysis report and its canonical JSON rendering.
//!
//! [`AnalysisReport`] bundles every experiment the paper reports — Tables
//! 1–7 and Figures 1–4 — as produced by one [`crate::streaming::Analyzer`]
//! pass, whether that pass folded a materialized [`crate::AuditDataset`]
//! or tailed a store log pair by pair. The JSON writer is hand-rolled and
//! canonical: fixed key order, floats rendered with Rust's shortest
//! round-trip formatting, non-finite values as `null`. Two reports built
//! from the same folds therefore serialize to byte-identical strings,
//! which is what the batch/follow equivalence suite and the golden
//! fixtures compare.

use crate::attrition::Figure3;
use crate::comments::Table5Row;
use crate::consistency::{Table1Row, TopicConsistency};
use crate::idcheck::Figure4Topic;
use crate::poolsize::Table4Row;
use crate::randomization::{Figure2Topic, Table2Row};
use ytaudit_stats::ols::OlsFit;
use ytaudit_stats::ordinal::OrdinalFit;
use ytaudit_types::Topic;

/// The regression family (Tables 3, 6, 7), which shares one design
/// matrix. Individual fits can fail (e.g. a single-category outcome on a
/// tiny collection) without voiding the rest of the report.
#[derive(Debug, Clone)]
pub struct RegressionReport {
    /// Predictor names that survived the constant-column filter.
    pub names: Vec<String>,
    /// Observations (videos with complete metadata).
    pub n_observations: usize,
    /// Table 3: binned ordinal logit.
    pub table3: Result<OrdinalFit, String>,
    /// Table 6: OLS with HC1 robust standard errors.
    pub table6: Result<OlsFit, String>,
    /// Table 7: non-binned ordinal cloglog.
    pub table7: Result<OrdinalFit, String>,
}

/// Every experiment of the paper, computed from one analysis pass.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Topics analyzed, in plan order.
    pub topics: Vec<Topic>,
    /// Snapshots folded.
    pub n_snapshots: usize,
    /// Quota units the underlying collection spent.
    pub quota_units_spent: u64,
    /// Table 1: per-topic return-count summaries.
    pub table1: Vec<Table1Row>,
    /// Figure 1: rolling Jaccard series per topic.
    pub figure1: Vec<TopicConsistency>,
    /// Table 2: ceiling-effect test per topic.
    pub table2: Vec<Table2Row>,
    /// Figure 2: daily frequency overlays per topic.
    pub figure2: Vec<Figure2Topic>,
    /// Figure 3: the pooled second-order Markov chain.
    pub figure3: Option<Figure3>,
    /// Table 4: pool-size estimates per topic.
    pub table4: Vec<Table4Row>,
    /// Table 5: comment-endpoint stability per topic.
    pub table5: Vec<Table5Row>,
    /// Figure 4: `Videos: list` stability per topic.
    pub figure4: Vec<Figure4Topic>,
    /// Tables 3, 6, 7, or the reason the design matrix could not be
    /// assembled.
    pub regression: Result<RegressionReport, String>,
}

/// Canonical float rendering: shortest round-trip decimal for finite
/// values, `null` for NaN/±inf (JSON has no non-finite literals).
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's Display for f64 is the shortest string that parses back
        // to the same bits — deterministic across platforms.
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_opt_f64(out: &mut String, v: Option<f64>) {
    match v {
        Some(v) => push_f64(out, v),
        None => out.push_str("null"),
    }
}

/// Writes a `"key":` prefix (with leading comma unless first).
fn key(out: &mut String, first: &mut bool, name: &str) {
    if !*first {
        out.push(',');
    }
    *first = false;
    push_str(out, name);
    out.push(':');
}

fn push_f64_array(out: &mut String, values: &[f64]) {
    out.push('[');
    for (i, &v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_f64(out, v);
    }
    out.push(']');
}

fn push_str_array(out: &mut String, values: &[String]) {
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str(out, v);
    }
    out.push(']');
}

fn push_ordinal_fit(out: &mut String, fit: &Result<OrdinalFit, String>) {
    match fit {
        Err(e) => {
            out.push_str("{\"error\":");
            push_str(out, e);
            out.push('}');
        }
        Ok(f) => {
            out.push('{');
            let mut first = true;
            key(out, &mut first, "link");
            push_str(out, &format!("{:?}", f.link).to_lowercase());
            key(out, &mut first, "names");
            push_str_array(out, &f.names);
            key(out, &mut first, "thresholds");
            push_f64_array(out, &f.thresholds);
            key(out, &mut first, "coefficients");
            push_f64_array(out, &f.coefficients);
            key(out, &mut first, "std_errors");
            push_f64_array(out, &f.std_errors);
            key(out, &mut first, "z_values");
            push_f64_array(out, &f.z_values);
            key(out, &mut first, "p_values");
            push_f64_array(out, &f.p_values);
            key(out, &mut first, "ci_low");
            push_f64_array(out, &f.ci_low);
            key(out, &mut first, "ci_high");
            push_f64_array(out, &f.ci_high);
            key(out, &mut first, "log_likelihood");
            push_f64(out, f.log_likelihood);
            key(out, &mut first, "null_log_likelihood");
            push_f64(out, f.null_log_likelihood);
            key(out, &mut first, "lr_chi2");
            push_f64(out, f.lr_chi2);
            key(out, &mut first, "lr_df");
            out.push_str(&f.lr_df.to_string());
            key(out, &mut first, "lr_p");
            push_f64(out, f.lr_p);
            key(out, &mut first, "pseudo_r2");
            push_f64(out, f.pseudo_r2);
            key(out, &mut first, "n");
            out.push_str(&f.n.to_string());
            key(out, &mut first, "n_categories");
            out.push_str(&f.n_categories.to_string());
            out.push('}');
        }
    }
}

fn push_ols_fit(out: &mut String, fit: &Result<OlsFit, String>) {
    match fit {
        Err(e) => {
            out.push_str("{\"error\":");
            push_str(out, e);
            out.push('}');
        }
        Ok(f) => {
            out.push('{');
            let mut first = true;
            key(out, &mut first, "names");
            push_str_array(out, &f.names);
            key(out, &mut first, "coefficients");
            push_f64_array(out, &f.coefficients);
            key(out, &mut first, "std_errors");
            push_f64_array(out, &f.std_errors);
            key(out, &mut first, "t_values");
            push_f64_array(out, &f.t_values);
            key(out, &mut first, "p_values");
            push_f64_array(out, &f.p_values);
            key(out, &mut first, "ci_low");
            push_f64_array(out, &f.ci_low);
            key(out, &mut first, "ci_high");
            push_f64_array(out, &f.ci_high);
            key(out, &mut first, "r_squared");
            push_f64(out, f.r_squared);
            key(out, &mut first, "adj_r_squared");
            push_f64(out, f.adj_r_squared);
            key(out, &mut first, "f_statistic");
            push_f64(out, f.f_statistic);
            key(out, &mut first, "f_p_value");
            push_f64(out, f.f_p_value);
            key(out, &mut first, "df_resid");
            out.push_str(&f.df_resid.to_string());
            key(out, &mut first, "n");
            out.push_str(&f.n.to_string());
            out.push('}');
        }
    }
}

impl AnalysisReport {
    /// Serializes the report to canonical JSON (see the module docs for
    /// why this is hand-rolled rather than serde-driven).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(16 * 1024);
        out.push('{');
        let mut first = true;

        key(&mut out, &mut first, "topics");
        out.push('[');
        for (i, t) in self.topics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_str(&mut out, t.key());
        }
        out.push(']');

        key(&mut out, &mut first, "n_snapshots");
        out.push_str(&self.n_snapshots.to_string());
        key(&mut out, &mut first, "quota_units_spent");
        out.push_str(&self.quota_units_spent.to_string());

        key(&mut out, &mut first, "table1");
        out.push('[');
        for (i, r) in self.table1.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"topic\":");
            push_str(&mut out, r.topic.key());
            out.push_str(&format!(",\"min\":{},\"max\":{},\"mean\":", r.min, r.max));
            push_f64(&mut out, r.mean);
            out.push_str(",\"std\":");
            push_f64(&mut out, r.std);
            out.push('}');
        }
        out.push(']');

        key(&mut out, &mut first, "figure1");
        out.push('[');
        for (i, tc) in self.figure1.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"topic\":");
            push_str(&mut out, tc.topic.key());
            out.push_str(",\"points\":[");
            for (j, p) in tc.points.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"snapshot\":{},\"returned\":{},\"jaccard_prev\":",
                    p.snapshot, p.returned
                ));
                push_f64(&mut out, p.jaccard_prev);
                out.push_str(",\"jaccard_first\":");
                push_f64(&mut out, p.jaccard_first);
                out.push_str(&format!(
                    ",\"dropped_out\":{},\"dropped_in\":{}}}",
                    p.dropped_out, p.dropped_in
                ));
            }
            out.push_str("]}");
        }
        out.push(']');

        key(&mut out, &mut first, "table2");
        out.push('[');
        for (i, r) in self.table2.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"topic\":");
            push_str(&mut out, r.topic.key());
            out.push_str(",\"mean\":");
            push_f64(&mut out, r.mean);
            out.push_str(&format!(",\"min\":{},\"max\":{},\"std\":", r.min, r.max));
            push_f64(&mut out, r.std);
            out.push_str(",\"rho\":");
            push_f64(&mut out, r.rho);
            out.push_str(",\"rho_p\":");
            push_f64(&mut out, r.rho_p);
            out.push_str(&format!(",\"n_hours\":{}}}", r.n_hours));
        }
        out.push(']');

        key(&mut out, &mut first, "figure2");
        out.push('[');
        for (i, ft) in self.figure2.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"topic\":");
            push_str(&mut out, ft.topic.key());
            out.push_str(",\"days\":[");
            for (j, d) in ft.days.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"day\":{},\"first\":{},\"last\":{},\"avg\":",
                    d.day, d.first, d.last
                ));
                push_f64(&mut out, d.avg);
                out.push_str(",\"jaccard_first_last\":");
                push_f64(&mut out, d.jaccard_first_last);
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push(']');

        key(&mut out, &mut first, "figure3");
        match &self.figure3 {
            None => out.push_str("null"),
            Some(f3) => {
                out.push_str("{\"transitions\":[");
                for (i, row) in f3.transitions.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_f64_array(&mut out, row);
                }
                out.push_str("],\"counts\":[");
                for (i, c) in f3.counts.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&c.to_string());
                }
                out.push_str("]}");
            }
        }

        key(&mut out, &mut first, "table4");
        out.push('[');
        for (i, r) in self.table4.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"topic\":");
            push_str(&mut out, r.topic.key());
            out.push_str(&format!(
                ",\"min\":{},\"max\":{},\"mean\":{},\"mode\":{}}}",
                r.min, r.max, r.mean, r.mode
            ));
        }
        out.push(']');

        key(&mut out, &mut first, "table5");
        out.push('[');
        for (i, r) in self.table5.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"topic\":");
            push_str(&mut out, r.topic.key());
            out.push_str(",\"top_level_non_shared\":");
            push_opt_f64(&mut out, r.top_level_non_shared);
            out.push_str(",\"nested_non_shared\":");
            push_opt_f64(&mut out, r.nested_non_shared);
            out.push_str(",\"top_level_shared\":");
            push_opt_f64(&mut out, r.top_level_shared);
            out.push_str(",\"nested_shared\":");
            push_opt_f64(&mut out, r.nested_shared);
            out.push('}');
        }
        out.push(']');

        key(&mut out, &mut first, "figure4");
        out.push('[');
        for (i, ft) in self.figure4.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"topic\":");
            push_str(&mut out, ft.topic.key());
            for (name, series) in [
                ("\"vs_previous\":[", &ft.vs_previous),
                ("\"vs_first\":[", &ft.vs_first),
            ] {
                out.push(',');
                out.push_str(name);
                for (j, p) in series.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "{{\"comparison_id\":{},\"coverage_current\":",
                        p.comparison_id
                    ));
                    push_f64(&mut out, p.coverage_current);
                    out.push_str(",\"coverage_reference\":");
                    push_f64(&mut out, p.coverage_reference);
                    out.push_str(",\"jaccard_common\":");
                    push_f64(&mut out, p.jaccard_common);
                    out.push('}');
                }
                out.push(']');
            }
            out.push('}');
        }
        out.push(']');

        key(&mut out, &mut first, "regression");
        match &self.regression {
            Err(e) => {
                out.push_str("{\"error\":");
                push_str(&mut out, e);
                out.push('}');
            }
            Ok(r) => {
                out.push('{');
                let mut rf = true;
                key(&mut out, &mut rf, "names");
                push_str_array(&mut out, &r.names);
                key(&mut out, &mut rf, "n_observations");
                out.push_str(&r.n_observations.to_string());
                key(&mut out, &mut rf, "table3");
                push_ordinal_fit(&mut out, &r.table3);
                key(&mut out, &mut rf, "table6");
                push_ols_fit(&mut out, &r.table6);
                key(&mut out, &mut rf, "table7");
                push_ordinal_fit(&mut out, &r.table7);
                out.push('}');
            }
        }

        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_and_float_rendering() {
        let mut s = String::new();
        push_str(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");

        let mut s = String::new();
        push_f64(&mut s, 0.5);
        assert_eq!(s, "0.5");
        let mut s = String::new();
        push_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
        let mut s = String::new();
        push_f64(&mut s, f64::NEG_INFINITY);
        assert_eq!(s, "null");
    }

    #[test]
    fn empty_report_serializes_with_fixed_key_order() {
        let report = AnalysisReport {
            topics: vec![Topic::Higgs],
            n_snapshots: 0,
            quota_units_spent: 0,
            table1: Vec::new(),
            figure1: Vec::new(),
            table2: Vec::new(),
            figure2: Vec::new(),
            figure3: None,
            table4: Vec::new(),
            table5: Vec::new(),
            figure4: Vec::new(),
            regression: Err("empty dataset".to_string()),
        };
        let json = report.to_json();
        assert!(json.starts_with("{\"topics\":[\"higgs\"],\"n_snapshots\":0"));
        assert!(json.contains("\"figure3\":null"));
        assert!(json.ends_with("\"regression\":{\"error\":\"empty dataset\"}}"));
        // Canonical: serializing twice yields identical bytes.
        assert_eq!(json, report.to_json());
    }
}
