//! Ablation experiments: switch off one sampler mechanism at a time and
//! check which of the paper's signatures disappears.
//!
//! DESIGN.md encodes the paper's *inferred* mechanism into the simulator;
//! this module is the evidence that each mechanism is individually
//! load-bearing:
//!
//! | variant               | expected change |
//! |-----------------------|-----------------|
//! | `default`             | all signatures present |
//! | `frozen` (stability 1)| Figure 1 decay and Figure 3 churn vanish |
//! | `memoryless` (stab. 0)| adjacent-snapshot similarity collapses to the long-run floor — no rolling window |
//! | `no-gating`           | forced-zero hours disappear (Table 2's suppression) |
//! | `no-propensity`       | Table 3's popularity coefficients go to ~0 |

use crate::collect::{Collector, CollectorConfig};
use crate::dataset::AuditDataset;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use ytaudit_api::service::{ApiService, FaultConfig};
use ytaudit_client::{InProcessTransport, YouTubeClient};
use ytaudit_platform::{Corpus, CorpusConfig, Platform, SamplerConfig, SimClock};
use ytaudit_types::{Result, Topic};

/// Observables extracted from one ablated audit run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationOutcome {
    /// Variant label.
    pub variant: String,
    /// Final J(Sₜ, S₁) for the churniest topic collected.
    pub final_jaccard: f64,
    /// Mean adjacent-snapshot Jaccard.
    pub mean_adjacent_jaccard: f64,
    /// Share of window hours with zero returns at the first snapshot.
    pub zero_hour_share: f64,
    /// Videos returned in hours the default density gate suppresses —
    /// exactly 0 with gating on, positive with it off.
    pub gated_hour_returns: usize,
    /// The `likes` coefficient of the binned ordinal regression (NaN if
    /// the model could not be fit for this variant).
    pub likes_coefficient: f64,
    /// P(present | PP) from the attrition Markov chain (NaN if
    /// unobservable).
    pub p_stay_present: f64,
}

/// Builds an in-process client over a platform with the given sampler.
pub fn client_with_sampler(
    scale: f64,
    sampler: SamplerConfig,
) -> (YouTubeClient, Arc<ApiService>) {
    let platform = Platform::with_sampler(
        Corpus::generate(CorpusConfig {
            scale,
            ..CorpusConfig::default()
        }),
        sampler,
    );
    let service = Arc::new(
        ApiService::new(Arc::new(platform), SimClock::at_audit_start()).with_faults(
            FaultConfig {
                metadata_miss_rate: 0.0,
                backend_error_rate: 0.0,
            },
        ),
    );
    service.quota().register("ablate", u64::MAX / 2);
    let client = YouTubeClient::new(
        Box::new(InProcessTransport::new(Arc::clone(&service))),
        "ablate",
    );
    (client, service)
}

/// Runs one ablated audit (default: BLM + Higgs, `snapshots` snapshots at
/// `scale` corpus scale) and extracts the observables.
pub fn run_variant(
    label: &str,
    sampler: SamplerConfig,
    scale: f64,
    snapshots: usize,
) -> Result<AblationOutcome> {
    let (client, _service) = client_with_sampler(scale, sampler);
    let config = CollectorConfig::quick(vec![Topic::Capitol, Topic::Higgs], snapshots);
    let dataset = Collector::new(&client, config).run()?;
    Ok(extract(label, &dataset))
}

/// Extracts the ablation observables from a collected dataset.
pub fn extract(label: &str, dataset: &AuditDataset) -> AblationOutcome {
    let focus = dataset.topics.first().copied().unwrap_or(Topic::Capitol);
    let consistency = crate::consistency::topic_consistency(dataset, focus);
    let zero_hour_share = dataset
        .snapshots
        .first()
        .and_then(|s| s.topics.get(&focus))
        .map(|ts| {
            let non_zero = ts.hours.iter().filter(|h| !h.video_ids.is_empty()).count();
            1.0 - non_zero as f64 / 672.0
        })
        .unwrap_or(f64::NAN);
    // Returns landing in hours the default gate would suppress: exactly 0
    // under gating, positive without it.
    let default_gate = ytaudit_platform::SamplerConfig::default().gate_fraction;
    let density = ytaudit_platform::InterestDensity::for_topic(&focus.spec());
    let gated_hour_returns: usize = dataset
        .snapshots
        .iter()
        .filter_map(|s| s.topics.get(&focus))
        .flat_map(|ts| ts.hours.iter())
        .filter(|h| density.is_gated(h.hour as usize, default_gate))
        .map(|h| h.video_ids.len())
        .sum();
    let likes_coefficient = crate::regression::build_regression_data(dataset)
        .and_then(|data| crate::regression::table3(&data))
        .ok()
        .and_then(|fit| fit.coefficient("likes"))
        .unwrap_or(f64::NAN);
    let p_stay_present = crate::attrition::figure3(dataset)
        .map(|f| f.p_stay_present())
        .unwrap_or(f64::NAN);
    AblationOutcome {
        variant: label.to_string(),
        final_jaccard: consistency.final_jaccard_first(),
        mean_adjacent_jaccard: consistency.mean_jaccard_prev(),
        zero_hour_share,
        gated_hour_returns,
        likes_coefficient,
        p_stay_present,
    }
}

/// The standard variant suite.
pub fn standard_variants() -> Vec<(&'static str, SamplerConfig)> {
    vec![
        ("default", SamplerConfig::default()),
        ("frozen", SamplerConfig::default().frozen()),
        ("memoryless", SamplerConfig::default().memoryless()),
        ("no-gating", SamplerConfig::default().without_gating()),
        ("no-propensity", SamplerConfig::default().without_propensity()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frozen_sampler_kills_the_churn() {
        let default = run_variant("default", SamplerConfig::default(), 0.15, 3).unwrap();
        let frozen = run_variant("frozen", SamplerConfig::default().frozen(), 0.15, 3).unwrap();
        assert!(
            frozen.final_jaccard > 0.97,
            "frozen sampler must be ~deterministic: {}",
            frozen.final_jaccard
        );
        assert!(
            default.final_jaccard < frozen.final_jaccard,
            "default {} vs frozen {}",
            default.final_jaccard,
            frozen.final_jaccard
        );
    }

    #[test]
    fn memoryless_sampler_kills_the_rolling_window() {
        let default = run_variant("default", SamplerConfig::default(), 0.15, 4).unwrap();
        let memoryless =
            run_variant("memoryless", SamplerConfig::default().memoryless(), 0.15, 4).unwrap();
        // Without a static component the adjacent similarity drops well
        // below the default's.
        assert!(
            memoryless.mean_adjacent_jaccard < default.mean_adjacent_jaccard - 0.02,
            "memoryless {} vs default {}",
            memoryless.mean_adjacent_jaccard,
            default.mean_adjacent_jaccard
        );
    }

    #[test]
    fn disabling_gating_opens_quiet_hours() {
        let default = run_variant("default", SamplerConfig::default(), 0.5, 3).unwrap();
        let ungated =
            run_variant("no-gating", SamplerConfig::default().without_gating(), 0.5, 3).unwrap();
        assert_eq!(
            default.gated_hour_returns, 0,
            "gating must suppress low-density hours entirely"
        );
        assert!(
            ungated.gated_hour_returns > 0,
            "without gating the quiet hours return videos"
        );
    }
}
