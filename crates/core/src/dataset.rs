//! The collected audit dataset: what the paper's analyses consume.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};
use ytaudit_types::{ChannelId, Timestamp, Topic, VideoId};

/// One hourly query's result within a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HourlyResult {
    /// Hour index within the topic's 28-day window (0..672).
    pub hour: u32,
    /// Video IDs returned for this hour, in API order.
    pub video_ids: Vec<VideoId>,
    /// The query's `pageInfo.totalResults` pool estimate.
    pub total_results: u64,
}

/// One topic's data within one snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct TopicSnapshot {
    /// Per-hour results (sparse: only hours that were queried).
    pub hours: Vec<HourlyResult>,
    /// Video IDs for which `Videos: list` returned metadata immediately
    /// after this snapshot's search (Figure 4's coverage numerator).
    pub meta_returned: Vec<VideoId>,
}

impl TopicSnapshot {
    /// The union of all hourly returns.
    pub fn id_set(&self) -> HashSet<VideoId> {
        self.hours
            .iter()
            .flat_map(|h| h.video_ids.iter().cloned())
            .collect()
    }

    /// Total videos returned across hours (set size; hourly bins are
    /// disjoint by construction).
    pub fn total_returned(&self) -> usize {
        self.hours.iter().map(|h| h.video_ids.len()).sum()
    }

    /// Per-hour counts aligned to `hour` indices.
    pub fn hourly_counts(&self) -> Vec<(u32, usize)> {
        self.hours
            .iter()
            .map(|h| (h.hour, h.video_ids.len()))
            .collect()
    }
}

/// Parsed video metadata (from `Videos: list`), in native numeric types.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoInfo {
    /// The video.
    pub id: VideoId,
    /// Uploading channel.
    pub channel_id: ChannelId,
    /// Upload instant.
    pub published_at: Timestamp,
    /// Duration in seconds.
    pub duration_secs: u64,
    /// Whether the video is standard definition (vs HD).
    pub is_sd: bool,
    /// View count.
    pub views: u64,
    /// Like count.
    pub likes: u64,
    /// Comment count.
    pub comments: u64,
}

/// Parsed channel metadata (from `Channels: list`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelInfo {
    /// The channel.
    pub id: ChannelId,
    /// Creation instant.
    pub published_at: Timestamp,
    /// Total channel views.
    pub views: u64,
    /// Subscriber count.
    pub subscribers: u64,
    /// Number of uploads.
    pub video_count: u64,
}

/// One comment as the comment analyses need it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommentRecord {
    /// Comment ID.
    pub id: String,
    /// The video it is on.
    pub video_id: VideoId,
    /// Whether it is a nested reply.
    pub is_reply: bool,
    /// Posting instant.
    pub published_at: Timestamp,
}

/// A comment fetch that failed for one video. The quota was still spent;
/// recording the failure keeps attrition accounting honest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommentFetchError {
    /// The video whose comment thread could not be fetched.
    pub video_id: VideoId,
    /// The API error, as reported by the client.
    pub error: String,
}

/// Comments fetched at one snapshot (the paper only does first and last).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct CommentsSnapshot {
    /// All comments fetched, across the snapshot's videos.
    pub comments: Vec<CommentRecord>,
    /// Per-video fetch failures (comments disabled, video deleted, …).
    #[serde(default)]
    pub fetch_errors: Vec<CommentFetchError>,
}

/// One full snapshot: every topic collected at one date.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// The collection date.
    pub date: Timestamp,
    /// Per-topic results.
    pub topics: BTreeMap<Topic, TopicSnapshot>,
    /// Comments per topic, when collected at this snapshot.
    #[serde(default)]
    pub comments: BTreeMap<Topic, CommentsSnapshot>,
}

/// The full audit dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditDataset {
    /// Topics collected.
    pub topics: Vec<Topic>,
    /// Snapshots in schedule order.
    pub snapshots: Vec<Snapshot>,
    /// Merged video metadata across snapshots (first successful fetch
    /// wins; misses are per-snapshot, tracked in `meta_returned`).
    pub video_meta: HashMap<VideoId, VideoInfo>,
    /// Channel metadata fetched at the end of the collection.
    pub channel_meta: HashMap<ChannelId, ChannelInfo>,
    /// Quota units the collection spent (client-side bookkeeping).
    pub quota_units_spent: u64,
}

impl AuditDataset {
    /// The per-topic ID set of snapshot `t`.
    pub fn id_set(&self, topic: Topic, snapshot: usize) -> HashSet<VideoId> {
        self.snapshots
            .get(snapshot)
            .and_then(|s| s.topics.get(&topic))
            .map(TopicSnapshot::id_set)
            .unwrap_or_default()
    }

    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// Whether there are no snapshots.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// All videos ever returned for `topic`, with the number of snapshots
    /// each appeared in (the regression's dependent variable).
    pub fn appearance_frequencies(&self, topic: Topic) -> HashMap<VideoId, u32> {
        let mut freq: HashMap<VideoId, u32> = HashMap::new();
        for snapshot in &self.snapshots {
            if let Some(ts) = snapshot.topics.get(&topic) {
                for id in ts.id_set() {
                    *freq.entry(id).or_insert(0) += 1;
                }
            }
        }
        freq
    }

    /// Presence matrix for `topic`: for every video ever seen, a boolean
    /// per snapshot (the attrition analysis input).
    pub fn presence_sequences(&self, topic: Topic) -> Vec<(VideoId, Vec<bool>)> {
        let sets: Vec<HashSet<VideoId>> = (0..self.len())
            .map(|i| self.id_set(topic, i))
            .collect();
        let mut all: Vec<VideoId> = sets
            .iter()
            .flat_map(|s| s.iter().cloned())
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        all.sort();
        all.into_iter()
            .map(|id| {
                let presence = sets.iter().map(|s| s.contains(&id)).collect();
                (id, presence)
            })
            .collect()
    }

    /// Serializes to JSON (for caching expensive collections).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Deserializes from JSON.
    pub fn from_json(text: &str) -> Result<AuditDataset, serde_json::Error> {
        serde_json::from_str(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vid(n: u64) -> VideoId {
        VideoId::mint(1, n)
    }

    fn snapshot(date_day: i64, ids: &[u64]) -> Snapshot {
        let mut topics = BTreeMap::new();
        topics.insert(
            Topic::Higgs,
            TopicSnapshot {
                hours: vec![HourlyResult {
                    hour: 0,
                    video_ids: ids.iter().map(|&n| vid(n)).collect(),
                    total_results: 40_000,
                }],
                meta_returned: Vec::new(),
            },
        );
        Snapshot {
            date: Timestamp::from_ymd(2025, 2, 9).unwrap().add_days(date_day),
            topics,
            comments: BTreeMap::new(),
        }
    }

    fn dataset() -> AuditDataset {
        AuditDataset {
            topics: vec![Topic::Higgs],
            snapshots: vec![
                snapshot(0, &[1, 2, 3]),
                snapshot(5, &[2, 3, 4]),
                snapshot(10, &[2, 4]),
            ],
            video_meta: HashMap::new(),
            channel_meta: HashMap::new(),
            quota_units_spent: 300,
        }
    }

    #[test]
    fn id_sets_and_frequencies() {
        let ds = dataset();
        assert_eq!(ds.id_set(Topic::Higgs, 0).len(), 3);
        assert_eq!(ds.id_set(Topic::Higgs, 9).len(), 0);
        let freq = ds.appearance_frequencies(Topic::Higgs);
        assert_eq!(freq[&vid(2)], 3);
        assert_eq!(freq[&vid(1)], 1);
        assert_eq!(freq[&vid(4)], 2);
        assert_eq!(freq.len(), 4);
    }

    #[test]
    fn presence_sequences_cover_all_videos() {
        let ds = dataset();
        let seqs = ds.presence_sequences(Topic::Higgs);
        assert_eq!(seqs.len(), 4);
        let by_id: HashMap<_, _> = seqs.into_iter().collect();
        assert_eq!(by_id[&vid(1)], vec![true, false, false]);
        assert_eq!(by_id[&vid(2)], vec![true, true, true]);
        assert_eq!(by_id[&vid(4)], vec![false, true, true]);
    }

    #[test]
    fn json_round_trip() {
        let ds = dataset();
        let json = ds.to_json().unwrap();
        let back = AuditDataset::from_json(&json).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn hourly_counts_and_totals() {
        let ds = dataset();
        let ts = &ds.snapshots[0].topics[&Topic::Higgs];
        assert_eq!(ts.total_returned(), 3);
        assert_eq!(ts.hourly_counts(), vec![(0, 3)]);
    }
}
