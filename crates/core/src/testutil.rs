//! Shared harness helpers: spin up a platform + service + client without
//! boilerplate. Used by unit tests, integration tests, examples, and the
//! bench binaries.

use std::sync::Arc;
use ytaudit_api::service::{ApiService, FaultConfig};
use ytaudit_client::{InProcessTransport, YouTubeClient};
use ytaudit_platform::{Corpus, CorpusConfig, Platform, SimClock};

/// A ready-to-collect in-process client over a reduced-scale platform,
/// with a researcher-sized quota. `scale` multiplies the corpus size
/// (1.0 = full audit scale).
pub fn test_client(scale: f64) -> (YouTubeClient, Arc<ApiService>) {
    client_for(Platform::small(scale), FaultConfig::default())
}

/// Same, but with explicit fault injection.
pub fn test_client_with_faults(scale: f64, faults: FaultConfig) -> (YouTubeClient, Arc<ApiService>) {
    client_for(Platform::small(scale), faults)
}

/// A full-scale platform client (used by the bench binaries that
/// regenerate the paper's tables).
pub fn full_scale_client() -> (YouTubeClient, Arc<ApiService>) {
    client_for(Platform::with_default_corpus(), FaultConfig::default())
}

/// A full-scale client over a platform with a custom seed (for
/// seed-sensitivity checks).
pub fn full_scale_client_with_seed(seed: u64) -> (YouTubeClient, Arc<ApiService>) {
    test_client_with_seed(1.0, seed)
}

/// A reduced-scale client with a custom seed.
pub fn test_client_with_seed(scale: f64, seed: u64) -> (YouTubeClient, Arc<ApiService>) {
    let platform = Platform::new(Corpus::generate(CorpusConfig {
        seed,
        scale,
        ..CorpusConfig::default()
    }));
    client_for(platform, FaultConfig::default())
}

fn client_for(platform: Platform, faults: FaultConfig) -> (YouTubeClient, Arc<ApiService>) {
    let service = Arc::new(
        ApiService::new(Arc::new(platform), SimClock::at_audit_start()).with_faults(faults),
    );
    service
        .quota()
        .register("research-key", ytaudit_api::RESEARCHER_DAILY_QUOTA * 1_000);
    let client = YouTubeClient::new(
        Box::new(InProcessTransport::new(Arc::clone(&service))),
        "research-key",
    );
    (client, service)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ytaudit_client::SearchQuery;
    use ytaudit_types::Topic;

    #[test]
    fn harness_is_ready_to_query() {
        let (client, service) = test_client(0.1);
        client.set_sim_time(Some(service.clock().now()));
        let page = client
            .search_page(&SearchQuery::for_topic(Topic::Higgs).max_results(10), None)
            .unwrap();
        assert!(page.page_info.total_results > 1_000);
    }
}
