//! Temporal-consistency analysis: Figure 1 and Table 1.
//!
//! For each topic and snapshot t, computes the Jaccard similarity of the
//! returned video-ID set against the previous snapshot and the very first
//! one, plus the two one-sided set differences (the "error bars" that rule
//! out deletions as the explanation), and the per-snapshot return-count
//! summary of Table 1.

use crate::ckpt;
use crate::dataset::AuditDataset;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use ytaudit_stats::descriptive::Description;
use ytaudit_stats::sets::OverlapAccumulator;
use ytaudit_stats::Moments;
use ytaudit_types::{Topic, VideoId};

/// One snapshot's similarity measurements (one point of Figure 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConsistencyPoint {
    /// Snapshot index (0-based).
    pub snapshot: usize,
    /// Videos returned at this snapshot.
    pub returned: usize,
    /// J(Sₜ, Sₜ₋₁); 1.0 for the first snapshot.
    pub jaccard_prev: f64,
    /// J(Sₜ, S₁).
    pub jaccard_first: f64,
    /// |Sₜ₋₁ − Sₜ| — dropped out since the previous snapshot.
    pub dropped_out: usize,
    /// |Sₜ − Sₜ₋₁| — dropped in since the previous snapshot. Non-zero
    /// values here are the paper's key evidence: a purely historical query
    /// can *gain* videos, which deletions cannot explain.
    pub dropped_in: usize,
}

/// Figure 1 for one topic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopicConsistency {
    /// The topic.
    pub topic: Topic,
    /// One point per snapshot.
    pub points: Vec<ConsistencyPoint>,
}

impl TopicConsistency {
    /// The final J(Sₜ, S₁) — the headline decay number.
    pub fn final_jaccard_first(&self) -> f64 {
        self.points.last().map_or(1.0, |p| p.jaccard_first)
    }

    /// Mean adjacent-snapshot similarity.
    pub fn mean_jaccard_prev(&self) -> f64 {
        let tail: Vec<f64> = self.points.iter().skip(1).map(|p| p.jaccard_prev).collect();
        if tail.is_empty() {
            1.0
        } else {
            tail.iter().sum::<f64>() / tail.len() as f64
        }
    }
}

/// A Table 1 row: per-topic return-count summary across snapshots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// The topic.
    pub topic: Topic,
    /// Minimum videos returned in any snapshot.
    pub min: usize,
    /// Maximum.
    pub max: usize,
    /// Mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std: f64,
}

/// Streaming consistency accumulator for one topic: folds each
/// snapshot's video-ID set as it arrives and yields both the Figure-1
/// series and the Table-1 summary. The batch entry points below fold a
/// materialized dataset through this same accumulator, so there is
/// exactly one numeric code path.
#[derive(Debug, Clone)]
pub struct ConsistencyAccumulator {
    topic: Topic,
    overlap: OverlapAccumulator<VideoId>,
    counts: Moments,
    points: Vec<ConsistencyPoint>,
}

impl ConsistencyAccumulator {
    /// An empty accumulator for `topic`.
    pub fn new(topic: Topic) -> ConsistencyAccumulator {
        ConsistencyAccumulator {
            topic,
            overlap: OverlapAccumulator::new(),
            counts: Moments::new(),
            points: Vec::new(),
        }
    }

    /// Folds the next snapshot's returned ID set.
    pub fn fold(&mut self, set: HashSet<VideoId>) {
        let returned = set.len();
        self.counts.fold(returned as f64);
        let step = self.overlap.fold(set);
        self.points.push(ConsistencyPoint {
            snapshot: self.points.len(),
            returned,
            jaccard_prev: step.jaccard_prev,
            jaccard_first: step.jaccard_first,
            dropped_out: step.dropped_out,
            dropped_in: step.dropped_in,
        });
    }

    /// The Figure-1 series folded so far.
    pub fn figure1_topic(&self) -> TopicConsistency {
        TopicConsistency {
            topic: self.topic,
            points: self.points.clone(),
        }
    }

    /// The Table-1 summary folded so far (zeroed row before any fold,
    /// matching the batch `describe(..).unwrap_or(zeroed)` behavior).
    pub fn table1_row(&self) -> Table1Row {
        let d = self.counts.finish().unwrap_or(Description {
            n: 0,
            min: 0.0,
            max: 0.0,
            mean: 0.0,
            std: 0.0,
        });
        Table1Row {
            topic: self.topic,
            min: d.min as usize,
            max: d.max as usize,
            mean: d.mean,
            std: d.std,
        }
    }

    /// Serializes accumulator state for a checkpoint.
    pub fn encode_state(&self, w: &mut ckpt::Writer) {
        encode_id_set(w, self.overlap.first());
        encode_id_set(w, self.overlap.last());
        w.put_u64(self.overlap.folds());
        let (n, mean, m2, min, max) = self.counts.parts();
        w.put_u64(n);
        w.put_f64(mean);
        w.put_f64(m2);
        w.put_f64(min);
        w.put_f64(max);
        w.put_u64(self.points.len() as u64);
        for p in &self.points {
            w.put_u64(p.snapshot as u64);
            w.put_u64(p.returned as u64);
            w.put_f64(p.jaccard_prev);
            w.put_f64(p.jaccard_first);
            w.put_u64(p.dropped_out as u64);
            w.put_u64(p.dropped_in as u64);
        }
    }

    /// Rebuilds accumulator state from a checkpoint.
    pub fn decode_state(topic: Topic, r: &mut ckpt::Reader) -> ckpt::Result<ConsistencyAccumulator> {
        let first = decode_id_set(r)?;
        let prev = decode_id_set(r)?;
        let folds = r.u64()?;
        let n = r.u64()?;
        let mean = r.f64()?;
        let m2 = r.f64()?;
        let min = r.f64()?;
        let max = r.f64()?;
        let n_points = r.u64()?;
        let mut points = Vec::with_capacity(n_points as usize);
        for _ in 0..n_points {
            points.push(ConsistencyPoint {
                snapshot: r.u64()? as usize,
                returned: r.u64()? as usize,
                jaccard_prev: r.f64()?,
                jaccard_first: r.f64()?,
                dropped_out: r.u64()? as usize,
                dropped_in: r.u64()? as usize,
            });
        }
        Ok(ConsistencyAccumulator {
            topic,
            overlap: OverlapAccumulator::from_parts(first, prev, folds),
            counts: Moments::from_parts(n, mean, m2, min, max),
            points,
        })
    }
}

/// Writes a video-ID set sorted, so identical states produce identical
/// checkpoint bytes regardless of hash order.
pub(crate) fn encode_id_set(w: &mut ckpt::Writer, set: &HashSet<VideoId>) {
    let mut ids: Vec<&VideoId> = set.iter().collect();
    ids.sort();
    w.put_u64(ids.len() as u64);
    for id in ids {
        w.put_str(id.as_str());
    }
}

/// Reads a video-ID set written by [`encode_id_set`].
pub(crate) fn decode_id_set(r: &mut ckpt::Reader) -> ckpt::Result<HashSet<VideoId>> {
    let n = r.u64()?;
    let mut set = HashSet::with_capacity(n as usize);
    for _ in 0..n {
        set.insert(VideoId::new(r.str()?));
    }
    Ok(set)
}

/// Computes Figure 1's series for one topic by folding every snapshot
/// through a [`ConsistencyAccumulator`].
pub fn topic_consistency(dataset: &AuditDataset, topic: Topic) -> TopicConsistency {
    let mut acc = ConsistencyAccumulator::new(topic);
    for i in 0..dataset.len() {
        acc.fold(dataset.id_set(topic, i));
    }
    acc.figure1_topic()
}

/// Computes Figure 1 for every topic in the dataset.
pub fn figure1(dataset: &AuditDataset) -> Vec<TopicConsistency> {
    dataset
        .topics
        .iter()
        .map(|&t| topic_consistency(dataset, t))
        .collect()
}

/// Computes Table 1 by folding every snapshot through a
/// [`ConsistencyAccumulator`].
pub fn table1(dataset: &AuditDataset) -> Vec<Table1Row> {
    dataset
        .topics
        .iter()
        .map(|&topic| {
            let mut acc = ConsistencyAccumulator::new(topic);
            for i in 0..dataset.len() {
                acc.fold(dataset.id_set(topic, i));
            }
            acc.table1_row()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{Collector, CollectorConfig};
    use crate::testutil::test_client;

    fn quick_dataset(snapshots: usize) -> AuditDataset {
        let (client, _service) = test_client(0.2);
        let config = CollectorConfig {
            fetch_metadata: false,
            fetch_channels: false,
            ..CollectorConfig::quick(vec![Topic::Blm, Topic::Higgs], snapshots)
        };
        Collector::new(&client, config).run().unwrap()
    }

    #[test]
    fn jaccard_series_start_at_one_and_decay() {
        let dataset = quick_dataset(4);
        for tc in figure1(&dataset) {
            assert_eq!(tc.points[0].jaccard_first, 1.0);
            assert_eq!(tc.points[0].jaccard_prev, 1.0);
            assert_eq!(tc.points.len(), 4);
            for p in &tc.points {
                assert!((0.0..=1.0).contains(&p.jaccard_first));
                assert!((0.0..=1.0).contains(&p.jaccard_prev));
            }
            // Some decay must occur by the last snapshot for BLM (the
            // churniest topic).
            if tc.topic == Topic::Blm {
                assert!(tc.final_jaccard_first() < 1.0);
            }
        }
    }

    #[test]
    fn drop_ins_prove_its_not_deletions() {
        let dataset = quick_dataset(4);
        let blm = topic_consistency(&dataset, Topic::Blm);
        let total_dropped_in: usize = blm.points.iter().map(|p| p.dropped_in).sum();
        assert!(
            total_dropped_in > 0,
            "historical queries must gain videos across snapshots"
        );
    }

    #[test]
    fn higgs_more_consistent_than_blm() {
        let dataset = quick_dataset(4);
        let higgs = topic_consistency(&dataset, Topic::Higgs);
        let blm = topic_consistency(&dataset, Topic::Blm);
        assert!(
            higgs.final_jaccard_first() > blm.final_jaccard_first(),
            "higgs {} vs blm {}",
            higgs.final_jaccard_first(),
            blm.final_jaccard_first()
        );
    }

    #[test]
    fn accumulator_checkpoint_round_trips() {
        let dataset = quick_dataset(3);
        let mut acc = ConsistencyAccumulator::new(Topic::Blm);
        for i in 0..dataset.len() {
            acc.fold(dataset.id_set(Topic::Blm, i));
        }
        let mut w = ckpt::Writer::bare();
        acc.encode_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = ckpt::Reader::bare(&bytes);
        let restored = ConsistencyAccumulator::decode_state(Topic::Blm, &mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(restored.figure1_topic(), acc.figure1_topic());
        assert_eq!(restored.table1_row(), acc.table1_row());
        // Folding after restore matches folding straight through.
        let extra = dataset.id_set(Topic::Blm, 0);
        let mut direct = acc.clone();
        let mut resumed = restored;
        direct.fold(extra.clone());
        resumed.fold(extra);
        assert_eq!(direct.figure1_topic(), resumed.figure1_topic());
    }

    #[test]
    fn table1_summaries_are_sane() {
        let dataset = quick_dataset(3);
        let rows = table1(&dataset);
        assert_eq!(rows.len(), 2);
        for row in rows {
            assert!(row.min <= row.mean as usize + 1);
            assert!(row.max >= row.mean as usize);
            assert!(row.std >= 0.0);
            assert!(row.mean > 0.0, "{}", row.topic);
        }
    }
}
