//! Temporal-consistency analysis: Figure 1 and Table 1.
//!
//! For each topic and snapshot t, computes the Jaccard similarity of the
//! returned video-ID set against the previous snapshot and the very first
//! one, plus the two one-sided set differences (the "error bars" that rule
//! out deletions as the explanation), and the per-snapshot return-count
//! summary of Table 1.

use crate::dataset::AuditDataset;
use serde::{Deserialize, Serialize};
use ytaudit_stats::descriptive::describe;
use ytaudit_stats::sets::{jaccard, set_differences};
use ytaudit_types::Topic;

/// One snapshot's similarity measurements (one point of Figure 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConsistencyPoint {
    /// Snapshot index (0-based).
    pub snapshot: usize,
    /// Videos returned at this snapshot.
    pub returned: usize,
    /// J(Sₜ, Sₜ₋₁); 1.0 for the first snapshot.
    pub jaccard_prev: f64,
    /// J(Sₜ, S₁).
    pub jaccard_first: f64,
    /// |Sₜ₋₁ − Sₜ| — dropped out since the previous snapshot.
    pub dropped_out: usize,
    /// |Sₜ − Sₜ₋₁| — dropped in since the previous snapshot. Non-zero
    /// values here are the paper's key evidence: a purely historical query
    /// can *gain* videos, which deletions cannot explain.
    pub dropped_in: usize,
}

/// Figure 1 for one topic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopicConsistency {
    /// The topic.
    pub topic: Topic,
    /// One point per snapshot.
    pub points: Vec<ConsistencyPoint>,
}

impl TopicConsistency {
    /// The final J(Sₜ, S₁) — the headline decay number.
    pub fn final_jaccard_first(&self) -> f64 {
        self.points.last().map_or(1.0, |p| p.jaccard_first)
    }

    /// Mean adjacent-snapshot similarity.
    pub fn mean_jaccard_prev(&self) -> f64 {
        let tail: Vec<f64> = self.points.iter().skip(1).map(|p| p.jaccard_prev).collect();
        if tail.is_empty() {
            1.0
        } else {
            tail.iter().sum::<f64>() / tail.len() as f64
        }
    }
}

/// A Table 1 row: per-topic return-count summary across snapshots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// The topic.
    pub topic: Topic,
    /// Minimum videos returned in any snapshot.
    pub min: usize,
    /// Maximum.
    pub max: usize,
    /// Mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std: f64,
}

/// Computes Figure 1's series for one topic.
pub fn topic_consistency(dataset: &AuditDataset, topic: Topic) -> TopicConsistency {
    let sets: Vec<_> = (0..dataset.len())
        .map(|i| dataset.id_set(topic, i))
        .collect();
    let points = sets
        .iter()
        .enumerate()
        .map(|(i, set)| {
            let (jaccard_prev, dropped_out, dropped_in) = if i == 0 {
                (1.0, 0, 0)
            } else {
                let (out, into) = set_differences(&sets[i - 1], set);
                (jaccard(set, &sets[i - 1]), out, into)
            };
            ConsistencyPoint {
                snapshot: i,
                returned: set.len(),
                jaccard_prev,
                // ytlint: allow(indexing) — the closure only runs while
                // iterating sets, so sets is non-empty here
                jaccard_first: jaccard(set, &sets[0]),
                dropped_out,
                dropped_in,
            }
        })
        .collect();
    TopicConsistency { topic, points }
}

/// Computes Figure 1 for every topic in the dataset.
pub fn figure1(dataset: &AuditDataset) -> Vec<TopicConsistency> {
    dataset
        .topics
        .iter()
        .map(|&t| topic_consistency(dataset, t))
        .collect()
}

/// Computes Table 1.
pub fn table1(dataset: &AuditDataset) -> Vec<Table1Row> {
    dataset
        .topics
        .iter()
        .map(|&topic| {
            let counts: Vec<f64> = (0..dataset.len())
                .map(|i| dataset.id_set(topic, i).len() as f64)
                .collect();
            let d = describe(&counts).unwrap_or(ytaudit_stats::Description {
                n: 0,
                min: 0.0,
                max: 0.0,
                mean: 0.0,
                std: 0.0,
            });
            Table1Row {
                topic,
                min: d.min as usize,
                max: d.max as usize,
                mean: d.mean,
                std: d.std,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{Collector, CollectorConfig};
    use crate::testutil::test_client;

    fn quick_dataset(snapshots: usize) -> AuditDataset {
        let (client, _service) = test_client(0.2);
        let config = CollectorConfig {
            fetch_metadata: false,
            fetch_channels: false,
            ..CollectorConfig::quick(vec![Topic::Blm, Topic::Higgs], snapshots)
        };
        Collector::new(&client, config).run().unwrap()
    }

    #[test]
    fn jaccard_series_start_at_one_and_decay() {
        let dataset = quick_dataset(4);
        for tc in figure1(&dataset) {
            assert_eq!(tc.points[0].jaccard_first, 1.0);
            assert_eq!(tc.points[0].jaccard_prev, 1.0);
            assert_eq!(tc.points.len(), 4);
            for p in &tc.points {
                assert!((0.0..=1.0).contains(&p.jaccard_first));
                assert!((0.0..=1.0).contains(&p.jaccard_prev));
            }
            // Some decay must occur by the last snapshot for BLM (the
            // churniest topic).
            if tc.topic == Topic::Blm {
                assert!(tc.final_jaccard_first() < 1.0);
            }
        }
    }

    #[test]
    fn drop_ins_prove_its_not_deletions() {
        let dataset = quick_dataset(4);
        let blm = topic_consistency(&dataset, Topic::Blm);
        let total_dropped_in: usize = blm.points.iter().map(|p| p.dropped_in).sum();
        assert!(
            total_dropped_in > 0,
            "historical queries must gain videos across snapshots"
        );
    }

    #[test]
    fn higgs_more_consistent_than_blm() {
        let dataset = quick_dataset(4);
        let higgs = topic_consistency(&dataset, Topic::Higgs);
        let blm = topic_consistency(&dataset, Topic::Blm);
        assert!(
            higgs.final_jaccard_first() > blm.final_jaccard_first(),
            "higgs {} vs blm {}",
            higgs.final_jaccard_first(),
            blm.final_jaccard_first()
        );
    }

    #[test]
    fn table1_summaries_are_sane() {
        let dataset = quick_dataset(3);
        let rows = table1(&dataset);
        assert_eq!(rows.len(), 2);
        for row in rows {
            assert!(row.min <= row.mean as usize + 1);
            assert!(row.max >= row.mean as usize);
            assert!(row.std >= 0.0);
            assert!(row.mean > 0.0, "{}", row.topic);
        }
    }
}
