//! Comment-endpoint consistency: Table 5 (Appendix B.2).
//!
//! Compares the comment sets fetched at the first and last snapshots, for
//! top-level (TL) and nested (N) comments, both across each snapshot's
//! full video set (NS — differences here are inherited from the *search*
//! endpoint's video churn) and across videos shared by both snapshots
//! (S — differences here would indict the comment endpoints themselves;
//! the paper finds none). Comments are restricted to those posted within
//! three weeks of the topic's focal date.

use crate::dataset::{AuditDataset, CommentsSnapshot};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use ytaudit_stats::sets::jaccard;
use ytaudit_types::{Timestamp, Topic, VideoId};

/// A Table 5 row. `None` entries are the paper's "N/A" (no nested
/// comments exist — Higgs predates threaded replies).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table5Row {
    /// The topic.
    pub topic: Topic,
    /// Top-level comments, full (non-shared) video sets.
    pub top_level_non_shared: Option<f64>,
    /// Nested comments, full video sets.
    pub nested_non_shared: Option<f64>,
    /// Top-level comments, shared videos only.
    pub top_level_shared: Option<f64>,
    /// Nested comments, shared videos only.
    pub nested_shared: Option<f64>,
}

fn comment_sets(
    snapshot: &CommentsSnapshot,
    cutoff: Timestamp,
    videos: Option<&HashSet<VideoId>>,
) -> (HashSet<String>, HashSet<String>) {
    let mut top_level = HashSet::new();
    let mut nested = HashSet::new();
    for record in &snapshot.comments {
        if record.published_at > cutoff {
            continue;
        }
        if let Some(allowed) = videos {
            if !allowed.contains(&record.video_id) {
                continue;
            }
        }
        if record.is_reply {
            nested.insert(record.id.clone());
        } else {
            top_level.insert(record.id.clone());
        }
    }
    (top_level, nested)
}

fn maybe_jaccard(a: &HashSet<String>, b: &HashSet<String>) -> Option<f64> {
    if a.is_empty() && b.is_empty() {
        None // the paper's N/A
    } else {
        Some(jaccard(a, b))
    }
}

/// Computes one topic's Table 5 row, or `None` if comments were not
/// collected at both the first and last snapshots.
pub fn table5_row(dataset: &AuditDataset, topic: Topic) -> Option<Table5Row> {
    let first = dataset.snapshots.first()?;
    let last = dataset.snapshots.last()?;
    let first_comments = first.comments.get(&topic)?;
    let last_comments = last.comments.get(&topic)?;
    // D-day + 3 weeks cutoff (one week past the video-window end).
    let cutoff = topic.spec().focal_date.add_days(21);
    let first_videos = dataset.id_set(topic, 0);
    let last_videos = dataset.id_set(topic, dataset.len() - 1);
    let shared: HashSet<VideoId> = first_videos
        .intersection(&last_videos)
        .cloned()
        .collect();

    let (tl_first, n_first) = comment_sets(first_comments, cutoff, None);
    let (tl_last, n_last) = comment_sets(last_comments, cutoff, None);
    let (tl_first_s, n_first_s) = comment_sets(first_comments, cutoff, Some(&shared));
    let (tl_last_s, n_last_s) = comment_sets(last_comments, cutoff, Some(&shared));

    Some(Table5Row {
        topic,
        top_level_non_shared: maybe_jaccard(&tl_first, &tl_last),
        nested_non_shared: maybe_jaccard(&n_first, &n_last),
        top_level_shared: maybe_jaccard(&tl_first_s, &tl_last_s),
        nested_shared: maybe_jaccard(&n_first_s, &n_last_s),
    })
}

/// Computes Table 5 for every topic with comment collections.
pub fn table5(dataset: &AuditDataset) -> Vec<Table5Row> {
    dataset
        .topics
        .iter()
        .filter_map(|&t| table5_row(dataset, t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{Collector, CollectorConfig};
    use crate::testutil::test_client;

    fn dataset_with_comments(topics: Vec<Topic>) -> AuditDataset {
        let (client, _service) = test_client(0.12);
        let mut config = CollectorConfig::quick(topics, 3);
        config.fetch_comments = true;
        config.fetch_metadata = false;
        config.fetch_channels = false;
        Collector::new(&client, config).run().unwrap()
    }

    #[test]
    fn shared_video_comments_are_nearly_identical() {
        let dataset = dataset_with_comments(vec![Topic::Brexit]);
        let row = table5_row(&dataset, Topic::Brexit).expect("comments collected");
        // The comment endpoints are stable: on shared videos the first and
        // last fetches agree almost exactly (paper: ≥ .97).
        let tl_s = row.top_level_shared.expect("brexit has top-level comments");
        assert!(tl_s > 0.95, "TL,S = {tl_s}");
        if let Some(n_s) = row.nested_shared {
            assert!(n_s > 0.95, "N,S = {n_s}");
        }
        // Full-set comparisons inherit the search endpoint's video churn,
        // so they sit at or below the shared-video similarity.
        let tl_ns = row.top_level_non_shared.expect("non-shared TL");
        assert!(tl_ns <= tl_s + 1e-9, "TL,NS {tl_ns} vs TL,S {tl_s}");
    }

    #[test]
    fn higgs_nested_is_na() {
        let dataset = dataset_with_comments(vec![Topic::Higgs]);
        let row = table5_row(&dataset, Topic::Higgs).expect("comments collected");
        assert!(row.nested_non_shared.is_none(), "Higgs nested must be N/A");
        assert!(row.nested_shared.is_none());
        assert!(row.top_level_non_shared.is_some());
    }

    #[test]
    fn missing_comment_collections_yield_none() {
        let (client, _service) = test_client(0.05);
        let config = CollectorConfig {
            fetch_comments: false,
            fetch_metadata: false,
            fetch_channels: false,
            ..CollectorConfig::quick(vec![Topic::Higgs], 2)
        };
        let dataset = Collector::new(&client, config).run().unwrap();
        assert!(table5_row(&dataset, Topic::Higgs).is_none());
        assert!(table5(&dataset).is_empty());
    }
}
