//! Comment-endpoint consistency: Table 5 (Appendix B.2).
//!
//! Compares the comment sets fetched at the first and last snapshots, for
//! top-level (TL) and nested (N) comments, both across each snapshot's
//! full video set (NS — differences here are inherited from the *search*
//! endpoint's video churn) and across videos shared by both snapshots
//! (S — differences here would indict the comment endpoints themselves;
//! the paper finds none). Comments are restricted to those posted within
//! three weeks of the topic's focal date.

use crate::ckpt;
use crate::consistency::{decode_id_set, encode_id_set};
use crate::dataset::{AuditDataset, CommentFetchError, CommentRecord, CommentsSnapshot};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use ytaudit_stats::sets::jaccard;
use ytaudit_types::{Timestamp, Topic, VideoId};

/// A Table 5 row. `None` entries are the paper's "N/A" (no nested
/// comments exist — Higgs predates threaded replies).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table5Row {
    /// The topic.
    pub topic: Topic,
    /// Top-level comments, full (non-shared) video sets.
    pub top_level_non_shared: Option<f64>,
    /// Nested comments, full video sets.
    pub nested_non_shared: Option<f64>,
    /// Top-level comments, shared videos only.
    pub top_level_shared: Option<f64>,
    /// Nested comments, shared videos only.
    pub nested_shared: Option<f64>,
}

fn comment_sets(
    snapshot: &CommentsSnapshot,
    cutoff: Timestamp,
    videos: Option<&HashSet<VideoId>>,
) -> (HashSet<String>, HashSet<String>) {
    let mut top_level = HashSet::new();
    let mut nested = HashSet::new();
    for record in &snapshot.comments {
        if record.published_at > cutoff {
            continue;
        }
        if let Some(allowed) = videos {
            if !allowed.contains(&record.video_id) {
                continue;
            }
        }
        if record.is_reply {
            nested.insert(record.id.clone());
        } else {
            top_level.insert(record.id.clone());
        }
    }
    (top_level, nested)
}

fn maybe_jaccard(a: &HashSet<String>, b: &HashSet<String>) -> Option<f64> {
    if a.is_empty() && b.is_empty() {
        None // the paper's N/A
    } else {
        Some(jaccard(a, b))
    }
}

/// Streaming Table-5 accumulator for one topic. Table 5 only compares
/// the first and last snapshots, so the state is exactly those two
/// snapshots' comment collections and video-ID sets; everything in
/// between folds through without being retained.
#[derive(Debug, Clone)]
pub struct Table5Accumulator {
    topic: Topic,
    first: Option<(Option<CommentsSnapshot>, HashSet<VideoId>)>,
    last: Option<(Option<CommentsSnapshot>, HashSet<VideoId>)>,
}

impl Table5Accumulator {
    /// An empty accumulator for `topic`.
    pub fn new(topic: Topic) -> Table5Accumulator {
        Table5Accumulator {
            topic,
            first: None,
            last: None,
        }
    }

    /// Folds the next snapshot's comment collection (if any) and
    /// returned video-ID set.
    pub fn fold(&mut self, comments: Option<&CommentsSnapshot>, id_set: HashSet<VideoId>) {
        let entry = (comments.cloned(), id_set);
        if self.first.is_none() {
            self.first = Some(entry.clone());
        }
        self.last = Some(entry);
    }

    /// Finalizes into a [`Table5Row`], or `None` if comments were not
    /// collected at both the first and last folded snapshots.
    pub fn finish(&self) -> Option<Table5Row> {
        let (first_comments, first_videos) = self.first.as_ref()?;
        let (last_comments, last_videos) = self.last.as_ref()?;
        let first_comments = first_comments.as_ref()?;
        let last_comments = last_comments.as_ref()?;
        // D-day + 3 weeks cutoff (one week past the video-window end).
        let cutoff = self.topic.spec().focal_date.add_days(21);
        let shared: HashSet<VideoId> = first_videos
            .intersection(last_videos)
            .cloned()
            .collect();

        let (tl_first, n_first) = comment_sets(first_comments, cutoff, None);
        let (tl_last, n_last) = comment_sets(last_comments, cutoff, None);
        let (tl_first_s, n_first_s) = comment_sets(first_comments, cutoff, Some(&shared));
        let (tl_last_s, n_last_s) = comment_sets(last_comments, cutoff, Some(&shared));

        Some(Table5Row {
            topic: self.topic,
            top_level_non_shared: maybe_jaccard(&tl_first, &tl_last),
            nested_non_shared: maybe_jaccard(&n_first, &n_last),
            top_level_shared: maybe_jaccard(&tl_first_s, &tl_last_s),
            nested_shared: maybe_jaccard(&n_first_s, &n_last_s),
        })
    }

    /// Serializes accumulator state for a checkpoint.
    pub fn encode_state(&self, w: &mut ckpt::Writer) {
        for slot in [&self.first, &self.last] {
            match slot {
                None => w.put_u8(0),
                Some((comments, videos)) => {
                    w.put_u8(1);
                    match comments {
                        None => w.put_u8(0),
                        Some(cs) => {
                            w.put_u8(1);
                            encode_comments_snapshot(w, cs);
                        }
                    }
                    encode_id_set(w, videos);
                }
            }
        }
    }

    /// Rebuilds accumulator state from a checkpoint.
    pub fn decode_state(topic: Topic, r: &mut ckpt::Reader) -> ckpt::Result<Table5Accumulator> {
        let mut slots = [None, None];
        for slot in &mut slots {
            if r.u8()? == 1 {
                let comments = if r.u8()? == 1 {
                    Some(decode_comments_snapshot(r)?)
                } else {
                    None
                };
                let videos = decode_id_set(r)?;
                *slot = Some((comments, videos));
            }
        }
        let [first, last] = slots;
        Ok(Table5Accumulator { topic, first, last })
    }
}

fn encode_comments_snapshot(w: &mut ckpt::Writer, cs: &CommentsSnapshot) {
    w.put_u64(cs.comments.len() as u64);
    for c in &cs.comments {
        w.put_str(&c.id);
        w.put_str(c.video_id.as_str());
        w.put_bool(c.is_reply);
        w.put_i64(c.published_at.0);
    }
    w.put_u64(cs.fetch_errors.len() as u64);
    for e in &cs.fetch_errors {
        w.put_str(e.video_id.as_str());
        w.put_str(&e.error);
    }
}

fn decode_comments_snapshot(r: &mut ckpt::Reader) -> ckpt::Result<CommentsSnapshot> {
    let n = r.u64()?;
    let mut comments = Vec::with_capacity(n as usize);
    for _ in 0..n {
        comments.push(CommentRecord {
            id: r.str()?,
            video_id: VideoId::new(r.str()?),
            is_reply: r.bool()?,
            published_at: Timestamp(r.i64()?),
        });
    }
    let n_err = r.u64()?;
    let mut fetch_errors = Vec::with_capacity(n_err as usize);
    for _ in 0..n_err {
        fetch_errors.push(CommentFetchError {
            video_id: VideoId::new(r.str()?),
            error: r.str()?,
        });
    }
    Ok(CommentsSnapshot {
        comments,
        fetch_errors,
    })
}

/// Computes one topic's Table 5 row by folding every snapshot through a
/// [`Table5Accumulator`], or `None` if comments were not collected at
/// both the first and last snapshots.
pub fn table5_row(dataset: &AuditDataset, topic: Topic) -> Option<Table5Row> {
    let mut acc = Table5Accumulator::new(topic);
    for (i, snapshot) in dataset.snapshots.iter().enumerate() {
        acc.fold(snapshot.comments.get(&topic), dataset.id_set(topic, i));
    }
    acc.finish()
}

/// Computes Table 5 for every topic with comment collections.
pub fn table5(dataset: &AuditDataset) -> Vec<Table5Row> {
    dataset
        .topics
        .iter()
        .filter_map(|&t| table5_row(dataset, t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{Collector, CollectorConfig};
    use crate::testutil::test_client;

    fn dataset_with_comments(topics: Vec<Topic>) -> AuditDataset {
        let (client, _service) = test_client(0.12);
        let mut config = CollectorConfig::quick(topics, 3);
        config.fetch_comments = true;
        config.fetch_metadata = false;
        config.fetch_channels = false;
        Collector::new(&client, config).run().unwrap()
    }

    #[test]
    fn shared_video_comments_are_nearly_identical() {
        let dataset = dataset_with_comments(vec![Topic::Brexit]);
        let row = table5_row(&dataset, Topic::Brexit).expect("comments collected");
        // The comment endpoints are stable: on shared videos the first and
        // last fetches agree almost exactly (paper: ≥ .97).
        let tl_s = row.top_level_shared.expect("brexit has top-level comments");
        assert!(tl_s > 0.95, "TL,S = {tl_s}");
        if let Some(n_s) = row.nested_shared {
            assert!(n_s > 0.95, "N,S = {n_s}");
        }
        // Full-set comparisons inherit the search endpoint's video churn,
        // so they sit at or below the shared-video similarity.
        let tl_ns = row.top_level_non_shared.expect("non-shared TL");
        assert!(tl_ns <= tl_s + 1e-9, "TL,NS {tl_ns} vs TL,S {tl_s}");
    }

    #[test]
    fn higgs_nested_is_na() {
        let dataset = dataset_with_comments(vec![Topic::Higgs]);
        let row = table5_row(&dataset, Topic::Higgs).expect("comments collected");
        assert!(row.nested_non_shared.is_none(), "Higgs nested must be N/A");
        assert!(row.nested_shared.is_none());
        assert!(row.top_level_non_shared.is_some());
    }

    #[test]
    fn missing_comment_collections_yield_none() {
        let (client, _service) = test_client(0.05);
        let config = CollectorConfig {
            fetch_comments: false,
            fetch_metadata: false,
            fetch_channels: false,
            ..CollectorConfig::quick(vec![Topic::Higgs], 2)
        };
        let dataset = Collector::new(&client, config).run().unwrap();
        assert!(table5_row(&dataset, Topic::Higgs).is_none());
        assert!(table5(&dataset).is_empty());
    }
}
