//! ID-based endpoint stability: Figure 4 (Appendix B.1).
//!
//! After each snapshot's search, the collector queries `Videos: list` for
//! the returned IDs. This analysis computes, per comparison pair (each
//! snapshot t vs t−1, and vs the first snapshot), the percentage of
//! *common* search-returned videos for which metadata came back in both
//! fetches, and the Jaccard similarity of the metadata-returned sets
//! restricted to those common videos. High, patternless values indicate
//! the gaps are random errors, not systematic API behaviour — the paper's
//! conclusion.

use crate::ckpt;
use crate::consistency::{decode_id_set, encode_id_set};
use crate::dataset::AuditDataset;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use ytaudit_stats::sets::jaccard;
use ytaudit_types::{Topic, VideoId};

/// One comparison of Figure 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure4Point {
    /// The later snapshot of the pair (1-based "comparison ID", matching
    /// the paper's axis).
    pub comparison_id: usize,
    /// Percentage of common search-returned videos with metadata at the
    /// later snapshot.
    pub coverage_current: f64,
    /// Percentage with metadata at the earlier snapshot.
    pub coverage_reference: f64,
    /// Jaccard of the two metadata-returned sets, restricted to common
    /// search-returned videos.
    pub jaccard_common: f64,
}

/// Figure 4 for one topic: successive-pair and versus-first series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure4Topic {
    /// The topic.
    pub topic: Topic,
    /// Snapshot t vs t−1.
    pub vs_previous: Vec<Figure4Point>,
    /// Snapshot t vs the first snapshot.
    pub vs_first: Vec<Figure4Point>,
}

fn meta_set(dataset: &AuditDataset, topic: Topic, snapshot: usize) -> HashSet<VideoId> {
    dataset
        .snapshots
        .get(snapshot)
        .and_then(|s| s.topics.get(&topic))
        .map(|ts| ts.meta_returned.iter().cloned().collect())
        .unwrap_or_default()
}

/// One Figure-4 comparison between a current and a reference snapshot's
/// search-returned and metadata-returned sets — the single numeric code
/// path shared by the batch and streaming analyses.
pub(crate) fn compare_sets(
    search_current: &HashSet<VideoId>,
    meta_current: &HashSet<VideoId>,
    search_reference: &HashSet<VideoId>,
    meta_reference: &HashSet<VideoId>,
    comparison_id: usize,
) -> Figure4Point {
    let common: HashSet<VideoId> = search_current
        .intersection(search_reference)
        .cloned()
        .collect();
    let meta_current: HashSet<VideoId> = meta_current.intersection(&common).cloned().collect();
    let meta_reference: HashSet<VideoId> =
        meta_reference.intersection(&common).cloned().collect();
    let denom = common.len().max(1) as f64;
    Figure4Point {
        comparison_id,
        coverage_current: 100.0 * meta_current.len() as f64 / denom,
        coverage_reference: 100.0 * meta_reference.len() as f64 / denom,
        jaccard_common: jaccard(&meta_current, &meta_reference),
    }
}

/// Streaming Figure-4 accumulator for one topic: retains the first and
/// most recent snapshots' (search, metadata) set pairs and emits both
/// comparison series as folds arrive.
#[derive(Debug, Clone)]
pub struct Figure4Accumulator {
    topic: Topic,
    folds: usize,
    first: Option<(HashSet<VideoId>, HashSet<VideoId>)>,
    prev: Option<(HashSet<VideoId>, HashSet<VideoId>)>,
    vs_previous: Vec<Figure4Point>,
    vs_first: Vec<Figure4Point>,
}

impl Figure4Accumulator {
    /// An empty accumulator for `topic`.
    pub fn new(topic: Topic) -> Figure4Accumulator {
        Figure4Accumulator {
            topic,
            folds: 0,
            first: None,
            prev: None,
            vs_previous: Vec::new(),
            vs_first: Vec::new(),
        }
    }

    /// Folds the next snapshot's search-returned and metadata-returned
    /// ID sets.
    pub fn fold(&mut self, search: HashSet<VideoId>, meta: HashSet<VideoId>) {
        let t = self.folds;
        if let (Some((prev_search, prev_meta)), Some((first_search, first_meta))) =
            (&self.prev, &self.first)
        {
            self.vs_previous
                .push(compare_sets(&search, &meta, prev_search, prev_meta, t));
            self.vs_first
                .push(compare_sets(&search, &meta, first_search, first_meta, t));
        }
        if self.first.is_none() {
            self.first = Some((search.clone(), meta.clone()));
        }
        self.prev = Some((search, meta));
        self.folds += 1;
    }

    /// The Figure-4 series folded so far.
    pub fn finish(&self) -> Figure4Topic {
        Figure4Topic {
            topic: self.topic,
            vs_previous: self.vs_previous.clone(),
            vs_first: self.vs_first.clone(),
        }
    }

    /// Serializes accumulator state for a checkpoint.
    pub fn encode_state(&self, w: &mut ckpt::Writer) {
        w.put_u64(self.folds as u64);
        for slot in [&self.first, &self.prev] {
            match slot {
                None => w.put_u8(0),
                Some((search, meta)) => {
                    w.put_u8(1);
                    encode_id_set(w, search);
                    encode_id_set(w, meta);
                }
            }
        }
        for series in [&self.vs_previous, &self.vs_first] {
            w.put_u64(series.len() as u64);
            for p in series {
                w.put_u64(p.comparison_id as u64);
                w.put_f64(p.coverage_current);
                w.put_f64(p.coverage_reference);
                w.put_f64(p.jaccard_common);
            }
        }
    }

    /// Rebuilds accumulator state from a checkpoint.
    pub fn decode_state(topic: Topic, r: &mut ckpt::Reader) -> ckpt::Result<Figure4Accumulator> {
        let folds = r.u64()? as usize;
        let mut slots = [None, None];
        for slot in &mut slots {
            if r.u8()? == 1 {
                let search = decode_id_set(r)?;
                let meta = decode_id_set(r)?;
                *slot = Some((search, meta));
            }
        }
        let [first, prev] = slots;
        let mut series = [Vec::new(), Vec::new()];
        for s in &mut series {
            let n = r.u64()?;
            s.reserve(n as usize);
            for _ in 0..n {
                s.push(Figure4Point {
                    comparison_id: r.u64()? as usize,
                    coverage_current: r.f64()?,
                    coverage_reference: r.f64()?,
                    jaccard_common: r.f64()?,
                });
            }
        }
        let [vs_previous, vs_first] = series;
        Ok(Figure4Accumulator {
            topic,
            folds,
            first,
            prev,
            vs_previous,
            vs_first,
        })
    }
}

/// Computes Figure 4 for one topic by folding every snapshot through a
/// [`Figure4Accumulator`].
pub fn figure4_topic(dataset: &AuditDataset, topic: Topic) -> Figure4Topic {
    let mut acc = Figure4Accumulator::new(topic);
    for t in 0..dataset.len() {
        acc.fold(dataset.id_set(topic, t), meta_set(dataset, topic, t));
    }
    acc.finish()
}

/// Computes Figure 4 for every topic.
pub fn figure4(dataset: &AuditDataset) -> Vec<Figure4Topic> {
    dataset
        .topics
        .iter()
        .map(|&t| figure4_topic(dataset, t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{Collector, CollectorConfig};
    use crate::testutil::test_client;

    #[test]
    fn metadata_coverage_is_high_and_gaps_unsystematic() {
        let (client, _service) = test_client(0.25);
        let config = CollectorConfig {
            fetch_channels: false,
            ..CollectorConfig::quick(vec![Topic::Grammys], 4)
        };
        let dataset = Collector::new(&client, config).run().unwrap();
        let fig = figure4_topic(&dataset, Topic::Grammys);
        assert_eq!(fig.vs_previous.len(), 3);
        assert_eq!(fig.vs_first.len(), 3);
        for point in fig.vs_previous.iter().chain(&fig.vs_first) {
            // ID-based lookups are near-complete (default miss rate 1.2%).
            assert!(point.coverage_current > 90.0, "{point:?}");
            assert!(point.coverage_reference > 90.0, "{point:?}");
            // And the metadata sets on common videos are near-identical.
            assert!(point.jaccard_common > 0.9, "{point:?}");
        }
    }

    #[test]
    fn videos_endpoint_is_far_more_stable_than_search() {
        let (client, _service) = test_client(0.25);
        let config = CollectorConfig {
            fetch_channels: false,
            ..CollectorConfig::quick(vec![Topic::Blm], 4)
        };
        let dataset = Collector::new(&client, config).run().unwrap();
        let fig = figure4_topic(&dataset, Topic::Blm);
        let consistency = crate::consistency::topic_consistency(&dataset, Topic::Blm);
        // Common-video metadata similarity stays far above the raw search
        // similarity for the churniest topic.
        let min_meta_j = fig
            .vs_first
            .iter()
            .map(|p| p.jaccard_common)
            .fold(f64::INFINITY, f64::min);
        let final_search_j = consistency.final_jaccard_first();
        assert!(
            min_meta_j > final_search_j,
            "meta {min_meta_j} vs search {final_search_j}"
        );
    }
}
