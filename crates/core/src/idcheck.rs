//! ID-based endpoint stability: Figure 4 (Appendix B.1).
//!
//! After each snapshot's search, the collector queries `Videos: list` for
//! the returned IDs. This analysis computes, per comparison pair (each
//! snapshot t vs t−1, and vs the first snapshot), the percentage of
//! *common* search-returned videos for which metadata came back in both
//! fetches, and the Jaccard similarity of the metadata-returned sets
//! restricted to those common videos. High, patternless values indicate
//! the gaps are random errors, not systematic API behaviour — the paper's
//! conclusion.

use crate::dataset::AuditDataset;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use ytaudit_stats::sets::jaccard;
use ytaudit_types::{Topic, VideoId};

/// One comparison of Figure 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure4Point {
    /// The later snapshot of the pair (1-based "comparison ID", matching
    /// the paper's axis).
    pub comparison_id: usize,
    /// Percentage of common search-returned videos with metadata at the
    /// later snapshot.
    pub coverage_current: f64,
    /// Percentage with metadata at the earlier snapshot.
    pub coverage_reference: f64,
    /// Jaccard of the two metadata-returned sets, restricted to common
    /// search-returned videos.
    pub jaccard_common: f64,
}

/// Figure 4 for one topic: successive-pair and versus-first series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure4Topic {
    /// The topic.
    pub topic: Topic,
    /// Snapshot t vs t−1.
    pub vs_previous: Vec<Figure4Point>,
    /// Snapshot t vs the first snapshot.
    pub vs_first: Vec<Figure4Point>,
}

fn meta_set(dataset: &AuditDataset, topic: Topic, snapshot: usize) -> HashSet<VideoId> {
    dataset
        .snapshots
        .get(snapshot)
        .and_then(|s| s.topics.get(&topic))
        .map(|ts| ts.meta_returned.iter().cloned().collect())
        .unwrap_or_default()
}

fn compare(
    dataset: &AuditDataset,
    topic: Topic,
    current: usize,
    reference: usize,
) -> Figure4Point {
    let search_current = dataset.id_set(topic, current);
    let search_reference = dataset.id_set(topic, reference);
    let common: HashSet<VideoId> = search_current
        .intersection(&search_reference)
        .cloned()
        .collect();
    let meta_current: HashSet<VideoId> = meta_set(dataset, topic, current)
        .intersection(&common)
        .cloned()
        .collect();
    let meta_reference: HashSet<VideoId> = meta_set(dataset, topic, reference)
        .intersection(&common)
        .cloned()
        .collect();
    let denom = common.len().max(1) as f64;
    Figure4Point {
        comparison_id: current,
        coverage_current: 100.0 * meta_current.len() as f64 / denom,
        coverage_reference: 100.0 * meta_reference.len() as f64 / denom,
        jaccard_common: jaccard(&meta_current, &meta_reference),
    }
}

/// Computes Figure 4 for one topic.
pub fn figure4_topic(dataset: &AuditDataset, topic: Topic) -> Figure4Topic {
    let n = dataset.len();
    let vs_previous = (1..n).map(|t| compare(dataset, topic, t, t - 1)).collect();
    let vs_first = (1..n).map(|t| compare(dataset, topic, t, 0)).collect();
    Figure4Topic {
        topic,
        vs_previous,
        vs_first,
    }
}

/// Computes Figure 4 for every topic.
pub fn figure4(dataset: &AuditDataset) -> Vec<Figure4Topic> {
    dataset
        .topics
        .iter()
        .map(|&t| figure4_topic(dataset, t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{Collector, CollectorConfig};
    use crate::testutil::test_client;

    #[test]
    fn metadata_coverage_is_high_and_gaps_unsystematic() {
        let (client, _service) = test_client(0.25);
        let config = CollectorConfig {
            fetch_channels: false,
            ..CollectorConfig::quick(vec![Topic::Grammys], 4)
        };
        let dataset = Collector::new(&client, config).run().unwrap();
        let fig = figure4_topic(&dataset, Topic::Grammys);
        assert_eq!(fig.vs_previous.len(), 3);
        assert_eq!(fig.vs_first.len(), 3);
        for point in fig.vs_previous.iter().chain(&fig.vs_first) {
            // ID-based lookups are near-complete (default miss rate 1.2%).
            assert!(point.coverage_current > 90.0, "{point:?}");
            assert!(point.coverage_reference > 90.0, "{point:?}");
            // And the metadata sets on common videos are near-identical.
            assert!(point.jaccard_common > 0.9, "{point:?}");
        }
    }

    #[test]
    fn videos_endpoint_is_far_more_stable_than_search() {
        let (client, _service) = test_client(0.25);
        let config = CollectorConfig {
            fetch_channels: false,
            ..CollectorConfig::quick(vec![Topic::Blm], 4)
        };
        let dataset = Collector::new(&client, config).run().unwrap();
        let fig = figure4_topic(&dataset, Topic::Blm);
        let consistency = crate::consistency::topic_consistency(&dataset, Topic::Blm);
        // Common-video metadata similarity stays far above the raw search
        // similarity for the churniest topic.
        let min_meta_j = fig
            .vs_first
            .iter()
            .map(|p| p.jaccard_common)
            .fold(f64::INFINITY, f64::min);
        let final_search_j = consistency.final_jaccard_first();
        assert!(
            min_meta_j > final_search_j,
            "meta {min_meta_j} vs search {final_search_j}"
        );
    }
}
