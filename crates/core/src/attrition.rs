//! Attrition analysis: Figure 3's second-order Markov chain over video
//! presence/absence across snapshots.
//!
//! The paper pools, across all topics and videos, every sliding window of
//! three consecutive snapshots and estimates P(next state | two most
//! recent states). The signature finding: same-state histories strongly
//! predict staying (drop-in/drop-out happens in persistent stretches — a
//! "rolling window"), which is exactly what the platform's value-noise
//! sampler produces.

use crate::dataset::AuditDataset;
use serde::{Deserialize, Serialize};
use ytaudit_stats::markov::{MarkovChain2, State2};
use ytaudit_types::Topic;

/// Figure 3: the 4×2 transition table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure3 {
    /// Rows in PP, PA, AP, AA order; each row is
    /// `[P(next = Present), P(next = Absent)]`.
    pub transitions: [[f64; 2]; 4],
    /// Transition counts per history state (same order), for weighting.
    pub counts: [u64; 4],
}

impl Figure3 {
    /// P(Present | PP) — the "stays in" probability.
    pub fn p_stay_present(&self) -> f64 {
        // ytlint: allow(indexing) — transitions is a fixed [[f64; 2]; 4]
        self.transitions[0][0]
    }

    /// P(Absent | AA) — the "stays out" probability.
    pub fn p_stay_absent(&self) -> f64 {
        // ytlint: allow(indexing) — transitions is a fixed [[f64; 2]; 4]
        self.transitions[3][1]
    }
}

/// Builds the pooled chain from a dataset. Presence sequences shorter
/// than three snapshots contribute nothing.
pub fn markov_chain(dataset: &AuditDataset, topics: &[Topic]) -> MarkovChain2 {
    let mut chain = MarkovChain2::new();
    for &topic in topics {
        for (_, presence) in dataset.presence_sequences(topic) {
            chain.add_sequence(&presence);
        }
    }
    chain
}

/// Computes Figure 3 over all topics in the dataset.
pub fn figure3(dataset: &AuditDataset) -> Option<Figure3> {
    let chain = markov_chain(dataset, &dataset.topics);
    let transitions = chain.transition_matrix().ok()?;
    let mut counts = [0u64; 4];
    for (i, &state) in State2::ALL.iter().enumerate() {
        counts[i] = chain.total(state);
    }
    Some(Figure3 {
        transitions,
        counts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{Collector, CollectorConfig};
    use crate::testutil::test_client;

    #[test]
    fn rolling_window_signature_emerges() {
        let (client, _service) = test_client(0.3);
        let config = CollectorConfig {
            fetch_metadata: false,
            fetch_channels: false,
            ..CollectorConfig::quick(vec![Topic::Blm, Topic::Grammys], 5)
        };
        let dataset = Collector::new(&client, config).run().unwrap();
        let fig3 = figure3(&dataset).expect("enough transitions observed");
        // Rows are probability distributions.
        for row in fig3.transitions {
            assert!((row[0] + row[1] - 1.0).abs() < 1e-9);
        }
        // The paper's signature: presence and absence both persist, and
        // more strongly when the two previous states agree.
        assert!(fig3.p_stay_present() > 0.6, "P(P|PP) = {}", fig3.p_stay_present());
        assert!(fig3.p_stay_absent() > 0.6, "P(A|AA) = {}", fig3.p_stay_absent());
        // First-order dominance (robust even at small snapshot counts):
        // presence in the immediately previous snapshot predicts presence
        // next, regardless of the older state.
        let p_after_present = fig3.transitions[0][0].min(fig3.transitions[2][0]);
        let p_after_absent = fig3.transitions[1][0].max(fig3.transitions[3][0]);
        assert!(
            p_after_present > p_after_absent,
            "P(P|·P) {p_after_present} must exceed P(P|·A) {p_after_absent}"
        );
        // The second-order refinement (PP stickier than AP, AA stickier
        // than PA) needs the full 16-snapshot run to estimate reliably —
        // a short test collection leaves the mixed histories with a
        // handful of transitions. It is asserted in the integration test
        // over a longer schedule and reported by the fig3 bench binary.
        // All four histories were observed.
        assert!(fig3.counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn too_few_snapshots_yield_none() {
        let (client, _service) = test_client(0.05);
        let config = CollectorConfig {
            fetch_metadata: false,
            fetch_channels: false,
            ..CollectorConfig::quick(vec![Topic::Higgs], 2)
        };
        let dataset = Collector::new(&client, config).run().unwrap();
        // Two snapshots → no 3-windows → unobserved states → None.
        assert!(figure3(&dataset).is_none());
    }
}
