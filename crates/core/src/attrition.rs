//! Attrition analysis: Figure 3's second-order Markov chain over video
//! presence/absence across snapshots.
//!
//! The paper pools, across all topics and videos, every sliding window of
//! three consecutive snapshots and estimates P(next state | two most
//! recent states). The signature finding: same-state histories strongly
//! predict staying (drop-in/drop-out happens in persistent stretches — a
//! "rolling window"), which is exactly what the platform's value-noise
//! sampler produces.

use crate::ckpt;
use crate::dataset::AuditDataset;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use ytaudit_stats::markov::{MarkovChain2, PresenceAccumulator, State2};
use ytaudit_types::{Topic, VideoId};

/// Figure 3: the 4×2 transition table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure3 {
    /// Rows in PP, PA, AP, AA order; each row is
    /// `[P(next = Present), P(next = Absent)]`.
    pub transitions: [[f64; 2]; 4],
    /// Transition counts per history state (same order), for weighting.
    pub counts: [u64; 4],
}

impl Figure3 {
    /// P(Present | PP) — the "stays in" probability.
    pub fn p_stay_present(&self) -> f64 {
        // ytlint: allow(indexing) — transitions is a fixed [[f64; 2]; 4]
        self.transitions[0][0]
    }

    /// P(Absent | AA) — the "stays out" probability.
    pub fn p_stay_absent(&self) -> f64 {
        // ytlint: allow(indexing) — transitions is a fixed [[f64; 2]; 4]
        self.transitions[3][1]
    }
}

/// Streaming attrition accumulator for one topic: folds each snapshot's
/// returned ID set into a [`PresenceAccumulator`], whose integer counts
/// are exactly what replaying the full presence sequences would produce.
#[derive(Debug, Clone, Default)]
pub struct AttritionAccumulator {
    presence: PresenceAccumulator<VideoId>,
}

impl AttritionAccumulator {
    /// An empty accumulator.
    pub fn new() -> AttritionAccumulator {
        AttritionAccumulator {
            presence: PresenceAccumulator::new(),
        }
    }

    /// Folds the next snapshot's returned ID set.
    pub fn fold(&mut self, id_set: &HashSet<VideoId>) {
        self.presence.fold(id_set);
    }

    /// The transition counts accumulated so far (to be pooled across
    /// topics for Figure 3; `u64` counts merge exactly in any order).
    pub fn chain(&self) -> &MarkovChain2 {
        self.presence.chain()
    }

    /// Serializes accumulator state for a checkpoint.
    pub fn encode_state(&self, w: &mut ckpt::Writer) {
        w.put_u64(self.presence.folds());
        encode_chain(w, self.presence.chain());
        w.put_u64(self.presence.keys() as u64);
        for (key, prev2, prev1) in self.presence.entries() {
            w.put_str(key.as_str());
            w.put_opt_bool(prev2);
            w.put_bool(prev1);
        }
    }

    /// Rebuilds accumulator state from a checkpoint.
    pub fn decode_state(r: &mut ckpt::Reader) -> ckpt::Result<AttritionAccumulator> {
        let folds = r.u64()?;
        let chain = decode_chain(r)?;
        let n = r.u64()?;
        let mut entries = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let key = VideoId::new(r.str()?);
            let prev2 = r.opt_bool()?;
            let prev1 = r.bool()?;
            entries.push((key, prev2, prev1));
        }
        Ok(AttritionAccumulator {
            presence: PresenceAccumulator::from_parts(folds, entries, chain),
        })
    }
}

/// Writes a chain's eight transition counts in `State2::ALL` order.
pub(crate) fn encode_chain(w: &mut ckpt::Writer, chain: &MarkovChain2) {
    for &state in &State2::ALL {
        w.put_u64(chain.count(state, true));
        w.put_u64(chain.count(state, false));
    }
}

/// Reads a chain written by [`encode_chain`].
pub(crate) fn decode_chain(r: &mut ckpt::Reader) -> ckpt::Result<MarkovChain2> {
    let mut chain = MarkovChain2::new();
    for &state in &State2::ALL {
        let present = r.u64()?;
        let absent = r.u64()?;
        chain.record(state, true, present);
        chain.record(state, false, absent);
    }
    Ok(chain)
}

/// Builds the pooled chain from a dataset by folding every snapshot
/// through per-topic [`AttritionAccumulator`]s. Presence sequences
/// shorter than three snapshots contribute nothing.
pub fn markov_chain(dataset: &AuditDataset, topics: &[Topic]) -> MarkovChain2 {
    let mut chain = MarkovChain2::new();
    for &topic in topics {
        let mut acc = AttritionAccumulator::new();
        for i in 0..dataset.len() {
            acc.fold(&dataset.id_set(topic, i));
        }
        chain.merge(acc.chain());
    }
    chain
}

/// Finalizes a pooled chain into Figure 3 (shared by the batch and
/// streaming paths).
pub fn figure3_from_chain(chain: &MarkovChain2) -> Option<Figure3> {
    let transitions = chain.transition_matrix().ok()?;
    let mut counts = [0u64; 4];
    for (i, &state) in State2::ALL.iter().enumerate() {
        counts[i] = chain.total(state);
    }
    Some(Figure3 {
        transitions,
        counts,
    })
}

/// Computes Figure 3 over all topics in the dataset.
pub fn figure3(dataset: &AuditDataset) -> Option<Figure3> {
    figure3_from_chain(&markov_chain(dataset, &dataset.topics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{Collector, CollectorConfig};
    use crate::testutil::test_client;

    #[test]
    fn rolling_window_signature_emerges() {
        let (client, _service) = test_client(0.3);
        let config = CollectorConfig {
            fetch_metadata: false,
            fetch_channels: false,
            ..CollectorConfig::quick(vec![Topic::Blm, Topic::Grammys], 5)
        };
        let dataset = Collector::new(&client, config).run().unwrap();
        let fig3 = figure3(&dataset).expect("enough transitions observed");
        // Rows are probability distributions.
        for row in fig3.transitions {
            assert!((row[0] + row[1] - 1.0).abs() < 1e-9);
        }
        // The paper's signature: presence and absence both persist, and
        // more strongly when the two previous states agree.
        assert!(fig3.p_stay_present() > 0.6, "P(P|PP) = {}", fig3.p_stay_present());
        assert!(fig3.p_stay_absent() > 0.6, "P(A|AA) = {}", fig3.p_stay_absent());
        // First-order dominance (robust even at small snapshot counts):
        // presence in the immediately previous snapshot predicts presence
        // next, regardless of the older state.
        let p_after_present = fig3.transitions[0][0].min(fig3.transitions[2][0]);
        let p_after_absent = fig3.transitions[1][0].max(fig3.transitions[3][0]);
        assert!(
            p_after_present > p_after_absent,
            "P(P|·P) {p_after_present} must exceed P(P|·A) {p_after_absent}"
        );
        // The second-order refinement (PP stickier than AP, AA stickier
        // than PA) needs the full 16-snapshot run to estimate reliably —
        // a short test collection leaves the mixed histories with a
        // handful of transitions. It is asserted in the integration test
        // over a longer schedule and reported by the fig3 bench binary.
        // All four histories were observed.
        assert!(fig3.counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn too_few_snapshots_yield_none() {
        let (client, _service) = test_client(0.05);
        let config = CollectorConfig {
            fetch_metadata: false,
            fetch_channels: false,
            ..CollectorConfig::quick(vec![Topic::Higgs], 2)
        };
        let dataset = Collector::new(&client, config).run().unwrap();
        // Two snapshots → no 3-windows → unobserved states → None.
        assert!(figure3(&dataset).is_none());
    }
}
