//! The collection harness: the paper's §3 methodology as code.
//!
//! For every snapshot date, the collector pins the client's simulated
//! clock, then for every topic sends one search query per hour of the
//! topic's 28-day window (24 × 28 = 672 queries; 4 032 across six topics),
//! unions the results, immediately fetches `Videos: list` metadata for the
//! returned IDs (Appendix B.1), and — on the first and last snapshots —
//! fetches the comment threads and replies (Appendix B.2). Channel
//! metadata is fetched once at the end.
//!
//! Collected data flows through a [`CollectorSink`]: every completed
//! `(topic, snapshot)` pair is committed to the sink as soon as it
//! finishes, so a durable sink (the `ytaudit-store` crate's snapshot
//! store) loses at most the in-flight pair on a crash and can resume a
//! collection by reporting already-committed pairs via
//! [`CollectorSink::is_committed`]. The in-memory [`MemorySink`]
//! reproduces the original all-at-once [`AuditDataset`] behaviour.

use crate::dataset::{
    AuditDataset, ChannelInfo, CommentFetchError, CommentRecord, CommentsSnapshot, HourlyResult,
    Snapshot, TopicSnapshot, VideoInfo,
};
use crate::platform::Platform;
use crate::schedule::Schedule;
use std::collections::{BTreeMap, HashMap, HashSet};
use ytaudit_client::{SearchQuery, YouTubeClient};
use ytaudit_types::{
    ApiErrorReason, ChannelId, CommentId, Error, PlatformKind, Result, Timestamp, Topic, VideoId,
};

/// What to collect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectorConfig {
    /// Topics to audit.
    pub topics: Vec<Topic>,
    /// Snapshot dates.
    pub schedule: Schedule,
    /// `true` = the paper's hourly time-binning (672 queries per topic per
    /// snapshot); `false` = one full-window query per topic (capped at 500
    /// results by the API) — the naive strategy, kept for comparison.
    pub hourly_bins: bool,
    /// Fetch `Videos: list` metadata after each snapshot's search.
    pub fetch_metadata: bool,
    /// Fetch `Channels: list` metadata at the end.
    pub fetch_channels: bool,
    /// Fetch comment threads + replies on the first and last snapshots.
    pub fetch_comments: bool,
    /// Shard identity when this plan is one shard of a `collect
    /// --shards N` run; `None` for the ordinary single-sink path.
    pub shard: Option<crate::shard::ShardSpec>,
    /// The backend this plan targets. Recorded in the store's Begin
    /// manifest and validated on resume/merge/analyze, so data collected
    /// against one platform can never be silently mixed with another's.
    pub platform: PlatformKind,
}

impl CollectorConfig {
    /// The paper's full configuration: all six topics, the 16-snapshot
    /// schedule, hourly bins, metadata, channels, and comments.
    pub fn paper() -> CollectorConfig {
        CollectorConfig {
            topics: Topic::ALL.to_vec(),
            schedule: Schedule::paper(),
            hourly_bins: true,
            fetch_metadata: true,
            fetch_channels: true,
            fetch_comments: true,
            shard: None,
            platform: PlatformKind::Youtube,
        }
    }

    /// A reduced configuration for fast tests.
    pub fn quick(topics: Vec<Topic>, snapshots: usize) -> CollectorConfig {
        CollectorConfig {
            topics,
            schedule: Schedule::every(Timestamp::from_ymd_const(2025, 2, 9), 5, snapshots),
            hourly_bins: true,
            fetch_metadata: true,
            fetch_channels: true,
            fetch_comments: false,
            shard: None,
            platform: PlatformKind::Youtube,
        }
    }

    /// Whether comments are crawled at snapshot `snapshot` — the first
    /// and last snapshots of the schedule, per Appendix B.2.
    pub fn comments_at(&self, snapshot: usize) -> bool {
        self.fetch_comments && (snapshot == 0 || snapshot + 1 == self.schedule.len())
    }
}

/// One completed `(topic, snapshot)` collection, handed to a
/// [`CollectorSink`] the moment it finishes.
#[derive(Debug)]
pub struct TopicCommit<'a> {
    /// The topic collected.
    pub topic: Topic,
    /// Snapshot index within the schedule.
    pub snapshot: usize,
    /// The snapshot's collection date.
    pub date: Timestamp,
    /// The hourly search results and metadata-coverage list.
    pub data: &'a TopicSnapshot,
    /// Comments, when this snapshot is a comment-collection snapshot
    /// (first and last of the schedule).
    pub comments: Option<&'a CommentsSnapshot>,
    /// Video metadata fetched for this pair, in `Videos: list` return
    /// order (unique per pair; the same video may recur across pairs).
    pub videos: &'a [VideoInfo],
    /// Quota units spent collecting this pair (search + metadata +
    /// comment calls), measured as a delta on the client's budget.
    pub quota_delta: u64,
}

/// Where collected data goes. Implementations decide durability: the
/// in-memory [`MemorySink`] assembles an [`AuditDataset`]; the
/// `ytaudit-store` snapshot store appends each commit to a crash-safe
/// log and supports resuming.
pub trait CollectorSink {
    /// Called once before any collection work with the collection plan.
    /// A durable sink validates that a resumed plan matches the stored
    /// one and records it on first use.
    fn begin(&mut self, config: &CollectorConfig) -> Result<()>;

    /// Whether `(topic, snapshot)` is already durably committed. The
    /// collector skips committed pairs without issuing any API calls.
    fn is_committed(&self, _topic: Topic, _snapshot: usize) -> bool {
        false
    }

    /// Whether the whole collection (every pair plus the final channel
    /// fetch) is already committed; the collector then does nothing.
    fn is_complete(&self) -> bool {
        false
    }

    /// Channel IDs known from previously committed video metadata, so a
    /// resumed run can fetch channels for pairs it never re-collected.
    fn known_channel_ids(&self) -> Result<Vec<ChannelId>> {
        Ok(Vec::new())
    }

    /// Commits one completed `(topic, snapshot)` pair.
    fn commit_topic_snapshot(&mut self, commit: TopicCommit<'_>) -> Result<()>;

    /// Finishes the collection: channel metadata (fetched once, at the
    /// final snapshot's clock) plus the quota spent since the last
    /// commit (channel calls and slack).
    fn finish(&mut self, channels: &[ChannelInfo], quota_final_delta: u64) -> Result<()>;
}

/// The in-memory sink: assembles the classic [`AuditDataset`] exactly as
/// the pre-sink collector did.
#[derive(Debug, Default)]
pub struct MemorySink {
    topics: Vec<Topic>,
    snapshots: BTreeMap<usize, Snapshot>,
    video_meta: HashMap<VideoId, VideoInfo>,
    channel_meta: HashMap<ChannelId, ChannelInfo>,
    quota_units: u64,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Consumes the sink, yielding the assembled dataset.
    pub fn into_dataset(self) -> AuditDataset {
        AuditDataset {
            topics: self.topics,
            snapshots: self.snapshots.into_values().collect(),
            video_meta: self.video_meta,
            channel_meta: self.channel_meta,
            quota_units_spent: self.quota_units,
        }
    }
}

impl CollectorSink for MemorySink {
    fn begin(&mut self, config: &CollectorConfig) -> Result<()> {
        self.topics = config.topics.clone();
        Ok(())
    }

    fn commit_topic_snapshot(&mut self, commit: TopicCommit<'_>) -> Result<()> {
        let snapshot = self
            .snapshots
            .entry(commit.snapshot)
            .or_insert_with(|| Snapshot {
                date: commit.date,
                topics: BTreeMap::new(),
                comments: BTreeMap::new(),
            });
        snapshot.topics.insert(commit.topic, commit.data.clone());
        if let Some(comments) = commit.comments {
            snapshot.comments.insert(commit.topic, comments.clone());
        }
        // Merged metadata: first successful fetch wins, in commit order.
        for info in commit.videos {
            self.video_meta
                .entry(info.id.clone())
                .or_insert_with(|| info.clone());
        }
        self.quota_units += commit.quota_delta;
        Ok(())
    }

    fn known_channel_ids(&self) -> Result<Vec<ChannelId>> {
        Ok(self
            .video_meta
            .values()
            .map(|v| v.channel_id.clone())
            .collect())
    }

    fn finish(&mut self, channels: &[ChannelInfo], quota_final_delta: u64) -> Result<()> {
        for info in channels {
            self.channel_meta.insert(info.id.clone(), info.clone());
        }
        self.quota_units += quota_final_delta;
        Ok(())
    }
}

/// Runs collections against any [`Platform`] backend.
pub struct Collector<'a> {
    client: &'a dyn Platform,
    config: CollectorConfig,
}

impl<'a> Collector<'a> {
    /// Builds a collector.
    pub fn new(client: &'a dyn Platform, config: CollectorConfig) -> Collector<'a> {
        Collector { client, config }
    }

    /// Runs the full collection in memory, returning the dataset.
    pub fn run(&self) -> Result<AuditDataset> {
        let mut sink = MemorySink::new();
        self.run_with_sink(&mut sink)?;
        Ok(sink.into_dataset())
    }

    /// Runs the collection against an arbitrary sink, committing each
    /// `(topic, snapshot)` pair as it completes and skipping pairs the
    /// sink already holds — the resumable path.
    pub fn run_with_sink(&self, sink: &mut dyn CollectorSink) -> Result<()> {
        if self.config.platform != self.client.kind() {
            return Err(Error::InvalidInput(format!(
                "plan targets platform '{}' but the client speaks '{}'",
                self.config.platform,
                self.client.kind()
            )));
        }
        sink.begin(&self.config)?;
        if sink.is_complete() {
            return Ok(());
        }
        let mut mark = self.client.units_spent();
        for (idx, &date) in self.config.schedule.dates().iter().enumerate() {
            self.client.set_sim_time(Some(date));
            for &topic in &self.config.topics {
                if sink.is_committed(topic, idx) {
                    continue;
                }
                let mut topic_snapshot = if self.config.hourly_bins {
                    TopicSnapshot {
                        hours: search_hours(self.client, topic, 0..topic_window_hours(topic))?,
                        meta_returned: Vec::new(),
                    }
                } else {
                    search_full_window(self.client, topic)?
                };
                let (videos, comments) =
                    finalize_pair(self.client, &self.config, idx, &mut topic_snapshot)?;
                let spent = self.client.units_spent();
                sink.commit_topic_snapshot(TopicCommit {
                    topic,
                    snapshot: idx,
                    date,
                    data: &topic_snapshot,
                    comments: comments.as_ref(),
                    videos: &videos,
                    quota_delta: spent - mark,
                })?;
                mark = spent;
            }
        }
        // Channel metadata once, at the final snapshot's clock. The ID
        // set comes from the sink so resumed runs cover the channels of
        // pairs they never re-collected.
        let mut channels = Vec::new();
        if self.config.fetch_channels {
            channels = fetch_channel_meta(self.client, sink.known_channel_ids()?)?;
        }
        self.client.set_sim_time(None);
        sink.finish(&channels, self.client.units_spent() - mark)?;
        Ok(())
    }
}

/// Number of whole hours in `topic`'s collection window (672 for the
/// paper's 28-day windows).
pub fn topic_window_hours(topic: Topic) -> u32 {
    topic.window_end().hours_since(topic.window_start()).max(0) as u32
}

/// Runs one hourly time-binned search per hour index in `hours` and
/// returns the results in hour order. This is the unit the scheduler
/// parallelizes; the sequential collector calls it once with the full
/// `0..topic_window_hours(topic)` range, so both paths issue exactly the
/// same queries. The hour-bin queries go through
/// [`Platform::search_windows`]: the YouTube backend batches one page per
/// bin per wave — an HTTP transport with `--in-flight N` pipelines those
/// pages on one connection — while other backends run the windows in
/// order, which is semantically identical.
pub fn search_hours(
    client: &dyn Platform,
    topic: Topic,
    hours: std::ops::Range<u32>,
) -> Result<Vec<HourlyResult>> {
    let window_start = topic.window_start();
    let hour_indices: Vec<u32> = hours.collect();
    let queries: Vec<SearchQuery> = hour_indices
        .iter()
        .map(|&hour| {
            SearchQuery::for_topic(topic).hour_bin(window_start.add_hours(i64::from(hour)))
        })
        .collect();
    let windows = client.search_windows(&queries)?;
    Ok(hour_indices
        .into_iter()
        .zip(windows)
        .map(|(hour, window)| HourlyResult {
            hour,
            video_ids: window.video_ids(),
            total_results: window.total_results,
        })
        .collect())
}

/// Runs a single full-window query (the naive strategy, capped at 500
/// results by the API) and buckets the returns by published hour so
/// downstream analyses see the same shape as the hourly strategy.
pub fn search_full_window(client: &dyn Platform, topic: Topic) -> Result<TopicSnapshot> {
    let window_start = topic.window_start();
    let window_hours = topic_window_hours(topic);
    let window = client.search_window(&SearchQuery::for_topic(topic))?;
    let mut by_hour: BTreeMap<u32, Vec<VideoId>> = BTreeMap::new();
    for hit in &window.hits {
        let published = hit
            .published_at
            .as_deref()
            .map(Timestamp::parse_rfc3339)
            .transpose()?
            .unwrap_or(window_start);
        let hour = published
            .hours_since(window_start)
            .clamp(0, i64::from(window_hours) - 1) as u32;
        by_hour.entry(hour).or_default().push(hit.video_id.clone());
    }
    let hours = by_hour
        .into_iter()
        .map(|(hour, video_ids)| HourlyResult {
            hour,
            video_ids,
            total_results: window.total_results,
        })
        .collect();
    Ok(TopicSnapshot {
        hours,
        meta_returned: Vec::new(),
    })
}

/// The per-pair work that follows the search phase: the `Videos: list`
/// metadata fetch (filling `meta_returned`) and, on comment snapshots,
/// the comment crawl. Shared verbatim by the sequential collector and
/// the scheduler's finalize tasks so the two paths cannot diverge.
pub fn finalize_pair(
    client: &dyn Platform,
    config: &CollectorConfig,
    snapshot: usize,
    data: &mut TopicSnapshot,
) -> Result<(Vec<VideoInfo>, Option<CommentsSnapshot>)> {
    // Sorted IDs keep metadata and comment fetch order — and therefore
    // the committed byte stream — deterministic.
    let mut ids: Vec<VideoId> = data.id_set().into_iter().collect();
    ids.sort();
    let mut videos = Vec::new();
    if config.fetch_metadata {
        let (fetched, returned) = client.video_meta(&ids)?;
        videos = fetched;
        data.meta_returned = returned;
    }
    let comments = if config.comments_at(snapshot) {
        Some(client.comments(&ids)?)
    } else {
        None
    };
    Ok((videos, comments))
}

/// Fetches `Videos: list` metadata for `ids`, returning the parsed infos
/// in API return order plus the sorted coverage list (`meta_returned`).
/// Malformed resources are skipped, as a real collector would.
pub fn fetch_video_meta(
    client: &YouTubeClient,
    ids: &[VideoId],
) -> Result<(Vec<VideoInfo>, Vec<VideoId>)> {
    let fetched = client.videos(ids)?;
    let mut videos = Vec::with_capacity(fetched.len());
    let mut returned = Vec::with_capacity(fetched.len());
    for resource in fetched {
        match parse_video_info(&resource) {
            Ok(info) => {
                returned.push(info.id.clone());
                videos.push(info);
            }
            Err(_) => continue, // malformed resource: skip
        }
    }
    returned.sort();
    Ok((videos, returned))
}

/// Fetches channel/creator metadata for `ids` (deduplicated and sorted
/// first, so the call sequence is deterministic regardless of backend).
pub fn fetch_channel_meta(client: &dyn Platform, ids: Vec<ChannelId>) -> Result<Vec<ChannelInfo>> {
    let mut channel_ids: Vec<ChannelId> = ids
        .into_iter()
        .collect::<HashSet<_>>()
        .into_iter()
        .collect();
    channel_ids.sort();
    client.channel_meta(&channel_ids)
}

/// The YouTube `Channels: list` fetch behind [`Platform::channel_meta`]:
/// IDs are already deduplicated and sorted; malformed resources are
/// skipped, as a real collector would.
pub fn fetch_youtube_channel_meta(
    client: &YouTubeClient,
    ids: &[ChannelId],
) -> Result<Vec<ChannelInfo>> {
    let mut channels = Vec::new();
    for resource in client.channels(ids)? {
        if let Ok(info) = parse_channel_info(&resource) {
            channels.push(info);
        }
    }
    Ok(channels)
}

/// Crawls comment threads plus full reply lists for `videos` (Appendix
/// B.2). Per-video unavailability — a deleted video 404ing on
/// `CommentThreads: list`, or a thread vanishing between the thread and
/// reply fetches — is recorded in the snapshot's `fetch_errors` rather
/// than aborting the topic; any other error (quota exhaustion, transport
/// failure) still propagates.
pub fn collect_comments(client: &YouTubeClient, videos: &[VideoId]) -> Result<CommentsSnapshot> {
    let mut comments = Vec::new();
    let mut fetch_errors = Vec::new();
    for video in videos {
        let threads = match client.comment_threads_all(video) {
            Ok(threads) => threads,
            Err(Error::Api {
                reason: ApiErrorReason::NotFound,
                message,
                ..
            }) => {
                fetch_errors.push(CommentFetchError {
                    video_id: video.clone(),
                    error: format!("commentThreads.list: {message}"),
                });
                continue;
            }
            Err(other) => return Err(other),
        };
        for thread in threads {
            let top = &thread.snippet.top_level_comment;
            comments.push(CommentRecord {
                id: top.id.clone(),
                video_id: video.clone(),
                is_reply: false,
                published_at: Timestamp::parse_rfc3339(&top.snippet.published_at)?,
            });
            // Embedded replies cover ≤ 5; fetch the full reply list via
            // Comments: list exactly as Appendix B.2 describes.
            if thread.replies.is_some() {
                match client.comments_all(&CommentId::new(thread.id.clone())) {
                    Ok(replies) => {
                        for reply in replies {
                            comments.push(CommentRecord {
                                id: reply.id.clone(),
                                video_id: video.clone(),
                                is_reply: true,
                                published_at: Timestamp::parse_rfc3339(
                                    &reply.snippet.published_at,
                                )?,
                            });
                        }
                    }
                    Err(Error::Api {
                        reason: ApiErrorReason::NotFound,
                        message,
                        ..
                    }) => fetch_errors.push(CommentFetchError {
                        video_id: video.clone(),
                        error: format!("comments.list {}: {message}", thread.id),
                    }),
                    Err(other) => return Err(other),
                }
            }
        }
    }
    Ok(CommentsSnapshot {
        comments,
        fetch_errors,
    })
}

fn parse_count(raw: Option<&String>) -> u64 {
    raw.and_then(|s| s.parse().ok()).unwrap_or(0)
}

/// Parses a `Videos: list` resource into native types.
pub fn parse_video_info(resource: &ytaudit_api::resources::VideoResource) -> Result<VideoInfo> {
    let snippet = resource
        .snippet
        .as_ref()
        .ok_or_else(|| Error::Decode("video resource missing snippet".into()))?;
    let content = resource
        .content_details
        .as_ref()
        .ok_or_else(|| Error::Decode("video resource missing contentDetails".into()))?;
    let stats = resource
        .statistics
        .as_ref()
        .ok_or_else(|| Error::Decode("video resource missing statistics".into()))?;
    Ok(VideoInfo {
        id: VideoId::new(resource.id.clone()),
        channel_id: ChannelId::new(snippet.channel_id.clone()),
        published_at: Timestamp::parse_rfc3339(&snippet.published_at)?,
        duration_secs: ytaudit_types::IsoDuration::parse(&content.duration)?.as_secs(),
        is_sd: content.definition == "sd",
        views: parse_count(Some(&stats.view_count)),
        likes: parse_count(stats.like_count.as_ref()),
        comments: parse_count(stats.comment_count.as_ref()),
    })
}

/// Parses a `Channels: list` resource into native types.
pub fn parse_channel_info(
    resource: &ytaudit_api::resources::ChannelResource,
) -> Result<ChannelInfo> {
    let snippet = resource
        .snippet
        .as_ref()
        .ok_or_else(|| Error::Decode("channel resource missing snippet".into()))?;
    let stats = resource
        .statistics
        .as_ref()
        .ok_or_else(|| Error::Decode("channel resource missing statistics".into()))?;
    Ok(ChannelInfo {
        id: ChannelId::new(resource.id.clone()),
        published_at: Timestamp::parse_rfc3339(&snippet.published_at)?,
        views: parse_count(Some(&stats.view_count)),
        subscribers: parse_count(Some(&stats.subscriber_count)),
        video_count: parse_count(Some(&stats.video_count)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::test_client;

    #[test]
    fn quick_collection_produces_consistent_dataset() {
        let (client, _service) = test_client(0.15);
        let config = CollectorConfig::quick(vec![Topic::Higgs], 3);
        let dataset = Collector::new(&client, config).run().unwrap();
        assert_eq!(dataset.len(), 3);
        assert_eq!(dataset.topics, vec![Topic::Higgs]);
        for snapshot in &dataset.snapshots {
            let ts = &snapshot.topics[&Topic::Higgs];
            assert!(ts.total_returned() > 10, "{}", ts.total_returned());
            // Hourly bins stay within the window.
            for hour in &ts.hours {
                assert!(hour.hour < 672);
                assert!(hour.total_results > 100);
            }
            // Metadata coverage is high but (by fault injection) not
            // necessarily total.
            let set = ts.id_set();
            assert!(!ts.meta_returned.is_empty());
            assert!(ts.meta_returned.len() <= set.len());
        }
        // Metadata parsed into native types.
        assert!(!dataset.video_meta.is_empty());
        assert!(!dataset.channel_meta.is_empty());
        for info in dataset.video_meta.values() {
            assert!(info.duration_secs > 0);
            assert!(dataset.channel_meta.contains_key(&info.channel_id));
        }
        assert!(dataset.quota_units_spent > 0);
    }

    #[test]
    fn hourly_and_full_window_strategies_differ() {
        let (client, _service) = test_client(0.3);
        // Hourly bins evade the 500-result cap; a single query cannot.
        let hourly = Collector::new(
            &client,
            CollectorConfig {
                fetch_metadata: false,
                fetch_channels: false,
                ..CollectorConfig::quick(vec![Topic::Blm], 1)
            },
        )
        .run()
        .unwrap();
        let single = Collector::new(
            &client,
            CollectorConfig {
                hourly_bins: false,
                fetch_metadata: false,
                fetch_channels: false,
                ..CollectorConfig::quick(vec![Topic::Blm], 1)
            },
        )
        .run()
        .unwrap();
        let hourly_n = hourly.snapshots[0].topics[&Topic::Blm].total_returned();
        let single_n = single.snapshots[0].topics[&Topic::Blm].total_returned();
        assert!(single_n <= 500);
        assert!(
            hourly_n >= single_n,
            "hourly {hourly_n} vs single {single_n}"
        );
    }

    #[test]
    fn comments_collected_first_and_last_only() {
        let (client, _service) = test_client(0.08);
        let mut config = CollectorConfig::quick(vec![Topic::Brexit], 3);
        config.fetch_comments = true;
        let dataset = Collector::new(&client, config).run().unwrap();
        assert!(dataset.snapshots[0].comments.contains_key(&Topic::Brexit));
        assert!(!dataset.snapshots[1].comments.contains_key(&Topic::Brexit));
        assert!(dataset.snapshots[2].comments.contains_key(&Topic::Brexit));
        let first = &dataset.snapshots[0].comments[&Topic::Brexit];
        assert!(!first.comments.is_empty());
        // Brexit has replies (unlike Higgs).
        assert!(first.comments.iter().any(|c| c.is_reply));
    }

    #[test]
    fn sink_run_matches_in_memory_run() {
        let config = CollectorConfig::quick(vec![Topic::Higgs], 2);
        let (client_a, _sa) = test_client(0.1);
        let direct = Collector::new(&client_a, config.clone()).run().unwrap();
        let (client_b, _sb) = test_client(0.1);
        let mut sink = MemorySink::new();
        Collector::new(&client_b, config)
            .run_with_sink(&mut sink)
            .unwrap();
        let via_sink = sink.into_dataset();
        assert_eq!(via_sink, direct);
    }

    #[test]
    fn sink_skips_committed_pairs_without_api_calls() {
        /// Pretends snapshot 0 is already durably committed.
        struct SkipFirst(MemorySink);
        impl CollectorSink for SkipFirst {
            fn begin(&mut self, config: &CollectorConfig) -> ytaudit_types::Result<()> {
                self.0.begin(config)
            }
            fn is_committed(&self, _topic: Topic, snapshot: usize) -> bool {
                snapshot == 0
            }
            fn commit_topic_snapshot(
                &mut self,
                commit: TopicCommit<'_>,
            ) -> ytaudit_types::Result<()> {
                self.0.commit_topic_snapshot(commit)
            }
            fn finish(
                &mut self,
                channels: &[ChannelInfo],
                delta: u64,
            ) -> ytaudit_types::Result<()> {
                self.0.finish(channels, delta)
            }
        }

        let config = CollectorConfig {
            fetch_metadata: false,
            fetch_channels: false,
            ..CollectorConfig::quick(vec![Topic::Higgs], 2)
        };
        let (client, _s) = test_client(0.1);
        let mut sink = SkipFirst(MemorySink::new());
        Collector::new(&client, config.clone())
            .run_with_sink(&mut sink)
            .unwrap();
        let spent_skipping = client.budget().units_spent();
        let dataset = sink.0.into_dataset();
        assert_eq!(dataset.snapshots.len(), 1, "snapshot 0 skipped");
        assert_eq!(dataset.quota_units_spent, spent_skipping);

        let (full_client, _s) = test_client(0.1);
        Collector::new(&full_client, config).run().unwrap();
        assert!(
            spent_skipping < full_client.budget().units_spent(),
            "skipping a committed pair must save its API calls"
        );
    }

    #[test]
    fn collection_is_reproducible() {
        let (client, _service) = test_client(0.1);
        let config = CollectorConfig {
            fetch_metadata: false,
            fetch_channels: false,
            ..CollectorConfig::quick(vec![Topic::Higgs], 2)
        };
        let a = Collector::new(&client, config.clone()).run().unwrap();
        let b = Collector::new(&client, config).run().unwrap();
        for (sa, sb) in a.snapshots.iter().zip(&b.snapshots) {
            assert_eq!(sa.topics, sb.topics);
        }
    }
}
