//! The collection schedule: when snapshots happen.
//!
//! The paper ran identical queries every 5 days from 2025-02-09 to
//! 2025-04-30, skipping 2025-04-05 ("due to a technical problem"),
//! yielding 16 snapshots over 12 weeks.

use serde::{Deserialize, Serialize};
use ytaudit_types::Timestamp;

/// A list of snapshot dates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    dates: Vec<Timestamp>,
}

impl Schedule {
    /// The paper's exact schedule: 2025-02-09 … 2025-04-30 every 5 days,
    /// with 2025-04-05 skipped — 16 snapshots.
    pub fn paper() -> Schedule {
        let start = Timestamp::from_ymd_const(2025, 2, 9);
        let skipped = Timestamp::from_ymd_const(2025, 4, 5);
        let dates = (0..17)
            .map(|i| start.add_days(5 * i))
            .filter(|&d| d != skipped)
            .collect();
        Schedule { dates }
    }

    /// An evenly spaced schedule: `count` snapshots every `interval_days`
    /// starting at `start`. Used for fast tests and the §6.2 "more sparse
    /// collections over a longer period" extension.
    pub fn every(start: Timestamp, interval_days: i64, count: usize) -> Schedule {
        Schedule {
            dates: (0..count as i64)
                .map(|i| start.add_days(i * interval_days))
                .collect(),
        }
    }

    /// An explicit list of dates.
    pub fn explicit(dates: Vec<Timestamp>) -> Schedule {
        Schedule { dates }
    }

    /// The snapshot dates in order.
    pub fn dates(&self) -> &[Timestamp] {
        &self.dates
    }

    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.dates.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.dates.is_empty()
    }

    /// First snapshot date.
    pub fn first(&self) -> Option<Timestamp> {
        self.dates.first().copied()
    }

    /// Last snapshot date.
    pub fn last(&self) -> Option<Timestamp> {
        self.dates.last().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_schedule_has_16_snapshots() {
        let schedule = Schedule::paper();
        assert_eq!(schedule.len(), 16);
        assert_eq!(schedule.first().unwrap().to_rfc3339(), "2025-02-09T00:00:00Z");
        assert_eq!(schedule.last().unwrap().to_rfc3339(), "2025-04-30T00:00:00Z");
        // April 5 is skipped.
        let skipped = Timestamp::from_ymd(2025, 4, 5).unwrap();
        assert!(!schedule.dates().contains(&skipped));
        // All other gaps are 5 days except the 10-day gap around the skip.
        let mut gaps: Vec<i64> = schedule
            .dates()
            .windows(2)
            .map(|w| w[1].days_since(w[0]))
            .collect();
        gaps.sort_unstable();
        assert_eq!(gaps.pop(), Some(10));
        assert!(gaps.iter().all(|&g| g == 5));
    }

    #[test]
    fn paper_schedule_matches_the_published_dates() {
        // The paper's §3 calendar, date by date: every 5 days from
        // 2025-02-09 through 2025-04-30, with 2025-04-05 absent.
        let expected: Vec<Timestamp> = [
            (2, 9),
            (2, 14),
            (2, 19),
            (2, 24),
            (3, 1),
            (3, 6),
            (3, 11),
            (3, 16),
            (3, 21),
            (3, 26),
            (3, 31),
            (4, 10),
            (4, 15),
            (4, 20),
            (4, 25),
            (4, 30),
        ]
        .into_iter()
        .map(|(m, d)| Timestamp::from_ymd(2025, m, d).unwrap())
        .collect();
        assert_eq!(expected.len(), 16);
        assert_eq!(Schedule::paper().dates(), expected.as_slice());
    }

    #[test]
    fn every_builds_even_schedules() {
        let start = Timestamp::from_ymd(2025, 2, 9).unwrap();
        let schedule = Schedule::every(start, 10, 4);
        assert_eq!(schedule.len(), 4);
        assert_eq!(schedule.dates()[3], start.add_days(30));
        assert!(Schedule::every(start, 5, 0).is_empty());
    }
}
