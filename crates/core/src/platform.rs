//! The platform seam: the audit methodology against an abstract backend.
//!
//! Everything the collection harness needs from a backend — windowed
//! search, metadata hydration, channel statistics, comment crawls, a
//! pinnable simulated clock, and a spend ledger — is captured by the
//! [`Platform`] trait. The methodology above the seam (schedule
//! construction, hour-binning, plan-order commits, the streaming
//! analyses) never names a concrete API; the YouTube Data API client is
//! *one* implementation, and `ytaudit-tiktok-sim` provides a second with
//! a completely different quota and query model.
//!
//! The seam deliberately returns the core dataset types
//! ([`VideoInfo`], [`ChannelInfo`], [`CommentsSnapshot`]) rather than
//! wire resources: each backend owns its own wire shapes, pagination,
//! and error taxonomy, and the harness only sees parsed, platform-neutral
//! records. Search results keep `published_at` as the backend's raw
//! RFC 3339 string so the full-window bucketing path parses (and fails
//! on) exactly the bytes the wire carried.

use crate::collect;
use crate::dataset::{ChannelInfo, CommentsSnapshot, VideoInfo};
use ytaudit_client::{SearchQuery, YouTubeClient};
use ytaudit_types::{ChannelId, PlatformKind, Result, Timestamp, VideoId};

/// One search hit, platform-neutral.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchHit {
    /// The returned video.
    pub video_id: VideoId,
    /// The publish instant as the wire carried it (RFC 3339), when the
    /// backend returned one. Hour-binned queries ignore it; full-window
    /// queries bucket by it.
    pub published_at: Option<String>,
}

/// What one windowed search query returned.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SearchWindow {
    /// The hits, in the backend's return order (already fully paginated).
    pub hits: Vec<SearchHit>,
    /// The backend's pool-size estimate for the window (YouTube's noisy
    /// `totalResults`; TikTok's capped window total).
    pub total_results: u64,
}

impl SearchWindow {
    /// The hit IDs in return order.
    pub fn video_ids(&self) -> Vec<VideoId> {
        self.hits.iter().map(|h| h.video_id.clone()).collect()
    }
}

/// An audit backend: everything the collector and scheduler need,
/// with wire shapes, pagination, and quota mechanics hidden behind it.
pub trait Platform: Send + Sync {
    /// Which backend this is (recorded in the store Begin manifest).
    fn kind(&self) -> PlatformKind;

    /// Pins the simulated request clock (the collection date); `None`
    /// reverts to the backend's own clock.
    fn set_sim_time(&self, t: Option<Timestamp>);

    /// Quota units spent so far, in this backend's own cost model
    /// (YouTube: endpoint units, search = 100; TikTok: one per request).
    /// Pair commits record deltas of this ledger.
    fn units_spent(&self) -> u64;

    /// Runs one windowed search to exhaustion (all pages).
    fn search_window(&self, query: &SearchQuery) -> Result<SearchWindow>;

    /// Runs a batch of windowed searches, in order. Backends with a
    /// pipelined transport overlap the page fetches; the default issues
    /// them sequentially, which is semantically identical.
    fn search_windows(&self, queries: &[SearchQuery]) -> Result<Vec<SearchWindow>> {
        queries.iter().map(|q| self.search_window(q)).collect()
    }

    /// Hydrates video metadata for `ids`, returning parsed infos in the
    /// backend's return order plus the sorted coverage list (IDs the
    /// backend actually returned — the attrition signal of Figure 4).
    fn video_meta(&self, ids: &[VideoId]) -> Result<(Vec<VideoInfo>, Vec<VideoId>)>;

    /// Hydrates channel/creator metadata for `ids` (already deduplicated
    /// and sorted by the caller).
    fn channel_meta(&self, ids: &[ChannelId]) -> Result<Vec<ChannelInfo>>;

    /// Crawls comments (threads plus full reply lists) for `videos`.
    /// Per-video unavailability lands in the snapshot's `fetch_errors`;
    /// anything else propagates.
    fn comments(&self, videos: &[VideoId]) -> Result<CommentsSnapshot>;
}

/// The YouTube Data API client is the original backend: the trait maps
/// straight onto the existing collection helpers, so the sequential
/// collector and the scheduler issue byte-for-byte the same calls they
/// did before the seam existed.
impl Platform for YouTubeClient {
    fn kind(&self) -> PlatformKind {
        PlatformKind::Youtube
    }

    fn set_sim_time(&self, t: Option<Timestamp>) {
        YouTubeClient::set_sim_time(self, t);
    }

    fn units_spent(&self) -> u64 {
        self.budget().units_spent()
    }

    fn search_window(&self, query: &SearchQuery) -> Result<SearchWindow> {
        let collection = self.search_all(query)?;
        Ok(window_from_collection(&collection))
    }

    fn search_windows(&self, queries: &[SearchQuery]) -> Result<Vec<SearchWindow>> {
        let collections = self.search_all_many(queries)?;
        Ok(collections.iter().map(window_from_collection).collect())
    }

    fn video_meta(&self, ids: &[VideoId]) -> Result<(Vec<VideoInfo>, Vec<VideoId>)> {
        collect::fetch_video_meta(self, ids)
    }

    fn channel_meta(&self, ids: &[ChannelId]) -> Result<Vec<ChannelInfo>> {
        collect::fetch_youtube_channel_meta(self, ids)
    }

    fn comments(&self, videos: &[VideoId]) -> Result<CommentsSnapshot> {
        collect::collect_comments(self, videos)
    }
}

fn window_from_collection(collection: &ytaudit_client::SearchCollection) -> SearchWindow {
    SearchWindow {
        hits: collection
            .items
            .iter()
            .map(|item| SearchHit {
                video_id: VideoId::new(item.id.video_id.clone()),
                published_at: item.snippet.as_ref().map(|s| s.published_at.clone()),
            })
            .collect(),
        total_results: collection.total_results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::test_client;
    use ytaudit_types::Topic;

    #[test]
    fn youtube_impl_reports_its_kind_and_ledger() {
        let (client, _service) = test_client(0.1);
        let platform: &dyn Platform = &client;
        assert_eq!(platform.kind(), PlatformKind::Youtube);
        assert_eq!(platform.units_spent(), 0);
        let window = platform
            .search_window(&SearchQuery::for_topic(Topic::Higgs))
            .unwrap();
        assert_eq!(window.video_ids().len(), window.hits.len());
        // One search costs 100 units in the YouTube cost model.
        assert!(platform.units_spent() >= 100);
    }

    #[test]
    fn windows_carry_the_wire_published_at() {
        let (client, _service) = test_client(0.1);
        let platform: &dyn Platform = &client;
        let window = platform
            .search_window(&SearchQuery::for_topic(Topic::Higgs))
            .unwrap();
        assert!(!window.hits.is_empty());
        for hit in &window.hits {
            let raw = hit.published_at.as_ref().expect("snippet requested");
            Timestamp::parse_rfc3339(raw).expect("wire timestamps parse");
        }
    }
}
