//! Pool-size analysis: Table 4.
//!
//! Every hourly query returns a `pageInfo.totalResults` estimate of the
//! platform-wide pool matching the query (capped at 1,000,000 and — per
//! the paper's observation — ignoring the query's time filters). Table 4
//! summarizes these estimates per topic: the three topics whose videos
//! reappear most consistently are also the smallest pools, and the only
//! ones whose modal estimate is below the cap.

use crate::dataset::AuditDataset;
use serde::{Deserialize, Serialize};
use ytaudit_stats::descriptive::mode_u64;
use ytaudit_types::Topic;

/// A Table 4 row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table4Row {
    /// The topic.
    pub topic: Topic,
    /// Minimum pool estimate across all hourly queries and snapshots.
    pub min: u64,
    /// Maximum (1,000,000 means the cap was hit).
    pub max: u64,
    /// Mean estimate.
    pub mean: u64,
    /// Modal estimate (binned to 1 000-unit buckets, matching the paper's
    /// rounded reporting).
    pub mode: u64,
}

/// The documented estimate cap.
pub const CAP: u64 = 1_000_000;

/// Computes one topic's Table 4 row.
pub fn table4_row(dataset: &AuditDataset, topic: Topic) -> Option<Table4Row> {
    let mut estimates: Vec<u64> = Vec::new();
    for snapshot in &dataset.snapshots {
        if let Some(ts) = snapshot.topics.get(&topic) {
            estimates.extend(ts.hours.iter().map(|h| h.total_results));
        }
    }
    let (Some(&min), Some(&max)) = (estimates.iter().min(), estimates.iter().max()) else {
        return None;
    };
    let mean = estimates.iter().sum::<u64>() / estimates.len() as u64;
    // Bucket to 1k for a meaningful mode over a continuous-ish estimate.
    let bucketed: Vec<u64> = estimates.iter().map(|e| (e / 1_000) * 1_000).collect();
    let mode = mode_u64(&bucketed).ok()?;
    Some(Table4Row {
        topic,
        min,
        max,
        mean,
        mode,
    })
}

/// Computes Table 4 for every topic.
pub fn table4(dataset: &AuditDataset) -> Vec<Table4Row> {
    dataset
        .topics
        .iter()
        .filter_map(|&t| table4_row(dataset, t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{Collector, CollectorConfig};
    use crate::testutil::test_client;

    #[test]
    fn pool_ordering_matches_the_paper() {
        let (client, _service) = test_client(0.2);
        let config = CollectorConfig {
            fetch_metadata: false,
            fetch_channels: false,
            ..CollectorConfig::quick(
                vec![Topic::Higgs, Topic::Grammys, Topic::Brexit, Topic::WorldCup],
                2,
            )
        };
        let dataset = Collector::new(&client, config).run().unwrap();
        let rows = table4(&dataset);
        assert_eq!(rows.len(), 4);
        let by_topic = |t: Topic| rows.iter().find(|r| r.topic == t).unwrap().clone();
        let higgs = by_topic(Topic::Higgs);
        let grammys = by_topic(Topic::Grammys);
        let brexit = by_topic(Topic::Brexit);
        let worldcup = by_topic(Topic::WorldCup);
        // Size ordering: Higgs ≪ Grammys < Brexit < World Cup.
        assert!(higgs.mean < grammys.mean);
        assert!(grammys.mean < brexit.mean);
        assert!(brexit.mean < worldcup.mean);
        // Caps: World Cup hits 1M; Higgs never comes close.
        assert_eq!(worldcup.max, CAP);
        assert_eq!(worldcup.mode, CAP);
        assert!(higgs.max < 100_000, "higgs max {}", higgs.max);
        assert!(higgs.mode < 100_000);
        // Brexit's mode stays below the cap (the paper's 613k).
        assert!(brexit.mode < CAP, "brexit mode {}", brexit.mode);
        // Estimates vary across queries (min < max).
        for row in &rows {
            assert!(row.min < row.max, "{}", row.topic);
            assert!(row.min <= row.mean && row.mean <= row.max);
        }
    }

    #[test]
    fn empty_topic_yields_none() {
        let dataset = AuditDataset {
            topics: vec![Topic::Blm],
            snapshots: Vec::new(),
            video_meta: Default::default(),
            channel_meta: Default::default(),
            quota_units_spent: 0,
        };
        assert!(table4_row(&dataset, Topic::Blm).is_none());
        assert!(table4(&dataset).is_empty());
    }
}
