//! Pool-size analysis: Table 4.
//!
//! Every hourly query returns a `pageInfo.totalResults` estimate of the
//! platform-wide pool matching the query (capped at 1,000,000 and — per
//! the paper's observation — ignoring the query's time filters). Table 4
//! summarizes these estimates per topic: the three topics whose videos
//! reappear most consistently are also the smallest pools, and the only
//! ones whose modal estimate is below the cap.

use crate::ckpt;
use crate::dataset::{AuditDataset, TopicSnapshot};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use ytaudit_types::Topic;

/// A Table 4 row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table4Row {
    /// The topic.
    pub topic: Topic,
    /// Minimum pool estimate across all hourly queries and snapshots.
    pub min: u64,
    /// Maximum (1,000,000 means the cap was hit).
    pub max: u64,
    /// Mean estimate.
    pub mean: u64,
    /// Modal estimate (binned to 1 000-unit buckets, matching the paper's
    /// rounded reporting).
    pub mode: u64,
}

/// The documented estimate cap.
pub const CAP: u64 = 1_000_000;

/// Streaming Table-4 accumulator for one topic: integer sufficient
/// statistics (count, sum, min, max) plus 1k-bucketed mode counts —
/// exact equivalents of the batch formulas, independent of fold order.
#[derive(Debug, Clone)]
pub struct Table4Accumulator {
    topic: Topic,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: BTreeMap<u64, u64>,
}

impl Table4Accumulator {
    /// An empty accumulator for `topic`.
    pub fn new(topic: Topic) -> Table4Accumulator {
        Table4Accumulator {
            topic,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: BTreeMap::new(),
        }
    }

    /// Folds the next snapshot's pool estimates.
    pub fn fold(&mut self, ts: &TopicSnapshot) {
        for hour in &ts.hours {
            let e = hour.total_results;
            self.count += 1;
            self.sum += e;
            self.min = self.min.min(e);
            self.max = self.max.max(e);
            // Bucket to 1k for a meaningful mode over a continuous-ish
            // estimate.
            *self.buckets.entry((e / 1_000) * 1_000).or_insert(0) += 1;
        }
    }

    /// Finalizes into a [`Table4Row`]; `None` if nothing was folded.
    pub fn finish(&self) -> Option<Table4Row> {
        if self.count == 0 {
            return None;
        }
        // Ascending bucket iteration with strict `>` keeps the smallest
        // modal bucket — the same tie-break as `mode_u64`.
        let mut best = (0u64, 0u64);
        for (&value, &count) in &self.buckets {
            if count > best.1 {
                best = (value, count);
            }
        }
        Some(Table4Row {
            topic: self.topic,
            min: self.min,
            max: self.max,
            mean: self.sum / self.count,
            mode: best.0,
        })
    }

    /// Serializes accumulator state for a checkpoint.
    pub fn encode_state(&self, w: &mut ckpt::Writer) {
        w.put_u64(self.count);
        w.put_u64(self.sum);
        w.put_u64(self.min);
        w.put_u64(self.max);
        w.put_u64(self.buckets.len() as u64);
        for (&value, &count) in &self.buckets {
            w.put_u64(value);
            w.put_u64(count);
        }
    }

    /// Rebuilds accumulator state from a checkpoint.
    pub fn decode_state(topic: Topic, r: &mut ckpt::Reader) -> ckpt::Result<Table4Accumulator> {
        let count = r.u64()?;
        let sum = r.u64()?;
        let min = r.u64()?;
        let max = r.u64()?;
        let n = r.u64()?;
        let mut buckets = BTreeMap::new();
        for _ in 0..n {
            let value = r.u64()?;
            let c = r.u64()?;
            buckets.insert(value, c);
        }
        Ok(Table4Accumulator {
            topic,
            count,
            sum,
            min,
            max,
            buckets,
        })
    }
}

/// Computes one topic's Table 4 row by folding every snapshot through a
/// [`Table4Accumulator`].
pub fn table4_row(dataset: &AuditDataset, topic: Topic) -> Option<Table4Row> {
    let mut acc = Table4Accumulator::new(topic);
    for snapshot in &dataset.snapshots {
        if let Some(ts) = snapshot.topics.get(&topic) {
            acc.fold(ts);
        }
    }
    acc.finish()
}

/// Computes Table 4 for every topic.
pub fn table4(dataset: &AuditDataset) -> Vec<Table4Row> {
    dataset
        .topics
        .iter()
        .filter_map(|&t| table4_row(dataset, t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{Collector, CollectorConfig};
    use crate::testutil::test_client;

    #[test]
    fn pool_ordering_matches_the_paper() {
        let (client, _service) = test_client(0.2);
        let config = CollectorConfig {
            fetch_metadata: false,
            fetch_channels: false,
            ..CollectorConfig::quick(
                vec![Topic::Higgs, Topic::Grammys, Topic::Brexit, Topic::WorldCup],
                2,
            )
        };
        let dataset = Collector::new(&client, config).run().unwrap();
        let rows = table4(&dataset);
        assert_eq!(rows.len(), 4);
        let by_topic = |t: Topic| rows.iter().find(|r| r.topic == t).unwrap().clone();
        let higgs = by_topic(Topic::Higgs);
        let grammys = by_topic(Topic::Grammys);
        let brexit = by_topic(Topic::Brexit);
        let worldcup = by_topic(Topic::WorldCup);
        // Size ordering: Higgs ≪ Grammys < Brexit < World Cup.
        assert!(higgs.mean < grammys.mean);
        assert!(grammys.mean < brexit.mean);
        assert!(brexit.mean < worldcup.mean);
        // Caps: World Cup hits 1M; Higgs never comes close.
        assert_eq!(worldcup.max, CAP);
        assert_eq!(worldcup.mode, CAP);
        assert!(higgs.max < 100_000, "higgs max {}", higgs.max);
        assert!(higgs.mode < 100_000);
        // Brexit's mode stays below the cap (the paper's 613k).
        assert!(brexit.mode < CAP, "brexit mode {}", brexit.mode);
        // Estimates vary across queries (min < max).
        for row in &rows {
            assert!(row.min < row.max, "{}", row.topic);
            assert!(row.min <= row.mean && row.mean <= row.max);
        }
    }

    #[test]
    fn empty_topic_yields_none() {
        let dataset = AuditDataset {
            topics: vec![Topic::Blm],
            snapshots: Vec::new(),
            video_meta: Default::default(),
            channel_meta: Default::default(),
            quota_units_spent: 0,
        };
        assert!(table4_row(&dataset, Topic::Blm).is_none());
        assert!(table4(&dataset).is_empty());
    }
}
