//! Return-likelihood regressions: Tables 3, 6, and 7.
//!
//! Dependent variable: the number of snapshots each video appeared in
//! (1–16 in the paper). Predictors, in the paper's order: an SD-quality
//! dummy (vs HD), topic dummies (vs BLM), and log-transformed,
//! z-standardized continuous features — video duration, views, likes,
//! comments, channel age, channel views, channel subscribers, and the
//! channel's upload count.

use crate::ckpt;
use crate::dataset::{AuditDataset, ChannelInfo, TopicSnapshot, VideoInfo};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use ytaudit_stats::descriptive::{bin_frequency, log1p_transform, standardize};
use ytaudit_stats::ols::{OlsFit, OlsOptions};
use ytaudit_stats::ordinal::{OrdinalFit, OrdinalModel};
use ytaudit_stats::{Result as StatsResult, StatsError};
use ytaudit_types::{ChannelId, Timestamp, Topic, VideoId};

/// The paper's predictor names, in Table 3's order.
pub const PREDICTORS: [&str; 14] = [
    "SD (quality)",
    "brexit (topic)",
    "capriot (topic)",
    "grammys (topic)",
    "higgs (topic)",
    "worldcup (topic)",
    "duration",
    "views",
    "likes",
    "comments",
    "channel age",
    "channel views",
    "channel subs",
    "# channel videos",
];

/// The assembled design matrix plus outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegressionData {
    /// Predictor names actually present (columns of `x`). Constant
    /// columns — e.g. the dummy of a topic not in the collection — are
    /// dropped, so reduced collections still fit.
    pub names: Vec<String>,
    /// Standardized predictor rows, columns aligned with `names`.
    pub x: Vec<Vec<f64>>,
    /// Appearance frequency per video (1..=n_snapshots).
    pub frequency: Vec<u32>,
    /// Number of snapshots in the collection.
    pub n_snapshots: usize,
}

/// Builds the design matrix from per-topic appearance frequencies and
/// metadata lookups — the single assembly path shared by the batch
/// ([`build_regression_data`]) and streaming ([`RegressionAccumulator`])
/// analyses. Frequencies iterate in ascending video-ID order per topic
/// (the old batch code iterated a `HashMap`, so its row order — and thus
/// the last bits of the standardized columns — could differ between
/// runs). Videos without fetched metadata (or whose channel metadata is
/// missing) are dropped — the same listwise deletion a real pipeline
/// performs.
pub fn regression_data_from<'m, FV, FC>(
    topic_frequencies: &[(Topic, BTreeMap<VideoId, u32>)],
    n_snapshots: usize,
    reference_date: Timestamp,
    lookup_video: FV,
    lookup_channel: FC,
) -> StatsResult<RegressionData>
where
    FV: Fn(&VideoId) -> Option<&'m VideoInfo>,
    FC: Fn(&ChannelId) -> Option<&'m ChannelInfo>,
{
    let mut sd = Vec::new();
    let mut topic_dummies: Vec<[f64; 5]> = Vec::new();
    let mut duration = Vec::new();
    let mut views = Vec::new();
    let mut likes = Vec::new();
    let mut comments = Vec::new();
    let mut channel_age = Vec::new();
    let mut channel_views = Vec::new();
    let mut channel_subs = Vec::new();
    let mut channel_videos = Vec::new();
    let mut frequency = Vec::new();

    for (topic, freqs) in topic_frequencies {
        let dummies = topic_dummy(*topic);
        for (video_id, &freq) in freqs {
            let Some(video) = lookup_video(video_id) else {
                continue;
            };
            let Some(channel) = lookup_channel(&video.channel_id) else {
                continue;
            };
            sd.push(if video.is_sd { 1.0 } else { 0.0 });
            topic_dummies.push(dummies);
            duration.push(video.duration_secs as f64);
            views.push(video.views as f64);
            likes.push(video.likes as f64);
            comments.push(video.comments as f64);
            channel_age.push(reference_date.days_since(channel.published_at).max(0) as f64);
            channel_views.push(channel.views as f64);
            channel_subs.push(channel.subscribers as f64);
            channel_videos.push(channel.video_count as f64);
            frequency.push(freq);
        }
    }
    if frequency.len() < 30 {
        return Err(StatsError::InvalidInput(format!(
            "too few observations with metadata ({})",
            frequency.len()
        )));
    }
    // Log-transform then standardize every continuous column.
    let z = |v: &[f64]| standardize(&log1p_transform(v));
    let zd = z(&duration);
    let zv = z(&views);
    let zl = z(&likes);
    let zc = z(&comments);
    let za = z(&channel_age);
    let zcv = z(&channel_views);
    let zcs = z(&channel_subs);
    let zcn = z(&channel_videos);
    let full: Vec<Vec<f64>> = (0..frequency.len())
        .map(|i| {
            let mut row = Vec::with_capacity(14);
            row.push(sd[i]);
            row.extend_from_slice(&topic_dummies[i]);
            row.push(zd[i]);
            row.push(zv[i]);
            row.push(zl[i]);
            row.push(zc[i]);
            row.push(za[i]);
            row.push(zcv[i]);
            row.push(zcs[i]);
            row.push(zcn[i]);
            row
        })
        .collect();
    // Drop constant columns (absent topics' dummies, or a degenerate
    // feature) so the design matrix stays full-rank.
    let keep: Vec<usize> = (0..PREDICTORS.len())
        .filter(|&j| {
            full.first().is_some_and(|head| {
                let first = head[j];
                full.iter().any(|row| row[j] != first)
            })
        })
        .collect();
    let names: Vec<String> = keep.iter().map(|&j| PREDICTORS[j].to_string()).collect();
    let x: Vec<Vec<f64>> = full
        .into_iter()
        .map(|row| keep.iter().map(|&j| row[j]).collect())
        .collect();
    Ok(RegressionData {
        names,
        x,
        frequency,
        n_snapshots,
    })
}

/// Builds the regression dataset from a materialized collection by
/// routing through [`regression_data_from`].
pub fn build_regression_data(dataset: &AuditDataset) -> StatsResult<RegressionData> {
    let reference_date = dataset
        .snapshots
        .last()
        .map(|s| s.date)
        .ok_or_else(|| StatsError::InvalidInput("empty dataset".into()))?;
    let topic_frequencies: Vec<(Topic, BTreeMap<VideoId, u32>)> = dataset
        .topics
        .iter()
        .map(|&t| (t, dataset.appearance_frequencies(t).into_iter().collect()))
        .collect();
    regression_data_from(
        &topic_frequencies,
        dataset.len(),
        reference_date,
        |id| dataset.video_meta.get(id),
        |id| dataset.channel_meta.get(id),
    )
}

/// Streaming regression accumulator: per-topic appearance counts, video
/// metadata merged first-wins in fold order (within one collection every
/// fetch of a video returns identical metadata, so this matches the
/// batch merge), and the latest folded date as the channel-age reference.
/// Channel metadata only exists once a collection finishes, so it is
/// supplied at [`RegressionAccumulator::finish`] time.
#[derive(Debug, Clone, Default)]
pub struct RegressionAccumulator {
    frequencies: BTreeMap<Topic, BTreeMap<VideoId, u32>>,
    video_meta: BTreeMap<VideoId, VideoInfo>,
    reference_date: Option<Timestamp>,
}

impl RegressionAccumulator {
    /// An empty accumulator.
    pub fn new() -> RegressionAccumulator {
        RegressionAccumulator::default()
    }

    /// Folds one committed (topic, snapshot) pair: the returned IDs, the
    /// snapshot date, and the video metadata fetched alongside it.
    pub fn fold(&mut self, topic: Topic, ts: &TopicSnapshot, date: Timestamp, videos: &[VideoInfo]) {
        let freqs = self.frequencies.entry(topic).or_default();
        for id in ts.id_set() {
            *freqs.entry(id).or_insert(0) += 1;
        }
        for video in videos {
            self.video_meta
                .entry(video.id.clone())
                .or_insert_with(|| video.clone());
        }
        self.reference_date = Some(match self.reference_date {
            Some(d) if d.0 >= date.0 => d,
            _ => date,
        });
    }

    /// Seeds one video's metadata directly (first-wins, like the fold
    /// path) — used by the batch entry point, whose dataset carries a
    /// single merged metadata map.
    pub fn seed_video(&mut self, video: &VideoInfo) {
        self.video_meta
            .entry(video.id.clone())
            .or_insert_with(|| video.clone());
    }

    /// Finalizes into a [`RegressionData`] via [`regression_data_from`].
    /// `topics` fixes the topic iteration order (plan order, as in the
    /// batch path) and `channel_meta` supplies the end-of-collection
    /// channel fetches.
    pub fn finish(
        &self,
        topics: &[Topic],
        n_snapshots: usize,
        channel_meta: &BTreeMap<ChannelId, ChannelInfo>,
    ) -> StatsResult<RegressionData> {
        let reference_date = self
            .reference_date
            .ok_or_else(|| StatsError::InvalidInput("empty dataset".into()))?;
        let empty = BTreeMap::new();
        let topic_frequencies: Vec<(Topic, BTreeMap<VideoId, u32>)> = topics
            .iter()
            .map(|&t| (t, self.frequencies.get(&t).unwrap_or(&empty).clone()))
            .collect();
        regression_data_from(
            &topic_frequencies,
            n_snapshots,
            reference_date,
            |id| self.video_meta.get(id),
            |id| channel_meta.get(id),
        )
    }

    /// Serializes accumulator state for a checkpoint.
    pub fn encode_state(&self, w: &mut ckpt::Writer) {
        match self.reference_date {
            None => w.put_u8(0),
            Some(d) => {
                w.put_u8(1);
                w.put_i64(d.0);
            }
        }
        w.put_u64(self.frequencies.len() as u64);
        for (topic, freqs) in &self.frequencies {
            w.put_u8(topic.index() as u8);
            w.put_u64(freqs.len() as u64);
            for (id, &freq) in freqs {
                w.put_str(id.as_str());
                w.put_u32(freq);
            }
        }
        w.put_u64(self.video_meta.len() as u64);
        for video in self.video_meta.values() {
            encode_video_info(w, video);
        }
    }

    /// Rebuilds accumulator state from a checkpoint.
    pub fn decode_state(r: &mut ckpt::Reader) -> ckpt::Result<RegressionAccumulator> {
        let reference_date = if r.u8()? == 1 {
            Some(Timestamp(r.i64()?))
        } else {
            None
        };
        let n_topics = r.u64()?;
        let mut frequencies = BTreeMap::new();
        for _ in 0..n_topics {
            let idx = r.u8()? as usize;
            let topic = *Topic::ALL
                .get(idx)
                .ok_or_else(|| format!("invalid topic index {idx}"))?;
            let n = r.u64()?;
            let mut freqs = BTreeMap::new();
            for _ in 0..n {
                let id = VideoId::new(r.str()?);
                let freq = r.u32()?;
                freqs.insert(id, freq);
            }
            frequencies.insert(topic, freqs);
        }
        let n_videos = r.u64()?;
        let mut video_meta = BTreeMap::new();
        for _ in 0..n_videos {
            let video = decode_video_info(r)?;
            video_meta.insert(video.id.clone(), video);
        }
        Ok(RegressionAccumulator {
            frequencies,
            video_meta,
            reference_date,
        })
    }
}

pub(crate) fn encode_video_info(w: &mut ckpt::Writer, video: &VideoInfo) {
    w.put_str(video.id.as_str());
    w.put_str(video.channel_id.as_str());
    w.put_i64(video.published_at.0);
    w.put_u64(video.duration_secs);
    w.put_bool(video.is_sd);
    w.put_u64(video.views);
    w.put_u64(video.likes);
    w.put_u64(video.comments);
}

pub(crate) fn decode_video_info(r: &mut ckpt::Reader) -> ckpt::Result<VideoInfo> {
    Ok(VideoInfo {
        id: VideoId::new(r.str()?),
        channel_id: ChannelId::new(r.str()?),
        published_at: Timestamp(r.i64()?),
        duration_secs: r.u64()?,
        is_sd: r.bool()?,
        views: r.u64()?,
        likes: r.u64()?,
        comments: r.u64()?,
    })
}

fn topic_dummy(topic: Topic) -> [f64; 5] {
    // One-hot over the non-reference topics; BLM is the reference
    // category.
    match topic {
        Topic::Blm => [0.0, 0.0, 0.0, 0.0, 0.0],
        Topic::Brexit => [1.0, 0.0, 0.0, 0.0, 0.0],
        Topic::Capitol => [0.0, 1.0, 0.0, 0.0, 0.0],
        Topic::Grammys => [0.0, 0.0, 1.0, 0.0, 0.0],
        Topic::Higgs => [0.0, 0.0, 0.0, 1.0, 0.0],
        Topic::WorldCup => [0.0, 0.0, 0.0, 0.0, 1.0],
    }
}

/// Compresses arbitrary category labels to contiguous 0-based indices in
/// ascending label order. Returns the compressed labels and the number of
/// categories.
fn compress_categories(labels: &[u32]) -> (Vec<usize>, usize) {
    let mut distinct: Vec<u32> = labels.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    let index: std::collections::HashMap<u32, usize> = distinct
        .iter()
        .enumerate()
        .map(|(i, &l)| (l, i))
        .collect();
    (labels.iter().map(|l| index[l]).collect(), distinct.len())
}

/// Table 3: the binned ordinal (logit) regression. With 16 snapshots the
/// bins are the paper's 1–5 / 6–10 / 11–15 / 16; with fewer snapshots the
/// frequencies are scaled onto the same four bins before compression.
pub fn table3(data: &RegressionData) -> StatsResult<OrdinalFit> {
    let binned: Vec<u32> = data
        .frequency
        .iter()
        .map(|&f| {
            let scaled = if data.n_snapshots == 16 {
                f
            } else {
                // Scale onto 1..=16 so the paper's bin edges apply.
                ((f as f64 / data.n_snapshots as f64) * 16.0).ceil() as u32
            };
            u32::from(bin_frequency(scaled))
        })
        .collect();
    let (y, _) = compress_categories(&binned);
    let names: Vec<&str> = data.names.iter().map(String::as_str).collect();
    OrdinalModel::logit().fit(&names, &data.x, &y)
}

/// Table 6: OLS with HC1 robust standard errors, frequency continuous.
pub fn table6(data: &RegressionData) -> StatsResult<OlsFit> {
    let y: Vec<f64> = data.frequency.iter().map(|&f| f as f64).collect();
    let names: Vec<&str> = data.names.iter().map(String::as_str).collect();
    OlsFit::fit(&names, &data.x, &y, OlsOptions { robust_hc1: true })
}

/// Table 7: the non-binned ordinal regression with a complementary
/// log-log link (the outcome is skewed toward the top category).
pub fn table7(data: &RegressionData) -> StatsResult<OrdinalFit> {
    let (y, n_cat) = compress_categories(&data.frequency);
    if n_cat < 2 {
        return Err(StatsError::InvalidInput(
            "outcome has a single category".into(),
        ));
    }
    let names: Vec<&str> = data.names.iter().map(String::as_str).collect();
    OrdinalModel::cloglog().fit(&names, &data.x, &y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{Collector, CollectorConfig};
    use crate::testutil::test_client;

    fn dataset_with_meta() -> AuditDataset {
        let (client, _service) = test_client(0.35);
        let config = CollectorConfig::quick(
            vec![Topic::Blm, Topic::Brexit, Topic::Higgs, Topic::WorldCup],
            4,
        );
        Collector::new(&client, config).run().unwrap()
    }

    #[test]
    fn design_matrix_is_well_formed() {
        let dataset = dataset_with_meta();
        let data = build_regression_data(&dataset).unwrap();
        assert_eq!(data.x.len(), data.frequency.len());
        assert!(data.x.len() > 100);
        assert!(data.names.len() <= 14);
        // The collection includes 4 topics, so 3 non-reference dummies
        // survive the constant-column filter.
        assert!(data.names.iter().filter(|n| n.contains("(topic)")).count() == 3);
        for row in &data.x {
            assert_eq!(row.len(), data.names.len());
            // Standardized columns are finite.
            assert!(row.iter().all(|v| v.is_finite()));
        }
        // Frequencies within 1..=snapshots.
        assert!(data
            .frequency
            .iter()
            .all(|&f| f >= 1 && f as usize <= data.n_snapshots));
        // The Higgs dummy survives and is set for some rows.
        let higgs_col = data.names.iter().position(|n| n == "higgs (topic)").unwrap();
        assert!(data.x.iter().any(|r| r[higgs_col] == 1.0));
        assert!(data.x.iter().all(|r| r[higgs_col] == 0.0 || r[higgs_col] == 1.0));
    }

    #[test]
    fn all_three_models_fit_and_agree_on_higgs() {
        let dataset = dataset_with_meta();
        let data = build_regression_data(&dataset).unwrap();
        let t3 = table3(&data).unwrap();
        let t6 = table6(&data).unwrap();
        let t7 = table7(&data).unwrap();
        // The Higgs topic dummy is the paper's strongest effect: positive
        // and significant in every specification.
        for (name, coeff, p) in [
            ("t3", t3.coefficient("higgs (topic)").unwrap(), t3.p_value("higgs (topic)").unwrap()),
            ("t6", t6.coefficient("higgs (topic)").unwrap(), t6.p_value("higgs (topic)").unwrap()),
            ("t7", t7.coefficient("higgs (topic)").unwrap(), t7.p_value("higgs (topic)").unwrap()),
        ] {
            assert!(coeff > 0.0, "{name}: higgs coeff {coeff}");
            assert!(p < 0.05, "{name}: higgs p {p}");
        }
        // Model-level diagnostics.
        assert!(t3.lr_chi2 > 0.0);
        assert!(t3.lr_p < 0.001);
        assert!(t3.pseudo_r2 > 0.0 && t3.pseudo_r2 < 0.6);
        assert!(t6.r_squared > 0.0 && t6.r_squared < 0.9);
        assert!(t6.f_p_value < 0.001);
    }

    #[test]
    fn too_small_dataset_errors_cleanly() {
        let dataset = AuditDataset {
            topics: vec![Topic::Higgs],
            snapshots: Vec::new(),
            video_meta: Default::default(),
            channel_meta: Default::default(),
            quota_units_spent: 0,
        };
        assert!(build_regression_data(&dataset).is_err());
    }
}
