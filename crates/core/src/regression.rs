//! Return-likelihood regressions: Tables 3, 6, and 7.
//!
//! Dependent variable: the number of snapshots each video appeared in
//! (1–16 in the paper). Predictors, in the paper's order: an SD-quality
//! dummy (vs HD), topic dummies (vs BLM), and log-transformed,
//! z-standardized continuous features — video duration, views, likes,
//! comments, channel age, channel views, channel subscribers, and the
//! channel's upload count.

use crate::dataset::AuditDataset;
use serde::{Deserialize, Serialize};
use ytaudit_stats::descriptive::{bin_frequency, log1p_transform, standardize};
use ytaudit_stats::ols::{OlsFit, OlsOptions};
use ytaudit_stats::ordinal::{OrdinalFit, OrdinalModel};
use ytaudit_stats::{Result as StatsResult, StatsError};
use ytaudit_types::Topic;

/// The paper's predictor names, in Table 3's order.
pub const PREDICTORS: [&str; 14] = [
    "SD (quality)",
    "brexit (topic)",
    "capriot (topic)",
    "grammys (topic)",
    "higgs (topic)",
    "worldcup (topic)",
    "duration",
    "views",
    "likes",
    "comments",
    "channel age",
    "channel views",
    "channel subs",
    "# channel videos",
];

/// The assembled design matrix plus outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegressionData {
    /// Predictor names actually present (columns of `x`). Constant
    /// columns — e.g. the dummy of a topic not in the collection — are
    /// dropped, so reduced collections still fit.
    pub names: Vec<String>,
    /// Standardized predictor rows, columns aligned with `names`.
    pub x: Vec<Vec<f64>>,
    /// Appearance frequency per video (1..=n_snapshots).
    pub frequency: Vec<u32>,
    /// Number of snapshots in the collection.
    pub n_snapshots: usize,
}

/// Builds the regression dataset from a collection. Videos without
/// fetched metadata (or whose channel metadata is missing) are dropped —
/// the same listwise deletion a real pipeline performs.
pub fn build_regression_data(dataset: &AuditDataset) -> StatsResult<RegressionData> {
    let reference_date = dataset
        .snapshots
        .last()
        .map(|s| s.date)
        .ok_or_else(|| StatsError::InvalidInput("empty dataset".into()))?;
    let mut sd = Vec::new();
    let mut topic_dummies: Vec<[f64; 5]> = Vec::new();
    let mut duration = Vec::new();
    let mut views = Vec::new();
    let mut likes = Vec::new();
    let mut comments = Vec::new();
    let mut channel_age = Vec::new();
    let mut channel_views = Vec::new();
    let mut channel_subs = Vec::new();
    let mut channel_videos = Vec::new();
    let mut frequency = Vec::new();

    for &topic in &dataset.topics {
        let dummies = topic_dummy(topic);
        for (video_id, freq) in dataset.appearance_frequencies(topic) {
            let Some(video) = dataset.video_meta.get(&video_id) else {
                continue;
            };
            let Some(channel) = dataset.channel_meta.get(&video.channel_id) else {
                continue;
            };
            sd.push(if video.is_sd { 1.0 } else { 0.0 });
            topic_dummies.push(dummies);
            duration.push(video.duration_secs as f64);
            views.push(video.views as f64);
            likes.push(video.likes as f64);
            comments.push(video.comments as f64);
            channel_age.push(reference_date.days_since(channel.published_at).max(0) as f64);
            channel_views.push(channel.views as f64);
            channel_subs.push(channel.subscribers as f64);
            channel_videos.push(channel.video_count as f64);
            frequency.push(freq);
        }
    }
    if frequency.len() < 30 {
        return Err(StatsError::InvalidInput(format!(
            "too few observations with metadata ({})",
            frequency.len()
        )));
    }
    // Log-transform then standardize every continuous column.
    let z = |v: &[f64]| standardize(&log1p_transform(v));
    let zd = z(&duration);
    let zv = z(&views);
    let zl = z(&likes);
    let zc = z(&comments);
    let za = z(&channel_age);
    let zcv = z(&channel_views);
    let zcs = z(&channel_subs);
    let zcn = z(&channel_videos);
    let full: Vec<Vec<f64>> = (0..frequency.len())
        .map(|i| {
            let mut row = Vec::with_capacity(14);
            row.push(sd[i]);
            row.extend_from_slice(&topic_dummies[i]);
            row.push(zd[i]);
            row.push(zv[i]);
            row.push(zl[i]);
            row.push(zc[i]);
            row.push(za[i]);
            row.push(zcv[i]);
            row.push(zcs[i]);
            row.push(zcn[i]);
            row
        })
        .collect();
    // Drop constant columns (absent topics' dummies, or a degenerate
    // feature) so the design matrix stays full-rank.
    let keep: Vec<usize> = (0..PREDICTORS.len())
        .filter(|&j| {
            full.first().is_some_and(|head| {
                let first = head[j];
                full.iter().any(|row| row[j] != first)
            })
        })
        .collect();
    let names: Vec<String> = keep.iter().map(|&j| PREDICTORS[j].to_string()).collect();
    let x: Vec<Vec<f64>> = full
        .into_iter()
        .map(|row| keep.iter().map(|&j| row[j]).collect())
        .collect();
    Ok(RegressionData {
        names,
        x,
        frequency,
        n_snapshots: dataset.len(),
    })
}

fn topic_dummy(topic: Topic) -> [f64; 5] {
    // One-hot over the non-reference topics; BLM is the reference
    // category.
    match topic {
        Topic::Blm => [0.0, 0.0, 0.0, 0.0, 0.0],
        Topic::Brexit => [1.0, 0.0, 0.0, 0.0, 0.0],
        Topic::Capitol => [0.0, 1.0, 0.0, 0.0, 0.0],
        Topic::Grammys => [0.0, 0.0, 1.0, 0.0, 0.0],
        Topic::Higgs => [0.0, 0.0, 0.0, 1.0, 0.0],
        Topic::WorldCup => [0.0, 0.0, 0.0, 0.0, 1.0],
    }
}

/// Compresses arbitrary category labels to contiguous 0-based indices in
/// ascending label order. Returns the compressed labels and the number of
/// categories.
fn compress_categories(labels: &[u32]) -> (Vec<usize>, usize) {
    let mut distinct: Vec<u32> = labels.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    let index: std::collections::HashMap<u32, usize> = distinct
        .iter()
        .enumerate()
        .map(|(i, &l)| (l, i))
        .collect();
    (labels.iter().map(|l| index[l]).collect(), distinct.len())
}

/// Table 3: the binned ordinal (logit) regression. With 16 snapshots the
/// bins are the paper's 1–5 / 6–10 / 11–15 / 16; with fewer snapshots the
/// frequencies are scaled onto the same four bins before compression.
pub fn table3(data: &RegressionData) -> StatsResult<OrdinalFit> {
    let binned: Vec<u32> = data
        .frequency
        .iter()
        .map(|&f| {
            let scaled = if data.n_snapshots == 16 {
                f
            } else {
                // Scale onto 1..=16 so the paper's bin edges apply.
                ((f as f64 / data.n_snapshots as f64) * 16.0).ceil() as u32
            };
            u32::from(bin_frequency(scaled))
        })
        .collect();
    let (y, _) = compress_categories(&binned);
    let names: Vec<&str> = data.names.iter().map(String::as_str).collect();
    OrdinalModel::logit().fit(&names, &data.x, &y)
}

/// Table 6: OLS with HC1 robust standard errors, frequency continuous.
pub fn table6(data: &RegressionData) -> StatsResult<OlsFit> {
    let y: Vec<f64> = data.frequency.iter().map(|&f| f as f64).collect();
    let names: Vec<&str> = data.names.iter().map(String::as_str).collect();
    OlsFit::fit(&names, &data.x, &y, OlsOptions { robust_hc1: true })
}

/// Table 7: the non-binned ordinal regression with a complementary
/// log-log link (the outcome is skewed toward the top category).
pub fn table7(data: &RegressionData) -> StatsResult<OrdinalFit> {
    let (y, n_cat) = compress_categories(&data.frequency);
    if n_cat < 2 {
        return Err(StatsError::InvalidInput(
            "outcome has a single category".into(),
        ));
    }
    let names: Vec<&str> = data.names.iter().map(String::as_str).collect();
    OrdinalModel::cloglog().fit(&names, &data.x, &y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{Collector, CollectorConfig};
    use crate::testutil::test_client;

    fn dataset_with_meta() -> AuditDataset {
        let (client, _service) = test_client(0.35);
        let config = CollectorConfig::quick(
            vec![Topic::Blm, Topic::Brexit, Topic::Higgs, Topic::WorldCup],
            4,
        );
        Collector::new(&client, config).run().unwrap()
    }

    #[test]
    fn design_matrix_is_well_formed() {
        let dataset = dataset_with_meta();
        let data = build_regression_data(&dataset).unwrap();
        assert_eq!(data.x.len(), data.frequency.len());
        assert!(data.x.len() > 100);
        assert!(data.names.len() <= 14);
        // The collection includes 4 topics, so 3 non-reference dummies
        // survive the constant-column filter.
        assert!(data.names.iter().filter(|n| n.contains("(topic)")).count() == 3);
        for row in &data.x {
            assert_eq!(row.len(), data.names.len());
            // Standardized columns are finite.
            assert!(row.iter().all(|v| v.is_finite()));
        }
        // Frequencies within 1..=snapshots.
        assert!(data
            .frequency
            .iter()
            .all(|&f| f >= 1 && f as usize <= data.n_snapshots));
        // The Higgs dummy survives and is set for some rows.
        let higgs_col = data.names.iter().position(|n| n == "higgs (topic)").unwrap();
        assert!(data.x.iter().any(|r| r[higgs_col] == 1.0));
        assert!(data.x.iter().all(|r| r[higgs_col] == 0.0 || r[higgs_col] == 1.0));
    }

    #[test]
    fn all_three_models_fit_and_agree_on_higgs() {
        let dataset = dataset_with_meta();
        let data = build_regression_data(&dataset).unwrap();
        let t3 = table3(&data).unwrap();
        let t6 = table6(&data).unwrap();
        let t7 = table7(&data).unwrap();
        // The Higgs topic dummy is the paper's strongest effect: positive
        // and significant in every specification.
        for (name, coeff, p) in [
            ("t3", t3.coefficient("higgs (topic)").unwrap(), t3.p_value("higgs (topic)").unwrap()),
            ("t6", t6.coefficient("higgs (topic)").unwrap(), t6.p_value("higgs (topic)").unwrap()),
            ("t7", t7.coefficient("higgs (topic)").unwrap(), t7.p_value("higgs (topic)").unwrap()),
        ] {
            assert!(coeff > 0.0, "{name}: higgs coeff {coeff}");
            assert!(p < 0.05, "{name}: higgs p {p}");
        }
        // Model-level diagnostics.
        assert!(t3.lr_chi2 > 0.0);
        assert!(t3.lr_p < 0.001);
        assert!(t3.pseudo_r2 > 0.0 && t3.pseudo_r2 < 0.6);
        assert!(t6.r_squared > 0.0 && t6.r_squared < 0.9);
        assert!(t6.f_p_value < 0.001);
    }

    #[test]
    fn too_small_dataset_errors_cleanly() {
        let dataset = AuditDataset {
            topics: vec![Topic::Higgs],
            snapshots: Vec::new(),
            video_meta: Default::default(),
            channel_meta: Default::default(),
            quota_units_spent: 0,
        };
        assert!(build_regression_data(&dataset).is_err());
    }
}
