//! Binary checkpoint encoding for the streaming analyzer.
//!
//! A follow-mode analysis can be killed at any moment; to resume without
//! re-folding the whole store it periodically writes its complete
//! accumulator state to a checkpoint file. The encoding is a hand-rolled
//! little-endian wire format (the same style as the store's record layer —
//! duplicated here because `ytaudit-core` must not depend on
//! `ytaudit-store`): fixed-width integers, `f64` via `to_bits` so values
//! round-trip exactly, and length-prefixed strings. A magic header and
//! version byte guard against feeding the decoder a foreign file, and
//! [`Reader::expect_end`] rejects trailing garbage.
//!
//! Durability is the caller's job: the follow driver writes to a temp
//! file, fsyncs, renames over the old checkpoint, and fsyncs the
//! directory, so a crash leaves either the old or the new checkpoint —
//! never a torn one. No CRC is needed under that protocol.

/// File magic for analyzer checkpoints.
pub const CKPT_MAGIC: &[u8; 8] = b"YTAUDCK1";

/// Format version (bump on incompatible state changes).
pub const CKPT_VERSION: u8 = 1;

/// A checkpoint decode error (message only; checkpoints are rebuildable
/// from the store, so callers treat any error as "start from scratch or
/// fail loudly", not something to recover field-by-field).
pub type CkptError = String;

/// Result alias for checkpoint encode/decode.
pub type Result<T, E = CkptError> = std::result::Result<T, E>;

/// Little-endian binary writer for checkpoint state.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A writer primed with the checkpoint magic and version.
    pub fn new() -> Writer {
        let mut w = Writer {
            buf: Vec::with_capacity(4096),
        };
        w.buf.extend_from_slice(CKPT_MAGIC);
        w.put_u8(CKPT_VERSION);
        w
    }

    /// A bare writer with no header — for nested structures that are
    /// length-prefixed inside an outer checkpoint.
    pub fn bare() -> Writer {
        Writer { buf: Vec::new() }
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a `u16` little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64` little-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern — exact round-trip,
    /// including NaN payloads, signed zeros, and infinities.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Appends an `Option<bool>` as one byte (0 = None, 1 = false, 2 = true).
    pub fn put_opt_bool(&mut self, v: Option<bool>) {
        self.put_u8(match v {
            None => 0,
            Some(false) => 1,
            Some(true) => 2,
        });
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Little-endian binary reader mirroring [`Writer`].
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over a full checkpoint file: validates magic and version.
    pub fn new(buf: &'a [u8]) -> Result<Reader<'a>> {
        let mut r = Reader::bare(buf);
        let magic = r.take(CKPT_MAGIC.len())?;
        if magic != CKPT_MAGIC {
            return Err("not a ytaudit checkpoint (bad magic)".to_string());
        }
        let version = r.u8()?;
        if version != CKPT_VERSION {
            return Err(format!(
                "unsupported checkpoint version {version} (expected {CKPT_VERSION})"
            ));
        }
        Ok(r)
    }

    /// A reader with no header expectation — for nested structures.
    pub fn bare(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| "checkpoint truncated".to_string())?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Reads exactly `N` bytes into a fixed array. Length is enforced by
    /// `take`, so the conversion never involves a fallible slice cast.
    fn array<const N: usize>(&mut self) -> Result<[u8; N]> {
        let slice = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(slice);
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8> {
        let [b] = self.array::<1>()?;
        Ok(b)
    }

    /// Reads a bool; rejects bytes other than 0/1.
    pub fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(format!("invalid bool byte {b}")),
        }
    }

    /// Reads a `u16` little-endian.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.array()?))
    }

    /// Reads a `u32` little-endian.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    /// Reads a `u64` little-endian.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    /// Reads an `i64` little-endian.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(self.u64()? as i64)
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.u64()?;
        let len = usize::try_from(len).map_err(|_| "checkpoint length overflow".to_string())?;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| "checkpoint string not UTF-8".to_string())
    }

    /// Reads an `Option<bool>` written by [`Writer::put_opt_bool`].
    pub fn opt_bool(&mut self) -> Result<Option<bool>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(false)),
            2 => Ok(Some(true)),
            b => Err(format!("invalid Option<bool> byte {b}")),
        }
    }

    /// Succeeds only if the entire buffer has been consumed.
    pub fn expect_end(&self) -> Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!(
                "checkpoint has {} trailing bytes",
                self.buf.len() - self.pos
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u16(65535);
        w.put_u32(1 << 30);
        w.put_u64(u64::MAX - 1);
        w.put_i64(-42);
        w.put_f64(-0.0);
        w.put_f64(f64::INFINITY);
        w.put_f64(std::f64::consts::PI);
        w.put_str("höhe\n");
        w.put_opt_bool(None);
        w.put_opt_bool(Some(true));
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes).unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u16().unwrap(), 65535);
        assert_eq!(r.u32().unwrap(), 1 << 30);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64().unwrap(), f64::INFINITY);
        assert_eq!(r.f64().unwrap(), std::f64::consts::PI);
        assert_eq!(r.str().unwrap(), "höhe\n");
        assert_eq!(r.opt_bool().unwrap(), None);
        assert_eq!(r.opt_bool().unwrap(), Some(true));
        r.expect_end().unwrap();
    }

    #[test]
    fn rejects_foreign_and_truncated_input() {
        assert!(Reader::new(b"NOTACKPT\x01rest").is_err());
        assert!(Reader::new(b"YTAUDCK1").is_err()); // missing version byte
        assert!(Reader::new(b"YTAUDCK1\x63").is_err()); // wrong version

        let mut w = Writer::new();
        w.put_u64(5);
        let mut bytes = w.into_bytes();
        bytes.truncate(bytes.len() - 1);
        let mut r = Reader::new(&bytes).unwrap();
        assert!(r.u64().is_err());

        // Trailing garbage is rejected.
        let mut w = Writer::new();
        w.put_u8(1);
        let bytes = w.into_bytes();
        let r = Reader::new(&bytes).unwrap();
        assert!(r.expect_end().is_err());
    }
}
