//! Collection-strategy experiments: the paper's §6.1 advice and §6.2
//! proposed validation, implemented.
//!
//! Two experiments:
//!
//! * [`restriction_ladder`] — run progressively more restrictive queries
//!   (adding AND terms) and measure how the reported pool size and the
//!   first-vs-last replicability respond. The paper predicts: smaller
//!   pool ⇒ more stable returns.
//! * [`split_topics`] — compare one broad query against the union of
//!   subtopic queries ("break up your *topics* as opposed to your time
//!   frames"), in both replicability and quota cost.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use ytaudit_client::{SearchQuery, YouTubeClient};
use ytaudit_stats::sets::jaccard;
use ytaudit_types::{Result, Timestamp, Topic, VideoId};

/// Configuration for the strategy experiments.
#[derive(Debug, Clone)]
pub struct StrategyConfig {
    /// The topic to experiment on.
    pub topic: Topic,
    /// How many restriction levels (0 = just the base query).
    pub levels: usize,
    /// First collection date.
    pub first: Timestamp,
    /// Last collection date.
    pub last: Timestamp,
    /// Use the paper's hourly time-binned collection (true) or one capped
    /// query (false — cheaper, used when only relative effects matter).
    pub hourly: bool,
}

impl StrategyConfig {
    /// A sensible default: the audit's first/last dates, 3 extra terms.
    pub fn new(topic: Topic) -> StrategyConfig {
        StrategyConfig {
            topic,
            levels: 3,
            first: Timestamp::from_ymd_const(2025, 2, 9),
            last: Timestamp::from_ymd_const(2025, 4, 30),
            hourly: false,
        }
    }
}

/// One rung of the restriction ladder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RestrictionPoint {
    /// Number of AND terms added to the base query.
    pub level: usize,
    /// The full query string.
    pub query: String,
    /// Mean reported pool size (`totalResults`) across the queries sent.
    pub pool_mean: u64,
    /// Videos returned at the first collection.
    pub returned_first: usize,
    /// Videos returned at the last collection.
    pub returned_last: usize,
    /// J(first, last) — the replicability measure.
    pub jaccard: f64,
}

/// Runs one collection of `query` at `date`, returning the ID set and the
/// pool estimates observed.
fn collect_once(
    client: &YouTubeClient,
    base: &SearchQuery,
    topic: Topic,
    hourly: bool,
    date: Timestamp,
) -> Result<(HashSet<VideoId>, Vec<u64>)> {
    client.set_sim_time(Some(date));
    let mut ids = HashSet::new();
    let mut pools = Vec::new();
    if hourly {
        let start = topic.window_start();
        let hours = topic.window_end().hours_since(start).max(0);
        for h in 0..hours {
            let query = base.clone().hour_bin(start.add_hours(h));
            let collection = client.search_all(&query)?;
            pools.push(collection.total_results);
            ids.extend(collection.video_ids());
        }
    } else {
        let collection = client.search_all(base)?;
        pools.push(collection.total_results);
        ids.extend(collection.video_ids());
    }
    Ok((ids, pools))
}

/// Runs the restriction ladder: level 0 is the topic's base query; each
/// further level ANDs in the next subtopic term.
pub fn restriction_ladder(
    client: &YouTubeClient,
    config: &StrategyConfig,
) -> Result<Vec<RestrictionPoint>> {
    let spec = config.topic.spec();
    let mut points = Vec::new();
    for level in 0..=config.levels.min(spec.subtopics.len()) {
        let mut query = SearchQuery::for_topic(config.topic);
        for term in spec.subtopics.iter().take(level) {
            query = query.and_term(term);
        }
        let (first_ids, mut pools) =
            collect_once(client, &query, config.topic, config.hourly, config.first)?;
        let (last_ids, pools_last) =
            collect_once(client, &query, config.topic, config.hourly, config.last)?;
        pools.extend(pools_last);
        let pool_mean = pools.iter().sum::<u64>() / pools.len().max(1) as u64;
        points.push(RestrictionPoint {
            level,
            query: query.q.clone().unwrap_or_default(),
            pool_mean,
            returned_first: first_ids.len(),
            returned_last: last_ids.len(),
            jaccard: jaccard(&first_ids, &last_ids),
        });
    }
    client.set_sim_time(None);
    Ok(points)
}

/// Comparison of broad-query vs split-subtopic collection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitComparison {
    /// The topic.
    pub topic: Topic,
    /// J(first, last) of the single broad query.
    pub broad_jaccard: f64,
    /// J(first, last) of the union over subtopic queries.
    pub split_jaccard: f64,
    /// Videos returned by the broad query (first collection).
    pub broad_returned: usize,
    /// Videos returned by the split union (first collection).
    pub split_returned: usize,
    /// Quota units the broad strategy cost.
    pub broad_quota: u64,
    /// Quota units the split strategy cost.
    pub split_quota: u64,
}

/// Runs the broad-vs-split comparison for a topic.
pub fn split_topics(client: &YouTubeClient, config: &StrategyConfig) -> Result<SplitComparison> {
    let spec = config.topic.spec();
    let before = client.budget().units_spent();
    let broad = SearchQuery::for_topic(config.topic);
    let (broad_first, _) = collect_once(client, &broad, config.topic, config.hourly, config.first)?;
    let (broad_last, _) = collect_once(client, &broad, config.topic, config.hourly, config.last)?;
    let broad_quota = client.budget().units_spent() - before;

    let before = client.budget().units_spent();
    let mut split_first = HashSet::new();
    let mut split_last = HashSet::new();
    for term in spec.subtopics {
        let query = SearchQuery::for_topic(config.topic).and_term(term);
        let (f, _) = collect_once(client, &query, config.topic, config.hourly, config.first)?;
        let (l, _) = collect_once(client, &query, config.topic, config.hourly, config.last)?;
        split_first.extend(f);
        split_last.extend(l);
    }
    let split_quota = client.budget().units_spent() - before;
    client.set_sim_time(None);
    Ok(SplitComparison {
        topic: config.topic,
        broad_jaccard: jaccard(&broad_first, &broad_last),
        split_jaccard: jaccard(&split_first, &split_last),
        broad_returned: broad_first.len(),
        split_returned: split_first.len(),
        broad_quota,
        split_quota,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::test_client;

    #[test]
    fn narrower_queries_shrink_pools_and_raise_replicability() {
        let (client, _service) = test_client(0.6);
        let config = StrategyConfig {
            levels: 2,
            hourly: false,
            ..StrategyConfig::new(Topic::WorldCup)
        };
        let ladder = restriction_ladder(&client, &config).unwrap();
        assert_eq!(ladder.len(), 3);
        // Pool estimates shrink monotonically with restriction.
        assert!(ladder[0].pool_mean > ladder[1].pool_mean);
        assert!(ladder[1].pool_mean > ladder[2].pool_mean);
        // Returned counts shrink too.
        assert!(ladder[0].returned_first >= ladder[1].returned_first);
        // Replicability improves from base to the most-restricted rung
        // (the paper's §6.1 prediction).
        let base_j = ladder[0].jaccard;
        let tight_j = ladder.last().unwrap().jaccard;
        assert!(
            tight_j > base_j,
            "restricted J {tight_j} should beat broad J {base_j}"
        );
        // Query strings accumulate AND terms.
        assert!(ladder[2].query.contains("fifa world cup"));
        assert!(ladder[2].query.len() > ladder[0].query.len());
    }

    #[test]
    fn splitting_topics_beats_the_broad_query() {
        let (client, _service) = test_client(0.6);
        let config = StrategyConfig {
            hourly: false,
            ..StrategyConfig::new(Topic::Blm)
        };
        let cmp = split_topics(&client, &config).unwrap();
        assert!(
            cmp.split_jaccard > cmp.broad_jaccard,
            "split J {} should beat broad J {}",
            cmp.split_jaccard,
            cmp.broad_jaccard
        );
        // Quota is tracked for both strategies. (Which is cheaper depends
        // on binning: un-binned, a broad query pages to the 500 cap while
        // each narrow query needs fewer pages.)
        assert!(cmp.broad_quota > 0);
        assert!(cmp.split_quota > 0);
        assert!(cmp.broad_returned > 0);
        assert!(cmp.split_returned > 0);
    }
}
