//! Periodicity analysis — the paper's §6.2 proposal, implemented.
//!
//! "Future research can replicate our experiments with more sparse
//! collections over a longer period, to check for potential periodicity
//! in set similarities." This module runs that check: it takes a
//! collected dataset, builds the vs-first similarity series J(Sₜ, S₁),
//! detrends it by first-differencing, and scans for a dominant cycle
//! with the autocorrelation tooling in `ytaudit-stats::timeseries`.
//!
//! The calibrated sampler is aperiodic, so the default platform should
//! *fail* this test — and a platform built with
//! `SamplerConfig::with_seasonality(...)` should pass it, which is how
//! the detector itself is validated.

use crate::dataset::AuditDataset;
use serde::{Deserialize, Serialize};
use ytaudit_stats::timeseries::{acf, detect_periodicity, ljung_box, Periodicity};
use ytaudit_stats::{Result as StatsResult, StatsError};
use ytaudit_types::Topic;

/// The periodicity scan of one topic's similarity series.
///
/// The scanned signal is the *first difference* of the vs-first series
/// ΔJ(Sₜ, S₁): similarity to the first snapshot oscillates with the full
/// period of any planted cycle (each video's key returns to its starting
/// value every period, whatever its phase), and differencing removes the
/// monotone decay trend that would otherwise fake long-lag correlation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeriodicityReport {
    /// The topic scanned.
    pub topic: Topic,
    /// The vs-first Jaccard series J(Sₜ, S₁), t = 1….
    pub series: Vec<f64>,
    /// The detrended signal actually scanned (first differences).
    pub detrended: Vec<f64>,
    /// Sample autocorrelation of the detrended signal at lags 0..=max_lag.
    pub acf: Vec<f64>,
    /// The dominant lag (≥ 2) and whether it is significant.
    pub dominant_lag: usize,
    /// Autocorrelation at the dominant lag.
    pub strength: f64,
    /// The ±1.96/√n significance threshold.
    pub threshold: f64,
    /// Whether the dominant lag clears the threshold.
    pub significant: bool,
    /// Ljung–Box Q statistic over the scanned lags.
    pub ljung_box_q: f64,
    /// Ljung–Box p-value (small ⇒ the series is not white noise).
    pub ljung_box_p: f64,
}

/// Scans one topic. `max_lag` defaults to a third of the series length
/// when `None`.
pub fn analyze(
    dataset: &AuditDataset,
    topic: Topic,
    max_lag: Option<usize>,
) -> StatsResult<PeriodicityReport> {
    let n = dataset.len();
    if n < 8 {
        return Err(StatsError::InvalidInput(format!(
            "periodicity needs ≥ 8 snapshots, got {n}"
        )));
    }
    let sets: Vec<_> = (0..n).map(|i| dataset.id_set(topic, i)).collect();
    let series: Vec<f64> = sets[1..]
        .iter()
        // ytlint: allow(indexing) — n ≥ 8 guard above: sets is non-empty
        .map(|s| ytaudit_stats::sets::jaccard(s, &sets[0]))
        .collect();
    // ytlint: allow(indexing) — windows(2) yields exactly-2-long slices
    let detrended: Vec<f64> = series.windows(2).map(|w| w[1] - w[0]).collect();
    let max_lag = max_lag
        .unwrap_or(detrended.len() / 3)
        .clamp(2, detrended.len().saturating_sub(1));
    let correlations = acf(&detrended, max_lag)?;
    let dominant = detect_periodicity(&detrended, max_lag)?;
    let (q, p) = ljung_box(&detrended, max_lag)?;
    let Periodicity {
        dominant_lag,
        strength,
        threshold,
        significant,
    } = dominant;
    Ok(PeriodicityReport {
        topic,
        series,
        detrended,
        acf: correlations,
        dominant_lag,
        strength,
        threshold,
        significant,
        ljung_box_q: q,
        ljung_box_p: p,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ablation::client_with_sampler;
    use crate::collect::{Collector, CollectorConfig};
    use crate::schedule::Schedule;
    use ytaudit_platform::SamplerConfig;
    use ytaudit_types::Timestamp;

    fn sparse_collection(sampler: SamplerConfig, snapshots: usize) -> AuditDataset {
        let (client, _service) = client_with_sampler(0.25, sampler);
        let config = CollectorConfig {
            topics: vec![Topic::Capitol],
            schedule: Schedule::every(
                Timestamp::from_ymd(2025, 2, 9).unwrap(),
                5,
                snapshots,
            ),
            hourly_bins: true,
            fetch_metadata: false,
            fetch_channels: false,
            fetch_comments: false,
            shard: None,
            platform: ytaudit_types::PlatformKind::Youtube,
        };
        Collector::new(&client, config).run().unwrap()
    }

    #[test]
    fn planted_seasonality_is_detected() {
        // Period 20 days, collected every 5 days ⇒ dominant lag 4.
        let dataset = sparse_collection(
            SamplerConfig::default().with_seasonality(20.0, 0.22),
            24,
        );
        let report = analyze(&dataset, Topic::Capitol, Some(6)).unwrap();
        assert_eq!(report.dominant_lag, 4, "{report:?}");
        assert!(report.significant, "{report:?}");
        assert!(report.ljung_box_p < 0.05, "{report:?}");
    }

    #[test]
    fn default_sampler_is_aperiodic() {
        let dataset = sparse_collection(SamplerConfig::default(), 16);
        let report = analyze(&dataset, Topic::Capitol, Some(5)).unwrap();
        // Adjacent similarity under the calibrated sampler drifts slowly;
        // short-lag autocorrelation exists, but no *periodic* recurrence
        // should dominate decisively the way the planted cycle does.
        assert!(
            report.strength < 0.8,
            "no strong cycle expected: {report:?}"
        );
        assert_eq!(report.series.len(), 15);
        assert_eq!(report.detrended.len(), 14);
        assert!((report.acf[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn too_few_snapshots_error() {
        let dataset = sparse_collection(SamplerConfig::default(), 4);
        assert!(analyze(&dataset, Topic::Capitol, None).is_err());
    }
}
