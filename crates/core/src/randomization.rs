//! Randomization-mechanism analysis: Table 2 and Figure 2.
//!
//! Tests the ceiling-effect hypothesis (per-hour returns never approach
//! the 50/page cap; per-hour volume correlates weakly *positively* with
//! consistency) and exposes the density signature: per-day return
//! histograms coincide across snapshots while per-day Jaccard does not
//! track volume.

use crate::dataset::AuditDataset;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use ytaudit_stats::rank::spearman;
use ytaudit_stats::sets::jaccard;
use ytaudit_types::{Topic, VideoId};

/// A Table 2 row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// The topic.
    pub topic: Topic,
    /// Mean videos per (hour, snapshot) cell.
    pub mean: f64,
    /// Minimum cell count.
    pub min: usize,
    /// Maximum cell count — stays far below the 50/page cap, ruling out
    /// ceiling effects.
    pub max: usize,
    /// Cell standard deviation.
    pub std: f64,
    /// Spearman ρ between per-hour J(T₁, T_L) and per-hour mean count,
    /// over hours with any returns.
    pub rho: f64,
    /// Two-sided p-value of ρ.
    pub rho_p: f64,
    /// Hours retained after dropping all-zero hours.
    pub n_hours: usize,
}

/// One day of Figure 2 for a topic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DayPoint {
    /// Day index within the 28-day window (0-based).
    pub day: u32,
    /// Videos returned that day in the first snapshot.
    pub first: usize,
    /// Videos returned that day in the last snapshot.
    pub last: usize,
    /// Mean across all snapshots.
    pub avg: f64,
    /// Jaccard between the first and last snapshots' sets for this day.
    pub jaccard_first_last: f64,
}

/// Figure 2 for one topic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure2Topic {
    /// The topic.
    pub topic: Topic,
    /// One point per window day.
    pub days: Vec<DayPoint>,
}

/// Per-hour counts for one topic across snapshots, keyed by hour index.
fn hourly_counts(dataset: &AuditDataset, topic: Topic) -> HashMap<u32, Vec<usize>> {
    let n = dataset.len();
    let mut counts: HashMap<u32, Vec<usize>> = HashMap::new();
    for (snapshot_idx, snapshot) in dataset.snapshots.iter().enumerate() {
        if let Some(ts) = snapshot.topics.get(&topic) {
            for hour in &ts.hours {
                counts
                    .entry(hour.hour)
                    .or_insert_with(|| vec![0; n])[snapshot_idx] = hour.video_ids.len();
            }
        }
    }
    counts
}

/// Per-hour ID sets for one snapshot.
fn hourly_sets(dataset: &AuditDataset, topic: Topic, snapshot: usize) -> HashMap<u32, HashSet<VideoId>> {
    let mut out = HashMap::new();
    if let Some(ts) = dataset
        .snapshots
        .get(snapshot)
        .and_then(|s| s.topics.get(&topic))
    {
        for hour in &ts.hours {
            out.insert(hour.hour, hour.video_ids.iter().cloned().collect());
        }
    }
    out
}

/// Computes one topic's Table 2 row.
pub fn table2_row(dataset: &AuditDataset, topic: Topic) -> Table2Row {
    let counts = hourly_counts(dataset, topic);
    // Cell-level descriptive statistics over every (hour, snapshot) cell,
    // including the all-zero hours (the paper's mean ≈ total/672).
    let mut cells: Vec<f64> = Vec::new();
    let max_hour = 672u32;
    for hour in 0..max_hour {
        match counts.get(&hour) {
            Some(per_snapshot) => cells.extend(per_snapshot.iter().map(|&c| c as f64)),
            None => cells.extend(std::iter::repeat_n(0.0, dataset.len())),
        }
    }
    let mean = cells.iter().sum::<f64>() / cells.len().max(1) as f64;
    let min = cells.iter().cloned().fold(f64::INFINITY, f64::min).max(0.0) as usize;
    let max = cells.iter().cloned().fold(0.0, f64::max) as usize;
    let var = cells
        .iter()
        .map(|c| (c - mean) * (c - mean))
        .sum::<f64>()
        / (cells.len().saturating_sub(1)).max(1) as f64;

    // Correlation: per-hour J(first, last) vs per-hour mean count, over
    // hours with at least one return across snapshots.
    let first_sets = hourly_sets(dataset, topic, 0);
    let last_sets = hourly_sets(dataset, topic, dataset.len().saturating_sub(1));
    let empty = HashSet::new();
    let mut js = Vec::new();
    let mut means = Vec::new();
    for (hour, per_snapshot) in &counts {
        let total: usize = per_snapshot.iter().sum();
        if total == 0 {
            continue;
        }
        let a = first_sets.get(hour).unwrap_or(&empty);
        let b = last_sets.get(hour).unwrap_or(&empty);
        js.push(jaccard(a, b));
        means.push(total as f64 / per_snapshot.len() as f64);
    }
    let (rho, rho_p) = match spearman(&js, &means) {
        Ok(c) => (c.coefficient, c.p_value),
        Err(_) => (f64::NAN, f64::NAN),
    };
    Table2Row {
        topic,
        mean,
        min,
        max,
        std: var.sqrt(),
        rho,
        rho_p,
        n_hours: js.len(),
    }
}

/// Computes Table 2 for every topic.
pub fn table2(dataset: &AuditDataset) -> Vec<Table2Row> {
    dataset
        .topics
        .iter()
        .map(|&t| table2_row(dataset, t))
        .collect()
}

/// Computes Figure 2 for one topic.
pub fn figure2_topic(dataset: &AuditDataset, topic: Topic) -> Figure2Topic {
    let n = dataset.len();
    let last_idx = n.saturating_sub(1);
    // Aggregate per-day sets for each snapshot.
    let mut per_day_sets: Vec<HashMap<u32, HashSet<VideoId>>> = vec![HashMap::new(); n];
    for (idx, snapshot) in dataset.snapshots.iter().enumerate() {
        if let Some(ts) = snapshot.topics.get(&topic) {
            for hour in &ts.hours {
                per_day_sets[idx]
                    .entry(hour.hour / 24)
                    .or_default()
                    .extend(hour.video_ids.iter().cloned());
            }
        }
    }
    let empty = HashSet::new();
    let days = (0..28)
        .map(|day| {
            let first = per_day_sets
                .first()
                .and_then(|m| m.get(&day))
                .unwrap_or(&empty);
            let last = per_day_sets
                .get(last_idx)
                .and_then(|m| m.get(&day))
                .unwrap_or(&empty);
            let avg = per_day_sets
                .iter()
                .map(|m| m.get(&day).map_or(0, HashSet::len) as f64)
                .sum::<f64>()
                / n.max(1) as f64;
            DayPoint {
                day,
                first: first.len(),
                last: last.len(),
                avg,
                jaccard_first_last: jaccard(first, last),
            }
        })
        .collect();
    Figure2Topic { topic, days }
}

/// Computes Figure 2 for every topic.
pub fn figure2(dataset: &AuditDataset) -> Vec<Figure2Topic> {
    dataset
        .topics
        .iter()
        .map(|&t| figure2_topic(dataset, t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{Collector, CollectorConfig};
    use crate::testutil::test_client;

    fn quick_dataset() -> AuditDataset {
        let (client, _service) = test_client(0.25);
        let config = CollectorConfig {
            fetch_metadata: false,
            fetch_channels: false,
            ..CollectorConfig::quick(vec![Topic::Capitol, Topic::WorldCup], 3)
        };
        Collector::new(&client, config).run().unwrap()
    }

    #[test]
    fn per_hour_counts_stay_below_the_page_cap() {
        let dataset = quick_dataset();
        for row in table2(&dataset) {
            assert!(row.max < 50, "{}: max {}", row.topic, row.max);
            assert_eq!(row.min, 0, "{}", row.topic);
            assert!(row.mean > 0.0 && row.mean < 5.0, "{}: mean {}", row.topic, row.mean);
            assert!(row.n_hours > 10, "{}: N {}", row.topic, row.n_hours);
            assert!(row.n_hours <= 672);
            if row.rho.is_finite() {
                assert!((-1.0..=1.0).contains(&row.rho));
            }
        }
    }

    #[test]
    fn mean_is_total_over_all_hours() {
        let dataset = quick_dataset();
        let row = table2_row(&dataset, Topic::Capitol);
        let total: usize = (0..dataset.len())
            .map(|i| dataset.id_set(Topic::Capitol, i).len())
            .sum();
        let expected = total as f64 / (672 * dataset.len()) as f64;
        assert!((row.mean - expected).abs() < 1e-9);
    }

    #[test]
    fn figure2_daily_shapes_coincide_across_snapshots() {
        let dataset = quick_dataset();
        for ft in figure2(&dataset) {
            assert_eq!(ft.days.len(), 28);
            // The average curve correlates strongly with both first and
            // last (the paper: "map almost perfectly on each other").
            let avg: Vec<f64> = ft.days.iter().map(|d| d.avg).collect();
            let first: Vec<f64> = ft.days.iter().map(|d| d.first as f64).collect();
            let last: Vec<f64> = ft.days.iter().map(|d| d.last as f64).collect();
            let r1 = ytaudit_stats::rank::pearson(&avg, &first).unwrap().coefficient;
            let r2 = ytaudit_stats::rank::pearson(&avg, &last).unwrap().coefficient;
            assert!(r1 > 0.9, "{}: avg-first r {r1}", ft.topic);
            assert!(r2 > 0.9, "{}: avg-last r {r2}", ft.topic);
        }
    }

    #[test]
    fn capitol_peaks_at_its_focal_day() {
        let dataset = quick_dataset();
        let ft = figure2_topic(&dataset, Topic::Capitol);
        let peak_day = ft
            .days
            .iter()
            .max_by(|a, b| a.avg.partial_cmp(&b.avg).unwrap())
            .unwrap()
            .day;
        // Focal date is day 14 of the window; Capitol's burst is tight.
        assert!((13..=16).contains(&peak_day), "peak at day {peak_day}");
    }
}
