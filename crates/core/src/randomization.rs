//! Randomization-mechanism analysis: Table 2 and Figure 2.
//!
//! Tests the ceiling-effect hypothesis (per-hour returns never approach
//! the 50/page cap; per-hour volume correlates weakly *positively* with
//! consistency) and exposes the density signature: per-day return
//! histograms coincide across snapshots while per-day Jaccard does not
//! track volume.

use crate::ckpt;
use crate::consistency::{decode_id_set, encode_id_set};
use crate::dataset::{AuditDataset, TopicSnapshot};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};
use ytaudit_stats::rank::spearman;
use ytaudit_stats::sets::jaccard;
use ytaudit_types::{Topic, VideoId};

/// A Table 2 row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// The topic.
    pub topic: Topic,
    /// Mean videos per (hour, snapshot) cell.
    pub mean: f64,
    /// Minimum cell count.
    pub min: usize,
    /// Maximum cell count — stays far below the 50/page cap, ruling out
    /// ceiling effects.
    pub max: usize,
    /// Cell standard deviation.
    pub std: f64,
    /// Spearman ρ between per-hour J(T₁, T_L) and per-hour mean count,
    /// over hours with any returns.
    pub rho: f64,
    /// Two-sided p-value of ρ.
    pub rho_p: f64,
    /// Hours retained after dropping all-zero hours.
    pub n_hours: usize,
}

/// One day of Figure 2 for a topic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DayPoint {
    /// Day index within the 28-day window (0-based).
    pub day: u32,
    /// Videos returned that day in the first snapshot.
    pub first: usize,
    /// Videos returned that day in the last snapshot.
    pub last: usize,
    /// Mean across all snapshots.
    pub avg: f64,
    /// Jaccard between the first and last snapshots' sets for this day.
    pub jaccard_first_last: f64,
}

/// Figure 2 for one topic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure2Topic {
    /// The topic.
    pub topic: Topic,
    /// One point per window day.
    pub days: Vec<DayPoint>,
}

/// Streaming Table-2 accumulator for one topic: maintains the per-hour
/// count grid plus the first and latest snapshots' per-hour ID sets, so
/// state is O(hours × snapshots) counts + two snapshots' sets. Hours are
/// keyed in a `BTreeMap`, which also makes the Spearman input ordering
/// deterministic (the old batch code iterated a `HashMap`, so its ρ could
/// wobble in the last bits between runs).
#[derive(Debug, Clone)]
pub struct Table2Accumulator {
    topic: Topic,
    folds: usize,
    grid: BTreeMap<u32, Vec<usize>>,
    first_sets: BTreeMap<u32, HashSet<VideoId>>,
    last_sets: BTreeMap<u32, HashSet<VideoId>>,
}

impl Table2Accumulator {
    /// An empty accumulator for `topic`.
    pub fn new(topic: Topic) -> Table2Accumulator {
        Table2Accumulator {
            topic,
            folds: 0,
            grid: BTreeMap::new(),
            first_sets: BTreeMap::new(),
            last_sets: BTreeMap::new(),
        }
    }

    /// Folds the next snapshot's hourly results. A snapshot that did not
    /// cover this topic folds as the (default) empty [`TopicSnapshot`],
    /// which contributes a column of zeros — exactly what the batch code
    /// did for missing snapshots.
    pub fn fold(&mut self, ts: &TopicSnapshot) {
        let s = self.folds;
        // Grow every known hour's column vector by one zero cell, then
        // overwrite the cells this snapshot actually returned (duplicate
        // hour entries last-win, matching the batch grid build).
        for column in self.grid.values_mut() {
            column.push(0);
        }
        for hour in &ts.hours {
            let column = self.grid.entry(hour.hour).or_insert_with(|| vec![0; s + 1]);
            if let Some(cell) = column.last_mut() {
                *cell = hour.video_ids.len();
            }
        }
        if s == 0 {
            for hour in &ts.hours {
                self.first_sets
                    .insert(hour.hour, hour.video_ids.iter().cloned().collect());
            }
        }
        self.last_sets.clear();
        for hour in &ts.hours {
            self.last_sets
                .insert(hour.hour, hour.video_ids.iter().cloned().collect());
        }
        self.folds += 1;
    }

    /// Finalizes into a [`Table2Row`] over everything folded so far.
    pub fn finish(&self) -> Table2Row {
        // Cell-level descriptive statistics over every (hour, snapshot)
        // cell, including the all-zero hours (the paper's mean ≈
        // total/672).
        let mut cells: Vec<f64> = Vec::new();
        let max_hour = 672u32;
        for hour in 0..max_hour {
            match self.grid.get(&hour) {
                Some(per_snapshot) => cells.extend(per_snapshot.iter().map(|&c| c as f64)),
                None => cells.extend(std::iter::repeat_n(0.0, self.folds)),
            }
        }
        let mean = cells.iter().sum::<f64>() / cells.len().max(1) as f64;
        let min = cells.iter().cloned().fold(f64::INFINITY, f64::min).max(0.0) as usize;
        let max = cells.iter().cloned().fold(0.0, f64::max) as usize;
        let var = cells
            .iter()
            .map(|c| (c - mean) * (c - mean))
            .sum::<f64>()
            / (cells.len().saturating_sub(1)).max(1) as f64;

        // Correlation: per-hour J(first, last) vs per-hour mean count,
        // over hours with at least one return across snapshots.
        let empty = HashSet::new();
        let mut js = Vec::new();
        let mut means = Vec::new();
        for (hour, per_snapshot) in &self.grid {
            let total: usize = per_snapshot.iter().sum();
            if total == 0 {
                continue;
            }
            let a = self.first_sets.get(hour).unwrap_or(&empty);
            let b = self.last_sets.get(hour).unwrap_or(&empty);
            js.push(jaccard(a, b));
            means.push(total as f64 / per_snapshot.len() as f64);
        }
        let (rho, rho_p) = match spearman(&js, &means) {
            Ok(c) => (c.coefficient, c.p_value),
            Err(_) => (f64::NAN, f64::NAN),
        };
        Table2Row {
            topic: self.topic,
            mean,
            min,
            max,
            std: var.sqrt(),
            rho,
            rho_p,
            n_hours: js.len(),
        }
    }

    /// Serializes accumulator state for a checkpoint.
    pub fn encode_state(&self, w: &mut ckpt::Writer) {
        w.put_u64(self.folds as u64);
        w.put_u64(self.grid.len() as u64);
        for (hour, column) in &self.grid {
            w.put_u32(*hour);
            w.put_u64(column.len() as u64);
            for &c in column {
                w.put_u64(c as u64);
            }
        }
        for sets in [&self.first_sets, &self.last_sets] {
            w.put_u64(sets.len() as u64);
            for (hour, set) in sets {
                w.put_u32(*hour);
                encode_id_set(w, set);
            }
        }
    }

    /// Rebuilds accumulator state from a checkpoint.
    pub fn decode_state(topic: Topic, r: &mut ckpt::Reader) -> ckpt::Result<Table2Accumulator> {
        let folds = r.u64()? as usize;
        let n_hours = r.u64()?;
        let mut grid = BTreeMap::new();
        for _ in 0..n_hours {
            let hour = r.u32()?;
            let len = r.u64()?;
            let mut column = Vec::with_capacity(len as usize);
            for _ in 0..len {
                column.push(r.u64()? as usize);
            }
            grid.insert(hour, column);
        }
        let mut maps = [BTreeMap::new(), BTreeMap::new()];
        for map in &mut maps {
            let n = r.u64()?;
            for _ in 0..n {
                let hour = r.u32()?;
                map.insert(hour, decode_id_set(r)?);
            }
        }
        let [first_sets, last_sets] = maps;
        Ok(Table2Accumulator {
            topic,
            folds,
            grid,
            first_sets,
            last_sets,
        })
    }
}

/// Streaming Figure-2 accumulator for one topic: per-day count sums plus
/// the first and latest snapshots' per-day ID sets.
#[derive(Debug, Clone)]
pub struct Figure2Accumulator {
    topic: Topic,
    folds: usize,
    sums: [u64; 28],
    first_day_sets: BTreeMap<u32, HashSet<VideoId>>,
    last_day_sets: BTreeMap<u32, HashSet<VideoId>>,
}

impl Figure2Accumulator {
    /// An empty accumulator for `topic`.
    pub fn new(topic: Topic) -> Figure2Accumulator {
        Figure2Accumulator {
            topic,
            folds: 0,
            sums: [0; 28],
            first_day_sets: BTreeMap::new(),
            last_day_sets: BTreeMap::new(),
        }
    }

    /// Folds the next snapshot's hourly results, unioning hours into
    /// window days. The day sums are exact `u64` counts, so their `f64`
    /// average is bit-identical to the batch sum of per-snapshot sizes
    /// (every partial sum of set sizes is far below 2⁵³).
    pub fn fold(&mut self, ts: &TopicSnapshot) {
        let mut day_sets: BTreeMap<u32, HashSet<VideoId>> = BTreeMap::new();
        for hour in &ts.hours {
            day_sets
                .entry(hour.hour / 24)
                .or_default()
                .extend(hour.video_ids.iter().cloned());
        }
        for (&day, set) in &day_sets {
            if let Some(sum) = self.sums.get_mut(day as usize) {
                *sum += set.len() as u64;
            }
        }
        if self.folds == 0 {
            self.first_day_sets = day_sets.clone();
        }
        self.last_day_sets = day_sets;
        self.folds += 1;
    }

    /// Finalizes into a [`Figure2Topic`] over everything folded so far.
    pub fn finish(&self) -> Figure2Topic {
        let empty = HashSet::new();
        let days = (0..28)
            .map(|day| {
                let first = self.first_day_sets.get(&day).unwrap_or(&empty);
                let last = self.last_day_sets.get(&day).unwrap_or(&empty);
                let sum = self.sums.get(day as usize).copied().unwrap_or(0);
                DayPoint {
                    day,
                    first: first.len(),
                    last: last.len(),
                    avg: sum as f64 / self.folds.max(1) as f64,
                    jaccard_first_last: jaccard(first, last),
                }
            })
            .collect();
        Figure2Topic {
            topic: self.topic,
            days,
        }
    }

    /// Serializes accumulator state for a checkpoint.
    pub fn encode_state(&self, w: &mut ckpt::Writer) {
        w.put_u64(self.folds as u64);
        for &sum in &self.sums {
            w.put_u64(sum);
        }
        for sets in [&self.first_day_sets, &self.last_day_sets] {
            w.put_u64(sets.len() as u64);
            for (day, set) in sets {
                w.put_u32(*day);
                encode_id_set(w, set);
            }
        }
    }

    /// Rebuilds accumulator state from a checkpoint.
    pub fn decode_state(topic: Topic, r: &mut ckpt::Reader) -> ckpt::Result<Figure2Accumulator> {
        let folds = r.u64()? as usize;
        let mut sums = [0u64; 28];
        for sum in &mut sums {
            *sum = r.u64()?;
        }
        let mut maps = [BTreeMap::new(), BTreeMap::new()];
        for map in &mut maps {
            let n = r.u64()?;
            for _ in 0..n {
                let day = r.u32()?;
                map.insert(day, decode_id_set(r)?);
            }
        }
        let [first_day_sets, last_day_sets] = maps;
        Ok(Figure2Accumulator {
            topic,
            folds,
            sums,
            first_day_sets,
            last_day_sets,
        })
    }
}

/// Computes one topic's Table 2 row by folding every snapshot through a
/// [`Table2Accumulator`].
pub fn table2_row(dataset: &AuditDataset, topic: Topic) -> Table2Row {
    let missing = TopicSnapshot::default();
    let mut acc = Table2Accumulator::new(topic);
    for snapshot in &dataset.snapshots {
        acc.fold(snapshot.topics.get(&topic).unwrap_or(&missing));
    }
    acc.finish()
}

/// Computes Table 2 for every topic.
pub fn table2(dataset: &AuditDataset) -> Vec<Table2Row> {
    dataset
        .topics
        .iter()
        .map(|&t| table2_row(dataset, t))
        .collect()
}

/// Computes Figure 2 for one topic by folding every snapshot through a
/// [`Figure2Accumulator`].
pub fn figure2_topic(dataset: &AuditDataset, topic: Topic) -> Figure2Topic {
    let missing = TopicSnapshot::default();
    let mut acc = Figure2Accumulator::new(topic);
    for snapshot in &dataset.snapshots {
        acc.fold(snapshot.topics.get(&topic).unwrap_or(&missing));
    }
    acc.finish()
}

/// Computes Figure 2 for every topic.
pub fn figure2(dataset: &AuditDataset) -> Vec<Figure2Topic> {
    dataset
        .topics
        .iter()
        .map(|&t| figure2_topic(dataset, t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{Collector, CollectorConfig};
    use crate::testutil::test_client;

    fn quick_dataset() -> AuditDataset {
        let (client, _service) = test_client(0.25);
        let config = CollectorConfig {
            fetch_metadata: false,
            fetch_channels: false,
            ..CollectorConfig::quick(vec![Topic::Capitol, Topic::WorldCup], 3)
        };
        Collector::new(&client, config).run().unwrap()
    }

    #[test]
    fn per_hour_counts_stay_below_the_page_cap() {
        let dataset = quick_dataset();
        for row in table2(&dataset) {
            assert!(row.max < 50, "{}: max {}", row.topic, row.max);
            assert_eq!(row.min, 0, "{}", row.topic);
            assert!(row.mean > 0.0 && row.mean < 5.0, "{}: mean {}", row.topic, row.mean);
            assert!(row.n_hours > 10, "{}: N {}", row.topic, row.n_hours);
            assert!(row.n_hours <= 672);
            if row.rho.is_finite() {
                assert!((-1.0..=1.0).contains(&row.rho));
            }
        }
    }

    #[test]
    fn mean_is_total_over_all_hours() {
        let dataset = quick_dataset();
        let row = table2_row(&dataset, Topic::Capitol);
        let total: usize = (0..dataset.len())
            .map(|i| dataset.id_set(Topic::Capitol, i).len())
            .sum();
        let expected = total as f64 / (672 * dataset.len()) as f64;
        assert!((row.mean - expected).abs() < 1e-9);
    }

    #[test]
    fn figure2_daily_shapes_coincide_across_snapshots() {
        let dataset = quick_dataset();
        for ft in figure2(&dataset) {
            assert_eq!(ft.days.len(), 28);
            // The average curve correlates strongly with both first and
            // last (the paper: "map almost perfectly on each other").
            let avg: Vec<f64> = ft.days.iter().map(|d| d.avg).collect();
            let first: Vec<f64> = ft.days.iter().map(|d| d.first as f64).collect();
            let last: Vec<f64> = ft.days.iter().map(|d| d.last as f64).collect();
            let r1 = ytaudit_stats::rank::pearson(&avg, &first).unwrap().coefficient;
            let r2 = ytaudit_stats::rank::pearson(&avg, &last).unwrap().coefficient;
            assert!(r1 > 0.9, "{}: avg-first r {r1}", ft.topic);
            assert!(r2 > 0.9, "{}: avg-last r {r2}", ft.topic);
        }
    }

    #[test]
    fn capitol_peaks_at_its_focal_day() {
        let dataset = quick_dataset();
        let ft = figure2_topic(&dataset, Topic::Capitol);
        let peak_day = ft
            .days
            .iter()
            .max_by(|a, b| a.avg.partial_cmp(&b.avg).unwrap())
            .unwrap()
            .day;
        // Focal date is day 14 of the window; Capitol's burst is tight.
        assert!((13..=16).contains(&peak_day), "peak at day {peak_day}");
    }
}
