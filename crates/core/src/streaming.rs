//! The streaming analyzer: folds committed (topic, snapshot) pairs into
//! online accumulators as they land and finalizes into an
//! [`AnalysisReport`].
//!
//! Each pair carries a **plan index** — `snapshot × topics.len() + the
//! topic's position in plan order` — the order a sequential collection
//! commits pairs. The analyzer folds pairs strictly in plan-index order;
//! out-of-order arrivals wait in a small reorder buffer whose peak size
//! is reported (and optionally capped) so callers can assert that a
//! follow-mode analysis never materializes the dataset.
//!
//! The batch entry point [`Analyzer::analyze_dataset`] replays a
//! materialized [`AuditDataset`] through the very same accumulators —
//! "fold everything, then finish" — so batch and follow analyses share
//! one numeric code path and produce bit-identical report JSON.

use crate::attrition::{decode_chain, encode_chain, figure3_from_chain, AttritionAccumulator};
use crate::ckpt;
use crate::comments::Table5Accumulator;
use crate::consistency::ConsistencyAccumulator;
use crate::dataset::{AuditDataset, ChannelInfo, CommentsSnapshot, TopicSnapshot, VideoInfo};
use crate::idcheck::Figure4Accumulator;
use crate::poolsize::Table4Accumulator;
use crate::randomization::{Figure2Accumulator, Table2Accumulator};
use crate::regression::{table3, table6, table7, RegressionAccumulator};
use crate::report::{AnalysisReport, RegressionReport};
use std::collections::{BTreeMap, HashSet};
use ytaudit_stats::markov::MarkovChain2;
use ytaudit_types::{ChannelId, Timestamp, Topic, VideoId};

/// One committed (topic, snapshot) pair, as the follow driver reads it
/// off the store log or the batch path slices it out of a dataset.
#[derive(Debug, Clone)]
pub struct FoldInput {
    /// The topic of this pair.
    pub topic: Topic,
    /// The snapshot's collection date.
    pub date: Timestamp,
    /// The committed search results.
    pub data: TopicSnapshot,
    /// The comment collection, when this snapshot fetched comments.
    pub comments: Option<CommentsSnapshot>,
    /// Video metadata fetched alongside this pair.
    pub videos: Vec<VideoInfo>,
    /// Quota units this pair's commit recorded.
    pub quota_delta: u64,
}

/// Errors from offering pairs to an [`Analyzer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalyzeError {
    /// The reorder buffer exceeded the configured cap — the input is
    /// arriving too far out of plan order for bounded-memory analysis.
    BufferCap {
        /// Pairs currently buffered.
        buffered: usize,
        /// The configured cap.
        cap: usize,
    },
    /// A pair was offered after [`Analyzer::end`].
    Ended,
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalyzeError::BufferCap { buffered, cap } => write!(
                f,
                "reorder buffer holds {buffered} pairs, exceeding the cap of {cap}"
            ),
            AnalyzeError::Ended => write!(f, "pair offered after end of collection"),
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// The streaming analyzer: one accumulator per (experiment, topic), plus
/// the pooled regression state.
#[derive(Debug, Clone)]
pub struct Analyzer {
    topics: Vec<Topic>,
    folded: u64,
    buffer: BTreeMap<u64, FoldInput>,
    peak_buffered: usize,
    max_buffered: Option<usize>,
    consistency: Vec<ConsistencyAccumulator>,
    table2: Vec<Table2Accumulator>,
    figure2: Vec<Figure2Accumulator>,
    attrition: Vec<AttritionAccumulator>,
    table4: Vec<Table4Accumulator>,
    table5: Vec<Table5Accumulator>,
    figure4: Vec<Figure4Accumulator>,
    regression: RegressionAccumulator,
    quota: u64,
    channel_meta: BTreeMap<ChannelId, ChannelInfo>,
    ended: bool,
}

impl Analyzer {
    /// A fresh analyzer for a collection over `topics` (plan order).
    pub fn new(topics: Vec<Topic>) -> Analyzer {
        Analyzer {
            consistency: topics.iter().map(|&t| ConsistencyAccumulator::new(t)).collect(),
            table2: topics.iter().map(|&t| Table2Accumulator::new(t)).collect(),
            figure2: topics.iter().map(|&t| Figure2Accumulator::new(t)).collect(),
            attrition: topics.iter().map(|_| AttritionAccumulator::new()).collect(),
            table4: topics.iter().map(|&t| Table4Accumulator::new(t)).collect(),
            table5: topics.iter().map(|&t| Table5Accumulator::new(t)).collect(),
            figure4: topics.iter().map(|&t| Figure4Accumulator::new(t)).collect(),
            regression: RegressionAccumulator::new(),
            topics,
            folded: 0,
            buffer: BTreeMap::new(),
            peak_buffered: 0,
            max_buffered: None,
            quota: 0,
            channel_meta: BTreeMap::new(),
            ended: false,
        }
    }

    /// Caps the reorder buffer: offers that would exceed `cap` buffered
    /// pairs fail with [`AnalyzeError::BufferCap`] instead of growing
    /// memory without bound.
    pub fn with_max_buffered(mut self, cap: usize) -> Analyzer {
        self.max_buffered = Some(cap);
        self
    }

    /// The topics under analysis, in plan order.
    pub fn topics(&self) -> &[Topic] {
        &self.topics
    }

    /// Number of pairs folded so far (the resume watermark: offers below
    /// it are silently dropped as already-folded duplicates).
    pub fn folded_pairs(&self) -> u64 {
        self.folded
    }

    /// Largest number of pairs the reorder buffer ever held.
    pub fn peak_buffered(&self) -> usize {
        self.peak_buffered
    }

    /// Complete snapshots folded so far.
    pub fn snapshots_folded(&self) -> usize {
        if self.topics.is_empty() {
            0
        } else {
            (self.folded / self.topics.len() as u64) as usize
        }
    }

    /// True once [`Analyzer::end`] has been called.
    pub fn ended(&self) -> bool {
        self.ended
    }

    /// Offers one pair at its plan index. Pairs below the fold watermark
    /// are dropped (already folded — the resume path re-reads the log
    /// from the start, so a replayed prefix must be a no-op even after
    /// the end record); pairs at the watermark fold immediately, along
    /// with any buffered successors they unblock; pairs above it wait in
    /// the reorder buffer.
    pub fn offer(&mut self, plan_idx: u64, input: FoldInput) -> Result<(), AnalyzeError> {
        if plan_idx < self.folded || self.buffer.contains_key(&plan_idx) {
            return Ok(());
        }
        if self.ended {
            return Err(AnalyzeError::Ended);
        }
        self.buffer.insert(plan_idx, input);
        self.peak_buffered = self.peak_buffered.max(self.buffer.len());
        if let Some(cap) = self.max_buffered {
            if self.buffer.len() > cap {
                return Err(AnalyzeError::BufferCap {
                    buffered: self.buffer.len(),
                    cap,
                });
            }
        }
        while let Some(input) = self.buffer.remove(&self.folded) {
            self.fold_input(input);
            self.folded += 1;
        }
        Ok(())
    }

    fn fold_input(&mut self, input: FoldInput) {
        let pos = (self.folded % self.topics.len().max(1) as u64) as usize;
        let id_set: HashSet<VideoId> = input.data.id_set();
        let meta_set: HashSet<VideoId> = input.data.meta_returned.iter().cloned().collect();
        if let Some(acc) = self.consistency.get_mut(pos) {
            acc.fold(id_set.clone());
        }
        if let Some(acc) = self.table2.get_mut(pos) {
            acc.fold(&input.data);
        }
        if let Some(acc) = self.figure2.get_mut(pos) {
            acc.fold(&input.data);
        }
        if let Some(acc) = self.attrition.get_mut(pos) {
            acc.fold(&id_set);
        }
        if let Some(acc) = self.table4.get_mut(pos) {
            acc.fold(&input.data);
        }
        if let Some(acc) = self.table5.get_mut(pos) {
            acc.fold(input.comments.as_ref(), id_set.clone());
        }
        if let Some(acc) = self.figure4.get_mut(pos) {
            acc.fold(id_set, meta_set);
        }
        self.regression
            .fold(input.topic, &input.data, input.date, &input.videos);
        self.quota += input.quota_delta;
    }

    /// Marks the collection finished: records the end-of-collection
    /// channel fetches and the final quota delta. Idempotent — a resumed
    /// follow replays the end record it already folded.
    pub fn end(
        &mut self,
        channels: impl IntoIterator<Item = ChannelInfo>,
        quota_delta: u64,
    ) {
        if self.ended {
            return;
        }
        for channel in channels {
            self.channel_meta.entry(channel.id.clone()).or_insert(channel);
        }
        self.quota += quota_delta;
        self.ended = true;
    }

    /// Seeds video metadata directly (the batch path: a materialized
    /// dataset carries one merged metadata map rather than per-pair
    /// fetches; the contents are identical either way).
    pub fn seed_video_meta<'a>(&mut self, videos: impl IntoIterator<Item = &'a VideoInfo>) {
        for video in videos {
            self.regression.seed_video(video);
        }
    }

    /// Finalizes every accumulator into the combined report.
    pub fn finish(&self) -> AnalysisReport {
        let n_snapshots = self.snapshots_folded();
        let mut chain = MarkovChain2::new();
        for acc in &self.attrition {
            chain.merge(acc.chain());
        }
        let regression = self
            .regression
            .finish(&self.topics, n_snapshots, &self.channel_meta)
            .map_err(|e| e.to_string())
            .map(|data| RegressionReport {
                names: data.names.clone(),
                n_observations: data.frequency.len(),
                table3: table3(&data).map_err(|e| e.to_string()),
                table6: table6(&data).map_err(|e| e.to_string()),
                table7: table7(&data).map_err(|e| e.to_string()),
            });
        AnalysisReport {
            topics: self.topics.clone(),
            n_snapshots,
            quota_units_spent: self.quota,
            table1: self.consistency.iter().map(|a| a.table1_row()).collect(),
            figure1: self.consistency.iter().map(|a| a.figure1_topic()).collect(),
            table2: self.table2.iter().map(|a| a.finish()).collect(),
            figure2: self.figure2.iter().map(|a| a.finish()).collect(),
            figure3: figure3_from_chain(&chain),
            table4: self.table4.iter().filter_map(|a| a.finish()).collect(),
            table5: self.table5.iter().filter_map(|a| a.finish()).collect(),
            figure4: self.figure4.iter().map(|a| a.finish()).collect(),
            regression,
        }
    }

    /// Analyzes a materialized dataset by folding every (snapshot,
    /// topic) pair — missing pairs fold as empty defaults, preserving the
    /// batch behavior on partial collections — then finishing.
    pub fn analyze_dataset(dataset: &AuditDataset) -> AnalysisReport {
        let mut analyzer = Analyzer::new(dataset.topics.clone());
        let width = dataset.topics.len() as u64;
        for (s, snapshot) in dataset.snapshots.iter().enumerate() {
            for (t, &topic) in dataset.topics.iter().enumerate() {
                let input = FoldInput {
                    topic,
                    date: snapshot.date,
                    data: snapshot.topics.get(&topic).cloned().unwrap_or_default(),
                    comments: snapshot.comments.get(&topic).cloned(),
                    videos: Vec::new(),
                    quota_delta: 0,
                };
                // In-order offers cannot hit the buffer cap or the
                // ended state, so the result is always Ok.
                let _ = analyzer.offer(s as u64 * width + t as u64, input);
            }
        }
        analyzer.seed_video_meta(dataset.video_meta.values());
        analyzer.end(dataset.channel_meta.values().cloned(), dataset.quota_units_spent);
        analyzer.finish()
    }

    /// Serializes the full analyzer state (excluding the reorder buffer —
    /// unfolded pairs are re-read from the store on resume) into
    /// checkpoint bytes.
    pub fn encode_state(&self) -> Vec<u8> {
        let mut w = ckpt::Writer::new();
        w.put_u8(self.topics.len() as u8);
        for topic in &self.topics {
            w.put_u8(topic.index() as u8);
        }
        w.put_u64(self.folded);
        w.put_u64(self.quota);
        w.put_bool(self.ended);
        w.put_u64(self.channel_meta.len() as u64);
        for channel in self.channel_meta.values() {
            encode_channel_info(&mut w, channel);
        }
        for pos in 0..self.topics.len() {
            if let Some(acc) = self.consistency.get(pos) {
                acc.encode_state(&mut w);
            }
            if let Some(acc) = self.table2.get(pos) {
                acc.encode_state(&mut w);
            }
            if let Some(acc) = self.figure2.get(pos) {
                acc.encode_state(&mut w);
            }
            if let Some(acc) = self.attrition.get(pos) {
                acc.encode_state(&mut w);
            }
            if let Some(acc) = self.table4.get(pos) {
                acc.encode_state(&mut w);
            }
            if let Some(acc) = self.table5.get(pos) {
                acc.encode_state(&mut w);
            }
            if let Some(acc) = self.figure4.get(pos) {
                acc.encode_state(&mut w);
            }
        }
        self.regression.encode_state(&mut w);
        w.into_bytes()
    }

    /// Rebuilds an analyzer from checkpoint bytes.
    pub fn decode_state(bytes: &[u8]) -> ckpt::Result<Analyzer> {
        let mut r = ckpt::Reader::new(bytes)?;
        let n_topics = r.u8()? as usize;
        let mut topics = Vec::with_capacity(n_topics);
        for _ in 0..n_topics {
            let idx = r.u8()? as usize;
            topics.push(
                *Topic::ALL
                    .get(idx)
                    .ok_or_else(|| format!("invalid topic index {idx}"))?,
            );
        }
        let folded = r.u64()?;
        let quota = r.u64()?;
        let ended = r.bool()?;
        let n_channels = r.u64()?;
        let mut channel_meta = BTreeMap::new();
        for _ in 0..n_channels {
            let channel = decode_channel_info(&mut r)?;
            channel_meta.insert(channel.id.clone(), channel);
        }
        let mut consistency = Vec::with_capacity(n_topics);
        let mut table2 = Vec::with_capacity(n_topics);
        let mut figure2 = Vec::with_capacity(n_topics);
        let mut attrition = Vec::with_capacity(n_topics);
        let mut table4 = Vec::with_capacity(n_topics);
        let mut table5 = Vec::with_capacity(n_topics);
        let mut figure4 = Vec::with_capacity(n_topics);
        for &topic in &topics {
            consistency.push(ConsistencyAccumulator::decode_state(topic, &mut r)?);
            table2.push(Table2Accumulator::decode_state(topic, &mut r)?);
            figure2.push(Figure2Accumulator::decode_state(topic, &mut r)?);
            attrition.push(AttritionAccumulator::decode_state(&mut r)?);
            table4.push(Table4Accumulator::decode_state(topic, &mut r)?);
            table5.push(Table5Accumulator::decode_state(topic, &mut r)?);
            figure4.push(Figure4Accumulator::decode_state(topic, &mut r)?);
        }
        let regression = RegressionAccumulator::decode_state(&mut r)?;
        r.expect_end()?;
        Ok(Analyzer {
            topics,
            folded,
            buffer: BTreeMap::new(),
            peak_buffered: 0,
            max_buffered: None,
            consistency,
            table2,
            figure2,
            attrition,
            table4,
            table5,
            figure4,
            regression,
            quota,
            channel_meta,
            ended,
        })
    }
}

fn encode_channel_info(w: &mut ckpt::Writer, channel: &ChannelInfo) {
    w.put_str(channel.id.as_str());
    w.put_i64(channel.published_at.0);
    w.put_u64(channel.views);
    w.put_u64(channel.subscribers);
    w.put_u64(channel.video_count);
}

fn decode_channel_info(r: &mut ckpt::Reader) -> ckpt::Result<ChannelInfo> {
    Ok(ChannelInfo {
        id: ChannelId::new(r.str()?),
        published_at: Timestamp(r.i64()?),
        views: r.u64()?,
        subscribers: r.u64()?,
        video_count: r.u64()?,
    })
}

/// Checks that the eight chain-count codecs in [`crate::attrition`] stay
/// linked into the public API (they back the analyzer checkpoint).
#[doc(hidden)]
pub fn _chain_codec_round_trip(chain: &MarkovChain2) -> ckpt::Result<MarkovChain2> {
    let mut w = ckpt::Writer::bare();
    encode_chain(&mut w, chain);
    let bytes = w.into_bytes();
    let mut r = ckpt::Reader::bare(&bytes);
    decode_chain(&mut r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{Collector, CollectorConfig};
    use crate::testutil::test_client;

    fn full_dataset() -> AuditDataset {
        let (client, _service) = test_client(0.3);
        let mut config =
            CollectorConfig::quick(vec![Topic::Blm, Topic::Higgs, Topic::WorldCup], 4);
        config.fetch_comments = true;
        Collector::new(&client, config).run().unwrap()
    }

    fn offers_from(dataset: &AuditDataset) -> Vec<(u64, FoldInput)> {
        let width = dataset.topics.len() as u64;
        let mut offers = Vec::new();
        for (s, snapshot) in dataset.snapshots.iter().enumerate() {
            for (t, &topic) in dataset.topics.iter().enumerate() {
                offers.push((
                    s as u64 * width + t as u64,
                    FoldInput {
                        topic,
                        date: snapshot.date,
                        data: snapshot.topics.get(&topic).cloned().unwrap_or_default(),
                        comments: snapshot.comments.get(&topic).cloned(),
                        videos: Vec::new(),
                        quota_delta: 0,
                    },
                ));
            }
        }
        offers
    }

    fn follow_style_report(dataset: &AuditDataset, offers: Vec<(u64, FoldInput)>) -> AnalysisReport {
        let mut analyzer = Analyzer::new(dataset.topics.clone());
        for (plan_idx, input) in offers {
            analyzer.offer(plan_idx, input).unwrap();
        }
        analyzer.seed_video_meta(dataset.video_meta.values());
        analyzer.end(dataset.channel_meta.values().cloned(), dataset.quota_units_spent);
        analyzer.finish()
    }

    #[test]
    fn streaming_matches_batch_bit_for_bit() {
        let dataset = full_dataset();
        let batch = Analyzer::analyze_dataset(&dataset);
        let streamed = follow_style_report(&dataset, offers_from(&dataset));
        assert_eq!(batch.to_json(), streamed.to_json());
        // And the report agrees with the standalone batch functions.
        assert_eq!(batch.table1, crate::consistency::table1(&dataset));
        assert_eq!(batch.figure1, crate::consistency::figure1(&dataset));
        assert_eq!(batch.table2, crate::randomization::table2(&dataset));
        assert_eq!(batch.figure2, crate::randomization::figure2(&dataset));
        assert_eq!(batch.figure3, crate::attrition::figure3(&dataset));
        assert_eq!(batch.table4, crate::poolsize::table4(&dataset));
        assert_eq!(batch.table5, crate::comments::table5(&dataset));
        assert_eq!(batch.figure4, crate::idcheck::figure4(&dataset));
        assert_eq!(batch.quota_units_spent, dataset.quota_units_spent);
    }

    #[test]
    fn out_of_order_offers_reorder_and_match() {
        let dataset = full_dataset();
        let batch = Analyzer::analyze_dataset(&dataset);
        let mut offers = offers_from(&dataset);
        // Reverse within a window of 4 — a worst case far beyond what a
        // sequential store produces.
        offers.reverse();
        offers.sort_by_key(|(idx, _)| idx / 4);
        let mut analyzer = Analyzer::new(dataset.topics.clone());
        for (plan_idx, input) in offers {
            analyzer.offer(plan_idx, input).unwrap();
        }
        assert!(analyzer.peak_buffered() >= 4);
        analyzer.seed_video_meta(dataset.video_meta.values());
        analyzer.end(dataset.channel_meta.values().cloned(), dataset.quota_units_spent);
        assert_eq!(batch.to_json(), analyzer.finish().to_json());
    }

    #[test]
    fn buffer_cap_rejects_runaway_reordering() {
        let dataset = full_dataset();
        let mut analyzer = Analyzer::new(dataset.topics.clone()).with_max_buffered(2);
        let offers = offers_from(&dataset);
        // Offer pairs 1.. without pair 0: everything buffers.
        let mut hit_cap = false;
        for (plan_idx, input) in offers.into_iter().skip(1) {
            if let Err(AnalyzeError::BufferCap { cap, .. }) = analyzer.offer(plan_idx, input) {
                assert_eq!(cap, 2);
                hit_cap = true;
                break;
            }
        }
        assert!(hit_cap);
        // In-order offers never buffer more than one pair.
        let mut inorder = Analyzer::new(dataset.topics.clone()).with_max_buffered(1);
        for (plan_idx, input) in offers_from(&dataset) {
            inorder.offer(plan_idx, input).unwrap();
        }
        assert_eq!(inorder.peak_buffered(), 1);
    }

    #[test]
    fn checkpoint_resume_matches_uninterrupted_run() {
        let dataset = full_dataset();
        let offers = offers_from(&dataset);
        let cut = offers.len() / 2;
        let mut analyzer = Analyzer::new(dataset.topics.clone());
        for (plan_idx, input) in offers.iter().take(cut).cloned() {
            analyzer.offer(plan_idx, input).unwrap();
        }
        let bytes = analyzer.encode_state();
        let mut resumed = Analyzer::decode_state(&bytes).unwrap();
        assert_eq!(resumed.folded_pairs(), cut as u64);
        assert_eq!(resumed.topics(), dataset.topics.as_slice());
        // Resume re-reads the log from the start: already-folded offers
        // are dropped, the rest fold normally.
        for (plan_idx, input) in offers {
            resumed.offer(plan_idx, input).unwrap();
        }
        resumed.seed_video_meta(dataset.video_meta.values());
        resumed.end(dataset.channel_meta.values().cloned(), dataset.quota_units_spent);
        let batch = Analyzer::analyze_dataset(&dataset);
        assert_eq!(batch.to_json(), resumed.finish().to_json());
    }

    #[test]
    fn empty_collection_finishes_cleanly() {
        let analyzer = Analyzer::new(vec![Topic::Higgs]);
        let report = analyzer.finish();
        assert_eq!(report.n_snapshots, 0);
        assert!(report.table4.is_empty());
        assert!(report.figure3.is_none());
        assert!(report.regression.is_err());
        // The JSON writer accepts the degenerate report.
        assert!(report.to_json().contains("\"figure3\":null"));
    }

    #[test]
    fn chain_codec_round_trips() {
        let dataset = full_dataset();
        let chain = crate::attrition::markov_chain(&dataset, &dataset.topics);
        let decoded = _chain_codec_round_trip(&chain).unwrap();
        assert_eq!(
            crate::attrition::figure3_from_chain(&chain),
            crate::attrition::figure3_from_chain(&decoded)
        );
    }
}
