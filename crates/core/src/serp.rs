//! SERP-vs-API comparison — the paper's second §6.2 proposal.
//!
//! "Future research can employ similar methods to ours to check the
//! consistency between results of sockpuppet SERPs and search endpoint
//! results. This would help us understand if the search endpoint has
//! research value beyond data collection, for example, as a low-resource
//! way of conducting SERP audits."
//!
//! This module runs that comparison: a panel of simulated sockpuppets
//! fetches SERPs straight from the platform (the browser path), the Data
//! API is queried with `order=relevance` through the normal client (the
//! researcher path), and the two are compared at the SERP page size.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use ytaudit_client::{Order, SearchQuery, YouTubeClient};
use ytaudit_platform::serp::SERP_PAGE_SIZE;
use ytaudit_platform::Platform;
use ytaudit_types::{Result, Timestamp, Topic, VideoId};

/// The agreement measurements for one topic at one date.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SerpComparison {
    /// The topic.
    pub topic: Topic,
    /// Puppets in the panel.
    pub n_puppets: usize,
    /// Mean pairwise overlap@20 between puppet SERPs (the audit
    /// literature's consistency baseline).
    pub puppet_pairwise_overlap: f64,
    /// Mean overlap@20 between the API's relevance-ordered top page and
    /// each puppet's SERP.
    pub api_serp_overlap: f64,
    /// Expected overlap of a random 20-video subset of the topic pool —
    /// the null baseline both numbers must beat.
    pub random_baseline: f64,
}

fn overlap(a: &[VideoId], b: &[VideoId]) -> f64 {
    let sa: HashSet<_> = a.iter().collect();
    let sb: HashSet<_> = b.iter().collect();
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    sa.intersection(&sb).count() as f64 / sa.len().min(sb.len()) as f64
}

/// Runs the comparison for one topic at `date`, with a panel of
/// `n_puppets` sockpuppets.
pub fn serp_vs_api(
    platform: &Platform,
    client: &YouTubeClient,
    topic: Topic,
    n_puppets: usize,
    date: Timestamp,
) -> Result<SerpComparison> {
    // The browser path: each puppet loads the SERP.
    let pages: Vec<Vec<VideoId>> = (0..n_puppets as u64)
        .map(|puppet| platform.serp(topic, puppet, date))
        .collect();
    let mut pairwise = Vec::new();
    for i in 0..pages.len() {
        for j in i + 1..pages.len() {
            pairwise.push(overlap(&pages[i], &pages[j]));
        }
    }
    let puppet_pairwise_overlap = if pairwise.is_empty() {
        1.0
    } else {
        pairwise.iter().sum::<f64>() / pairwise.len() as f64
    };

    // The researcher path: the API with order=relevance, one page of 20.
    client.set_sim_time(Some(date));
    let api_page = client.search_page(
        &SearchQuery::keywords(topic.spec().query)
            .order(Order::Relevance)
            .max_results(SERP_PAGE_SIZE as u32),
        None,
    )?;
    let api_ids: Vec<VideoId> = api_page
        .items
        .iter()
        .map(|item| VideoId::new(item.id.video_id.clone()))
        .collect();
    let api_serp_overlap = pages
        .iter()
        .map(|page| overlap(&api_ids, page))
        .sum::<f64>()
        / pages.len().max(1) as f64;

    // Null baseline: a random 20-subset of the topic's (visible) corpus.
    let topic_size = platform
        .corpus()
        .topics
        .iter()
        .find(|tc| tc.topic == topic)
        .map(|tc| tc.videos.len())
        .unwrap_or(1)
        .max(1);
    let random_baseline = SERP_PAGE_SIZE as f64 / topic_size as f64;

    Ok(SerpComparison {
        topic,
        n_puppets,
        puppet_pairwise_overlap,
        api_serp_overlap,
        random_baseline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::test_client;

    #[test]
    fn api_relevance_search_approximates_serp_audits() {
        let (client, service) = test_client(0.5);
        let date = Timestamp::from_ymd(2025, 2, 9).unwrap();
        let cmp = serp_vs_api(service.platform(), &client, Topic::Blm, 4, date).unwrap();
        // Puppets agree with each other strongly.
        assert!(
            cmp.puppet_pairwise_overlap > 0.5,
            "puppets: {}",
            cmp.puppet_pairwise_overlap
        );
        // The API's relevance page beats the random baseline by a wide
        // margin — the §6.2 hypothesis holds in the simulator.
        assert!(
            cmp.api_serp_overlap > 10.0 * cmp.random_baseline,
            "api-serp {} vs baseline {}",
            cmp.api_serp_overlap,
            cmp.random_baseline
        );
        // But it is not a perfect substitute (the sampler suppresses).
        assert!(cmp.api_serp_overlap < 1.0);
    }

    #[test]
    fn comparison_is_reproducible() {
        let (client, service) = test_client(0.3);
        let date = Timestamp::from_ymd(2025, 3, 1).unwrap();
        let a = serp_vs_api(service.platform(), &client, Topic::Higgs, 3, date).unwrap();
        let b = serp_vs_api(service.platform(), &client, Topic::Higgs, 3, date).unwrap();
        assert_eq!(a, b);
    }
}
