//! # ytaudit-core
//!
//! The paper's methodology, end to end:
//!
//! * [`schedule`] — the 16-snapshot, 12-week collection calendar;
//! * [`collect`] — the §3 harness: hourly time-binned search queries,
//!   immediate `Videos: list` metadata fetches, first/last-snapshot
//!   comment crawls, and final `Channels: list` lookups;
//! * [`dataset`] — the collected data model (JSON-serializable for
//!   caching);
//! * [`consistency`] — Figure 1 (rolling Jaccards + set-difference error
//!   bars) and Table 1;
//! * [`randomization`] — Table 2 (ceiling-effect test, Spearman ρ) and
//!   Figure 2 (daily frequency overlays);
//! * [`attrition`] — Figure 3 (second-order Markov chain);
//! * [`regression`] — Tables 3, 6, 7 (ordinal logit, OLS+HC1, ordinal
//!   cloglog);
//! * [`poolsize`] — Table 4 (`totalResults` pool estimates);
//! * [`comments`] — Table 5 (comment-endpoint stability);
//! * [`idcheck`] — Figure 4 (`Videos: list` stability);
//! * [`strategy`] — the §6.1/6.2 strategy experiments (restriction
//!   ladder, topic splitting);
//! * [`ablation`] — switch off individual sampler mechanisms and verify
//!   which paper signature each one carries;
//! * [`periodicity`] — the §6.2 sparse-collection periodicity check,
//!   validated against a sampler with planted seasonality;
//! * [`serp`] — the §6.2 sockpuppet-SERP vs search-endpoint comparison;
//! * [`platform`] — the [`platform::Platform`] seam between the audit
//!   methodology and a concrete backend; the YouTube client is one
//!   implementation, `ytaudit-tiktok-sim` another;
//! * [`shard`] — plan partitioning for sharded multi-store collection;
//! * [`streaming`] — the online [`streaming::Analyzer`]: folds committed
//!   (topic, snapshot) pairs into running accumulators; the batch path
//!   replays a dataset through the same accumulators;
//! * [`report`] — the combined [`report::AnalysisReport`] with its
//!   canonical (bit-stable) JSON rendering;
//! * [`ckpt`] — the binary checkpoint wire format behind
//!   `analyze --follow` resume;
//! * [`testutil`] — in-process harness constructors shared by tests,
//!   examples, and benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod attrition;
pub mod ckpt;
pub mod collect;
pub mod comments;
pub mod consistency;
pub mod dataset;
pub mod idcheck;
pub mod periodicity;
pub mod platform;
pub mod poolsize;
pub mod randomization;
pub mod regression;
pub mod report;
pub mod schedule;
pub mod serp;
pub mod shard;
pub mod strategy;
pub mod streaming;
pub mod testutil;

pub use collect::{Collector, CollectorConfig, CollectorSink, MemorySink, TopicCommit};
pub use dataset::AuditDataset;
pub use platform::{Platform, SearchHit, SearchWindow};
pub use report::{AnalysisReport, RegressionReport};
pub use schedule::Schedule;
pub use shard::ShardSpec;
pub use streaming::{AnalyzeError, Analyzer, FoldInput};
