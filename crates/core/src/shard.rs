//! Shard plan partitioning for multi-store collection.
//!
//! A sharded collection splits the parent plan's topics round-robin
//! across `count` topic shards, each of which runs the normal collector
//! against its own store with `fetch_channels` off (the batched
//! `Channels: list` call is not additive across topic subsets), plus one
//! dedicated *finish shard* — an empty-topic plan that carries only the
//! final channel fetch. The merge step in `ytaudit-store` folds the
//! shard stores back into one canonical file in parent plan order; the
//! [`ShardSpec`] recorded in every shard store's Begin manifest is what
//! lets the merge validate it has exactly the right set of shards.

use crate::collect::CollectorConfig;
use ytaudit_types::Topic;

/// Identity of one shard within a sharded collection, recorded in the
/// shard store's Begin manifest. Topic shards have `index < count`; the
/// finish shard (channels only) has `index == count`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// This shard's position: `0..count` for topic shards, `count` for
    /// the finish shard.
    pub index: usize,
    /// Number of topic shards in the parent run.
    pub count: usize,
    /// The parent plan's full topic list, in plan order.
    pub parent_topics: Vec<Topic>,
    /// Whether the parent plan fetches channel metadata (carried by the
    /// finish shard).
    pub parent_fetch_channels: bool,
}

impl ShardSpec {
    /// Whether this is the finish shard (channel fetch only, no topics).
    pub fn is_finish(&self) -> bool {
        self.index == self.count
    }

    /// Which topic shard owns the parent topic at `position` when split
    /// `count` ways: round-robin, `position % count`.
    pub fn owner_of(position: usize, count: usize) -> usize {
        position % count.max(1)
    }

    /// The topics this shard is expected to hold, derived from the
    /// parent list — empty for the finish shard.
    pub fn expected_topics(&self) -> Vec<Topic> {
        if self.is_finish() {
            return Vec::new();
        }
        partition_topics(&self.parent_topics, self.count)
            .into_iter()
            .nth(self.index)
            .unwrap_or_default()
    }
}

/// Splits `topics` round-robin into `count` shards (shard `i` owns the
/// positions ≡ `i` mod `count`). Shards beyond the topic count come back
/// empty; relative plan order is preserved within each shard.
pub fn partition_topics(topics: &[Topic], count: usize) -> Vec<Vec<Topic>> {
    let count = count.max(1);
    let mut shards = vec![Vec::new(); count];
    for (position, &topic) in topics.iter().enumerate() {
        if let Some(shard) = shards.get_mut(position % count) {
            shard.push(topic);
        }
    }
    shards
}

/// Builds the per-topic-shard collector configs for splitting `parent`
/// `count` ways. Each shard keeps the parent schedule and fetch flags but
/// owns only its topic subset and never fetches channels (that belongs
/// to the finish shard).
pub fn shard_configs(parent: &CollectorConfig, count: usize) -> Vec<CollectorConfig> {
    partition_topics(&parent.topics, count)
        .into_iter()
        .enumerate()
        .map(|(index, topics)| CollectorConfig {
            topics,
            fetch_channels: false,
            shard: Some(ShardSpec {
                index,
                count,
                parent_topics: parent.topics.clone(),
                parent_fetch_channels: parent.fetch_channels,
            }),
            ..parent.clone()
        })
        .collect()
}

/// Builds the finish-shard config: no topics (so no pairs), carrying the
/// parent's channel-fetch flag for the one final `Channels: list` call.
pub fn finish_config(parent: &CollectorConfig, count: usize) -> CollectorConfig {
    CollectorConfig {
        topics: Vec::new(),
        fetch_channels: false,
        shard: Some(ShardSpec {
            index: count,
            count,
            parent_topics: parent.topics.clone(),
            parent_fetch_channels: parent.fetch_channels,
        }),
        ..parent.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parent() -> CollectorConfig {
        CollectorConfig::quick(vec![Topic::Higgs, Topic::Blm, Topic::Brexit], 2)
    }

    #[test]
    fn partition_is_invertible_via_owner_of() {
        for count in 1..=8 {
            let topics = parent().topics;
            let shards = partition_topics(&topics, count);
            assert_eq!(shards.len(), count);
            // Every parent position maps to exactly the shard that holds it.
            let mut cursor = vec![0usize; count];
            for (position, &topic) in topics.iter().enumerate() {
                let owner = ShardSpec::owner_of(position, count);
                assert_eq!(shards[owner][cursor[owner]], topic);
                cursor[owner] += 1;
            }
            let total: usize = shards.iter().map(Vec::len).sum();
            assert_eq!(total, topics.len());
        }
    }

    #[test]
    fn degenerate_counts_yield_empty_shards() {
        let shards = partition_topics(&[Topic::Higgs], 4);
        assert_eq!(shards[0], vec![Topic::Higgs]);
        assert!(shards[1..].iter().all(Vec::is_empty));
        // count = 0 is clamped to 1.
        assert_eq!(partition_topics(&[Topic::Higgs], 0).len(), 1);
    }

    #[test]
    fn shard_configs_carry_identity_and_disable_channels() {
        let parent = parent();
        let configs = shard_configs(&parent, 2);
        assert_eq!(configs.len(), 2);
        assert_eq!(configs[0].topics, vec![Topic::Higgs, Topic::Brexit]);
        assert_eq!(configs[1].topics, vec![Topic::Blm]);
        for (index, config) in configs.iter().enumerate() {
            assert!(!config.fetch_channels);
            let spec = config.shard.as_ref().unwrap();
            assert_eq!(spec.index, index);
            assert_eq!(spec.count, 2);
            assert_eq!(spec.parent_topics, parent.topics);
            assert!(spec.parent_fetch_channels);
            assert!(!spec.is_finish());
            assert_eq!(spec.expected_topics(), config.topics);
        }
    }

    #[test]
    fn finish_shard_has_no_pairs() {
        let config = finish_config(&parent(), 3);
        assert!(config.topics.is_empty());
        let spec = config.shard.as_ref().unwrap();
        assert!(spec.is_finish());
        assert_eq!(spec.index, 3);
        assert!(spec.expected_topics().is_empty());
    }
}
