//! Seed-sensitivity diagnostic: how the Table-6 coefficients move across
//! corpus seeds at reduced scale. The strong effects (topic dummies) are
//! seed-stable; the weak popularity effects attenuate at small corpus
//! scale because sparse hour bins give the top-k sampler little room to
//! express propensity — see tests/seed_robustness.rs.
//!
//! Run with: `cargo run --release -p ytaudit-core --example seedcheck`

use ytaudit_core::testutil::test_client_with_seed;
use ytaudit_core::{Collector, CollectorConfig};
use ytaudit_types::Topic;

fn main() {
    for seed in [11u64, 0xDEADBEEF, 42, 7] {
        let (client, _service) = test_client_with_seed(0.35, seed);
        let config = CollectorConfig {
            fetch_comments: false,
            ..CollectorConfig::quick(vec![Topic::Blm, Topic::Higgs, Topic::WorldCup], 6)
        };
        let dataset = Collector::new(&client, config).run().unwrap();
        let data = ytaudit_core::regression::build_regression_data(&dataset).unwrap();
        let fit = ytaudit_core::regression::table6(&data).unwrap();
        println!(
            "seed {seed:>10}: N={} duration {:+.3} (p {:.3}) likes {:+.3} higgs {:+.3}",
            fit.n,
            fit.coefficient("duration").unwrap(),
            fit.p_value("duration").unwrap(),
            fit.coefficient("likes").unwrap(),
            fit.coefficient("higgs (topic)").unwrap()
        );
    }
}
