//! # ytaudit-client
//!
//! The researcher-side client for the (simulated) YouTube Data API:
//!
//! * [`query`] — typed request builders matching the paper's Appendix-A
//!   parameters, including the per-hour time-binning and §6.1
//!   topic-splitting helpers;
//! * [`transport`] — interchangeable in-process and HTTP transports (an
//!   integration test pins them to byte-identical behaviour);
//! * [`client`] — [`YouTubeClient`] with retries, client-side pacing,
//!   full pagination for all six endpoints, and the recommended
//!   `Channels → PlaylistItems` pipeline for complete channel catalogues;
//! * [`budget`] — quota bookkeeping in the documented cost model
//!   (100 units per search, 1 per ID call).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod client;
pub mod query;
pub mod transport;

pub use budget::QuotaBudget;
pub use client::{SearchCollection, YouTubeClient};
pub use query::{Order, SearchQuery};
pub use transport::{HttpTransport, InProcessTransport, Transport};
