//! Transports: how a request reaches the (simulated) Data API.
//!
//! The audit harness runs against either transport interchangeably — the
//! in-process one for speed, the HTTP one to exercise the full REST path —
//! and an integration test asserts byte-identical behaviour between them.

use std::sync::Arc;
use ytaudit_api::quota::Endpoint;
use ytaudit_api::service::{ApiRequest, ApiService};
use ytaudit_net::url::encode_component;
use ytaudit_net::{HttpClient, Request, Url};
use ytaudit_types::{Error, Result, Timestamp};

/// A way to execute one Data API call.
pub trait Transport: Send + Sync {
    /// Executes the call, returning HTTP status and JSON body.
    fn execute(
        &self,
        endpoint: Endpoint,
        params: &[(String, String)],
        api_key: &str,
        now: Option<Timestamp>,
    ) -> Result<(u16, String)>;

    /// A short label for diagnostics.
    fn label(&self) -> &'static str;
}

/// Calls the service directly in-process (no sockets).
pub struct InProcessTransport {
    service: Arc<ApiService>,
}

impl InProcessTransport {
    /// Wraps a service.
    pub fn new(service: Arc<ApiService>) -> InProcessTransport {
        InProcessTransport { service }
    }
}

impl Transport for InProcessTransport {
    fn execute(
        &self,
        endpoint: Endpoint,
        params: &[(String, String)],
        api_key: &str,
        now: Option<Timestamp>,
    ) -> Result<(u16, String)> {
        Ok(self.service.handle(&ApiRequest {
            endpoint,
            params: params.to_vec(),
            api_key: Some(api_key.to_string()),
            now_override: now,
        }))
    }

    fn label(&self) -> &'static str {
        "in-process"
    }
}

/// Calls the API over HTTP via `ytaudit-net`. The underlying client is
/// held behind an `Arc` so a caller (the scheduler's transport factory)
/// can keep a handle to read connection-pool statistics after the run.
pub struct HttpTransport {
    client: Arc<HttpClient>,
    base_url: String,
}

impl HttpTransport {
    /// Targets a served API at `base_url` (e.g. `http://127.0.0.1:4321`).
    pub fn new(base_url: impl Into<String>) -> HttpTransport {
        HttpTransport::with_client(base_url, HttpClient::new())
    }

    /// Uses an existing HTTP client (custom timeouts etc.).
    pub fn with_client(base_url: impl Into<String>, client: HttpClient) -> HttpTransport {
        HttpTransport::with_shared_client(base_url, Arc::new(client))
    }

    /// Uses a shared HTTP client, leaving the caller a handle to the
    /// client's connection pool (for keep-alive statistics).
    pub fn with_shared_client(
        base_url: impl Into<String>,
        client: Arc<HttpClient>,
    ) -> HttpTransport {
        HttpTransport {
            client,
            base_url: base_url.into(),
        }
    }
}

impl Transport for HttpTransport {
    fn execute(
        &self,
        endpoint: Endpoint,
        params: &[(String, String)],
        api_key: &str,
        now: Option<Timestamp>,
    ) -> Result<(u16, String)> {
        let mut query = String::new();
        for (k, v) in params {
            if !query.is_empty() {
                query.push('&');
            }
            query.push_str(&encode_component(k));
            query.push('=');
            query.push_str(&encode_component(v));
        }
        if !query.is_empty() {
            query.push('&');
        }
        query.push_str("key=");
        query.push_str(&encode_component(api_key));
        let url_text = format!("{}/youtube/v3/{}?{}", self.base_url, endpoint.path(), query);
        let url = Url::parse(&url_text).map_err(|e| Error::Protocol(e.to_string()))?;
        let mut request = Request::get(url.path.clone()).with_query(url.query.clone());
        if let Some(t) = now {
            request = request.with_header("x-sim-time", t.to_rfc3339());
        }
        let response = self
            .client
            .send(&url, &request)
            .map_err(|e| Error::Io(e.to_string()))?;
        let body = String::from_utf8(response.body)
            .map_err(|_| Error::Decode("non-UTF-8 response body".into()))?;
        Ok((response.status.0, body))
    }

    fn label(&self) -> &'static str {
        "http"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ytaudit_platform::{Platform, SimClock};

    fn service() -> Arc<ApiService> {
        let service = Arc::new(ApiService::new(
            Arc::new(Platform::small(0.15)),
            SimClock::at_audit_start(),
        ));
        service.quota().register("k", 100_000_000);
        service
    }

    fn params(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect()
    }

    #[test]
    fn in_process_and_http_agree_exactly() {
        let svc = service();
        let in_process = InProcessTransport::new(Arc::clone(&svc));
        let server = ytaudit_api::serve(Arc::clone(&svc), "127.0.0.1:0").unwrap();
        let http = HttpTransport::new(server.base_url());

        let cases: Vec<(Endpoint, Vec<(String, String)>)> = vec![
            (
                Endpoint::Search,
                params(&[
                    ("part", "snippet"),
                    ("q", "higgs boson"),
                    ("type", "video"),
                    ("order", "date"),
                    ("maxResults", "25"),
                ]),
            ),
            (
                Endpoint::Videos,
                params(&[
                    ("part", "snippet,statistics"),
                    (
                        "id",
                        svc.platform().corpus().topics[0].videos[0].id.as_str(),
                    ),
                ]),
            ),
            (
                Endpoint::Channels,
                params(&[
                    ("part", "statistics"),
                    ("id", svc.platform().corpus().channels[0].id.as_str()),
                ]),
            ),
            // An error case: the envelopes must match too.
            (Endpoint::Search, params(&[("part", "snippet")])),
        ];
        let now = Some(Timestamp::from_ymd(2025, 3, 1).unwrap());
        for (endpoint, p) in cases {
            let a = in_process.execute(endpoint, &p, "k", now).unwrap();
            let b = http.execute(endpoint, &p, "k", now).unwrap();
            // Bodies contain etags derived from content; statuses and
            // bodies must agree exactly because the service is
            // deterministic at a fixed simulated time.
            assert_eq!(a.0, b.0, "status mismatch on {endpoint:?}");
            assert_eq!(a.1, b.1, "body mismatch on {endpoint:?}");
        }
        server.shutdown();
    }

    #[test]
    fn http_transport_reports_connection_failures() {
        let http = HttpTransport::new("http://127.0.0.1:1");
        let err = http
            .execute(
                Endpoint::Videos,
                &params(&[("part", "id"), ("id", "x")]),
                "k",
                None,
            )
            .unwrap_err();
        assert!(matches!(err, Error::Io(_)));
    }
}
