//! Transports: how a request reaches the (simulated) Data API.
//!
//! The audit harness runs against either transport interchangeably — the
//! in-process one for speed, the HTTP one to exercise the full REST path —
//! and an integration test asserts byte-identical behaviour between them.

use std::sync::Arc;
use ytaudit_api::quota::Endpoint;
use ytaudit_api::service::{ApiRequest, ApiService};
use ytaudit_net::url::encode_component;
use ytaudit_net::{HttpClient, Request, Url};
use ytaudit_types::{Error, Result, Timestamp};

/// A way to execute one Data API call.
pub trait Transport: Send + Sync {
    /// Executes the call, returning HTTP status and JSON body.
    fn execute(
        &self,
        endpoint: Endpoint,
        params: &[(String, String)],
        api_key: &str,
        now: Option<Timestamp>,
    ) -> Result<(u16, String)>;

    /// Executes a batch of calls against one endpoint, returning one
    /// result per parameter set, in order. The default implementation is
    /// a sequential loop; transports with a faster path (HTTP
    /// pipelining) override it. Implementations must behave
    /// observably like the sequential loop — same responses in the same
    /// order — so callers can treat the batch as an optimisation only.
    fn execute_many(
        &self,
        endpoint: Endpoint,
        param_sets: &[Vec<(String, String)>],
        api_key: &str,
        now: Option<Timestamp>,
    ) -> Vec<Result<(u16, String)>> {
        param_sets
            .iter()
            .map(|params| self.execute(endpoint, params, api_key, now))
            .collect()
    }

    /// How many calls this transport would like to receive per
    /// [`Transport::execute_many`] batch. Callers that must preserve
    /// call-by-call failure semantics (stop issuing on a fatal error)
    /// chunk their batches to this size: a sequential transport returns
    /// 1 and behaves exactly like a loop of [`Transport::execute`],
    /// while a pipelining transport returns its in-flight depth and
    /// accepts that up to `preferred_batch - 1` calls may be issued past
    /// a fatal error.
    fn preferred_batch(&self) -> usize {
        1
    }

    /// A short label for diagnostics.
    fn label(&self) -> &'static str;
}

/// Calls the service directly in-process (no sockets).
pub struct InProcessTransport {
    service: Arc<ApiService>,
}

impl InProcessTransport {
    /// Wraps a service.
    pub fn new(service: Arc<ApiService>) -> InProcessTransport {
        InProcessTransport { service }
    }
}

impl Transport for InProcessTransport {
    fn execute(
        &self,
        endpoint: Endpoint,
        params: &[(String, String)],
        api_key: &str,
        now: Option<Timestamp>,
    ) -> Result<(u16, String)> {
        Ok(self.service.handle(&ApiRequest {
            endpoint,
            params: params.to_vec(),
            api_key: Some(api_key.to_string()),
            now_override: now,
        }))
    }

    fn label(&self) -> &'static str {
        "in-process"
    }
}

/// Calls the API over HTTP via `ytaudit-net`. The underlying client is
/// held behind an `Arc` so a caller (the scheduler's transport factory)
/// can keep a handle to read connection-pool statistics after the run.
pub struct HttpTransport {
    client: Arc<HttpClient>,
    base_url: String,
    max_in_flight: usize,
}

impl HttpTransport {
    /// Targets a served API at `base_url` (e.g. `http://127.0.0.1:4321`).
    pub fn new(base_url: impl Into<String>) -> HttpTransport {
        HttpTransport::with_client(base_url, HttpClient::new())
    }

    /// Uses an existing HTTP client (custom timeouts etc.).
    pub fn with_client(base_url: impl Into<String>, client: HttpClient) -> HttpTransport {
        HttpTransport::with_shared_client(base_url, Arc::new(client))
    }

    /// Uses a shared HTTP client, leaving the caller a handle to the
    /// client's connection pool (for keep-alive statistics).
    pub fn with_shared_client(
        base_url: impl Into<String>,
        client: Arc<HttpClient>,
    ) -> HttpTransport {
        HttpTransport {
            client,
            base_url: base_url.into(),
            max_in_flight: 1,
        }
    }

    /// Lets [`Transport::execute_many`] keep up to `depth` requests
    /// pipelined on one connection. Depth 1 (the default) is plain
    /// sequential keep-alive.
    pub fn with_max_in_flight(mut self, depth: usize) -> HttpTransport {
        self.max_in_flight = depth.max(1);
        self
    }

    /// Builds the URL and GET request for one API call.
    fn build_request(
        &self,
        endpoint: Endpoint,
        params: &[(String, String)],
        api_key: &str,
        now: Option<Timestamp>,
    ) -> Result<(Url, Request)> {
        let mut query = String::new();
        for (k, v) in params {
            if !query.is_empty() {
                query.push('&');
            }
            query.push_str(&encode_component(k));
            query.push('=');
            query.push_str(&encode_component(v));
        }
        if !query.is_empty() {
            query.push('&');
        }
        query.push_str("key=");
        query.push_str(&encode_component(api_key));
        let url_text = format!("{}/youtube/v3/{}?{}", self.base_url, endpoint.path(), query);
        let url = Url::parse(&url_text).map_err(|e| Error::Protocol(e.to_string()))?;
        let mut request = Request::get(url.path.clone()).with_query(url.query.clone());
        if let Some(t) = now {
            request = request.with_header("x-sim-time", t.to_rfc3339());
        }
        Ok((url, request))
    }
}

/// Decodes an HTTP response into the transport's (status, body) pair.
fn decode_response(response: ytaudit_net::Response) -> Result<(u16, String)> {
    let body = String::from_utf8(response.body)
        .map_err(|_| Error::Decode("non-UTF-8 response body".into()))?;
    Ok((response.status.0, body))
}

impl Transport for HttpTransport {
    fn execute(
        &self,
        endpoint: Endpoint,
        params: &[(String, String)],
        api_key: &str,
        now: Option<Timestamp>,
    ) -> Result<(u16, String)> {
        let (url, request) = self.build_request(endpoint, params, api_key, now)?;
        let response = self
            .client
            .send(&url, &request)
            .map_err(|e| Error::Io(e.to_string()))?;
        decode_response(response)
    }

    fn execute_many(
        &self,
        endpoint: Endpoint,
        param_sets: &[Vec<(String, String)>],
        api_key: &str,
        now: Option<Timestamp>,
    ) -> Vec<Result<(u16, String)>> {
        // All calls share one authority, so the whole batch can ride
        // pipelined connections. Request building is infallible for the
        // parameter sets the client produces, but a malformed one fails
        // just its own slot, mirroring the sequential loop.
        let mut built = Vec::with_capacity(param_sets.len());
        for params in param_sets {
            built.push(self.build_request(endpoint, params, api_key, now));
        }
        let mut url = None;
        let requests: Vec<ytaudit_net::Request> = built
            .iter()
            .filter_map(|b| b.as_ref().ok())
            .map(|(u, r)| {
                url.get_or_insert_with(|| u.clone());
                r.clone()
            })
            .collect();
        let mut responses = match url {
            Some(url) => self
                .client
                .send_pipelined(&url, &requests, self.max_in_flight)
                .into_iter(),
            None => Vec::new().into_iter(),
        };
        built
            .into_iter()
            .map(|b| match b {
                Ok(_) => match responses.next() {
                    Some(Ok(response)) => decode_response(response),
                    Some(Err(err)) => Err(Error::Io(err.to_string())),
                    None => Err(Error::Io("pipelined batch returned too few responses".into())),
                },
                Err(err) => Err(err),
            })
            .collect()
    }

    fn preferred_batch(&self) -> usize {
        self.max_in_flight
    }

    fn label(&self) -> &'static str {
        "http"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ytaudit_platform::{Platform, SimClock};

    fn service() -> Arc<ApiService> {
        let service = Arc::new(ApiService::new(
            Arc::new(Platform::small(0.15)),
            SimClock::at_audit_start(),
        ));
        service.quota().register("k", 100_000_000);
        service
    }

    fn params(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect()
    }

    #[test]
    fn in_process_and_http_agree_exactly() {
        let svc = service();
        let in_process = InProcessTransport::new(Arc::clone(&svc));
        let server = ytaudit_api::serve(Arc::clone(&svc), "127.0.0.1:0").unwrap();
        let http = HttpTransport::new(server.base_url());

        let cases: Vec<(Endpoint, Vec<(String, String)>)> = vec![
            (
                Endpoint::Search,
                params(&[
                    ("part", "snippet"),
                    ("q", "higgs boson"),
                    ("type", "video"),
                    ("order", "date"),
                    ("maxResults", "25"),
                ]),
            ),
            (
                Endpoint::Videos,
                params(&[
                    ("part", "snippet,statistics"),
                    (
                        "id",
                        svc.platform().corpus().topics[0].videos[0].id.as_str(),
                    ),
                ]),
            ),
            (
                Endpoint::Channels,
                params(&[
                    ("part", "statistics"),
                    ("id", svc.platform().corpus().channels[0].id.as_str()),
                ]),
            ),
            // An error case: the envelopes must match too.
            (Endpoint::Search, params(&[("part", "snippet")])),
        ];
        let now = Some(Timestamp::from_ymd(2025, 3, 1).unwrap());
        for (endpoint, p) in cases {
            let a = in_process.execute(endpoint, &p, "k", now).unwrap();
            let b = http.execute(endpoint, &p, "k", now).unwrap();
            // Bodies contain etags derived from content; statuses and
            // bodies must agree exactly because the service is
            // deterministic at a fixed simulated time.
            assert_eq!(a.0, b.0, "status mismatch on {endpoint:?}");
            assert_eq!(a.1, b.1, "body mismatch on {endpoint:?}");
        }
        server.shutdown();
    }

    #[test]
    fn pipelined_execute_many_matches_sequential_execute() {
        let svc = service();
        let server = ytaudit_api::serve(Arc::clone(&svc), "127.0.0.1:0").unwrap();
        let sequential = HttpTransport::new(server.base_url());
        let pipelined = HttpTransport::new(server.base_url()).with_max_in_flight(4);

        let queries = ["higgs boson", "black lives matter", "brexit", "measles", "net neutrality"];
        let param_sets: Vec<Vec<(String, String)>> = queries
            .iter()
            .map(|q| {
                params(&[
                    ("part", "snippet"),
                    ("q", q),
                    ("type", "video"),
                    ("order", "date"),
                    ("maxResults", "10"),
                ])
            })
            .collect();
        let now = Some(Timestamp::from_ymd(2025, 3, 1).unwrap());
        let batched = pipelined.execute_many(Endpoint::Search, &param_sets, "k", now);
        assert_eq!(batched.len(), param_sets.len());
        for (params, result) in param_sets.iter().zip(batched) {
            let (status, body) = result.unwrap();
            let (ref_status, ref_body) = sequential.execute(Endpoint::Search, params, "k", now).unwrap();
            assert_eq!(status, ref_status);
            assert_eq!(body, ref_body, "pipelined body diverged for {params:?}");
        }
        server.shutdown();
    }

    #[test]
    fn http_transport_reports_connection_failures() {
        let http = HttpTransport::new("http://127.0.0.1:1");
        let err = http
            .execute(
                Endpoint::Videos,
                &params(&[("part", "id"), ("id", "x")]),
                "k",
                None,
            )
            .unwrap_err();
        assert!(matches!(err, Error::Io(_)));
    }
}
