//! Client-side quota bookkeeping — the "API token economy" the paper's
//! §6.1 is about.
//!
//! The server enforces quota; a well-behaved collector *plans* it. This
//! ledger mirrors the documented cost model so a collection script can
//! price a strategy before burning a key (e.g. a full paper-style
//! collection: 4 032 searches × 100 units = 403 200 units ≫ the 10 000
//! default — the arithmetic behind the researcher-program requirement).

use parking_lot::Mutex;
use std::collections::HashMap;
use ytaudit_api::quota::Endpoint;

/// Tracks planned/spent quota units client-side.
#[derive(Debug, Default)]
pub struct QuotaBudget {
    by_endpoint: Mutex<HashMap<&'static str, (u64, u64)>>, // calls, units
}

impl QuotaBudget {
    /// An empty budget tracker.
    pub fn new() -> QuotaBudget {
        QuotaBudget::default()
    }

    /// Records one call to `endpoint`.
    pub fn record(&self, endpoint: Endpoint) {
        let mut map = self.by_endpoint.lock();
        let entry = map.entry(endpoint.path()).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += endpoint.cost();
    }

    /// Total units spent.
    pub fn units_spent(&self) -> u64 {
        self.by_endpoint.lock().values().map(|(_, u)| u).sum()
    }

    /// Total calls made.
    pub fn calls_made(&self) -> u64 {
        self.by_endpoint.lock().values().map(|(c, _)| c).sum()
    }

    /// Units spent on one endpoint.
    pub fn units_for(&self, endpoint: Endpoint) -> u64 {
        self.by_endpoint
            .lock()
            .get(endpoint.path())
            .map_or(0, |(_, u)| *u)
    }

    /// (calls, units) per endpoint, sorted by endpoint path.
    pub fn breakdown(&self) -> Vec<(&'static str, u64, u64)> {
        let map = self.by_endpoint.lock();
        let mut rows: Vec<_> = map.iter().map(|(k, (c, u))| (*k, *c, *u)).collect();
        rows.sort_by_key(|(k, _, _)| *k);
        rows
    }

    /// How many *days* of a `daily_limit`-unit key the spend so far would
    /// consume (the paper's return-on-investment framing).
    pub fn days_of_quota(&self, daily_limit: u64) -> f64 {
        self.units_spent() as f64 / daily_limit.max(1) as f64
    }
}

/// Price of a hypothetical collection: `searches` search calls plus
/// `id_calls` ID-based calls, in quota units.
pub fn price(searches: u64, id_calls: u64) -> u64 {
    searches * Endpoint::Search.cost() + id_calls * Endpoint::Videos.cost()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_costs_correctly() {
        let budget = QuotaBudget::new();
        budget.record(Endpoint::Search);
        budget.record(Endpoint::Search);
        budget.record(Endpoint::Videos);
        assert_eq!(budget.units_spent(), 201);
        assert_eq!(budget.calls_made(), 3);
        assert_eq!(budget.units_for(Endpoint::Search), 200);
        assert_eq!(budget.units_for(Endpoint::Comments), 0);
    }

    #[test]
    fn paper_scale_collection_needs_researcher_quota() {
        // 24 hours × 28 days × 6 topics = 4 032 searches per snapshot.
        let units = price(4_032, 0);
        assert_eq!(units, 403_200);
        let budget = QuotaBudget::new();
        for _ in 0..4_032 {
            budget.record(Endpoint::Search);
        }
        // A default key covers it in 40+ days; a researcher key in < 1.
        assert!(budget.days_of_quota(ytaudit_api::DEFAULT_DAILY_QUOTA) > 40.0);
        assert!(budget.days_of_quota(ytaudit_api::RESEARCHER_DAILY_QUOTA) < 1.0);
    }

    #[test]
    fn breakdown_is_sorted_and_complete() {
        let budget = QuotaBudget::new();
        budget.record(Endpoint::Videos);
        budget.record(Endpoint::Search);
        budget.record(Endpoint::Videos);
        let rows = budget.breakdown();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], ("search", 1, 100));
        assert_eq!(rows[1], ("videos", 2, 2));
    }
}
