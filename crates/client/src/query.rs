//! Typed request builders mirroring the paper's Appendix-A parameters.

use ytaudit_types::{ChannelId, Timestamp, Topic};

/// Result ordering for search queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Order {
    /// Reverse chronological — the audit's choice (immutable property).
    #[default]
    Date,
    /// The API's default relevance ordering.
    Relevance,
    /// Descending view count.
    ViewCount,
}

impl Order {
    fn as_str(self) -> &'static str {
        match self {
            Order::Date => "date",
            Order::Relevance => "relevance",
            Order::ViewCount => "viewCount",
        }
    }
}

/// A typed `Search: list` query.
#[derive(Debug, Clone, Default)]
pub struct SearchQuery {
    /// Keyword query (`q`).
    pub q: Option<String>,
    /// Channel filter.
    pub channel_id: Option<ChannelId>,
    /// `publishedAfter` bound.
    pub published_after: Option<Timestamp>,
    /// `publishedBefore` bound.
    pub published_before: Option<Timestamp>,
    /// Result ordering.
    pub order: Order,
    /// Page size (1–50).
    pub max_results: u32,
}

impl SearchQuery {
    /// A keyword query with the audit defaults (`order=date`,
    /// `maxResults=50`, `type=video`, `safeSearch=none`).
    pub fn keywords(q: impl Into<String>) -> SearchQuery {
        SearchQuery {
            q: Some(q.into()),
            max_results: 50,
            order: Order::Date,
            ..SearchQuery::default()
        }
    }

    /// The paper's exact query for one topic: its `q` string and its
    /// focal-date ± 14-day window.
    pub fn for_topic(topic: Topic) -> SearchQuery {
        SearchQuery::keywords(topic.spec().query)
            .between(topic.window_start(), topic.window_end())
    }

    /// A channel-scoped search (the strategy §6.1 warns about).
    pub fn channel(channel_id: ChannelId) -> SearchQuery {
        SearchQuery {
            channel_id: Some(channel_id),
            max_results: 50,
            order: Order::Date,
            ..SearchQuery::default()
        }
    }

    /// Restricts to `[after, before)`.
    pub fn between(mut self, after: Timestamp, before: Timestamp) -> SearchQuery {
        self.published_after = Some(after);
        self.published_before = Some(before);
        self
    }

    /// Narrows the window to a single hour bin — the paper's
    /// "one query per hour" collection strategy.
    pub fn hour_bin(mut self, hour_start: Timestamp) -> SearchQuery {
        self.published_after = Some(hour_start);
        self.published_before = Some(hour_start.add_hours(1));
        self
    }

    /// Adds an AND term to the keyword query (the §6.1 topic-splitting
    /// lever).
    pub fn and_term(mut self, term: &str) -> SearchQuery {
        let q = self.q.get_or_insert_with(String::new);
        if !q.is_empty() {
            q.push(' ');
        }
        q.push_str(term);
        self
    }

    /// Sets the page size (clamped to 1–50).
    pub fn max_results(mut self, n: u32) -> SearchQuery {
        self.max_results = n.clamp(1, 50);
        self
    }

    /// Sets the ordering.
    pub fn order(mut self, order: Order) -> SearchQuery {
        self.order = order;
        self
    }

    /// Renders the wire parameters (without `key`/`pageToken`).
    pub fn to_params(&self) -> Vec<(String, String)> {
        let mut params = vec![
            ("part".to_string(), "snippet".to_string()),
            (
                "maxResults".to_string(),
                self.max_results.clamp(1, 50).to_string(),
            ),
            ("order".to_string(), self.order.as_str().to_string()),
            ("safeSearch".to_string(), "none".to_string()),
            ("type".to_string(), "video".to_string()),
        ];
        if let Some(q) = &self.q {
            params.push(("q".to_string(), q.clone()));
        }
        if let Some(channel) = &self.channel_id {
            params.push(("channelId".to_string(), channel.as_str().to_string()));
        }
        if let Some(after) = self.published_after {
            params.push(("publishedAfter".to_string(), after.to_rfc3339()));
        }
        if let Some(before) = self.published_before {
            params.push(("publishedBefore".to_string(), before.to_rfc3339()));
        }
        params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topic_query_matches_appendix_a() {
        let query = SearchQuery::for_topic(Topic::Brexit);
        let params = query.to_params();
        let get = |k: &str| {
            params
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.as_str())
        };
        assert_eq!(get("q"), Some("brexit referendum"));
        assert_eq!(get("part"), Some("snippet"));
        assert_eq!(get("maxResults"), Some("50"));
        assert_eq!(get("order"), Some("date"));
        assert_eq!(get("safeSearch"), Some("none"));
        assert_eq!(get("type"), Some("video"));
        assert_eq!(get("publishedAfter"), Some("2016-06-09T00:00:00Z"));
        assert_eq!(get("publishedBefore"), Some("2016-07-07T00:00:00Z"));
    }

    #[test]
    fn hour_bin_narrows_to_one_hour() {
        let start = Timestamp::from_ymd_hms(2014, 6, 12, 17, 0, 0).unwrap();
        let query = SearchQuery::for_topic(Topic::WorldCup).hour_bin(start);
        assert_eq!(query.published_after.unwrap(), start);
        assert_eq!(query.published_before.unwrap(), start.add_hours(1));
    }

    #[test]
    fn and_term_extends_the_query() {
        let query = SearchQuery::keywords("fifa world cup").and_term("messi");
        assert_eq!(query.q.as_deref(), Some("fifa world cup messi"));
        let from_scratch = SearchQuery::default().and_term("solo");
        assert_eq!(from_scratch.q.as_deref(), Some("solo"));
    }

    #[test]
    fn max_results_is_clamped() {
        assert_eq!(SearchQuery::keywords("x").max_results(500).max_results, 50);
        assert_eq!(SearchQuery::keywords("x").max_results(0).max_results, 1);
    }

    #[test]
    fn channel_query_has_no_keywords() {
        let query = SearchQuery::channel(ChannelId::new("UCabc"));
        let params = query.to_params();
        assert!(params.iter().any(|(k, v)| k == "channelId" && v == "UCabc"));
        assert!(!params.iter().any(|(k, _)| k == "q"));
    }
}
