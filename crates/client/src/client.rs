//! The typed Data API client: retries, pacing, quota bookkeeping, and
//! full-pagination helpers for every endpoint the audit uses.

use crate::budget::QuotaBudget;
use crate::query::SearchQuery;
use crate::transport::Transport;
use parking_lot::Mutex;
use std::time::Duration;
use ytaudit_api::quota::Endpoint;
use ytaudit_api::resources::{
    ChannelListResponse, ChannelResource, CommentListResponse, CommentResource,
    CommentThreadListResponse, CommentThreadResource, ErrorResponse, PlaylistItemListResponse,
    PlaylistItemResource, SearchListResponse, SearchResult, VideoListResponse, VideoResource,
};
use ytaudit_net::resilience::RetryPolicy;
use ytaudit_net::TokenBucket;
use ytaudit_types::{ApiErrorReason, ChannelId, CommentId, Error, PlaylistId, Result, Timestamp, VideoId};

/// The outcome of a fully-paginated search: what the paper's harness
/// stores per (query, collection).
#[derive(Debug, Clone)]
pub struct SearchCollection {
    /// All returned results across pages (capped at 500 by the API).
    pub items: Vec<SearchResult>,
    /// The `pageInfo.totalResults` pool estimate from the first page.
    pub total_results: u64,
    /// Number of pages fetched.
    pub pages: u32,
}

impl SearchCollection {
    /// Just the video IDs, in returned order.
    pub fn video_ids(&self) -> Vec<VideoId> {
        self.items
            .iter()
            .map(|item| VideoId::new(item.id.video_id.clone()))
            .collect()
    }
}

/// A typed client for the (simulated) YouTube Data API.
pub struct YouTubeClient {
    transport: Box<dyn Transport>,
    api_key: String,
    retry: RetryPolicy,
    pacer: Option<TokenBucket>,
    budget: QuotaBudget,
    sim_time: Mutex<Option<Timestamp>>,
}

impl YouTubeClient {
    /// A client over `transport` authenticating with `api_key`.
    pub fn new(transport: Box<dyn Transport>, api_key: impl Into<String>) -> YouTubeClient {
        YouTubeClient {
            transport,
            api_key: api_key.into(),
            retry: RetryPolicy::default(),
            pacer: None,
            budget: QuotaBudget::new(),
            sim_time: Mutex::new(None),
        }
    }

    /// Replaces the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> YouTubeClient {
        self.retry = retry;
        self
    }

    /// Adds client-side pacing: at most `per_second` requests per second
    /// with bursts up to `burst`.
    pub fn with_rate_limit(mut self, per_second: f64, burst: f64) -> YouTubeClient {
        self.pacer = Some(TokenBucket::new(burst, per_second));
        self
    }

    /// Sets the simulated "wall clock" for subsequent requests (the
    /// collection date). `None` uses the server's clock.
    pub fn set_sim_time(&self, t: Option<Timestamp>) {
        *self.sim_time.lock() = t;
    }

    /// The current simulated request time, if pinned.
    pub fn sim_time(&self) -> Option<Timestamp> {
        *self.sim_time.lock()
    }

    /// Client-side quota bookkeeping.
    pub fn budget(&self) -> &QuotaBudget {
        &self.budget
    }

    /// Decodes a transport `(status, body)` pair: 200 yields the body,
    /// anything else is decoded as the API error envelope (with a generic
    /// fallback for non-JSON bodies, e.g. a proxy's 502 page).
    fn interpret(status: u16, body: String) -> Result<String> {
        if status == 200 {
            return Ok(body);
        }
        match serde_json::from_str::<ErrorResponse>(&body) {
            Ok(envelope) => {
                let reason = envelope
                    .error
                    .errors
                    .first()
                    .and_then(|e| ApiErrorReason::from_str_opt(&e.reason))
                    .unwrap_or(ApiErrorReason::BackendError);
                Err(match envelope.error.retry_after_secs {
                    Some(secs) => {
                        Error::api_with_retry_after(reason, envelope.error.message, secs)
                    }
                    None => Error::api(reason, envelope.error.message),
                })
            }
            Err(_) => Err(Error::Io(format!("HTTP {status} with undecodable body"))),
        }
    }

    /// Waits for a pacer slot, if pacing is configured.
    fn pace(&self) -> Result<()> {
        if let Some(pacer) = &self.pacer {
            if !pacer.acquire(1.0, Duration::from_secs(60)) {
                return Err(Error::Io("client-side rate limiter timed out".into()));
            }
        }
        Ok(())
    }

    /// Executes one call with pacing + retries and decodes errors.
    fn call(&self, endpoint: Endpoint, params: &[(String, String)]) -> Result<String> {
        self.pace()?;
        let now = self.sim_time();
        self.budget.record(endpoint);
        self.retry.run(
            |_attempt| {
                let (status, body) = self
                    .transport
                    .execute(endpoint, params, &self.api_key, now)?;
                Self::interpret(status, body)
            },
            Error::is_retryable,
        )
    }

    /// Executes a batch of calls against `endpoint` with the same pacing,
    /// retry, and quota bookkeeping as issuing [`YouTubeClient::call`]
    /// once per parameter set, in order. Calls are issued in chunks of
    /// [`Transport::preferred_batch`]; each chunk's first attempt goes
    /// through [`Transport::execute_many`] — pipelined on an HTTP
    /// transport — and any slot that fails retryably is retried
    /// individually under the remaining attempt budget. One quota record
    /// per logical call, never per attempt, and a fatal error stops the
    /// batch before later chunks are paced or recorded, so a sequential
    /// transport (chunk size 1) books exactly what a [`YouTubeClient::call`]
    /// loop would have.
    fn call_many(&self, endpoint: Endpoint, param_sets: &[Vec<(String, String)>]) -> Result<Vec<String>> {
        let chunk_size = self.transport.preferred_batch().max(1);
        if chunk_size == 1 || param_sets.len() <= 1 {
            return param_sets
                .iter()
                .map(|params| self.call(endpoint, params))
                .collect();
        }
        let mut out = Vec::with_capacity(param_sets.len());
        for chunk in param_sets.chunks(chunk_size) {
            for _ in chunk {
                self.pace()?;
                self.budget.record(endpoint);
            }
            let now = self.sim_time();
            let first = self.transport.execute_many(endpoint, chunk, &self.api_key, now);
            for (params, attempt) in chunk.iter().zip(first) {
                let interpreted = attempt.and_then(|(status, body)| Self::interpret(status, body));
                match interpreted {
                    Ok(body) => out.push(body),
                    Err(err) if err.is_retryable() && self.retry.max_attempts > 1 => {
                        // The batch attempt was attempt 0 for this call;
                        // spend the remaining budget one call at a time.
                        let tail = RetryPolicy {
                            max_attempts: self.retry.max_attempts - 1,
                            backoff: self.retry.backoff.clone(),
                        };
                        out.push(tail.run(
                            |_attempt| {
                                let (status, body) = self
                                    .transport
                                    .execute(endpoint, params, &self.api_key, now)?;
                                Self::interpret(status, body)
                            },
                            Error::is_retryable,
                        )?);
                    }
                    Err(err) => return Err(err),
                }
            }
        }
        Ok(out)
    }

    fn decode<T: serde::de::DeserializeOwned>(body: &str) -> Result<T> {
        serde_json::from_str(body).map_err(|e| Error::Decode(e.to_string()))
    }

    /// Fetches one page of search results.
    pub fn search_page(
        &self,
        query: &SearchQuery,
        page_token: Option<&str>,
    ) -> Result<SearchListResponse> {
        let mut params = query.to_params();
        if let Some(token) = page_token {
            params.push(("pageToken".to_string(), token.to_string()));
        }
        Self::decode(&self.call(Endpoint::Search, &params)?)
    }

    /// Fetches every page of a search (up to the API's 500-result cap).
    pub fn search_all(&self, query: &SearchQuery) -> Result<SearchCollection> {
        let mut items = Vec::new();
        let mut token: Option<String> = None;
        let mut total_results = 0;
        let mut pages = 0;
        loop {
            let page = self.search_page(query, token.as_deref())?;
            if pages == 0 {
                total_results = page.page_info.total_results;
            }
            pages += 1;
            items.extend(page.items);
            match page.next_page_token {
                Some(next) if pages < 10 => token = Some(next),
                _ => break,
            }
        }
        Ok(SearchCollection {
            items,
            total_results,
            pages,
        })
    }

    /// Fetches every page of several searches, batching one page per
    /// query per wave so a pipelining transport can keep the requests in
    /// flight together. Observable behaviour — items, page counts, quota
    /// records — is identical to calling [`YouTubeClient::search_all`]
    /// once per query, in order; only the wire interleaving differs.
    pub fn search_all_many(&self, queries: &[SearchQuery]) -> Result<Vec<SearchCollection>> {
        struct Partial {
            items: Vec<SearchResult>,
            total_results: u64,
            pages: u32,
            token: Option<String>,
            done: bool,
        }
        let mut partials: Vec<Partial> = queries
            .iter()
            .map(|_| Partial {
                items: Vec::new(),
                total_results: 0,
                pages: 0,
                token: None,
                done: false,
            })
            .collect();
        loop {
            let live: Vec<usize> = partials
                .iter()
                .enumerate()
                .filter(|(_, p)| !p.done)
                .map(|(i, _)| i)
                .collect();
            if live.is_empty() {
                break;
            }
            let param_sets: Vec<Vec<(String, String)>> = live
                .iter()
                .map(|&i| {
                    let mut params = queries[i].to_params();
                    if let Some(token) = &partials[i].token {
                        params.push(("pageToken".to_string(), token.clone()));
                    }
                    params
                })
                .collect();
            let bodies = self.call_many(Endpoint::Search, &param_sets)?;
            for (&i, body) in live.iter().zip(bodies) {
                let page: SearchListResponse = Self::decode(&body)?;
                let partial = &mut partials[i];
                if partial.pages == 0 {
                    partial.total_results = page.page_info.total_results;
                }
                partial.pages += 1;
                partial.items.extend(page.items);
                match page.next_page_token {
                    Some(next) if partial.pages < 10 => partial.token = Some(next),
                    _ => partial.done = true,
                }
            }
        }
        Ok(partials
            .into_iter()
            .map(|p| SearchCollection {
                items: p.items,
                total_results: p.total_results,
                pages: p.pages,
            })
            .collect())
    }

    /// `Videos: list` for up to any number of IDs (chunked by 50).
    pub fn videos(&self, ids: &[VideoId]) -> Result<Vec<VideoResource>> {
        let mut out = Vec::with_capacity(ids.len());
        for chunk in ids.chunks(50) {
            let joined = chunk
                .iter()
                .map(|id| id.as_str())
                .collect::<Vec<_>>()
                .join(",");
            let params = vec![
                (
                    "part".to_string(),
                    "snippet,contentDetails,statistics".to_string(),
                ),
                ("id".to_string(), joined),
            ];
            let page: VideoListResponse = Self::decode(&self.call(Endpoint::Videos, &params)?)?;
            out.extend(page.items);
        }
        Ok(out)
    }

    /// `Channels: list` for up to any number of IDs (chunked by 50).
    pub fn channels(&self, ids: &[ChannelId]) -> Result<Vec<ChannelResource>> {
        let mut out = Vec::with_capacity(ids.len());
        for chunk in ids.chunks(50) {
            let joined = chunk
                .iter()
                .map(|id| id.as_str())
                .collect::<Vec<_>>()
                .join(",");
            let params = vec![
                (
                    "part".to_string(),
                    "snippet,contentDetails,statistics".to_string(),
                ),
                ("id".to_string(), joined),
            ];
            let page: ChannelListResponse =
                Self::decode(&self.call(Endpoint::Channels, &params)?)?;
            out.extend(page.items);
        }
        Ok(out)
    }

    /// All items of a playlist, following pagination to the end.
    pub fn playlist_items_all(&self, playlist: &PlaylistId) -> Result<Vec<PlaylistItemResource>> {
        let mut out = Vec::new();
        let mut token: Option<String> = None;
        loop {
            let mut params = vec![
                ("part".to_string(), "snippet".to_string()),
                ("playlistId".to_string(), playlist.as_str().to_string()),
                ("maxResults".to_string(), "50".to_string()),
            ];
            if let Some(t) = &token {
                params.push(("pageToken".to_string(), t.clone()));
            }
            let page: PlaylistItemListResponse =
                Self::decode(&self.call(Endpoint::PlaylistItems, &params)?)?;
            out.extend(page.items);
            match page.next_page_token {
                Some(next) => token = Some(next),
                None => break,
            }
        }
        Ok(out)
    }

    /// The paper's recommended ID-based pipeline for complete channel
    /// catalogues: `Channels: list` → uploads playlist →
    /// `PlaylistItems: list`.
    pub fn channel_uploads(&self, channel: &ChannelId) -> Result<Vec<PlaylistItemResource>> {
        let channels = self.channels(std::slice::from_ref(channel))?;
        let uploads = channels
            .first()
            .and_then(|c| c.content_details.as_ref())
            .map(|cd| PlaylistId::new(cd.related_playlists.uploads.clone()))
            .ok_or_else(|| {
                Error::api(
                    ApiErrorReason::NotFound,
                    format!("channel {channel} not found or has no uploads playlist"),
                )
            })?;
        self.playlist_items_all(&uploads)
    }

    /// All comment threads of a video, following pagination.
    pub fn comment_threads_all(&self, video: &VideoId) -> Result<Vec<CommentThreadResource>> {
        let mut out = Vec::new();
        let mut token: Option<String> = None;
        loop {
            let mut params = vec![
                ("part".to_string(), "snippet,replies".to_string()),
                ("videoId".to_string(), video.as_str().to_string()),
                ("maxResults".to_string(), "100".to_string()),
            ];
            if let Some(t) = &token {
                params.push(("pageToken".to_string(), t.clone()));
            }
            let page: CommentThreadListResponse =
                Self::decode(&self.call(Endpoint::CommentThreads, &params)?)?;
            out.extend(page.items);
            match page.next_page_token {
                Some(next) => token = Some(next),
                None => break,
            }
        }
        Ok(out)
    }

    /// All replies under a top-level comment, following pagination.
    pub fn comments_all(&self, parent: &CommentId) -> Result<Vec<CommentResource>> {
        let mut out = Vec::new();
        let mut token: Option<String> = None;
        loop {
            let mut params = vec![
                ("part".to_string(), "snippet".to_string()),
                ("parentId".to_string(), parent.as_str().to_string()),
                ("maxResults".to_string(), "100".to_string()),
            ];
            if let Some(t) = &token {
                params.push(("pageToken".to_string(), t.clone()));
            }
            let page: CommentListResponse =
                Self::decode(&self.call(Endpoint::Comments, &params)?)?;
            out.extend(page.items);
            match page.next_page_token {
                Some(next) => token = Some(next),
                None => break,
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::InProcessTransport;
    use std::sync::Arc;
    use ytaudit_api::service::{ApiService, FaultConfig};
    use ytaudit_platform::{Platform, SimClock};
    use ytaudit_types::Topic;

    fn client_with(scale: f64, faults: Option<FaultConfig>, quota: u64) -> (YouTubeClient, Arc<ApiService>) {
        let platform = Arc::new(Platform::small(scale));
        let mut service = ApiService::new(platform, SimClock::at_audit_start());
        if let Some(f) = faults {
            service = service.with_faults(f);
        }
        let service = Arc::new(service);
        service.quota().register("key", quota);
        let client = YouTubeClient::new(
            Box::new(InProcessTransport::new(Arc::clone(&service))),
            "key",
        );
        (client, service)
    }

    #[test]
    fn search_all_pages_to_completion() {
        let (client, _svc) = client_with(0.3, None, 100_000_000);
        let collection = client
            .search_all(&SearchQuery::for_topic(Topic::Grammys))
            .unwrap();
        assert!(collection.items.len() > 50, "{}", collection.items.len());
        assert!(collection.items.len() <= 500);
        assert!(collection.pages >= 2);
        assert!(collection.total_results > 1_000);
        let ids = collection.video_ids();
        assert_eq!(ids.len(), collection.items.len());
        // Search quota: 100 units per page.
        assert_eq!(
            client.budget().units_for(Endpoint::Search),
            u64::from(collection.pages) * 100
        );
    }

    #[test]
    fn videos_are_chunked_by_50() {
        let (client, svc) = client_with(0.3, Some(FaultConfig {
            metadata_miss_rate: 0.0,
            backend_error_rate: 0.0,
        }), 100_000_000);
        let ids: Vec<VideoId> = svc.platform().corpus().topics[0]
            .videos
            .iter()
            .take(120)
            .map(|v| v.id.clone())
            .collect();
        let resources = client.videos(&ids).unwrap();
        assert_eq!(resources.len(), 120);
        // 120 ids → 3 calls of 1 unit each.
        assert_eq!(client.budget().units_for(Endpoint::Videos), 3);
    }

    #[test]
    fn quota_exceeded_is_fatal_not_retried() {
        let (client, _svc) = client_with(0.15, None, 100); // one search's worth
        let query = SearchQuery::for_topic(Topic::Higgs).max_results(5);
        client.search_page(&query, None).unwrap();
        let err = client.search_page(&query, None).unwrap_err();
        assert_eq!(err.api_reason(), Some(ApiErrorReason::QuotaExceeded));
        // Exactly 2 calls recorded — no retry storm on a fatal error.
        assert_eq!(client.budget().calls_made(), 2);
    }

    #[test]
    fn transient_backend_errors_are_retried() {
        let (client, svc) = client_with(
            0.15,
            Some(FaultConfig {
                metadata_miss_rate: 0.0,
                backend_error_rate: 0.45,
            }),
            100_000_000,
        );
        let ids: Vec<VideoId> = svc.platform().corpus().topics[0]
            .videos
            .iter()
            .take(5)
            .map(|v| v.id.clone())
            .collect();
        // With 4 attempts per call and 45% failure, practically every call
        // succeeds; run several to make a silent retry failure loud.
        for _ in 0..10 {
            let resources = client.videos(&ids).unwrap();
            assert_eq!(resources.len(), 5);
        }
    }

    #[test]
    fn channel_uploads_pipeline_is_complete() {
        let (client, svc) = client_with(0.3, Some(FaultConfig {
            metadata_miss_rate: 0.0,
            backend_error_rate: 0.0,
        }), 100_000_000);
        client.set_sim_time(Some(Timestamp::from_ymd(2025, 2, 9).unwrap()));
        // Channel with most uploads.
        let platform = svc.platform();
        let channel = platform
            .corpus()
            .channels
            .iter()
            .max_by_key(|c| {
                platform
                    .playlist_items(&c.id.uploads_playlist(), Timestamp::from_ymd(2025, 2, 9).unwrap())
                    .map(|v| v.len())
                    .unwrap_or(0)
            })
            .unwrap();
        let uploads = client.channel_uploads(&channel.id).unwrap();
        let oracle = platform
            .playlist_items(&channel.id.uploads_playlist(), Timestamp::from_ymd(2025, 2, 9).unwrap())
            .unwrap();
        assert_eq!(uploads.len(), oracle.len());
        assert!(!uploads.is_empty());
        // Completeness *and* order: newest first.
        for (item, video) in uploads.iter().zip(&oracle) {
            assert_eq!(
                item.snippet.as_ref().unwrap().resource_id.video_id,
                video.id.as_str()
            );
        }
        // Missing channel errors cleanly.
        let err = client.channel_uploads(&ChannelId::new("UCmissing")).unwrap_err();
        assert_eq!(err.api_reason(), Some(ApiErrorReason::NotFound));
    }

    /// Delegates to an inner transport but advertises a batch appetite,
    /// so client tests can exercise the chunked `call_many` path without
    /// a real pipelined connection underneath.
    struct BatchHinted<T>(T, usize);

    impl<T: Transport> Transport for BatchHinted<T> {
        fn execute(
            &self,
            endpoint: Endpoint,
            params: &[(String, String)],
            api_key: &str,
            now: Option<Timestamp>,
        ) -> ytaudit_types::Result<(u16, String)> {
            self.0.execute(endpoint, params, api_key, now)
        }

        fn preferred_batch(&self) -> usize {
            self.1
        }

        fn label(&self) -> &'static str {
            "batch-hinted"
        }
    }

    #[test]
    fn search_all_many_matches_per_query_search_all() {
        let (_seq, svc) = client_with(0.3, None, 100_000_000);
        let client = YouTubeClient::new(
            Box::new(BatchHinted(InProcessTransport::new(Arc::clone(&svc)), 4)),
            "key",
        );
        client.set_sim_time(Some(Timestamp::from_ymd(2025, 3, 1).unwrap()));
        let queries: Vec<SearchQuery> = [Topic::Grammys, Topic::Higgs, Topic::Blm]
            .iter()
            .map(|&t| SearchQuery::for_topic(t))
            .collect();
        let batched = client.search_all_many(&queries).unwrap();
        let units_after_batch = client.budget().units_for(Endpoint::Search);
        for (query, batch) in queries.iter().zip(&batched) {
            let reference = client.search_all(query).unwrap();
            assert_eq!(batch.pages, reference.pages);
            assert_eq!(batch.total_results, reference.total_results);
            assert_eq!(batch.video_ids(), reference.video_ids());
        }
        // The batch recorded exactly one search per page, like the
        // sequential loop: the reference runs doubled the ledger.
        assert_eq!(
            client.budget().units_for(Endpoint::Search),
            units_after_batch * 2
        );
    }

    #[test]
    fn sim_time_changes_results() {
        let (client, _svc) = client_with(0.3, None, 100_000_000);
        let query = SearchQuery::for_topic(Topic::Blm);
        client.set_sim_time(Some(Timestamp::from_ymd(2025, 2, 9).unwrap()));
        let early = client.search_all(&query).unwrap().video_ids();
        client.set_sim_time(Some(Timestamp::from_ymd(2025, 4, 30).unwrap()));
        let late = client.search_all(&query).unwrap().video_ids();
        assert_ne!(early, late, "collections 80 days apart must differ");
        client.set_sim_time(Some(Timestamp::from_ymd(2025, 2, 9).unwrap()));
        let early_again = client.search_all(&query).unwrap().video_ids();
        assert_eq!(early, early_again, "same sim time ⇒ identical results");
    }

    #[test]
    fn comment_threads_and_replies() {
        let (client, svc) = client_with(0.2, Some(FaultConfig {
            metadata_miss_rate: 0.0,
            backend_error_rate: 0.0,
        }), 100_000_000);
        let now = Timestamp::from_ymd(2025, 2, 9).unwrap();
        client.set_sim_time(Some(now));
        let platform = svc.platform();
        let video = platform
            .corpus()
            .topics
            .iter()
            .filter(|t| t.topic != Topic::Higgs)
            .flat_map(|t| &t.videos)
            .find(|v| {
                platform
                    .comment_threads(&v.id, now)
                    .iter()
                    .any(|t| !t.replies.is_empty())
            })
            .expect("a video with replies exists")
            .clone();
        let threads = client.comment_threads_all(&video.id).unwrap();
        assert!(!threads.is_empty());
        let with_replies = threads
            .iter()
            .find(|t| t.replies.is_some())
            .expect("thread with replies");
        let replies = client
            .comments_all(&CommentId::new(with_replies.id.clone()))
            .unwrap();
        assert_eq!(
            replies.len(),
            with_replies.replies.as_ref().unwrap().comments.len()
        );
    }
}
