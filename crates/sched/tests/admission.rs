//! End-to-end admission tests: exact shed counts through a real socket,
//! ledger consistency, and the client's retry treatment of a 429.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use ytaudit_api::service::error_response;
use ytaudit_api::{ApiService, Endpoint};
use ytaudit_client::{InProcessTransport, Transport, YouTubeClient};
use ytaudit_net::evloop::EvloopServer;
use ytaudit_net::resilience::{Backoff, RetryPolicy};
use ytaudit_net::server::ServerConfig;
use ytaudit_net::HttpClient;
use ytaudit_platform::{Platform, SimClock};
use ytaudit_sched::{MetricsRegistry, QuotaGovernor, ServeFront, TenantRegistry};
use ytaudit_types::{ApiErrorReason, Error, Timestamp, VideoId};

fn service() -> Arc<ApiService> {
    let platform = Arc::new(Platform::small(0.25));
    let service = Arc::new(ApiService::new(platform, SimClock::at_audit_start()));
    service.quota().register("tenant-a", 100_000_000);
    service
}

/// Drives a zero-refill tenant bucket over a real event-loop socket and
/// pins down the exact shed arithmetic: `burst` admissions, everything
/// after that a 429 with Retry-After, and a governor ledger equal to the
/// sum of admitted request costs — not one unit more.
#[test]
fn overload_sheds_exactly_past_the_burst() {
    const BURST: u64 = 40;
    const TOTAL: u64 = 100;
    let front = Arc::new(ServeFront::new(
        service(),
        Arc::new(TenantRegistry::new()),
        Arc::new(MetricsRegistry::new()),
        0,
    ));
    let tenant = front
        .tenants()
        .register("tenant-a", QuotaGovernor::per_second(0.0, BURST as f64));
    let server = EvloopServer::bind("127.0.0.1:0", front, ServerConfig::default())
        .expect("bind event-loop server");
    let client = HttpClient::new();
    let url = format!(
        "{}/youtube/v3/videos?part=id&id=nosuch&key=tenant-a",
        server.base_url()
    );
    let mut ok = 0u64;
    let mut shed = 0u64;
    for _ in 0..TOTAL {
        let resp = client.get(&url).expect("request");
        match resp.status.0 {
            200 => ok += 1,
            429 => {
                shed += 1;
                assert_eq!(resp.headers.get("retry-after"), Some("1"));
                let text = resp.body_text().expect("envelope");
                assert!(text.contains("rateLimitExceeded"), "{text}");
            }
            other => panic!("unexpected status {other}"),
        }
    }
    // Videos.list costs 1 unit, so the bucket admits exactly BURST.
    assert_eq!(ok, BURST);
    assert_eq!(shed, TOTAL - BURST);
    assert_eq!(tenant.admitted(), BURST);
    assert_eq!(tenant.shed(), TOTAL - BURST);
    assert_eq!(tenant.units_admitted(), BURST * Endpoint::Videos.cost());
    // The client saw every shed as a distinct 429, not a discard.
    assert_eq!(client.pool_stats().shed(), TOTAL - BURST);
    server.shutdown();
}

/// A transport that sheds its first N calls with the real 429 envelope,
/// then delegates — the wire behavior of a briefly-overloaded server.
struct ShedFirst {
    inner: InProcessTransport,
    remaining: AtomicU64,
    calls: AtomicU64,
}

impl Transport for ShedFirst {
    fn execute(
        &self,
        endpoint: Endpoint,
        params: &[(String, String)],
        api_key: &str,
        now: Option<Timestamp>,
    ) -> ytaudit_types::Result<(u16, String)> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        let shed = self
            .remaining
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok();
        if shed {
            let (code, body) = error_response(&Error::api(
                ApiErrorReason::RateLimited,
                "Server over capacity; retry shortly.",
            ));
            return Ok((code, body));
        }
        self.inner.execute(endpoint, params, api_key, now)
    }

    fn label(&self) -> &'static str {
        "shed-first"
    }
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 4,
        backoff: Backoff {
            base: Duration::from_millis(1),
            factor: 1.0,
            max: Duration::from_millis(2),
            jitter: 0.0,
            seed: 1,
        },
    }
}

/// The client must treat a 429 as retryable — the `Retry-After` contract
/// is that capacity comes back — and succeed on the next attempt without
/// surfacing the shed to the caller.
#[test]
fn client_retries_through_a_shed_and_succeeds() {
    let service = service();
    let transport = Arc::new(ShedFirst {
        inner: InProcessTransport::new(Arc::clone(&service)),
        remaining: AtomicU64::new(1),
        calls: AtomicU64::new(0),
    });
    struct Shared(Arc<ShedFirst>);
    impl Transport for Shared {
        fn execute(
            &self,
            endpoint: Endpoint,
            params: &[(String, String)],
            api_key: &str,
            now: Option<Timestamp>,
        ) -> ytaudit_types::Result<(u16, String)> {
            self.0.execute(endpoint, params, api_key, now)
        }
        fn label(&self) -> &'static str {
            self.0.label()
        }
    }
    let client = YouTubeClient::new(Box::new(Shared(Arc::clone(&transport))), "tenant-a")
        .with_retry(fast_retry());
    let videos = client
        .videos(&[VideoId::new("nosuch")])
        .expect("shed then success");
    assert!(videos.is_empty());
    // Exactly two attempts: the shed and the successful retry.
    assert_eq!(transport.calls.load(Ordering::SeqCst), 2);

    // With sheds outlasting the attempt budget, the failure surfaces as
    // the rate-limit reason, not a generic error.
    let transport = Arc::new(ShedFirst {
        inner: InProcessTransport::new(service),
        remaining: AtomicU64::new(u64::MAX),
        calls: AtomicU64::new(0),
    });
    let client = YouTubeClient::new(Box::new(Shared(Arc::clone(&transport))), "tenant-a")
        .with_retry(fast_retry());
    let err = client
        .videos(&[VideoId::new("nosuch")])
        .expect_err("always shed");
    assert_eq!(err.api_reason(), Some(ApiErrorReason::RateLimited));
}
