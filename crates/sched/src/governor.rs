//! The shared quota governor: one token bucket, denominated in quota
//! *units*, pacing every worker's requests — plus the transport
//! middleware that applies it and measures per-request latency.
//!
//! Pacing by units rather than requests is what makes the pacing honest:
//! a `Search: list` page costs 100 units while a `Videos: list` call
//! costs 1, so a worker burning searches is throttled 100× harder than
//! one sweeping ID endpoints, exactly as a real daily quota would bite.

use crate::metrics::MetricsRegistry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use ytaudit_api::Endpoint;
use ytaudit_client::Transport;
use ytaudit_net::TokenBucket;
use ytaudit_types::{Error, Result, Timestamp};

/// The minimum burst capacity: a single `Search: list` page must always
/// fit through the bucket or no search could ever be admitted.
pub const MIN_BURST_UNITS: f64 = 100.0;

/// A shared token-bucket governor over quota units.
pub struct QuotaGovernor {
    bucket: Option<TokenBucket>,
    timeout: Duration,
    units_admitted: AtomicU64,
}

impl QuotaGovernor {
    /// No pacing: every admission succeeds immediately.
    pub fn unlimited() -> QuotaGovernor {
        QuotaGovernor {
            bucket: None,
            timeout: Duration::from_secs(600),
            units_admitted: AtomicU64::new(0),
        }
    }

    /// Refills `units_per_sec` quota units per second with burst
    /// capacity `burst` (clamped up to [`MIN_BURST_UNITS`]).
    pub fn per_second(units_per_sec: f64, burst: f64) -> QuotaGovernor {
        QuotaGovernor {
            bucket: Some(TokenBucket::new(burst.max(MIN_BURST_UNITS), units_per_sec)),
            timeout: Duration::from_secs(600),
            units_admitted: AtomicU64::new(0),
        }
    }

    /// Total quota units this governor has admitted, across every
    /// client sharing it — the ledger a sharded run checks against the
    /// single-scheduler total.
    pub fn units_admitted(&self) -> u64 {
        self.units_admitted.load(Ordering::Relaxed)
    }

    /// Overrides how long one admission may block before it fails.
    pub fn with_timeout(mut self, timeout: Duration) -> QuotaGovernor {
        self.timeout = timeout;
        self
    }

    /// Blocks until `cost` units are admitted, recording any wait as
    /// throttled time. Fails (as a retryable I/O error) if the wait
    /// exceeds the governor's timeout.
    pub fn admit(&self, cost: u64, metrics: &MetricsRegistry) -> Result<()> {
        let Some(bucket) = &self.bucket else {
            self.units_admitted.fetch_add(cost, Ordering::Relaxed);
            return Ok(());
        };
        let units = cost;
        let cost = cost as f64;
        if bucket.try_acquire(cost) {
            self.units_admitted.fetch_add(units, Ordering::Relaxed);
            return Ok(());
        }
        // ytlint: allow(determinism) — measures real throttle time for
        // metrics only; dataset bytes never depend on it
        let start = Instant::now();
        let admitted = bucket.acquire(cost, self.timeout);
        metrics.add_throttled(start.elapsed());
        if admitted {
            self.units_admitted.fetch_add(units, Ordering::Relaxed);
            Ok(())
        } else {
            Err(Error::Io(format!(
                "quota governor: {cost} units not admitted within {:?}",
                self.timeout
            )))
        }
    }

    /// Non-blocking admission: takes `cost` units if the bucket holds them
    /// right now, else returns `false` without waiting. This is the serve
    /// front end's path — a loaded server sheds (429) instead of queueing,
    /// so the admission decision must never block the event loop. The
    /// ledger moves only on success, keeping `units_admitted` an exact
    /// count of work actually let through.
    pub fn try_admit(&self, cost: u64) -> bool {
        let Some(bucket) = &self.bucket else {
            self.units_admitted.fetch_add(cost, Ordering::Relaxed);
            return true;
        };
        if bucket.try_acquire(cost as f64) {
            self.units_admitted.fetch_add(cost, Ordering::Relaxed);
            true
        } else {
            false
        }
    }
}

/// Transport middleware: every request is admitted through the shared
/// governor at its endpoint's unit cost, then timed into the metrics
/// registry. Each worker wraps its own transport in one of these, so
/// the pool is paced globally while latency is measured per request.
pub struct GovernedTransport {
    inner: Box<dyn Transport>,
    governor: Arc<QuotaGovernor>,
    metrics: Arc<MetricsRegistry>,
    flat_cost: Option<u64>,
}

impl GovernedTransport {
    /// Wraps a transport.
    pub fn new(
        inner: Box<dyn Transport>,
        governor: Arc<QuotaGovernor>,
        metrics: Arc<MetricsRegistry>,
    ) -> GovernedTransport {
        GovernedTransport {
            inner,
            governor,
            metrics,
            flat_cost: None,
        }
    }

    /// Admits every call at a flat `cost` instead of the YouTube
    /// endpoint price list. TikTok's quota is a daily *request* budget,
    /// so its scheduler governs at one unit per request regardless of
    /// endpoint.
    pub fn with_flat_cost(mut self, cost: u64) -> GovernedTransport {
        self.flat_cost = Some(cost);
        self
    }

    /// What one call to `endpoint` costs under this transport's model.
    fn cost_of(&self, endpoint: Endpoint) -> u64 {
        self.flat_cost.unwrap_or_else(|| endpoint.cost())
    }
}

impl Transport for GovernedTransport {
    fn execute(
        &self,
        endpoint: Endpoint,
        params: &[(String, String)],
        api_key: &str,
        now: Option<Timestamp>,
    ) -> Result<(u16, String)> {
        self.governor.admit(self.cost_of(endpoint), &self.metrics)?;
        // ytlint: allow(determinism) — real request latency feeds the
        // metrics histogram only
        let start = Instant::now();
        let result = self.inner.execute(endpoint, params, api_key, now);
        if result.is_ok() {
            self.metrics.record_latency(endpoint, start.elapsed());
        }
        result
    }

    fn execute_many(
        &self,
        endpoint: Endpoint,
        param_sets: &[Vec<(String, String)>],
        api_key: &str,
        now: Option<Timestamp>,
    ) -> Vec<Result<(u16, String)>> {
        // Admit every call before issuing any: the batch rides one
        // pipelined connection, and stalling mid-pipeline on a token
        // would hold the connection hostage. If an admission times out,
        // only the admitted prefix is executed; the rest fail with the
        // admission error, exactly as the sequential loop would.
        let mut admitted = 0;
        let mut admit_err = None;
        for _ in param_sets {
            match self.governor.admit(self.cost_of(endpoint), &self.metrics) {
                Ok(()) => admitted += 1,
                Err(err) => {
                    admit_err = Some(err);
                    break;
                }
            }
        }
        // ytlint: allow(determinism) — real batch latency feeds the
        // metrics histogram only
        let start = Instant::now();
        let mut results = self
            .inner
            .execute_many(endpoint, &param_sets[..admitted], api_key, now);
        let elapsed = start.elapsed();
        // Per-call latency is unobservable inside a pipelined batch;
        // attribute the batch mean to each successful call so endpoint
        // histograms stay comparable with the sequential path.
        let succeeded = results.iter().filter(|r| r.is_ok()).count() as u32;
        if succeeded > 0 {
            let per_call = elapsed / succeeded;
            for _ in 0..succeeded {
                self.metrics.record_latency(endpoint, per_call);
            }
        }
        if let Some(err) = admit_err {
            while results.len() < param_sets.len() {
                results.push(Err(err.clone()));
            }
        }
        results
    }

    fn preferred_batch(&self) -> usize {
        self.inner.preferred_batch()
    }

    fn label(&self) -> &'static str {
        self.inner.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_governor_never_blocks() {
        let g = QuotaGovernor::unlimited();
        let m = MetricsRegistry::new();
        for _ in 0..1_000 {
            g.admit(100, &m).unwrap();
        }
        assert_eq!(m.snapshot().throttled, Duration::ZERO);
    }

    #[test]
    fn governor_paces_in_quota_units() {
        // 100-unit burst, fast refill: the first search is free, the
        // second must wait for ~100 units to accrue.
        let g = QuotaGovernor::per_second(10_000.0, 100.0);
        let m = MetricsRegistry::new();
        g.admit(100, &m).unwrap();
        let start = Instant::now();
        g.admit(100, &m).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(5));
        assert!(m.snapshot().throttled >= Duration::from_millis(5));
    }

    #[test]
    fn governor_timeout_is_an_io_error() {
        // Zero refill: the second admission can never succeed.
        let g = QuotaGovernor::per_second(0.0, 100.0).with_timeout(Duration::from_millis(20));
        let m = MetricsRegistry::new();
        g.admit(100, &m).unwrap();
        let err = g.admit(1, &m).unwrap_err();
        assert!(matches!(err, Error::Io(_)), "{err:?}");
    }

    #[test]
    fn admitted_units_are_ledgered_on_success_only() {
        let g = QuotaGovernor::unlimited();
        let m = MetricsRegistry::new();
        g.admit(100, &m).unwrap();
        g.admit(1, &m).unwrap();
        assert_eq!(g.units_admitted(), 101);
        // A timed-out admission does not count.
        let g = QuotaGovernor::per_second(0.0, 100.0).with_timeout(Duration::from_millis(20));
        g.admit(100, &m).unwrap();
        assert!(g.admit(1, &m).is_err());
        assert_eq!(g.units_admitted(), 100);
    }

    #[test]
    fn try_admit_never_blocks_and_ledgers_exactly() {
        // Zero refill, 200-unit burst: exactly two 100-unit admissions
        // fit, every later attempt is an immediate shed.
        let g = QuotaGovernor::per_second(0.0, 200.0);
        assert!(g.try_admit(100));
        assert!(g.try_admit(100));
        for _ in 0..50 {
            assert!(!g.try_admit(100));
        }
        // The ledger moved only for the two admitted requests.
        assert_eq!(g.units_admitted(), 200);
        // Unlimited governors admit everything and still keep the ledger.
        let g = QuotaGovernor::unlimited();
        assert!(g.try_admit(7));
        assert_eq!(g.units_admitted(), 7);
    }

    #[test]
    fn burst_is_clamped_to_fit_a_search() {
        // Requested burst of 1 unit would deadlock every search; the
        // clamp admits one immediately.
        let g = QuotaGovernor::per_second(1_000_000.0, 1.0);
        let m = MetricsRegistry::new();
        g.admit(100, &m).unwrap();
    }
}
