//! The reorder buffer: workers complete `(topic, snapshot)` pairs in
//! whatever order the pool happens to finish them, but the sink must see
//! commits in plan order — that is what keeps `--store --resume`
//! semantics intact and the committed byte stream identical to the
//! sequential collector's. The buffer holds out-of-order completions and
//! releases the longest contiguous plan-order run on every offer.

use std::collections::BTreeMap;

/// A plan-order reorder buffer over sequence numbers `0..len`.
///
/// Slots marked as skipped (pairs already committed by a previous,
/// resumed run) are passed over automatically; everything else must be
/// offered exactly once.
#[derive(Debug)]
pub struct ReorderBuffer<T> {
    skip: Vec<bool>,
    next: usize,
    pending: BTreeMap<usize, T>,
}

impl<T> ReorderBuffer<T> {
    /// A buffer over `skip.len()` sequence slots; `skip[i] = true` marks
    /// slot `i` as already delivered (a resumed pair).
    pub fn new(skip: Vec<bool>) -> ReorderBuffer<T> {
        let mut buffer = ReorderBuffer {
            skip,
            next: 0,
            pending: BTreeMap::new(),
        };
        buffer.advance();
        buffer
    }

    fn advance(&mut self) {
        while self.next < self.skip.len() && self.skip[self.next] {
            self.next += 1;
        }
    }

    /// Accepts the completion of slot `seq` and returns every item that
    /// is now deliverable, in plan order. Returns an empty vec while the
    /// head of the plan is still outstanding.
    pub fn offer(&mut self, seq: usize, item: T) -> Vec<(usize, T)> {
        debug_assert!(
            seq < self.skip.len() && !self.skip[seq],
            "seq {seq} not expected"
        );
        self.pending.insert(seq, item);
        let mut released = Vec::new();
        while let Some(item) = self.pending.remove(&self.next) {
            released.push((self.next, item));
            self.next += 1;
            self.advance();
        }
        released
    }

    /// The next plan-order slot still awaited (`len` when drained).
    pub fn next_seq(&self) -> usize {
        self.next
    }

    /// Completions held back waiting for earlier slots.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Whether every non-skipped slot has been delivered.
    pub fn is_drained(&self) -> bool {
        self.pending.is_empty() && self.next >= self.skip.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// splitmix64 — a tiny deterministic PRNG for the permutation test.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn deliveries(skip: Vec<bool>, order: &[usize]) -> Vec<usize> {
        let mut buffer = ReorderBuffer::new(skip);
        let mut out = Vec::new();
        for &seq in order {
            for (released, value) in buffer.offer(seq, seq) {
                assert_eq!(released, value);
                out.push(released);
            }
        }
        assert!(buffer.is_drained());
        out
    }

    #[test]
    fn in_order_offers_release_immediately() {
        assert_eq!(deliveries(vec![false; 4], &[0, 1, 2, 3]), vec![0, 1, 2, 3]);
    }

    #[test]
    fn reverse_order_releases_everything_at_the_end() {
        let mut buffer = ReorderBuffer::new(vec![false; 4]);
        assert!(buffer.offer(3, 3).is_empty());
        assert!(buffer.offer(2, 2).is_empty());
        assert!(buffer.offer(1, 1).is_empty());
        assert_eq!(buffer.pending_len(), 3);
        let released: Vec<usize> = buffer.offer(0, 0).into_iter().map(|(s, _)| s).collect();
        assert_eq!(released, vec![0, 1, 2, 3]);
        assert!(buffer.is_drained());
    }

    #[test]
    fn skipped_slots_are_passed_over() {
        // Slots 0 and 2 were committed by a previous run.
        assert_eq!(
            deliveries(vec![true, false, true, false], &[3, 1]),
            vec![1, 3]
        );
        // All slots skipped: drained from the start.
        let buffer: ReorderBuffer<()> = ReorderBuffer::new(vec![true; 5]);
        assert!(buffer.is_drained());
    }

    #[test]
    fn every_random_permutation_delivers_in_plan_order() {
        // Property: whatever completion order the worker pool produces,
        // delivery is exactly plan order. 200 seeded shuffles of a
        // 17-slot plan with a couple of resumed slots.
        let mut state = 0x5EEDu64;
        for round in 0..200 {
            let n = 17;
            let skip: Vec<bool> = (0..n).map(|i| i % 7 == 3 && round % 2 == 0).collect();
            let mut order: Vec<usize> = (0..n).filter(|&i| !skip[i]).collect();
            // Fisher–Yates with the deterministic PRNG.
            for i in (1..order.len()).rev() {
                let j = (splitmix(&mut state) % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            let expected: Vec<usize> = (0..n).filter(|&i| !skip[i]).collect();
            assert_eq!(deliveries(skip, &order), expected, "round {round}");
        }
    }
}
