//! Multi-tenant admission front end for `ytaudit serve`.
//!
//! Every API key registered here is a *tenant* with its own
//! [`QuotaGovernor`] bucket; the front end prices each request in quota
//! units (search = 100, everything else = 1) and admits it through the
//! tenant's bucket *before* the request reaches the service. Admission is
//! strictly non-blocking — a loaded server sheds with `429` and a
//! `Retry-After` hint instead of queueing, so the event loop behind it is
//! never stalled by one tenant's burst. A global in-flight cap backstops
//! the per-tenant buckets: past it, everything is shed regardless of
//! whose bucket has room.
//!
//! The `/metrics` route renders the shared [`MetricsRegistry`] plus the
//! front end's own counters as a plain-text page, so a load driver (or a
//! human with `curl`) can watch admission behavior live.

use crate::governor::QuotaGovernor;
use crate::metrics::MetricsRegistry;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use ytaudit_api::{endpoint_for_path, route, ApiService};
use ytaudit_net::server::Handler;
use ytaudit_net::{Request, Response, StatusCode};
use ytaudit_types::{ApiErrorReason, Error};

/// One tenant: an API key, its private quota bucket, and its ledger.
pub struct Tenant {
    governor: QuotaGovernor,
    admitted: AtomicU64,
    shed: AtomicU64,
}

impl Tenant {
    fn new(governor: QuotaGovernor) -> Tenant {
        Tenant {
            governor,
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// Requests this tenant has had admitted.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Requests shed (429) because this tenant's bucket was empty.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Quota units the tenant's governor has let through. Exactly the
    /// sum of the admitted requests' endpoint costs — the invariant the
    /// admission test pins down.
    pub fn units_admitted(&self) -> u64 {
        self.governor.units_admitted()
    }
}

/// The tenant table: API key → [`Tenant`].
#[derive(Default)]
pub struct TenantRegistry {
    tenants: Mutex<HashMap<String, Arc<Tenant>>>,
}

impl TenantRegistry {
    /// An empty registry.
    pub fn new() -> TenantRegistry {
        TenantRegistry::default()
    }

    /// Registers `key` with its own governor, replacing any previous
    /// registration. Returns the tenant handle for ledger inspection.
    pub fn register(&self, key: &str, governor: QuotaGovernor) -> Arc<Tenant> {
        let tenant = Arc::new(Tenant::new(governor));
        self.tenants
            .lock()
            .insert(key.to_string(), Arc::clone(&tenant));
        tenant
    }

    /// Looks up a tenant by API key.
    pub fn get(&self, key: &str) -> Option<Arc<Tenant>> {
        self.tenants.lock().get(key).cloned()
    }

    /// Every `(key, tenant)` pair, sorted by key for stable display.
    pub fn all(&self) -> Vec<(String, Arc<Tenant>)> {
        let mut all: Vec<_> = self
            .tenants
            .lock()
            .iter()
            .map(|(k, t)| (k.clone(), Arc::clone(t)))
            .collect();
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }
}

/// Admission front end: wraps an [`ApiService`] with per-tenant quota,
/// a global in-flight cap, and a `/metrics` page. Implements the net
/// [`Handler`] trait, so the same instance can sit behind the blocking
/// server and the event-loop server.
pub struct ServeFront {
    service: Arc<ApiService>,
    tenants: Arc<TenantRegistry>,
    metrics: Arc<MetricsRegistry>,
    max_in_flight: u64,
    in_flight: AtomicU64,
    requests: AtomicU64,
    shed_quota: AtomicU64,
    shed_overload: AtomicU64,
    started: Instant,
}

impl ServeFront {
    /// Wraps `service`. `max_in_flight` caps requests inside handlers
    /// across all connections; 0 means uncapped.
    pub fn new(
        service: Arc<ApiService>,
        tenants: Arc<TenantRegistry>,
        metrics: Arc<MetricsRegistry>,
        max_in_flight: u64,
    ) -> ServeFront {
        ServeFront {
            service,
            tenants,
            metrics,
            max_in_flight,
            in_flight: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            shed_quota: AtomicU64::new(0),
            shed_overload: AtomicU64::new(0),
            // ytlint: allow(determinism) — uptime display on /metrics
            // only; no dataset bytes depend on it
            started: Instant::now(),
        }
    }

    /// The tenant table, for registering keys and reading ledgers.
    pub fn tenants(&self) -> &Arc<TenantRegistry> {
        &self.tenants
    }

    /// Total requests seen (admitted or shed).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Requests shed because a tenant's quota bucket was empty.
    pub fn shed_quota(&self) -> u64 {
        self.shed_quota.load(Ordering::Relaxed)
    }

    /// Requests shed by the global in-flight cap.
    pub fn shed_overload(&self) -> u64 {
        self.shed_overload.load(Ordering::Relaxed)
    }

    fn shed_response(&self, reason: &str) -> Response {
        // The hint rides both the HTTP header (for plain HTTP clients)
        // and the JSON envelope (for transports that only see the body).
        let (code, body) = ytaudit_api::service::error_response(&Error::api_with_retry_after(
            ApiErrorReason::RateLimited,
            reason,
            1,
        ));
        Response::json(StatusCode(code), body.into_bytes()).with_header("retry-after", "1")
    }

    fn metrics_page(&self) -> Response {
        let mut page = String::from("ytaudit serve metrics\n");
        let uptime = self.started.elapsed().as_secs_f64();
        let requests = self.requests();
        let _ = writeln!(page, "  uptime_seconds      {uptime:.1}");
        let _ = writeln!(page, "  requests_total      {requests}");
        let _ = writeln!(
            page,
            "  requests_per_second {:.1}",
            if uptime > 0.0 {
                requests as f64 / uptime
            } else {
                0.0
            }
        );
        let _ = writeln!(page, "  shed_quota_total    {}", self.shed_quota());
        let _ = writeln!(page, "  shed_overload_total {}", self.shed_overload());
        for (key, tenant) in self.tenants.all() {
            let _ = writeln!(
                page,
                "  tenant {key:<12} admitted {:>8}   units {:>10}   shed {:>8}",
                tenant.admitted(),
                tenant.units_admitted(),
                tenant.shed()
            );
        }
        page.push('\n');
        page.push_str(&self.metrics.snapshot().render_table());
        Response::text(StatusCode::OK, page)
    }

    fn admit_and_route(&self, req: &Request) -> Response {
        // Price the request before touching the service: only API
        // endpoint routes cost quota; /healthz and /admin pass through.
        let endpoint = match endpoint_for_path(&req.path) {
            Some(endpoint) => endpoint,
            None => return route(&self.service, req),
        };
        let key = req
            .query
            .pairs()
            .iter()
            .find(|(k, _)| k == "key")
            .map(|(_, v)| v.clone());
        // Keys without a tenant registration fall through to the
        // service's own auth (403 for unknown keys) — tenancy is an
        // *admission* layer, not an authentication layer.
        let tenant = key.as_deref().and_then(|k| self.tenants.get(k));
        if let Some(tenant) = &tenant {
            if !tenant.governor.try_admit(endpoint.cost()) {
                tenant.shed.fetch_add(1, Ordering::Relaxed);
                self.shed_quota.fetch_add(1, Ordering::Relaxed);
                return self.shed_response("Tenant rate limit exceeded; retry shortly.");
            }
            tenant.admitted.fetch_add(1, Ordering::Relaxed);
        }
        // ytlint: allow(determinism) — request latency metric only
        let start = Instant::now();
        let response = route(&self.service, req);
        self.metrics.record_latency(endpoint, start.elapsed());
        response
    }
}

impl Handler for ServeFront {
    fn handle(&self, req: &Request) -> Response {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if req.path == "/metrics" {
            return self.metrics_page();
        }
        // Global backstop: cap requests concurrently inside handlers.
        // fetch_add first, judge after — two racing requests at the
        // boundary can both be admitted one over the cap, which is fine
        // for load shedding; what matters is the counter never leaks.
        if self.max_in_flight > 0
            && self.in_flight.fetch_add(1, Ordering::AcqRel) >= self.max_in_flight
        {
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
            self.shed_overload.fetch_add(1, Ordering::Relaxed);
            return self.shed_response("Server over capacity; retry shortly.");
        }
        let response = self.admit_and_route(req);
        if self.max_in_flight > 0 {
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
        }
        response
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ytaudit_platform::{Platform, SimClock};

    fn front(max_in_flight: u64) -> ServeFront {
        let platform = Arc::new(Platform::small(0.25));
        let service = Arc::new(ApiService::new(platform, SimClock::at_audit_start()));
        service.quota().register("alpha", 100_000_000);
        service.quota().register("beta", 100_000_000);
        ServeFront::new(
            service,
            Arc::new(TenantRegistry::new()),
            Arc::new(MetricsRegistry::new()),
            max_in_flight,
        )
    }

    fn videos_request(key: &str) -> Request {
        let url = ytaudit_net::Url::parse(&format!(
            "http://x/youtube/v3/videos?part=id&id=nosuch&key={key}"
        ))
        .expect("static url");
        Request::get(url.path.clone()).with_query(url.query)
    }

    #[test]
    fn tenant_ledger_matches_admitted_requests_exactly() {
        let front = front(0);
        // Zero refill, burst 100 at cost 1/request: exactly 100 admits.
        let tenant = front
            .tenants()
            .register("alpha", QuotaGovernor::per_second(0.0, 100.0));
        let req = videos_request("alpha");
        let mut admitted = 0u64;
        let mut shed = 0u64;
        for _ in 0..150 {
            let resp = front.handle(&req);
            if resp.status.0 == 429 {
                shed += 1;
                assert_eq!(resp.headers.get("retry-after"), Some("1"));
            } else {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 100);
        assert_eq!(shed, 50);
        assert_eq!(tenant.admitted(), 100);
        assert_eq!(tenant.shed(), 50);
        // The governor ledger is exactly the sum of admitted costs.
        assert_eq!(tenant.units_admitted(), 100);
        assert_eq!(front.shed_quota(), 50);
        assert_eq!(front.shed_overload(), 0);
    }

    #[test]
    fn unregistered_keys_fall_through_to_service_auth() {
        let front = front(0);
        // `beta` has service-side quota but no tenant bucket: admitted.
        let ok = front.handle(&videos_request("beta"));
        assert_eq!(ok.status.0, 200);
        // A key the service never heard of is a 403, not a 429.
        let forbidden = front.handle(&videos_request("nobody"));
        assert_eq!(forbidden.status.0, 403);
    }

    #[test]
    fn metrics_page_reports_tenants_and_shed_totals() {
        let front = front(0);
        front
            .tenants()
            .register("alpha", QuotaGovernor::per_second(0.0, 100.0));
        for _ in 0..120 {
            front.handle(&videos_request("alpha"));
        }
        let page = front.handle(&Request::get("/metrics"));
        assert_eq!(page.status.0, 200);
        let text = page.body_text().expect("utf-8 page");
        assert!(text.contains("tenant alpha"), "{text}");
        assert!(text.contains("shed_quota_total    20"), "{text}");
        assert!(text.contains("requests_total      121"), "{text}");
    }

    #[test]
    fn in_flight_counter_never_leaks_across_sheds() {
        // Cap 0 is uncapped; cap 1 with sequential calls never sheds,
        // and the counter returns to zero after every request.
        let front = front(1);
        for _ in 0..20 {
            let resp = front.handle(&videos_request("beta"));
            assert_eq!(resp.status.0, 200);
        }
        assert_eq!(front.shed_overload(), 0);
        assert_eq!(front.in_flight.load(Ordering::Relaxed), 0);
    }
}
