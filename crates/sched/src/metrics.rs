//! The scheduler's metrics registry: lock-free atomic counters plus
//! fixed-bucket latency histograms, cheap enough to update on every
//! request from every worker, snapshotted for display.

use crate::factory::ConnectionTotals;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use ytaudit_api::Endpoint;

/// Every endpoint, in display order. Indexes into the registry's
/// histogram array.
const ENDPOINTS: [Endpoint; 6] = [
    Endpoint::Search,
    Endpoint::Videos,
    Endpoint::Channels,
    Endpoint::PlaylistItems,
    Endpoint::CommentThreads,
    Endpoint::Comments,
];

fn endpoint_index(endpoint: Endpoint) -> usize {
    match endpoint {
        Endpoint::Search => 0,
        Endpoint::Videos => 1,
        Endpoint::Channels => 2,
        Endpoint::PlaylistItems => 3,
        Endpoint::CommentThreads => 4,
        Endpoint::Comments => 5,
    }
}

/// Histogram bucket upper bounds, in microseconds. The last implicit
/// bucket is unbounded. Sized for the workloads at hand: in-process
/// calls land in the sub-millisecond buckets, loopback HTTP in the
/// low-millisecond ones, and throttled or retried calls in the tail.
const BUCKET_BOUNDS_US: [u64; 12] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 1_000_000,
];

/// Number of histogram buckets (bounded buckets plus the overflow one).
pub const LATENCY_BUCKETS: usize = BUCKET_BOUNDS_US.len() + 1;

/// A fixed-bucket latency histogram with atomic counters.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Records one observation.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let bucket = BUCKET_BOUNDS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(BUCKET_BOUNDS_US.len());
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram's summary statistics.
    pub fn snapshot(&self) -> LatencySnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let sum_us = self.sum_us.load(Ordering::Relaxed);
        let max_us = self.max_us.load(Ordering::Relaxed);
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let percentile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = (q * count as f64).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (i, &n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    // Report the bucket's upper bound; the overflow
                    // bucket reports the observed maximum.
                    return BUCKET_BOUNDS_US.get(i).copied().unwrap_or(max_us);
                }
            }
            max_us
        };
        LatencySnapshot {
            count,
            mean_us: sum_us.checked_div(count).unwrap_or(0),
            p50_us: percentile(0.50),
            p90_us: percentile(0.90),
            p99_us: percentile(0.99),
            max_us,
        }
    }
}

/// Summary statistics derived from a [`LatencyHistogram`]. Percentiles
/// are bucket upper bounds (the histogram's resolution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Mean latency in microseconds.
    pub mean_us: u64,
    /// 50th percentile, microseconds.
    pub p50_us: u64,
    /// 90th percentile, microseconds.
    pub p90_us: u64,
    /// 99th percentile, microseconds.
    pub p99_us: u64,
    /// Largest observation, microseconds.
    pub max_us: u64,
}

/// The scheduler's shared metrics: task counters, quota accounting,
/// throttle time, connection reuse, and per-endpoint request latency.
/// All updates are relaxed atomics — safe and cheap from any worker.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    tasks_completed: AtomicU64,
    tasks_retried: AtomicU64,
    tasks_failed: AtomicU64,
    pairs_committed: AtomicU64,
    quota_units: AtomicU64,
    quota_wasted: AtomicU64,
    throttled_us: AtomicU64,
    connections_opened: AtomicU64,
    connections_reused: AtomicU64,
    connections_replayed: AtomicU64,
    connections_discarded: AtomicU64,
    connections_shed: AtomicU64,
    pipeline_depth: AtomicU64,
    latency: [LatencyHistogram; 6],
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// One task finished successfully.
    pub fn task_completed(&self) {
        self.tasks_completed.fetch_add(1, Ordering::Relaxed);
    }

    /// One task failed retryably and was re-enqueued.
    pub fn task_retried(&self) {
        self.tasks_retried.fetch_add(1, Ordering::Relaxed);
    }

    /// One task failed fatally or exhausted its attempt budget.
    pub fn task_failed(&self) {
        self.tasks_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// One `(topic, snapshot)` pair was committed to the sink.
    pub fn pair_committed(&self) {
        self.pairs_committed.fetch_add(1, Ordering::Relaxed);
    }

    /// Quota units attributed to committed work.
    pub fn add_quota(&self, units: u64) {
        self.quota_units.fetch_add(units, Ordering::Relaxed);
    }

    /// Quota units burned by failed task attempts (spent on the wire but
    /// not attributed to any commit).
    pub fn add_wasted(&self, units: u64) {
        self.quota_wasted.fetch_add(units, Ordering::Relaxed);
    }

    /// Time a worker spent blocked on the quota governor.
    pub fn add_throttled(&self, wait: Duration) {
        self.throttled_us.fetch_add(
            wait.as_micros().min(u128::from(u64::MAX)) as u64,
            Ordering::Relaxed,
        );
    }

    /// Records keep-alive pool totals (absolute values — refreshed from
    /// the transport factory during the run for live display and once
    /// more after it finishes).
    pub fn set_connections(&self, totals: ConnectionTotals) {
        self.connections_opened.store(totals.opened, Ordering::Relaxed);
        self.connections_reused.store(totals.reused, Ordering::Relaxed);
        self.connections_replayed
            .store(totals.replayed, Ordering::Relaxed);
        self.connections_discarded
            .store(totals.discarded, Ordering::Relaxed);
        self.connections_shed.store(totals.shed, Ordering::Relaxed);
        self.pipeline_depth
            .store(totals.pipeline_depth, Ordering::Relaxed);
    }

    /// Records one request's latency against its endpoint.
    pub fn record_latency(&self, endpoint: Endpoint, latency: Duration) {
        self.latency[endpoint_index(endpoint)].record(latency);
    }

    /// A point-in-time snapshot of every counter and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            tasks_completed: self.tasks_completed.load(Ordering::Relaxed),
            tasks_retried: self.tasks_retried.load(Ordering::Relaxed),
            tasks_failed: self.tasks_failed.load(Ordering::Relaxed),
            pairs_committed: self.pairs_committed.load(Ordering::Relaxed),
            quota_units: self.quota_units.load(Ordering::Relaxed),
            quota_wasted: self.quota_wasted.load(Ordering::Relaxed),
            throttled: Duration::from_micros(self.throttled_us.load(Ordering::Relaxed)),
            connections_opened: self.connections_opened.load(Ordering::Relaxed),
            connections_reused: self.connections_reused.load(Ordering::Relaxed),
            connections_replayed: self.connections_replayed.load(Ordering::Relaxed),
            connections_discarded: self.connections_discarded.load(Ordering::Relaxed),
            connections_shed: self.connections_shed.load(Ordering::Relaxed),
            pipeline_depth: self.pipeline_depth.load(Ordering::Relaxed),
            endpoints: ENDPOINTS
                .iter()
                .map(|&e| EndpointLatency {
                    endpoint: e.path(),
                    latency: self.latency[endpoint_index(e)].snapshot(),
                })
                .filter(|e| e.latency.count > 0)
                .collect(),
        }
    }
}

/// Latency summary for one endpoint.
#[derive(Debug, Clone)]
pub struct EndpointLatency {
    /// The endpoint's REST path segment (`search`, `videos`, …).
    pub endpoint: &'static str,
    /// Its latency summary.
    pub latency: LatencySnapshot,
}

/// An owned snapshot of the registry, ready for display.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Tasks that finished successfully.
    pub tasks_completed: u64,
    /// Retry re-enqueues (beyond each task's first attempt).
    pub tasks_retried: u64,
    /// Tasks that failed fatally or exhausted their attempts.
    pub tasks_failed: u64,
    /// Pairs committed to the sink.
    pub pairs_committed: u64,
    /// Quota units attributed to committed work.
    pub quota_units: u64,
    /// Quota units burned by failed attempts.
    pub quota_wasted: u64,
    /// Total time workers spent blocked on the quota governor.
    pub throttled: Duration,
    /// Keep-alive connections opened (HTTP transport only).
    pub connections_opened: u64,
    /// Requests served over a reused keep-alive connection.
    pub connections_reused: u64,
    /// Requests resubmitted after a connection died under them.
    pub connections_replayed: u64,
    /// Healthy connections closed because an idle pool was full.
    pub connections_discarded: u64,
    /// Requests answered with 429 — shed by the server under load.
    pub connections_shed: u64,
    /// Highest pipeline depth any connection reached (0 before any
    /// HTTP traffic, 1 = plain sequential keep-alive).
    pub pipeline_depth: u64,
    /// Per-endpoint latency, endpoints with traffic only.
    pub endpoints: Vec<EndpointLatency>,
}

impl MetricsSnapshot {
    /// A one-line live progress summary.
    pub fn progress_line(&self) -> String {
        let mut line = format!(
            "{} tasks, {} retries, {} units",
            self.tasks_completed, self.tasks_retried, self.quota_units
        );
        if self.throttled > Duration::ZERO {
            line.push_str(&format!(", throttled {:.1}s", self.throttled.as_secs_f64()));
        }
        if self.pipeline_depth > 1 {
            line.push_str(&format!(", pipeline depth {}", self.pipeline_depth));
        }
        line
    }

    /// The final multi-line summary table.
    pub fn render_table(&self) -> String {
        let mut out = String::from("scheduler metrics\n");
        out.push_str(&format!(
            "  tasks   completed {:>8}   retried {:>6}   failed {:>6}\n",
            self.tasks_completed, self.tasks_retried, self.tasks_failed
        ));
        out.push_str(&format!(
            "  pairs   committed {:>8}\n",
            self.pairs_committed
        ));
        out.push_str(&format!(
            "  quota   spent     {:>8}   wasted  {:>6}   throttled {:.2}s\n",
            self.quota_units,
            self.quota_wasted,
            self.throttled.as_secs_f64()
        ));
        if self.connections_opened > 0 {
            out.push_str(&format!(
                "  conns   opened    {:>8}   reused  {:>6}   replayed {:>6}   discarded {:>6}   shed {:>6}\n",
                self.connections_opened,
                self.connections_reused,
                self.connections_replayed,
                self.connections_discarded,
                self.connections_shed
            ));
            out.push_str(&format!(
                "  pipe    depth hwm {:>8}\n",
                self.pipeline_depth
            ));
        }
        if !self.endpoints.is_empty() {
            out.push_str(&format!(
                "  {:<16} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
                "latency (ms)", "calls", "mean", "p50", "p90", "p99", "max"
            ));
            for row in &self.endpoints {
                let ms = |us: u64| us as f64 / 1_000.0;
                out.push_str(&format!(
                    "  {:<16} {:>9} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3}\n",
                    row.endpoint,
                    row.latency.count,
                    ms(row.latency.mean_us),
                    ms(row.latency.p50_us),
                    ms(row.latency.p90_us),
                    ms(row.latency.p99_us),
                    ms(row.latency.max_us),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_percentiles() {
        let h = LatencyHistogram::default();
        // 90 fast observations and 10 slow ones.
        for _ in 0..90 {
            h.record(Duration::from_micros(40));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(20));
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.p50_us, 50); // first bucket's upper bound
        assert_eq!(snap.p90_us, 50);
        assert_eq!(snap.p99_us, 25_000); // the slow bucket
        assert_eq!(snap.max_us, 20_000);
        assert!(
            snap.mean_us >= 40 && snap.mean_us <= 2_500,
            "{}",
            snap.mean_us
        );
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let snap = LatencyHistogram::default().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.p99_us, 0);
        assert_eq!(snap.mean_us, 0);
    }

    #[test]
    fn overflow_bucket_reports_observed_max() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_secs(5));
        let snap = h.snapshot();
        assert_eq!(snap.p50_us, 5_000_000);
        assert_eq!(snap.max_us, 5_000_000);
    }

    #[test]
    fn registry_snapshot_filters_idle_endpoints() {
        let m = MetricsRegistry::new();
        m.record_latency(Endpoint::Search, Duration::from_micros(300));
        m.record_latency(Endpoint::Search, Duration::from_micros(700));
        m.task_completed();
        m.add_quota(200);
        let snap = m.snapshot();
        assert_eq!(snap.endpoints.len(), 1);
        assert_eq!(snap.endpoints[0].endpoint, "search");
        assert_eq!(snap.endpoints[0].latency.count, 2);
        assert_eq!(snap.tasks_completed, 1);
        assert_eq!(snap.quota_units, 200);
        // Render paths don't panic and mention the endpoint.
        assert!(snap.render_table().contains("search"));
        assert!(snap.progress_line().contains("1 tasks"));
    }
}
