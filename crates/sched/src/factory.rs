//! Per-worker transport construction. Every worker owns its own client
//! (and, over HTTP, its own keep-alive connection), so the factory is
//! the seam where the scheduler stays transport-agnostic.

use parking_lot::Mutex;
use std::sync::Arc;
use ytaudit_api::ApiService;
use ytaudit_client::{HttpTransport, InProcessTransport, Transport, YouTubeClient};
use ytaudit_core::Platform;
use ytaudit_net::HttpClient;
use ytaudit_tiktok_sim::{TikTokClient, TikTokService, TikTokTransport};
use ytaudit_types::PlatformKind;

/// Connection-level totals aggregated across every transport a factory
/// has built. In-process transports have no connections and report the
/// default (all zero).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnectionTotals {
    /// TCP connections opened.
    pub opened: u64,
    /// Requests served over a reused keep-alive connection.
    pub reused: u64,
    /// Requests resubmitted after a connection died under them (stale
    /// keep-alive replays and pipeline resubmissions).
    pub replayed: u64,
    /// Healthy connections closed because an idle pool was full.
    pub discarded: u64,
    /// Requests answered with `429 Too Many Requests` — shed by the
    /// server under load, distinct from local pool discards.
    pub shed: u64,
    /// Highest pipeline depth any connection reached (1 = plain
    /// sequential keep-alive).
    pub pipeline_depth: u64,
}

/// Builds one transport per worker.
pub trait TransportFactory: Send + Sync {
    /// A fresh transport for one worker's client.
    fn transport(&self) -> Box<dyn Transport>;

    /// Connection totals across every transport built so far.
    fn connection_stats(&self) -> ConnectionTotals {
        ConnectionTotals::default()
    }

    /// Which backend this factory's clients speak. The scheduler checks
    /// it against the plan's recorded platform before collecting, and
    /// switches the quota governor to the backend's cost model.
    fn platform(&self) -> PlatformKind {
        PlatformKind::Youtube
    }

    /// Wraps a (possibly governed) transport in the backend's typed
    /// client. The default builds the YouTube client; TikTok-speaking
    /// factories override it.
    fn client(&self, transport: Box<dyn Transport>, api_key: &str) -> Box<dyn Platform> {
        Box::new(YouTubeClient::new(transport, api_key))
    }
}

/// Workers call the service directly in-process (no sockets).
pub struct InProcessFactory {
    service: Arc<ApiService>,
}

impl InProcessFactory {
    /// Wraps a service.
    pub fn new(service: Arc<ApiService>) -> InProcessFactory {
        InProcessFactory { service }
    }
}

impl TransportFactory for InProcessFactory {
    fn transport(&self) -> Box<dyn Transport> {
        Box::new(InProcessTransport::new(Arc::clone(&self.service)))
    }
}

/// Workers call a served API over HTTP. Each worker gets its own
/// `HttpClient` (its own keep-alive pool, so connections are never
/// contended across workers); the factory keeps a handle to every
/// client to aggregate connection-reuse counters after the run.
pub struct HttpFactory {
    base_url: String,
    max_in_flight: usize,
    clients: Mutex<Vec<Arc<HttpClient>>>,
}

impl HttpFactory {
    /// Targets a served API at `base_url`.
    pub fn new(base_url: impl Into<String>) -> HttpFactory {
        HttpFactory {
            base_url: base_url.into(),
            max_in_flight: 1,
            clients: Mutex::new(Vec::new()),
        }
    }

    /// Lets each worker's transport keep up to `depth` requests
    /// pipelined on its connection (depth 1, the default, is plain
    /// sequential keep-alive).
    pub fn with_max_in_flight(mut self, depth: usize) -> HttpFactory {
        self.max_in_flight = depth.max(1);
        self
    }
}

/// Workers call the in-process TikTok research-API simulator. The
/// harness above the [`ytaudit_core::Platform`] seam is identical; only
/// the client, cost model (one unit per request), and wire format
/// change.
pub struct TikTokFactory {
    service: Arc<TikTokService>,
}

impl TikTokFactory {
    /// Wraps a TikTok service.
    pub fn new(service: Arc<TikTokService>) -> TikTokFactory {
        TikTokFactory { service }
    }
}

impl TransportFactory for TikTokFactory {
    fn transport(&self) -> Box<dyn Transport> {
        Box::new(TikTokTransport::new(Arc::clone(&self.service)))
    }

    fn platform(&self) -> PlatformKind {
        PlatformKind::Tiktok
    }

    fn client(&self, transport: Box<dyn Transport>, api_key: &str) -> Box<dyn Platform> {
        Box::new(TikTokClient::new(transport, api_key))
    }
}

impl TransportFactory for HttpFactory {
    fn transport(&self) -> Box<dyn Transport> {
        let client = Arc::new(HttpClient::new());
        self.clients.lock().push(Arc::clone(&client));
        Box::new(
            HttpTransport::with_shared_client(self.base_url.clone(), client)
                .with_max_in_flight(self.max_in_flight),
        )
    }

    fn connection_stats(&self) -> ConnectionTotals {
        let clients = self.clients.lock();
        let mut totals = ConnectionTotals::default();
        for client in clients.iter() {
            let stats = client.pool_stats();
            totals.opened += stats.opened();
            totals.reused += stats.reused();
            totals.replayed += stats.replays();
            totals.discarded += stats.discarded();
            totals.shed += stats.shed();
            totals.pipeline_depth = totals.pipeline_depth.max(stats.pipeline_depth_hwm());
        }
        totals
    }
}
