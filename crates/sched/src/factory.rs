//! Per-worker transport construction. Every worker owns its own client
//! (and, over HTTP, its own keep-alive connection), so the factory is
//! the seam where the scheduler stays transport-agnostic.

use parking_lot::Mutex;
use std::sync::Arc;
use ytaudit_api::ApiService;
use ytaudit_client::{HttpTransport, InProcessTransport, Transport};
use ytaudit_net::HttpClient;

/// Builds one transport per worker.
pub trait TransportFactory: Send + Sync {
    /// A fresh transport for one worker's client.
    fn transport(&self) -> Box<dyn Transport>;

    /// Keep-alive connection totals across every transport built so far:
    /// `(opened, reused)`. In-process transports have no connections and
    /// report zeros.
    fn connection_stats(&self) -> (u64, u64) {
        (0, 0)
    }
}

/// Workers call the service directly in-process (no sockets).
pub struct InProcessFactory {
    service: Arc<ApiService>,
}

impl InProcessFactory {
    /// Wraps a service.
    pub fn new(service: Arc<ApiService>) -> InProcessFactory {
        InProcessFactory { service }
    }
}

impl TransportFactory for InProcessFactory {
    fn transport(&self) -> Box<dyn Transport> {
        Box::new(InProcessTransport::new(Arc::clone(&self.service)))
    }
}

/// Workers call a served API over HTTP. Each worker gets its own
/// `HttpClient` (its own keep-alive pool, so connections are never
/// contended across workers); the factory keeps a handle to every
/// client to aggregate connection-reuse counters after the run.
pub struct HttpFactory {
    base_url: String,
    clients: Mutex<Vec<Arc<HttpClient>>>,
}

impl HttpFactory {
    /// Targets a served API at `base_url`.
    pub fn new(base_url: impl Into<String>) -> HttpFactory {
        HttpFactory {
            base_url: base_url.into(),
            clients: Mutex::new(Vec::new()),
        }
    }
}

impl TransportFactory for HttpFactory {
    fn transport(&self) -> Box<dyn Transport> {
        let client = Arc::new(HttpClient::new());
        self.clients.lock().push(Arc::clone(&client));
        Box::new(HttpTransport::with_shared_client(
            self.base_url.clone(),
            client,
        ))
    }

    fn connection_stats(&self) -> (u64, u64) {
        let clients = self.clients.lock();
        let mut opened = 0;
        let mut reused = 0;
        for client in clients.iter() {
            let stats = client.pool_stats();
            opened += stats.opened();
            reused += stats.reused();
        }
        (opened, reused)
    }
}
