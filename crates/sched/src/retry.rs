//! Task-level retry policy: error classification plus capped exponential
//! backoff with deterministic, per-task-seeded jitter.
//!
//! This is a second resilience layer above the client's own per-request
//! retries. The client absorbs isolated transient failures (a 5xx on one
//! page of one call); the scheduler's policy decides what happens when a
//! whole *task* — dozens of calls — fails after the client gave up:
//! re-enqueue it with backoff, or declare the run dead and drain.

use std::time::Duration;
use ytaudit_net::Backoff;
use ytaudit_types::{ApiErrorReason, Error};

/// What a task failure means for the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// Transient: worth re-running the task after a backoff delay.
    /// Simulated 5xx `backendError`s and socket-level failures/timeouts.
    Retryable,
    /// Permanent: retrying cannot help. Quota exhaustion (403), invalid
    /// parameters, and malformed responses land here; the scheduler
    /// drains in-flight work and stops.
    Fatal,
}

/// Classifies an error for the task retry loop.
///
/// Every variant of [`Error`] and [`ApiErrorReason`] is matched
/// explicitly — no wildcard — so adding a variant forces a decision
/// here instead of silently inheriting one (the `retry-exhaustive` lint
/// enforces this). A new `rateLimitExceeded`-style reason classified
/// fatally by accident would drain a 12-week collection.
pub fn classify(err: &Error) -> ErrorClass {
    match err {
        Error::Api { reason, .. } => match reason {
            // `backendError` is a simulated 5xx and `rateLimitExceeded`
            // is a 429 shed under overload — both are explicitly
            // transient (the server's `Retry-After` promises capacity
            // will return); everything else is the server's final
            // answer.
            ApiErrorReason::BackendError | ApiErrorReason::RateLimited => ErrorClass::Retryable,
            ApiErrorReason::QuotaExceeded
            | ApiErrorReason::InvalidParameter
            | ApiErrorReason::InvalidSearchFilter
            | ApiErrorReason::InvalidPageToken
            | ApiErrorReason::Forbidden
            | ApiErrorReason::NotFound => ErrorClass::Fatal,
        },
        // Socket failures and timeouts: the request may never have
        // reached the server.
        Error::Io(_) => ErrorClass::Retryable,
        // Malformed wire data and local validation failures: retrying
        // would replay the same bytes.
        Error::InvalidTime(_)
        | Error::Protocol(_)
        | Error::Decode(_)
        | Error::Numeric(_)
        | Error::InvalidInput(_) => ErrorClass::Fatal,
    }
}

/// Attempt budget plus backoff schedule for task re-enqueues.
#[derive(Debug, Clone)]
pub struct TaskRetryPolicy {
    /// Total attempts allowed per task (≥ 1); 1 means "no retries".
    pub max_attempts: u32,
    /// Backoff schedule; its `seed` is combined with each task's own
    /// seed so concurrent retries don't thunder in lockstep, yet every
    /// delay is reproducible for a fixed scheduler seed.
    pub backoff: Backoff,
}

impl Default for TaskRetryPolicy {
    fn default() -> TaskRetryPolicy {
        TaskRetryPolicy {
            max_attempts: 3,
            backoff: Backoff::default(),
        }
    }
}

impl TaskRetryPolicy {
    /// A policy that never re-enqueues failed tasks.
    pub fn no_retries() -> TaskRetryPolicy {
        TaskRetryPolicy {
            max_attempts: 1,
            ..TaskRetryPolicy::default()
        }
    }

    /// Whether a task that just failed its 0-based `attempt` may run
    /// again.
    pub fn attempts_left(&self, attempt: u32) -> bool {
        attempt + 1 < self.max_attempts.max(1)
    }

    /// The delay before re-running a task identified by `task_seed`
    /// whose 0-based `attempt` just failed. Deterministic in
    /// `(task_seed, attempt)`.
    pub fn delay(&self, task_seed: u64, attempt: u32) -> Duration {
        let backoff = Backoff {
            seed: self.backoff.seed ^ task_seed,
            ..self.backoff.clone()
        };
        backoff.delay(attempt)
    }

    /// The delay before re-running a failed task, honoring the server's
    /// `Retry-After` hint when the error carried one. The hint is
    /// clamped to the backoff cap (a confused server must not park a
    /// task for an hour), then combined as `max(hint, schedule)`: the
    /// server's promise of when capacity returns is a floor, never a
    /// way to retry *faster* than the local backoff schedule allows.
    pub fn delay_for(&self, err: &Error, task_seed: u64, attempt: u32) -> Duration {
        let scheduled = self.delay(task_seed, attempt);
        match err.retry_after_secs() {
            Some(secs) => scheduled.max(Duration::from_secs(secs).min(self.backoff.max)),
            None => scheduled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ytaudit_types::ApiErrorReason;

    #[test]
    fn classification_matches_the_quota_model() {
        let retryable = Error::api(ApiErrorReason::BackendError, "simulated 5xx");
        assert_eq!(classify(&retryable), ErrorClass::Retryable);
        // A 429 shed promises capacity will return; it must be retried.
        let shed = Error::api(ApiErrorReason::RateLimited, "tenant over rate");
        assert_eq!(classify(&shed), ErrorClass::Retryable);
        assert_eq!(
            classify(&Error::Io("timed out".into())),
            ErrorClass::Retryable
        );
        // Every fatal reason and every fatal transport variant, so a
        // reclassification shows up as a test diff, not just a code diff.
        let fatal = [
            Error::api(ApiErrorReason::QuotaExceeded, "out of quota"),
            Error::api(ApiErrorReason::Forbidden, "key not registered"),
            Error::api(ApiErrorReason::InvalidParameter, "bad part"),
            Error::api(ApiErrorReason::InvalidSearchFilter, "bad filter combo"),
            Error::api(ApiErrorReason::InvalidPageToken, "stale token"),
            Error::api(ApiErrorReason::NotFound, "no such resource"),
            Error::InvalidTime("bad timestamp".into()),
            Error::Protocol("bad chunk framing".into()),
            Error::Decode("malformed response".into()),
            Error::Numeric("singular matrix".into()),
            Error::InvalidInput("bad plan".into()),
        ];
        for err in fatal {
            assert_eq!(classify(&err), ErrorClass::Fatal, "{err:?}");
        }
    }

    #[test]
    fn attempt_budget_is_respected() {
        let policy = TaskRetryPolicy::default();
        assert!(policy.attempts_left(0));
        assert!(policy.attempts_left(1));
        assert!(!policy.attempts_left(2));
        assert!(!TaskRetryPolicy::no_retries().attempts_left(0));
    }

    #[test]
    fn retry_after_hint_is_a_floor_clamped_to_the_cap() {
        let policy = TaskRetryPolicy::default();
        let scheduled = policy.delay(7, 0);

        // No hint: exactly the backoff schedule.
        let no_hint = Error::api(ApiErrorReason::RateLimited, "shed");
        assert_eq!(policy.delay_for(&no_hint, 7, 0), scheduled);

        // A hint above the schedule wins: the server said when capacity
        // returns, so retrying earlier would just be shed again.
        let hinted = Error::api_with_retry_after(ApiErrorReason::RateLimited, "shed", 5);
        assert_eq!(
            policy.delay_for(&hinted, 7, 0),
            Duration::from_secs(5),
            "early attempts sleep the hinted 5s, not the ~100ms schedule"
        );

        // A hint below the schedule never speeds the retry up.
        let eager = Error::api_with_retry_after(ApiErrorReason::RateLimited, "shed", 0);
        assert_eq!(policy.delay_for(&eager, 7, 0), scheduled);

        // An absurd hint is clamped to the backoff cap (30s default).
        let absurd = Error::api_with_retry_after(ApiErrorReason::RateLimited, "shed", 3600);
        assert_eq!(policy.delay_for(&absurd, 7, 0), policy.backoff.max);

        // Non-API errors carry no hint and keep the schedule.
        assert_eq!(
            policy.delay_for(&Error::Io("timeout".into()), 7, 0),
            scheduled
        );
    }

    #[test]
    fn jitter_is_deterministic_and_seed_dependent() {
        let policy = TaskRetryPolicy::default();
        let a = policy.delay(7, 1);
        assert_eq!(a, policy.delay(7, 1), "same task + attempt ⇒ same delay");
        // Different task seeds de-synchronize the herd (with the default
        // 25% jitter two seeds virtually never collide exactly).
        assert_ne!(a, policy.delay(8, 1));
        // Delays stay within the capped exponential envelope.
        let unjittered = policy.backoff.base.as_secs_f64() * policy.backoff.factor;
        assert!(a.as_secs_f64() <= unjittered + 1e-9);
        assert!(a.as_secs_f64() >= unjittered * (1.0 - policy.backoff.jitter) - 1e-9);
    }
}
