//! The work-queue executor: decomposes a collection plan into
//! `(topic, snapshot, hour-chunk)` task units, runs them on a worker
//! pool where every worker owns its own client, and commits completed
//! pairs to the `CollectorSink` in plan order through the reorder
//! buffer.
//!
//! ## Determinism
//!
//! For a fixed corpus seed the collected dataset is identical for any
//! worker count, and byte-identical to the sequential collector's,
//! because every ingredient is order-independent:
//!
//! * search results depend only on `(query, simulated time)`, both fixed
//!   per task;
//! * per-pair work after the search (metadata fetch, comment crawl) is
//!   the same `ytaudit-core` code the sequential collector runs, over
//!   the same sorted ID list;
//! * quota deltas are measured per task on the owning worker's private
//!   budget, around the successful attempt only, and summed per pair —
//!   the same calls the sequential path pays for;
//! * commits reach the sink in plan order via the reorder buffer, so a
//!   durable store writes the exact byte stream the sequential run
//!   writes.
//!
//! ## Shutdown
//!
//! A fatal task error, a sink error, or an external [`ShutdownSignal`]
//! triggers a graceful drain: workers pick up no new tasks, in-flight
//! tasks finish, completed pairs that extend the contiguous plan-order
//! prefix still commit, queued work is abandoned, and a durable sink is
//! left resumable.

use crate::factory::TransportFactory;
use crate::governor::{GovernedTransport, QuotaGovernor};
use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::reorder::ReorderBuffer;
use crate::retry::{classify, ErrorClass, TaskRetryPolicy};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};
use ytaudit_core::collect::{
    fetch_channel_meta, finalize_pair, search_full_window, search_hours, topic_window_hours,
};
use ytaudit_core::dataset::{CommentsSnapshot, HourlyResult, TopicSnapshot, VideoInfo};
use ytaudit_core::{CollectorConfig, CollectorSink, Platform, TopicCommit};
use ytaudit_types::{Error, PlatformKind, Result, Timestamp, Topic};

/// Default hour-bins per search task: a 672-hour topic window splits
/// into 7 tasks, enough to spread one pair across a pool while keeping
/// per-task overhead negligible.
pub const DEFAULT_CHUNK_HOURS: u32 = 96;

/// Scheduler tuning knobs.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Worker pool size (≥ 1).
    pub workers: usize,
    /// Hour-bins per search task (hourly strategy only).
    pub chunk_hours: u32,
    /// Task-level retry policy.
    pub retry: TaskRetryPolicy,
    /// Seed for deterministic retry jitter.
    pub seed: u64,
    /// API key every worker's client presents.
    pub api_key: String,
}

impl SchedulerConfig {
    /// A config with default chunking and retries.
    pub fn new(workers: usize, api_key: impl Into<String>) -> SchedulerConfig {
        SchedulerConfig {
            workers: workers.max(1),
            chunk_hours: DEFAULT_CHUNK_HOURS,
            retry: TaskRetryPolicy::default(),
            seed: 0x5EED,
            api_key: api_key.into(),
        }
    }
}

/// A cloneable handle requesting a graceful drain: in-flight tasks
/// finish and commit, queued tasks are abandoned, a durable sink is
/// left resumable. The CLI wires its interrupt handling to this.
#[derive(Debug, Clone, Default)]
pub struct ShutdownSignal(Arc<AtomicBool>);

impl ShutdownSignal {
    /// A fresh, un-signalled handle.
    pub fn new() -> ShutdownSignal {
        ShutdownSignal::default()
    }

    /// Requests the drain. Idempotent.
    pub fn request(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has been requested.
    pub fn is_requested(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// How a run ended.
#[derive(Debug)]
pub enum RunOutcome {
    /// Every pair committed, channels fetched, sink finished.
    Completed,
    /// Early shutdown after a graceful drain. The sink holds a
    /// contiguous plan-order prefix of commits and (if durable) is
    /// resumable.
    Drained {
        /// The fatal error that triggered the drain, or `None` when it
        /// was an external [`ShutdownSignal`] request.
        error: Option<Error>,
    },
}

/// What a run did, plus the final metrics snapshot.
#[derive(Debug)]
pub struct RunReport {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Pairs committed by *this* run (resumed pairs not included).
    pub pairs_committed: usize,
    /// Quota units attributed to this run's commits (including the
    /// final channel fetch on completion).
    pub quota_units: u64,
    /// Final metrics.
    pub metrics: MetricsSnapshot,
}

impl RunReport {
    /// Whether the run completed the whole plan.
    pub fn completed(&self) -> bool {
        matches!(self.outcome, RunOutcome::Completed)
    }
}

/// One unit of work.
struct Task {
    /// Pair sequence number: `snapshot * n_topics + topic_idx`.
    seq: usize,
    topic: Topic,
    snapshot: usize,
    date: Timestamp,
    /// Stable ID seeding this task's retry jitter.
    id: u64,
    /// 0-based attempt counter.
    attempt: u32,
    /// Quota already attributed to this pair by completed search chunks
    /// (carried on the finalize task).
    banked_quota: u64,
    kind: TaskKind,
}

enum TaskKind {
    /// Hourly searches for window hours `start..end`.
    SearchHours { chunk: usize, start: u32, end: u32 },
    /// The naive single full-window query.
    SearchFullWindow,
    /// Post-search work: metadata fetch + comment crawl on the
    /// assembled snapshot.
    Finalize { data: TopicSnapshot },
}

enum TaskOutput {
    Hours {
        chunk: usize,
        hours: Vec<HourlyResult>,
    },
    Finalized {
        data: TopicSnapshot,
        comments: Option<CommentsSnapshot>,
        videos: Vec<VideoInfo>,
    },
}

/// Search chunks collected so far for one pair.
struct PairAssembly {
    chunks: Vec<Option<Vec<HourlyResult>>>,
    remaining: usize,
    quota: u64,
}

/// A fully collected pair, en route to the reorder buffer.
struct PairDone {
    seq: usize,
    topic: Topic,
    snapshot: usize,
    date: Timestamp,
    data: TopicSnapshot,
    comments: Option<CommentsSnapshot>,
    videos: Vec<VideoInfo>,
    quota_delta: u64,
}

/// Queue state shared by the workers and the committing main thread.
struct Shared {
    ready: VecDeque<Task>,
    delayed: Vec<(Instant, Task)>,
    assembling: HashMap<usize, PairAssembly>,
    /// Tasks currently executing inside workers.
    outstanding: usize,
    /// Set once when the run must drain: `Some(Some(err))` for a fatal
    /// task or sink error, `Some(None)` for an external request.
    stop: Option<Option<Error>>,
    next_task_id: u64,
}

impl Shared {
    fn draining(&self) -> bool {
        self.stop.is_some()
    }

    fn begin_drain(&mut self, error: Option<Error>) {
        if self.stop.is_none() {
            self.stop = Some(error);
        }
    }
}

/// The concurrent collection executor.
pub struct Scheduler<'f> {
    factory: &'f dyn TransportFactory,
    collector: CollectorConfig,
    sched: SchedulerConfig,
    governor: Arc<QuotaGovernor>,
    metrics: Arc<MetricsRegistry>,
    shutdown: ShutdownSignal,
}

impl<'f> Scheduler<'f> {
    /// A scheduler over `factory`'s transports running `collector`'s
    /// plan, without quota pacing (use [`Scheduler::with_governor`]).
    pub fn new(
        factory: &'f dyn TransportFactory,
        collector: CollectorConfig,
        sched: SchedulerConfig,
    ) -> Scheduler<'f> {
        Scheduler {
            factory,
            collector,
            sched,
            governor: Arc::new(QuotaGovernor::unlimited()),
            metrics: Arc::new(MetricsRegistry::new()),
            shutdown: ShutdownSignal::new(),
        }
    }

    /// Replaces the quota governor.
    pub fn with_governor(mut self, governor: QuotaGovernor) -> Scheduler<'f> {
        self.governor = Arc::new(governor);
        self
    }

    /// Shares an existing governor with this scheduler — how a sharded
    /// run pays every shard's traffic through one token bucket.
    pub fn with_shared_governor(mut self, governor: Arc<QuotaGovernor>) -> Scheduler<'f> {
        self.governor = governor;
        self
    }

    /// The shared metrics registry (live: snapshot any time).
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.metrics)
    }

    /// A handle that requests a graceful drain when triggered.
    pub fn shutdown_signal(&self) -> ShutdownSignal {
        self.shutdown.clone()
    }

    fn make_client(&self) -> Box<dyn Platform> {
        let mut transport = GovernedTransport::new(
            self.factory.transport(),
            Arc::clone(&self.governor),
            Arc::clone(&self.metrics),
        );
        // TikTok's quota is a daily request budget: govern at one unit
        // per request instead of the YouTube endpoint price list.
        if self.factory.platform() == PlatformKind::Tiktok {
            transport = transport.with_flat_cost(1);
        }
        self.factory
            .client(Box::new(transport), &self.sched.api_key)
    }

    /// Runs the plan to completion (or drain), committing plan-ordered
    /// pairs into `sink`. Mirrors `Collector::run_with_sink`, including
    /// resume semantics: committed pairs are skipped without API calls.
    pub fn run(&self, sink: &mut dyn CollectorSink) -> Result<RunReport> {
        if self.collector.platform != self.factory.platform() {
            return Err(Error::InvalidInput(format!(
                "plan targets platform '{}' but the transport factory speaks '{}'",
                self.collector.platform,
                self.factory.platform()
            )));
        }
        sink.begin(&self.collector)?;
        if sink.is_complete() {
            return Ok(RunReport {
                outcome: RunOutcome::Completed,
                pairs_committed: 0,
                quota_units: 0,
                metrics: self.metrics.snapshot(),
            });
        }
        let dates: Vec<Timestamp> = self.collector.schedule.dates().to_vec();
        let topics: Vec<Topic> = self.collector.topics.clone();
        let n_topics = topics.len();

        // Decompose the plan into tasks, skipping committed pairs.
        let mut skip = vec![false; dates.len() * n_topics];
        let mut shared = Shared {
            ready: VecDeque::new(),
            delayed: Vec::new(),
            assembling: HashMap::new(),
            outstanding: 0,
            stop: None,
            next_task_id: 0,
        };
        for (snapshot, &date) in dates.iter().enumerate() {
            for (topic_idx, &topic) in topics.iter().enumerate() {
                let seq = snapshot * n_topics + topic_idx;
                if sink.is_committed(topic, snapshot) {
                    skip[seq] = true;
                    continue;
                }
                let chunks: Vec<TaskKind> = if self.collector.hourly_bins {
                    let window = topic_window_hours(topic);
                    let per_task = self.sched.chunk_hours.max(1);
                    let n_chunks = window.div_ceil(per_task).max(1);
                    (0..n_chunks)
                        .map(|c| TaskKind::SearchHours {
                            chunk: c as usize,
                            start: c * per_task,
                            end: ((c + 1) * per_task).min(window),
                        })
                        .collect()
                } else {
                    vec![TaskKind::SearchFullWindow]
                };
                shared.assembling.insert(
                    seq,
                    PairAssembly {
                        chunks: (0..chunks.len()).map(|_| None).collect(),
                        remaining: chunks.len(),
                        quota: 0,
                    },
                );
                for kind in chunks {
                    let id = shared.next_task_id;
                    shared.next_task_id += 1;
                    shared.ready.push_back(Task {
                        seq,
                        topic,
                        snapshot,
                        date,
                        id,
                        attempt: 0,
                        banked_quota: 0,
                        kind,
                    });
                }
            }
        }

        let shared = Mutex::new(shared);
        let cond = Condvar::new();
        let (tx, rx) = mpsc::channel::<PairDone>();
        let mut reorder: ReorderBuffer<PairDone> = ReorderBuffer::new(skip);
        let mut pairs_committed = 0usize;
        let mut quota_units = 0u64;
        let mut sink_broken = false;

        std::thread::scope(|scope| {
            for _ in 0..self.sched.workers {
                let tx = tx.clone();
                let shared = &shared;
                let cond = &cond;
                scope.spawn(move || self.worker_loop(shared, cond, tx));
            }
            drop(tx);
            // The main thread owns the sink: workers deliver completed
            // pairs here, the reorder buffer restores plan order, and
            // commits happen strictly in that order. Draining continues
            // to commit arriving in-order pairs (in-flight work is not
            // thrown away) unless the sink itself failed.
            for done in rx {
                // Refresh connection totals before committing so a sink
                // that prints the live metrics line (the CLI does) sees
                // current pool and pipeline-depth numbers.
                self.metrics
                    .set_connections(self.factory.connection_stats());
                for (_, pair) in reorder.offer(done.seq, done) {
                    if sink_broken {
                        continue;
                    }
                    let commit = TopicCommit {
                        topic: pair.topic,
                        snapshot: pair.snapshot,
                        date: pair.date,
                        data: &pair.data,
                        comments: pair.comments.as_ref(),
                        videos: &pair.videos,
                        quota_delta: pair.quota_delta,
                    };
                    match sink.commit_topic_snapshot(commit) {
                        Ok(()) => {
                            pairs_committed += 1;
                            quota_units += pair.quota_delta;
                            self.metrics.add_quota(pair.quota_delta);
                            self.metrics.pair_committed();
                        }
                        Err(err) => {
                            sink_broken = true;
                            shared.lock().begin_drain(Some(err));
                            cond.notify_all();
                        }
                    }
                }
            }
        });

        self.metrics
            .set_connections(self.factory.connection_stats());

        let mut stop = shared.into_inner().stop;
        if stop.is_none() && !reorder.is_drained() {
            // Workers exited early without recording a cause: that is
            // the external shutdown signal.
            stop = Some(None);
        }
        if stop.is_some() || !reorder.is_drained() {
            return Ok(RunReport {
                outcome: RunOutcome::Drained {
                    error: stop.flatten(),
                },
                pairs_committed,
                quota_units,
                metrics: self.metrics.snapshot(),
            });
        }

        // Every pair is committed: fetch channel metadata once, at the
        // final snapshot's clock, exactly as the sequential collector
        // does, and finish the sink.
        let client = self.make_client();
        let mut channels = Vec::new();
        if self.collector.fetch_channels {
            if let Some(&last) = dates.last() {
                client.set_sim_time(Some(last));
            }
            channels = fetch_channel_meta(client.as_ref(), sink.known_channel_ids()?)?;
        }
        client.set_sim_time(None);
        let final_delta = client.units_spent();
        self.metrics.add_quota(final_delta);
        quota_units += final_delta;
        sink.finish(&channels, final_delta)?;
        Ok(RunReport {
            outcome: RunOutcome::Completed,
            pairs_committed,
            quota_units,
            metrics: self.metrics.snapshot(),
        })
    }

    fn worker_loop(&self, shared: &Mutex<Shared>, cond: &Condvar, tx: mpsc::Sender<PairDone>) {
        let client = self.make_client();
        loop {
            let mut task = {
                let mut s = shared.lock();
                loop {
                    if s.draining() || self.shutdown.is_requested() {
                        return;
                    }
                    // ytlint: allow(determinism) — retry due-times pace
                    // real execution; commit order is fixed by the
                    // reorder buffer, so bytes stay deterministic
                    let now = Instant::now();
                    let mut i = 0;
                    while i < s.delayed.len() {
                        if s.delayed[i].0 <= now {
                            let (_, due) = s.delayed.swap_remove(i);
                            s.ready.push_back(due);
                        } else {
                            i += 1;
                        }
                    }
                    if let Some(next) = s.ready.pop_front() {
                        s.outstanding += 1;
                        break next;
                    }
                    if s.outstanding == 0 && s.delayed.is_empty() {
                        return; // plan exhausted
                    }
                    // Wake for the next delayed task, a notification, or
                    // a shutdown poll, whichever is first.
                    let wait = s
                        .delayed
                        .iter()
                        .map(|(at, _)| at.saturating_duration_since(now))
                        .min()
                        .unwrap_or(Duration::from_millis(50))
                        .clamp(Duration::from_millis(1), Duration::from_millis(50));
                    cond.wait_for(&mut s, wait);
                }
            };

            // Quota is measured around this attempt only, so a pair's
            // committed delta covers exactly the calls that produced its
            // data — the same calls the sequential path pays for.
            let before = client.units_spent();
            let result = execute_task(client.as_ref(), &self.collector, &mut task);
            let delta = client.units_spent() - before;

            let mut s = shared.lock();
            s.outstanding -= 1;
            match result {
                Ok(TaskOutput::Hours { chunk, hours }) => {
                    self.metrics.task_completed();
                    let assembly = s
                        .assembling
                        .get_mut(&task.seq)
                        // ytlint: allow(panics) — scheduler invariant: an
                        // assembly entry is created when the pair is
                        // admitted and removed only on completion
                        .expect("assembly exists for active pair");
                    assembly.chunks[chunk] = Some(hours);
                    assembly.remaining -= 1;
                    assembly.quota += delta;
                    if assembly.remaining == 0 {
                        // ytlint: allow(panics) — the entry was just
                        // borrowed above; remove cannot miss
                        let assembly = s.assembling.remove(&task.seq).expect("assembly");
                        let mut all_hours = Vec::new();
                        for chunk in assembly.chunks {
                            // ytlint: allow(panics) — remaining == 0 means
                            // every chunk slot was filled
                            all_hours.extend(chunk.expect("every chunk completed"));
                        }
                        let id = s.next_task_id;
                        s.next_task_id += 1;
                        // Depth-first: finish assembled pairs before
                        // starting fresh ones, so the reorder buffer
                        // drains and commits flow early.
                        s.ready.push_front(Task {
                            seq: task.seq,
                            topic: task.topic,
                            snapshot: task.snapshot,
                            date: task.date,
                            id,
                            attempt: 0,
                            banked_quota: assembly.quota,
                            kind: TaskKind::Finalize {
                                data: TopicSnapshot {
                                    hours: all_hours,
                                    meta_returned: Vec::new(),
                                },
                            },
                        });
                    }
                }
                Ok(TaskOutput::Finalized {
                    data,
                    comments,
                    videos,
                }) => {
                    self.metrics.task_completed();
                    // The receiver hangs up once the main loop decides
                    // to stop committing; losing this send is then fine.
                    let _ = tx.send(PairDone {
                        seq: task.seq,
                        topic: task.topic,
                        snapshot: task.snapshot,
                        date: task.date,
                        data,
                        comments,
                        videos,
                        quota_delta: task.banked_quota + delta,
                    });
                }
                Err(err) => {
                    self.metrics.add_wasted(delta);
                    if classify(&err) == ErrorClass::Retryable
                        && self.sched.retry.attempts_left(task.attempt)
                    {
                        self.metrics.task_retried();
                        let delay = self.sched.retry.delay_for(
                            &err,
                            self.sched.seed ^ task.id,
                            task.attempt,
                        );
                        task.attempt += 1;
                        // ytlint: allow(determinism) — backoff deadline
                        // paces real retries; result bytes are unaffected
                        s.delayed.push((Instant::now() + delay, task));
                    } else {
                        self.metrics.task_failed();
                        s.begin_drain(Some(err));
                    }
                }
            }
            cond.notify_all();
        }
    }
}

fn execute_task(
    client: &dyn Platform,
    config: &CollectorConfig,
    task: &mut Task,
) -> Result<TaskOutput> {
    client.set_sim_time(Some(task.date));
    match &mut task.kind {
        TaskKind::SearchHours { chunk, start, end } => Ok(TaskOutput::Hours {
            chunk: *chunk,
            hours: search_hours(client, task.topic, *start..*end)?,
        }),
        TaskKind::SearchFullWindow => Ok(TaskOutput::Hours {
            chunk: 0,
            hours: search_full_window(client, task.topic)?.hours,
        }),
        TaskKind::Finalize { data } => {
            let (videos, comments) = finalize_pair(client, config, task.snapshot, data)?;
            Ok(TaskOutput::Finalized {
                data: std::mem::take(data),
                comments,
                videos,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::InProcessFactory;
    use ytaudit_core::collect::MemorySink;
    use ytaudit_core::testutil::test_client;
    use ytaudit_core::Collector;
    use ytaudit_types::Result;

    const SCALE: f64 = 0.08;

    fn config() -> CollectorConfig {
        CollectorConfig {
            fetch_comments: true,
            ..CollectorConfig::quick(vec![Topic::Higgs, Topic::Blm], 2)
        }
    }

    fn run_scheduled(workers: usize) -> (RunReport, ytaudit_core::AuditDataset) {
        let (_client, service) = test_client(SCALE);
        let factory = InProcessFactory::new(service);
        let scheduler = Scheduler::new(
            &factory,
            config(),
            SchedulerConfig::new(workers, "research-key"),
        );
        let mut sink = MemorySink::new();
        let report = scheduler.run(&mut sink).unwrap();
        (report, sink.into_dataset())
    }

    #[test]
    fn any_worker_count_matches_the_sequential_dataset() {
        let (client, _service) = test_client(SCALE);
        let sequential = Collector::new(&client, config()).run().unwrap();
        for workers in [1, 4] {
            let (report, dataset) = run_scheduled(workers);
            assert!(
                report.completed(),
                "workers={workers}: {:?}",
                report.outcome
            );
            assert_eq!(dataset, sequential, "workers={workers}");
            assert_eq!(report.pairs_committed, 4);
            assert_eq!(report.quota_units, sequential.quota_units_spent);
            assert_eq!(report.metrics.tasks_failed, 0);
        }
    }

    #[test]
    fn metrics_see_the_traffic() {
        let (report, _dataset) = run_scheduled(4);
        let m = &report.metrics;
        // 2 topics × 2 snapshots × (7 search chunks + 1 finalize).
        assert_eq!(m.tasks_completed, 32);
        assert_eq!(m.pairs_committed, 4);
        assert!(m.quota_units > 0);
        assert!(
            m.endpoints.iter().any(|e| e.endpoint == "search"),
            "{:?}",
            m.endpoints
        );
    }

    #[test]
    fn sink_error_drains_gracefully_in_plan_order() {
        /// Errors on the N+1-th commit, recording what got through.
        struct FailAfter {
            inner: MemorySink,
            commits_left: usize,
            committed: Vec<(Topic, usize)>,
        }
        impl CollectorSink for FailAfter {
            fn begin(&mut self, config: &CollectorConfig) -> Result<()> {
                self.inner.begin(config)
            }
            fn commit_topic_snapshot(&mut self, commit: TopicCommit<'_>) -> Result<()> {
                if self.commits_left == 0 {
                    return Err(Error::Io("injected sink failure".into()));
                }
                self.commits_left -= 1;
                self.committed.push((commit.topic, commit.snapshot));
                self.inner.commit_topic_snapshot(commit)
            }
            fn finish(
                &mut self,
                channels: &[ytaudit_core::dataset::ChannelInfo],
                delta: u64,
            ) -> Result<()> {
                self.inner.finish(channels, delta)
            }
        }

        let (_client, service) = test_client(SCALE);
        let factory = InProcessFactory::new(service);
        let scheduler = Scheduler::new(&factory, config(), SchedulerConfig::new(4, "research-key"));
        let mut sink = FailAfter {
            inner: MemorySink::new(),
            commits_left: 2,
            committed: Vec::new(),
        };
        let report = scheduler.run(&mut sink).unwrap();
        match report.outcome {
            RunOutcome::Drained {
                error: Some(Error::Io(_)),
            } => {}
            other => panic!("expected drained-with-error, got {other:?}"),
        }
        assert_eq!(report.pairs_committed, 2);
        // The committed prefix is exactly the first two pairs in plan
        // order (snapshot-major, topic order within a snapshot).
        assert_eq!(sink.committed, vec![(Topic::Higgs, 0), (Topic::Blm, 0)]);
    }

    #[test]
    fn shutdown_signal_drains_before_any_work() {
        let (_client, service) = test_client(SCALE);
        let factory = InProcessFactory::new(service);
        let scheduler = Scheduler::new(&factory, config(), SchedulerConfig::new(2, "research-key"));
        scheduler.shutdown_signal().request();
        let mut sink = MemorySink::new();
        let report = scheduler.run(&mut sink).unwrap();
        match report.outcome {
            RunOutcome::Drained { error: None } => {}
            other => panic!("expected clean drain, got {other:?}"),
        }
        assert_eq!(report.pairs_committed, 0);
        assert_eq!(report.quota_units, 0);
    }

    #[test]
    fn resumed_pairs_are_skipped_without_api_calls() {
        /// Pretends snapshot 0 is already durably committed.
        struct SkipFirst(MemorySink);
        impl CollectorSink for SkipFirst {
            fn begin(&mut self, config: &CollectorConfig) -> Result<()> {
                self.0.begin(config)
            }
            fn is_committed(&self, _topic: Topic, snapshot: usize) -> bool {
                snapshot == 0
            }
            fn commit_topic_snapshot(&mut self, commit: TopicCommit<'_>) -> Result<()> {
                self.0.commit_topic_snapshot(commit)
            }
            fn finish(
                &mut self,
                channels: &[ytaudit_core::dataset::ChannelInfo],
                delta: u64,
            ) -> Result<()> {
                self.0.finish(channels, delta)
            }
        }

        let cfg = CollectorConfig {
            fetch_metadata: false,
            fetch_channels: false,
            fetch_comments: false,
            ..config()
        };
        let (_client, service) = test_client(SCALE);
        let factory = InProcessFactory::new(service);
        let scheduler = Scheduler::new(
            &factory,
            cfg.clone(),
            SchedulerConfig::new(3, "research-key"),
        );
        let mut sink = SkipFirst(MemorySink::new());
        let report = scheduler.run(&mut sink).unwrap();
        assert!(report.completed());
        assert_eq!(report.pairs_committed, 2, "only snapshot 1's pairs");
        let dataset = sink.0.into_dataset();
        assert_eq!(dataset.snapshots.len(), 1);

        // The full run costs strictly more than the resumed run.
        let (_c2, service2) = test_client(SCALE);
        let factory2 = InProcessFactory::new(service2);
        let full = Scheduler::new(&factory2, cfg, SchedulerConfig::new(3, "research-key"));
        let mut full_sink = MemorySink::new();
        let full_report = full.run(&mut full_sink).unwrap();
        assert!(full_report.quota_units > report.quota_units);
    }
}
