//! The shard orchestrator: one scheduler per topic shard, each
//! committing to its own store, all paced through one shared quota
//! governor.
//!
//! [`run_sharded`] splits the parent plan with
//! `ytaudit_core::shard::shard_configs`, runs one [`Scheduler`] per
//! shard concurrently (each with its own worker pool, store file, and
//! metrics registry — eliminating cross-shard reorder-buffer and commit
//! contention), then runs the *finish* phase: the parent's single
//! `Channels: list` fetch over the union of every shard's channel IDs,
//! committed to a dedicated channels-only store. The resulting shard
//! set is exactly what `ytaudit_store::merge_shards` folds back into a
//! byte-canonical single store.
//!
//! Every shard store is independently resumable (`--resume` semantics
//! are per shard), and the finish phase is idempotent: re-running after
//! a crash skips complete shards without API calls.

use crate::factory::TransportFactory;
use crate::governor::{GovernedTransport, QuotaGovernor};
use crate::metrics::MetricsRegistry;
use crate::scheduler::{RunReport, Scheduler, SchedulerConfig};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use ytaudit_client::YouTubeClient;
use ytaudit_core::collect::fetch_channel_meta;
use ytaudit_core::shard::{finish_config, shard_configs};
use ytaudit_core::{CollectorConfig, CollectorSink};
use ytaudit_store::{finish_store_path, shard_store_path, Store};
use ytaudit_types::{Error, Result, Topic};

/// One topic shard's result.
#[derive(Debug)]
pub struct ShardOutcome {
    /// Shard index (`0..shards`).
    pub index: usize,
    /// Topics the shard owns (possibly empty for degenerate splits).
    pub topics: Vec<Topic>,
    /// The shard's store file.
    pub path: PathBuf,
    /// The shard scheduler's run report (with per-shard metrics).
    pub report: RunReport,
}

/// What a sharded run did.
#[derive(Debug)]
pub struct ShardRunReport {
    /// Per-shard outcomes, by shard index.
    pub shards: Vec<ShardOutcome>,
    /// The finish (channels-only) store file.
    pub finish_path: PathBuf,
    /// Channels fetched (or already present) in the finish store.
    pub channels: usize,
    /// Quota units the finish phase cost.
    pub finish_quota: u64,
    /// Whether the finish phase ran to completion (`false` when any
    /// shard drained early, in which case it is skipped).
    pub finished: bool,
}

impl ShardRunReport {
    /// Whether every shard and the finish phase completed — i.e. the
    /// shard set is ready for `ytaudit store merge`.
    pub fn completed(&self) -> bool {
        self.finished && self.shards.iter().all(|s| s.report.completed())
    }

    /// Pairs committed across all shards by this run.
    pub fn pairs_committed(&self) -> usize {
        self.shards.iter().map(|s| s.report.pairs_committed).sum()
    }

    /// Quota units attributed across all shards plus the finish phase.
    pub fn quota_units(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.report.quota_units)
            .sum::<u64>()
            + self.finish_quota
    }
}

/// Runs the parent plan split `shards` ways, one scheduler per shard,
/// each committing to its canonical shard store next to `dest` (the
/// future merged path). All schedulers — and the finish phase's channel
/// fetch — share `governor`, so total admitted quota is paced exactly
/// like a single-scheduler run. With `resume`, existing shard stores
/// are continued; without it, any existing shard file is an error.
pub fn run_sharded(
    factory: &dyn TransportFactory,
    parent: &CollectorConfig,
    sched: &SchedulerConfig,
    shards: usize,
    governor: Arc<QuotaGovernor>,
    dest: &Path,
    resume: bool,
) -> Result<ShardRunReport> {
    let shards = shards.max(1);
    let configs = shard_configs(parent, shards);
    let finish_cfg = finish_config(parent, shards);
    let paths: Vec<PathBuf> = configs
        .iter()
        .enumerate()
        .map(|(i, cfg)| shard_store_path(dest, i, &cfg.topics))
        .collect();
    let finish_path = finish_store_path(dest);
    if !resume {
        for path in paths.iter().chain(std::iter::once(&finish_path)) {
            if path.exists() {
                return Err(Error::InvalidInput(format!(
                    "{} already exists; pass --resume to continue it",
                    path.display()
                )));
            }
        }
    }

    let mut outcomes: Vec<ShardOutcome> = Vec::with_capacity(shards);
    std::thread::scope(|scope| -> Result<()> {
        let mut handles = Vec::with_capacity(shards);
        for (index, cfg) in configs.into_iter().enumerate() {
            let path = paths
                .get(index)
                .cloned()
                .ok_or_else(|| Error::InvalidInput(format!("no path for shard {index}")))?;
            let topics = cfg.topics.clone();
            let governor = Arc::clone(&governor);
            let sched = sched.clone();
            let thread_path = path.clone();
            let handle = scope.spawn(move || -> Result<RunReport> {
                let mut store = Store::open_or_create(&thread_path)?;
                Scheduler::new(factory, cfg, sched)
                    .with_shared_governor(governor)
                    .run(&mut store)
            });
            handles.push((index, topics, path, handle));
        }
        for (index, topics, path, handle) in handles {
            let report = handle
                .join()
                .map_err(|_| Error::Io(format!("shard {index} worker thread panicked")))??;
            outcomes.push(ShardOutcome {
                index,
                topics,
                path,
                report,
            });
        }
        Ok(())
    })?;

    if !outcomes.iter().all(|s| s.report.completed()) {
        return Ok(ShardRunReport {
            shards: outcomes,
            finish_path,
            channels: 0,
            finish_quota: 0,
            finished: false,
        });
    }

    // Finish phase: the parent's one batched channel fetch, over the
    // union of channel IDs every shard's video metadata surfaced — the
    // same set a single-sink run would have accumulated. Idempotent:
    // an already-finished store is reported as-is.
    let mut finish_store = Store::open_or_create(&finish_path)?;
    CollectorSink::begin(&mut finish_store, &finish_cfg)?;
    let (channels_count, finish_quota) = if finish_store.complete() {
        (
            finish_store.load_channels()?.len(),
            finish_store.final_quota_delta().unwrap_or(0),
        )
    } else {
        let mut ids: BTreeSet<_> = BTreeSet::new();
        for outcome in &outcomes {
            let shard_store = Store::open(&outcome.path)?;
            ids.extend(CollectorSink::known_channel_ids(&shard_store)?);
        }
        let mut channels = Vec::new();
        let mut delta = 0;
        if parent.fetch_channels {
            let transport = GovernedTransport::new(
                factory.transport(),
                Arc::clone(&governor),
                Arc::new(MetricsRegistry::new()),
            );
            let client = YouTubeClient::new(Box::new(transport), sched.api_key.clone());
            if let Some(&last) = parent.schedule.dates().last() {
                client.set_sim_time(Some(last));
            }
            channels = fetch_channel_meta(&client, ids.into_iter().collect())?;
            client.set_sim_time(None);
            delta = client.budget().units_spent();
        }
        finish_store.finish_collection(&channels, delta)?;
        (channels.len(), delta)
    };

    Ok(ShardRunReport {
        shards: outcomes,
        finish_path,
        channels: channels_count,
        finish_quota,
        finished: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::InProcessFactory;
    use ytaudit_core::testutil::test_client;
    use ytaudit_store::TempDir;

    fn parent() -> CollectorConfig {
        CollectorConfig::quick(vec![Topic::Higgs, Topic::Blm], 2)
    }

    #[test]
    fn sharded_run_completes_and_leaves_mergeable_stores() {
        let (_client, service) = test_client(0.08);
        let factory = InProcessFactory::new(service);
        let dir = TempDir::new("sched-sharded");
        let dest = dir.file("audit.yts");
        let report = run_sharded(
            &factory,
            &parent(),
            &SchedulerConfig::new(2, "research-key"),
            2,
            Arc::new(QuotaGovernor::unlimited()),
            &dest,
            false,
        )
        .unwrap();
        assert!(report.completed(), "{report:?}");
        assert_eq!(report.shards.len(), 2);
        assert_eq!(report.pairs_committed(), 4);
        assert!(report.channels > 0);
        for shard in &report.shards {
            let store = Store::open(&shard.path).unwrap();
            assert!(store.complete(), "shard {} incomplete", shard.index);
        }
        let finish = Store::open(&report.finish_path).unwrap();
        assert!(finish.complete());

        // Without --resume, the existing stores are refused.
        let err = run_sharded(
            &factory,
            &parent(),
            &SchedulerConfig::new(2, "research-key"),
            2,
            Arc::new(QuotaGovernor::unlimited()),
            &dest,
            false,
        )
        .unwrap_err();
        assert!(matches!(err, Error::InvalidInput(_)), "{err:?}");

        // With resume, everything is already complete: no pairs re-run.
        let resumed = run_sharded(
            &factory,
            &parent(),
            &SchedulerConfig::new(2, "research-key"),
            2,
            Arc::new(QuotaGovernor::unlimited()),
            &dest,
            true,
        )
        .unwrap();
        assert!(resumed.completed());
        assert_eq!(resumed.pairs_committed(), 0);
    }
}
