//! # ytaudit-sched
//!
//! A concurrent, quota-aware scheduler for audit collections. The
//! sequential `ytaudit-core` collector drives every one of the paper's
//! ~4 000 search queries per snapshot through a single client; this
//! crate decomposes the same collection plan into `(topic, snapshot,
//! hour-chunk)` task units and runs them on a worker pool, while
//! guaranteeing that the collected dataset — down to the bytes of a
//! `--store` file — is identical to the sequential path:
//!
//! * [`scheduler`] — the work-queue executor: a configurable worker
//!   pool where each worker owns its own `ytaudit-client`, plus
//!   graceful-drain shutdown semantics;
//! * [`governor`] — a shared token-bucket governor denominated in quota
//!   *units* (a 100-unit `Search: list` and a 1-unit `Videos: list` are
//!   costed correctly), applied as transport middleware;
//! * [`retry`] — task-level error classification (retryable 5xx and
//!   timeouts vs. fatal quota exhaustion and malformed responses) with
//!   capped exponential backoff and deterministic, seedable jitter;
//! * [`reorder`] — the reorder buffer that delivers completed pairs to
//!   the `CollectorSink` in plan order, preserving `--store --resume`
//!   semantics and byte-for-byte dataset equivalence;
//! * [`metrics`] — atomic counters and fixed-bucket latency histograms
//!   (tasks completed/retried/failed, quota spent and throttled time,
//!   per-endpoint request latency, connection reuse), rendered as a
//!   live progress line and a final summary table by the CLI;
//! * [`factory`] — per-worker transport construction for the in-process
//!   and HTTP transports;
//! * [`shard`] — the sharded-collection orchestrator: one scheduler per
//!   topic shard, each with its own store and metrics, all paced
//!   through one shared governor, plus the channels-only finish phase.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod factory;
pub mod governor;
pub mod metrics;
pub mod reorder;
pub mod retry;
pub mod scheduler;
pub mod shard;
pub mod tenant;

pub use factory::{
    ConnectionTotals, HttpFactory, InProcessFactory, TikTokFactory, TransportFactory,
};
pub use governor::{GovernedTransport, QuotaGovernor};
pub use metrics::{MetricsRegistry, MetricsSnapshot};
pub use reorder::ReorderBuffer;
pub use retry::{classify, ErrorClass, TaskRetryPolicy};
pub use scheduler::{RunOutcome, RunReport, Scheduler, SchedulerConfig, ShutdownSignal};
pub use shard::{run_sharded, ShardOutcome, ShardRunReport};
pub use tenant::{ServeFront, Tenant, TenantRegistry};
