//! Call-graph resolution unit suite: bare-call scoping, use-import
//! expansion, cross-crate path edges, receiver-correlated method
//! dispatch, reachability chains, and transitive lock summaries.

use ytaudit_lint::callgraph::{correlated, CallGraph, FnId};
use ytaudit_lint::Workspace;

/// The single analyzable fn named `name` in the file at `path`.
fn only(cg: &CallGraph<'_>, path: &str, name: &str) -> FnId {
    let hits = cg.find_fns(path, name);
    assert_eq!(hits.len(), 1, "{path} {name}: {hits:?}");
    hits[0]
}

#[test]
fn bare_calls_prefer_the_same_file_over_crate_siblings() {
    let ws = Workspace::from_files(&[
        (
            "crates/x/src/a.rs",
            "pub fn top() { helper(); }\npub fn helper() {}\n",
        ),
        ("crates/x/src/b.rs", "pub fn helper() {}\n"),
    ]);
    let cg = CallGraph::build(&ws);
    let top = only(&cg, "crates/x/src/a.rs", "top");
    let local = only(&cg, "crates/x/src/a.rs", "helper");
    assert_eq!(cg.call_targets(top), &[vec![local]]);
}

#[test]
fn imports_and_crate_paths_resolve_across_crates() {
    let ws = Workspace::from_files(&[
        (
            "crates/dist/src/worker.rs",
            "use ytaudit_store::store::flush_segment;\n\
             pub fn commit(d: &Path) { flush_segment(); ytaudit_store::fsync_dir_of(d); }\n",
        ),
        (
            "crates/store/src/store.rs",
            "pub fn flush_segment() {}\npub fn fsync_dir_of(p: &Path) {}\n",
        ),
        // A decoy namesake in an unrelated crate must not alias in.
        (
            "crates/cli/src/util.rs",
            "pub fn fsync_dir_of(p: &Path) {}\n",
        ),
    ]);
    let cg = CallGraph::build(&ws);
    let commit = only(&cg, "crates/dist/src/worker.rs", "commit");
    let flush = only(&cg, "crates/store/src/store.rs", "flush_segment");
    let fsync = only(&cg, "crates/store/src/store.rs", "fsync_dir_of");
    assert_eq!(cg.call_targets(commit), &[vec![flush], vec![fsync]]);
}

#[test]
fn method_calls_dispatch_only_to_correlated_receivers() {
    let ws = Workspace::from_files(&[
        (
            "crates/client/src/client.rs",
            "impl HttpClient { pub fn send(&self) {} }\n",
        ),
        (
            "crates/sched/src/run.rs",
            "pub fn drive(client: &HttpClient, tx: &Sender<u8>) { client.send(0); tx.send(1); }\n",
        ),
    ]);
    let cg = CallGraph::build(&ws);
    let drive = only(&cg, "crates/sched/src/run.rs", "drive");
    let send = only(&cg, "crates/client/src/client.rs", "send");
    // `client.send` correlates with `HttpClient`; `tx.send` is a std
    // channel and must not alias the workspace method.
    assert_eq!(cg.call_targets(drive), &[vec![send], vec![]]);
}

#[test]
fn self_calls_stay_inside_the_impl_and_chains_are_opaque() {
    let ws = Workspace::from_files(&[
        (
            "crates/store/src/store.rs",
            "impl Store {\n\
                 pub fn begin(&mut self) { self.commit(); }\n\
                 pub fn commit(&mut self) {}\n\
                 pub fn indirect(&self) { self.cell.lock().commit(); }\n\
             }\n",
        ),
        (
            "crates/dist/src/lease.rs",
            "impl Lease { pub fn commit(&mut self) {} }\n",
        ),
    ]);
    let cg = CallGraph::build(&ws);
    let begin = only(&cg, "crates/store/src/store.rs", "begin");
    let store_commit = only(&cg, "crates/store/src/store.rs", "commit");
    assert_eq!(cg.call_targets(begin), &[vec![store_commit]]);
    // `self.cell.lock().commit()` has a chained-expression receiver —
    // resolution declines rather than aliasing every `commit`.
    let indirect = only(&cg, "crates/store/src/store.rs", "indirect");
    assert!(
        cg.call_targets(indirect).iter().all(Vec::is_empty),
        "{:?}",
        cg.call_targets(indirect)
    );
}

#[test]
fn reach_renders_a_cross_file_call_chain() {
    let ws = Workspace::from_files(&[
        ("crates/x/src/a.rs", "pub fn start() { b::mid(); }\n"),
        ("crates/x/src/b.rs", "pub fn mid() { c::leaf(); }\n"),
        ("crates/x/src/c.rs", "pub fn leaf() {}\n"),
    ]);
    let cg = CallGraph::build(&ws);
    let start = only(&cg, "crates/x/src/a.rs", "start");
    let leaf = only(&cg, "crates/x/src/c.rs", "leaf");
    let reach = cg.reach(&[start], |_, _, _| true);
    assert!(reach.contains(leaf));
    assert_eq!(
        cg.display_chain(&reach.chain_to(leaf)),
        vec!["a::start", "b::mid", "c::leaf"]
    );
}

#[test]
fn test_code_never_becomes_a_dispatch_target() {
    let ws = Workspace::from_files(&[
        (
            "crates/x/src/lib.rs",
            "pub fn go() { helper(); }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn helper() {}\n\
             }\n",
        ),
        ("crates/x/tests/t.rs", "pub fn helper() {}\n"),
    ]);
    let cg = CallGraph::build(&ws);
    let go = only(&cg, "crates/x/src/lib.rs", "go");
    assert_eq!(cg.call_targets(go), &[Vec::<FnId>::new()]);
    assert!(cg.find_fns("crates/x/tests/t.rs", "helper").is_empty());
}

#[test]
fn lock_summaries_cross_call_edges_with_a_path() {
    let ws = Workspace::from_files(&[(
        "crates/sched/src/runner.rs",
        "impl Runner {\n\
             fn outer(&self) {\n\
                 let g = self.state.lock();\n\
                 self.inner_step();\n\
             }\n\
             fn inner_step(&self) {\n\
                 self.pool.lock().push(0);\n\
             }\n\
         }\n",
    )]);
    let cg = CallGraph::build(&ws);
    let outer = only(&cg, "crates/sched/src/runner.rs", "outer");
    let locks = cg.transitive_locks();
    let held: Vec<&str> = locks[&outer].iter().map(String::as_str).collect();
    assert_eq!(held, vec!["pool", "state"]);
    let path = cg.path_to_lock(outer, "pool").expect("path exists");
    assert_eq!(
        cg.display_chain(&path),
        vec!["runner::Runner::outer", "runner::Runner::inner_step"]
    );
}

#[test]
fn receiver_correlation_accepts_names_and_rejects_noise() {
    assert!(correlated("client", "HttpClient"));
    assert!(correlated("engine", "SearchEngine"));
    assert!(correlated("stats", "PoolStats"));
    assert!(correlated("tenants", "TenantRegistry"));
    assert!(correlated("store", "Store"));
    assert!(!correlated("tx", "HttpClient"));
    assert!(!correlated("keys", "QuotaLedger"));
    assert!(!correlated("f", "Frontend"));
}
