//! Fixture-based rule tests: each rule gets a tiny in-memory workspace
//! exhibiting a violation (caught) and a sanctioned variant (clean),
//! plus the keystone test that the real workspace passes with zero
//! findings — the same gate CI enforces.

use std::path::PathBuf;
use ytaudit_lint::{check_workspace, CheckOptions, Diagnostic, Workspace};

/// Runs the full rule set over an in-memory workspace.
fn check(files: &[(&str, &str)]) -> Vec<Diagnostic> {
    check_workspace(&Workspace::from_files(files), &CheckOptions::default())
}

/// Runs a single named rule (suppression hygiene stays off).
fn check_rule(files: &[(&str, &str)], rule: &str) -> Vec<Diagnostic> {
    check_workspace(
        &Workspace::from_files(files),
        &CheckOptions {
            rules: vec![rule.to_string()],
        },
    )
}

// ---------------------------------------------------------------- determinism

#[test]
fn determinism_flags_ambient_clock_and_entropy() {
    let diags = check_rule(
        &[(
            "crates/x/src/lib.rs",
            "use std::time::Instant;\n\
             pub fn stamp() -> Instant { Instant::now() }\n\
             pub fn roll() -> u8 { thread_rng().gen() }\n",
        )],
        "determinism",
    );
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags
        .iter()
        .any(|d| d.line == 2 && d.message.contains("Instant::now")));
    assert!(diags
        .iter()
        .any(|d| d.line == 3 && d.message.contains("thread_rng")));
}

#[test]
fn determinism_exempts_the_clock_module_and_tests() {
    let diags = check_rule(
        &[
            // The sanctioned wall-clock read.
            (
                "crates/platform/src/clock.rs",
                "pub fn origin() -> std::time::Instant { std::time::Instant::now() }\n",
            ),
            // Integration tests may time things.
            (
                "crates/x/tests/timing.rs",
                "fn t() { let _ = std::time::Instant::now(); }\n",
            ),
            // cfg(test) modules inside library code too.
            (
                "crates/x/src/lib.rs",
                "pub fn f() {}\n\
                 #[cfg(test)]\n\
                 mod tests {\n\
                     fn t() { let _ = std::time::Instant::now(); }\n\
                 }\n",
            ),
        ],
        "determinism",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

// --------------------------------------------------------------------- panics

#[test]
fn panics_flags_unwrap_expect_and_macros_in_library_code() {
    let diags = check_rule(
        &[(
            "crates/x/src/lib.rs",
            "pub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n\
             pub fn g(v: Option<u32>) -> u32 { v.expect(\"set\") }\n\
             pub fn h() { panic!(\"boom\") }\n",
        )],
        "panics",
    );
    assert_eq!(diags.len(), 3, "{diags:?}");
    assert!(diags.iter().all(|d| d.rule == "panics"));
}

#[test]
fn panics_permits_tests_and_the_bench_crate() {
    let diags = check_rule(
        &[
            ("crates/x/tests/t.rs", "fn t() { None::<u32>.unwrap(); }\n"),
            (
                "crates/bench/src/runner.rs",
                "pub fn run(v: Option<u32>) -> u32 { v.expect(\"bench setup\") }\n",
            ),
        ],
        "panics",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

// ------------------------------------------------------------------- indexing

#[test]
fn indexing_flags_literal_subscripts() {
    let diags = check_rule(
        &[(
            "crates/x/src/lib.rs",
            "pub fn head(xs: &[u32]) -> u32 { xs[0] }\n",
        )],
        "indexing",
    );
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags.first().map(|d| d.rule), Some("indexing"));
}

#[test]
fn allow_file_suppresses_a_whole_file_once() {
    let src = "// ytlint: allow-file(indexing) — all arrays here are fixed-size\n\
               pub fn a(xs: &[u32; 4]) -> u32 { xs[0] }\n\
               pub fn b(xs: &[u32; 4]) -> u32 { xs[3] }\n";
    let diags = check(&[("crates/x/src/lib.rs", src)]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn line_allow_does_not_leak_to_other_lines() {
    let src = "pub fn a(xs: &[u32]) -> u32 {\n\
               \x20   // ytlint: allow(indexing) — caller guarantees non-empty\n\
               \x20   xs[0]\n\
               }\n\
               pub fn b(xs: &[u32]) -> u32 { xs[1] }\n";
    let diags = check(&[("crates/x/src/lib.rs", src)]);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags.first().map(|d| d.line), Some(5));
}

// ----------------------------------------------------------- retry-exhaustive

/// A minimal pair of anchor files for the retry rule.
fn retry_fixture(classifier_body: &str) -> Vec<Diagnostic> {
    let error_rs = "pub enum Error { Io, Decode }\n\
                    pub enum ApiErrorReason { QuotaExceeded, BackendError }\n";
    let retry_rs = format!("fn classify(e: &Error) -> Class {{\n{classifier_body}\n}}\n");
    check_rule(
        &[
            ("crates/types/src/error.rs", error_rs),
            ("crates/sched/src/retry.rs", &retry_rs),
        ],
        "retry-exhaustive",
    )
}

#[test]
fn retry_reports_unclassified_variants() {
    let diags = retry_fixture(
        "    match e { Error::Io => Class::Retry, Error::Decode => Class::Fatal }\n\
         //  ApiErrorReason::QuotaExceeded handled… nowhere.",
    );
    // BackendError and QuotaExceeded are mentioned nowhere as paths —
    // the comment does not count (comments are not tokens).
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags.iter().all(|d| d.rule == "retry-exhaustive"));
    assert!(diags.iter().any(|d| d.message.contains("QuotaExceeded")));
    assert!(diags.iter().any(|d| d.message.contains("BackendError")));
}

#[test]
fn retry_rejects_wildcard_arms_in_classify() {
    let diags = retry_fixture(
        "    match e {\n\
         \x20       Error::Io => Class::Retry,\n\
         \x20       Error::Decode => Class::Fatal,\n\
         \x20       _ => Class::Fatal,\n\
         \x20   }\n\
         \x20   // ApiErrorReason::QuotaExceeded, ApiErrorReason::BackendError:\n\
         \x20   fn _mentions() { let _ = (ApiErrorReason::QuotaExceeded, ApiErrorReason::BackendError); }",
    );
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags
        .first()
        .is_some_and(|d| d.message.contains("wildcard")));
}

#[test]
fn retry_passes_a_fully_classified_fixture() {
    let diags = retry_fixture(
        "    match e {\n\
         \x20       Error::Io => Class::Retry,\n\
         \x20       Error::Decode => Class::Fatal,\n\
         \x20   };\n\
         \x20   let _ = (ApiErrorReason::QuotaExceeded, ApiErrorReason::BackendError);",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------- quota-consistency

#[test]
fn quota_rejects_wildcard_cost_and_divergent_consts() {
    let canonical = "pub const UNITS_PER_DAY: u64 = 10_000;\n\
                     pub enum Endpoint { Search, Videos }\n\
                     impl Endpoint {\n\
                         pub fn cost(self) -> u64 {\n\
                             match self { Endpoint::Search => 100, _ => 1 }\n\
                         }\n\
                     }\n";
    let mirror = "pub const UNITS_PER_DAY: u64 = 9_000;\n";
    let diags = check_rule(
        &[
            ("crates/api/src/quota.rs", canonical),
            ("crates/client/src/budget.rs", mirror),
        ],
        "quota-consistency",
    );
    // Videos has no explicit arm, the wildcard itself, and the mirror
    // const disagrees: three findings.
    assert_eq!(diags.len(), 3, "{diags:?}");
    assert!(diags.iter().any(|d| d.message.contains("Endpoint::Videos")));
    assert!(diags.iter().any(|d| d.message.contains("wildcard")));
    assert!(diags
        .iter()
        .any(|d| d.message.contains("disagrees") && d.path == "crates/client/src/budget.rs"));
}

#[test]
fn quota_passes_explicit_table_with_agreeing_mirror() {
    let canonical = "pub const UNITS_PER_DAY: u64 = 10_000;\n\
                     pub enum Endpoint { Search, Videos }\n\
                     impl Endpoint {\n\
                         pub fn cost(self) -> u64 {\n\
                             match self { Endpoint::Search => 100, Endpoint::Videos => 1 }\n\
                         }\n\
                     }\n";
    let mirror = "pub const UNITS_PER_DAY: u64 = 10_000;\n";
    let diags = check_rule(
        &[
            ("crates/api/src/quota.rs", canonical),
            ("crates/client/src/budget.rs", mirror),
        ],
        "quota-consistency",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

// ------------------------------------------------------------ evloop-blocking

#[test]
fn evloop_flags_a_blocking_leaf_across_files_with_its_chain() {
    let diags = check_rule(
        &[
            (
                "crates/net/src/evloop.rs",
                "pub fn event_loop() { store::flush_all(); }\n",
            ),
            (
                "crates/store/src/store.rs",
                "pub fn flush_all() { open_log().sync_all(); }\n",
            ),
        ],
        "evloop-blocking",
    );
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = diags.first().expect("one finding");
    assert_eq!(d.rule, "evloop-blocking");
    assert_eq!(d.path, "crates/store/src/store.rs");
    assert!(d.message.contains("fsync"), "{d:?}");
    assert_eq!(d.chain, vec!["evloop::event_loop", "store::flush_all"]);
}

#[test]
fn evloop_audits_mounted_handlers_through_dyn_dispatch() {
    // The loop calls `handler.handle(…)` through `dyn Handler`, which
    // name-based resolution cannot see — mounted handler impls are
    // analysis roots in their own right, with the chain rooted at the
    // sweep fn that dispatches into them.
    let diags = check_rule(
        &[
            (
                "crates/net/src/evloop.rs",
                "pub fn event_loop(h: &dyn Handler) { let _ = h; }\n",
            ),
            (
                "crates/api/src/service.rs",
                "impl ApiService {\n\
                     pub fn handle(&self) { std::thread::sleep(pause()); }\n\
                 }\n",
            ),
        ],
        "evloop-blocking",
    );
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = diags.first().expect("one finding");
    assert!(d.message.contains("sleep"), "{d:?}");
    assert_eq!(
        d.chain,
        vec!["evloop::event_loop", "service::ApiService::handle"]
    );
}

#[test]
fn evloop_ignores_handlers_not_mounted_on_the_loop() {
    // The dist coordinator also has a `handle` method, but it is only
    // ever served by the blocking thread-pool server — it may fsync.
    let diags = check_rule(
        &[
            (
                "crates/net/src/evloop.rs",
                "pub fn event_loop() { poll(); }\n",
            ),
            (
                "crates/dist/src/coordinator.rs",
                "impl Coordinator {\n\
                     pub fn handle(&self) { self.log().sync_all(); }\n\
                 }\n",
            ),
        ],
        "evloop-blocking",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn evloop_respects_a_justified_allow() {
    let diags = check(&[(
        "crates/net/src/evloop.rs",
        "pub fn event_loop() {\n\
             // ytlint: allow(evloop-blocking) — bounded idle pacing\n\
             std::thread::sleep(idle());\n\
         }\n",
    )]);
    assert!(diags.is_empty(), "{diags:?}");
}

// ----------------------------------------------------------------- lock-order

#[test]
fn lock_order_flags_inversion_reentry_and_undeclared_locks() {
    let src = "impl Coordinator {\n\
                   fn inverted(&self) {\n\
                       let g = self.state.lock();\n\
                       self.tenants.lock().clear();\n\
                   }\n\
                   fn reentrant(&self) {\n\
                       let a = self.state.lock();\n\
                       let b = self.state.lock();\n\
                   }\n\
                   fn undeclared(&self) {\n\
                       let z = self.zebra.lock();\n\
                       self.state.lock().clear();\n\
                   }\n\
               }\n";
    let diags = check_rule(&[("crates/dist/src/coordinator.rs", src)], "lock-order");
    assert_eq!(diags.len(), 3, "{diags:?}");
    assert!(
        diags
            .iter()
            .any(|d| d.line == 4 && d.message.contains("inverting the declared order")),
        "{diags:?}"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.line == 8 && d.message.contains("already held")),
        "{diags:?}"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.line == 12 && d.message.contains("not in the declared lock order")),
        "{diags:?}"
    );
}

#[test]
fn lock_order_follows_call_chains_and_reports_the_path() {
    // `drive` holds `state` while a callee (in another file) takes
    // `shared`, which is declared outermost — an inversion only visible
    // through the call graph.
    let diags = check_rule(
        &[
            (
                "crates/sched/src/scheduler.rs",
                "impl Scheduler {\n\
                     fn drive(&self) {\n\
                         let g = self.state.lock();\n\
                         helper::kick(self);\n\
                     }\n\
                 }\n",
            ),
            (
                "crates/sched/src/helper.rs",
                "pub fn kick(s: &Scheduler) { s.shared.lock().touch(); }\n",
            ),
        ],
        "lock-order",
    );
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = diags.first().expect("one finding");
    assert!(
        d.message
            .contains("`shared` is acquired while `state` is held"),
        "{d:?}"
    );
    assert_eq!(d.chain, vec!["scheduler::Scheduler::drive", "helper::kick"]);
}

#[test]
fn lock_order_accepts_declared_order_and_suppressions() {
    let diags = check(&[(
        "crates/sched/src/scheduler.rs",
        "impl Scheduler {\n\
             fn ordered(&self) {\n\
                 let g = self.shared.lock();\n\
                 self.state.lock().clear();\n\
             }\n\
             fn sanctioned(&self) {\n\
                 let g = self.state.lock();\n\
                 // ytlint: allow(lock-order) — startup only, single thread\n\
                 self.shared.lock().clear();\n\
             }\n\
         }\n",
    )]);
    assert!(diags.is_empty(), "{diags:?}");
}

// --------------------------------------------------------------- fsync-rename

#[test]
fn fsync_rename_requires_the_full_discipline_in_crash_safe_crates() {
    let diags = check_rule(
        &[(
            "crates/store/src/install.rs",
            "pub fn install(tmp: &Path, dest: &Path) -> io::Result<()> {\n\
                 std::fs::rename(tmp, dest)\n\
             }\n",
        )],
        "fsync-rename",
    );
    assert_eq!(diags.len(), 3, "{diags:?}");
    assert!(diags.iter().all(|d| d.line == 2), "{diags:?}");
    assert!(
        diags
            .iter()
            .any(|d| d.message.contains("without a file sync")),
        "{diags:?}"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.message.contains("parent-directory fsync")),
        "{diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.message.contains("faultpoint")),
        "{diags:?}"
    );
    assert!(
        diags
            .iter()
            .all(|d| d.chain == vec!["install::install", "std::fs::rename"]),
        "{diags:?}"
    );
}

#[test]
fn fsync_rename_accepts_the_disciplined_shape_with_callee_syncs() {
    // The pre-sync is direct; the dir-fsync goes through a same-file
    // callee the call graph must resolve into the sync set.
    let diags = check_rule(
        &[(
            "crates/store/src/install.rs",
            "pub fn fsync_dir_of(p: &Path) -> io::Result<()> {\n\
                 dir_handle(p).sync_all()\n\
             }\n\
             pub fn install(tmp: &Tmp, dest: &Path) -> io::Result<()> {\n\
                 tmp.file.sync_all()?;\n\
                 if faultpoint::should_trip(\"x.install\") {\n\
                     return Err(injected());\n\
                 }\n\
                 std::fs::rename(&tmp.path, dest)?;\n\
                 fsync_dir_of(dest)\n\
             }\n",
        )],
        "fsync-rename",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn fsync_rename_needs_no_faultpoint_outside_crash_safe_crates() {
    let diags = check_rule(
        &[(
            "crates/cli/src/commands/mod.rs",
            "pub fn save(f: &File, dir: &File, a: &Path, b: &Path) -> io::Result<()> {\n\
                 f.sync_all()?;\n\
                 std::fs::rename(a, b)?;\n\
                 dir.sync_all()\n\
             }\n",
        )],
        "fsync-rename",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn fsync_rename_respects_a_justified_allow() {
    let diags = check(&[(
        "crates/store/src/install.rs",
        "pub fn swap(a: &Path, b: &Path) -> io::Result<()> {\n\
             // ytlint: allow(fsync-rename) — scratch files inside one test dir\n\
             std::fs::rename(a, b)\n\
         }\n",
    )]);
    assert!(diags.is_empty(), "{diags:?}");
}

// ------------------------------------------------------------ the real thing

/// The keystone: the actual workspace must lint clean with the full rule
/// set, including suppression hygiene. This is the same invariant CI
/// enforces, so a regression fails locally first.
#[test]
fn real_workspace_is_clean() {
    let root = option_env!("CARGO_MANIFEST_DIR")
        .map(|d| PathBuf::from(d).join("../.."))
        .and_then(|p| p.canonicalize().ok())
        .or_else(|| {
            std::env::current_dir()
                .ok()
                .and_then(|d| ytaudit_lint::find_root(&d))
        })
        .expect("workspace root discoverable");
    let diags = ytaudit_lint::check_path(&root, &CheckOptions::default()).expect("workspace loads");
    assert!(
        diags.is_empty(),
        "workspace must lint clean:\n{}",
        ytaudit_lint::render(&diags, ytaudit_lint::Format::Human)
    );
}
