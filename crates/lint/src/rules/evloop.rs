//! Rule `evloop-blocking`: nothing reachable from the event-loop sweep
//! thread may block.
//!
//! The event-loop server (`crates/net/src/evloop.rs`) multiplexes every
//! connection on one readiness-polled thread; a single blocking call in
//! anything it reaches stalls *all* tenants at once, silently — exactly
//! the failure class the paper's audits exist to catch. The rule walks
//! the call graph from the sweep-thread roots (`event_loop`,
//! `sweep_conn`) and flags:
//!
//! - **blocking leaves**: `thread::sleep` / `.sleep(…)`, file fsync
//!   (`sync_all`/`sync_data`), channel receives (`recv`,
//!   `recv_timeout`), condvar waits (`wait`, `wait_timeout`), thread
//!   `park`/zero-argument `join()`, and blocking `TcpStream::connect`;
//! - **lock-and-hold**: a `let`-bound Mutex guard held across a call
//!   whose subtree reaches a blocking leaf (the guard turns a bounded
//!   stall into a cross-thread pileup).
//!
//! Precision tradeoff (DESIGN §14): the loop dispatches requests through
//! `dyn Handler`, which name-based call resolution cannot see — and an
//! over-approximation (every `handle` method in the workspace) would
//! drag in the distributed coordinator, which is only ever served by the
//! blocking thread-pool server and is allowed to fsync. The rule
//! therefore seeds the `handle` impls of the handler types actually
//! mounted on the event loop ([`EVLOOP_HANDLERS`]) as additional
//! analysis roots; mounting a new handler type on `EvloopServer::bind`
//! requires adding it here, which is the point — the new handler's whole
//! call tree gets audited in the same commit.

use super::Rule;
use crate::callgraph::{CallGraph, FnId};
use crate::diag::Diagnostic;
use crate::lex::{Token, TokenKind};
use crate::workspace::Workspace;

/// The file owning the event loop.
const ROOT_FILE: &str = "crates/net/src/evloop.rs";

/// The sweep-thread entry points.
const ROOTS: &[&str] = &["event_loop", "sweep_conn"];

/// Handler types that are actually mounted on the event-loop server.
/// Their `handle` impls are seeded as analysis roots, standing in for
/// the `dyn Handler` dispatch the call graph cannot see (see module
/// docs for why).
const EVLOOP_HANDLERS: &[&str] = &["ServeFront", "ApiService"];

/// The evloop-blocking rule.
pub struct EvloopBlocking;

impl Rule for EvloopBlocking {
    fn name(&self) -> &'static str {
        "evloop-blocking"
    }

    fn description(&self) -> &'static str {
        "no blocking call (sleep, fsync, recv/wait/join, blocking connect, guard held across one) reachable from the event-loop thread"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        // Fixture workspaces without an event loop skip the rule; the
        // workspace-clean keystone pins that the real one has it.
        if ws.file(ROOT_FILE).is_none() {
            return;
        }
        let cg = CallGraph::build(ws);
        let sweep_roots: Vec<FnId> = ROOTS
            .iter()
            .flat_map(|name| cg.find_fns(ROOT_FILE, name))
            .collect();
        if sweep_roots.is_empty() {
            out.push(
                Diagnostic::new(
                    self.name(),
                    ROOT_FILE,
                    1,
                    1,
                    format!("rule anchor missing: none of {ROOTS:?} found in the event loop"),
                )
                .with_help("if the sweep thread moved, update crates/lint/src/rules/evloop.rs"),
            );
            return;
        }

        // The `dyn Handler` dispatch is invisible to name-based
        // resolution, so the mounted handler impls are roots themselves.
        let handler_roots: Vec<FnId> = cg
            .fns
            .iter()
            .copied()
            .filter(|&id| {
                let item = cg.item(id);
                item.name == "handle"
                    && item
                        .self_type
                        .as_deref()
                        .is_some_and(|ty| EVLOOP_HANDLERS.contains(&ty))
            })
            .collect();
        let roots: Vec<FnId> = sweep_roots.iter().chain(&handler_roots).copied().collect();
        // Chains from handler roots are prefixed with the sweep fn that
        // dispatches into them, so every chain reads from the loop.
        let dispatch_prefix = sweep_roots.last().map(|&id| cg.display(id));

        let reach = cg.reach(&roots, |_, _, _| true);

        // Functions whose subtree hits a blocking leaf (for guard-hold).
        let blocking_set = cg.fns_reaching(|g, id| {
            let file = g.file(id);
            g.items[id.0]
                .own_ranges(id.1)
                .iter()
                .any(|&(s, e)| !find_leaves(&file.tokens, s, e).is_empty())
        });

        for id in reach.all() {
            let file = cg.file(id);
            let ranges = cg.items[id.0].own_ranges(id.1);
            let ids = reach.chain_to(id);
            let mut chain = cg.display_chain(&ids);
            if let (Some(prefix), Some(&root)) = (&dispatch_prefix, ids.first()) {
                if handler_roots.contains(&root) {
                    chain.insert(0, prefix.clone());
                }
            }

            // Direct blocking leaves.
            for &(start, end) in &ranges {
                for leaf in find_leaves(&file.tokens, start, end) {
                    out.push(
                        Diagnostic::new(
                            self.name(),
                            &file.path,
                            leaf.line,
                            leaf.col,
                            format!(
                                "{} is reachable from the event-loop sweep thread",
                                leaf.what
                            ),
                        )
                        .with_help(
                            "the loop multiplexes every connection on one thread; make this \
                             non-blocking or move it off the sweep path",
                        )
                        .with_chain(chain.clone()),
                    );
                }
            }

            // A bound guard held across a call whose subtree blocks.
            let item = cg.item(id);
            let resolved = cg.call_targets(id);
            for guard in item.locks.iter().filter(|g| g.bound) {
                for (call, callees) in item.calls.iter().zip(resolved) {
                    if call.token_idx <= guard.token_idx || call.token_idx >= guard.scope_end {
                        continue;
                    }
                    if let Some(&blocker) = callees.iter().find(|c| blocking_set.contains(c)) {
                        let mut full = chain.clone();
                        full.push(cg.display(blocker));
                        out.push(
                            Diagnostic::new(
                                self.name(),
                                &file.path,
                                guard.line,
                                guard.col,
                                format!(
                                    "Mutex guard `{}` is held across a call that can block \
                                     (`{}`) on the event-loop thread",
                                    guard.name,
                                    cg.display(blocker),
                                ),
                            )
                            .with_help("drop the guard before the call, or hoist the blocking work")
                            .with_chain(full),
                        );
                        break;
                    }
                }
            }
        }
    }
}

/// One matched blocking leaf.
struct Leaf {
    line: usize,
    col: usize,
    what: &'static str,
}

/// Scans a token range for blocking leaf patterns.
fn find_leaves(tokens: &[Token], start: usize, end: usize) -> Vec<Leaf> {
    let mut out = Vec::new();
    let text = |i: usize| tokens.get(i).map(|t: &Token| t.text.as_str()).unwrap_or("");
    for (i, t) in tokens.iter().enumerate().take(end).skip(start) {
        if t.kind != TokenKind::Ident || text(i + 1) != "(" {
            continue;
        }
        let prev_dot = i >= 1 && text(i - 1) == ".";
        let qualified_by =
            |q: &str| i >= 3 && text(i - 1) == ":" && text(i - 2) == ":" && text(i - 3) == q;
        let what = match t.text.as_str() {
            "sleep" if prev_dot || qualified_by("thread") => Some("blocking `sleep`"),
            "sync_all" | "sync_data" if prev_dot => Some("a file fsync"),
            "recv" | "recv_timeout" if prev_dot => Some("a blocking channel receive"),
            "wait" | "wait_timeout" if prev_dot => Some("a blocking condvar wait"),
            "park" if qualified_by("thread") => Some("a thread park"),
            "join" if prev_dot && text(i + 2) == ")" => Some("a thread join"),
            "connect" if qualified_by("TcpStream") => Some("a blocking `TcpStream::connect`"),
            _ => None,
        };
        if let Some(what) = what {
            out.push(Leaf {
                line: t.line,
                col: t.col,
                what,
            });
        }
    }
    out
}
