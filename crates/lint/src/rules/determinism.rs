//! Rule `determinism`: no ambient wall-clock or entropy reads outside
//! the sanctioned clock module.
//!
//! The paper's replication claim — byte-identical datasets for any
//! worker count — requires that nothing on the collection path consults
//! `Instant::now`, `SystemTime::now`, or an OS entropy source directly.
//! Code that genuinely needs real time (metrics, pacing) must either
//! route through `ytaudit-platform::clock` (whose `RealClock` is the one
//! sanctioned wall-clock read) or carry an explicit
//! `ytlint: allow(determinism) — reason` annotation explaining why the
//! read cannot influence collected bytes.

use super::Rule;
use crate::diag::Diagnostic;
use crate::lex::TokenKind;
use crate::workspace::Workspace;

/// Files allowed to read the wall clock: the clock module itself.
const ALLOWED_FILES: &[&str] = &["crates/platform/src/clock.rs"];

/// `A::b` call patterns that read ambient time.
const QUALIFIED: &[(&str, &str)] = &[("Instant", "now"), ("SystemTime", "now")];

/// Bare function names that read OS entropy.
const ENTROPY: &[&str] = &["thread_rng", "from_entropy"];

/// The determinism rule.
pub struct Determinism;

impl Rule for Determinism {
    fn name(&self) -> &'static str {
        "determinism"
    }

    fn description(&self) -> &'static str {
        "no Instant::now / SystemTime::now / thread_rng outside ytaudit-platform::clock"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for file in &ws.files {
            if file.is_test_target() || ALLOWED_FILES.contains(&file.path.as_str()) {
                continue;
            }
            let toks = &file.tokens;
            for i in 0..toks.len() {
                let t = &toks[i];
                if t.kind != TokenKind::Ident || file.in_test_code(t.line) {
                    continue;
                }
                for &(ty, method) in QUALIFIED {
                    if t.text == ty
                        && matches(toks, i + 1, &["::"])
                        && toks.get(i + 3).is_some_and(|m| m.text == method)
                        && toks.get(i + 4).is_some_and(|p| p.text == "(")
                    {
                        out.push(
                            Diagnostic::new(
                                self.name(),
                                &file.path,
                                t.line,
                                t.col,
                                format!("ambient wall-clock read `{ty}::{method}()`"),
                            )
                            .with_help(
                                "route time through ytaudit-platform::clock (SimClock or \
                                 MonotonicClock), or annotate with `// ytlint: \
                                 allow(determinism) — <why this cannot affect dataset bytes>`",
                            ),
                        );
                    }
                }
                if ENTROPY.contains(&t.text.as_str())
                    && toks.get(i + 1).is_some_and(|p| p.text == "(")
                {
                    out.push(
                        Diagnostic::new(
                            self.name(),
                            &file.path,
                            t.line,
                            t.col,
                            format!("OS entropy read `{}()`", t.text),
                        )
                        .with_help(
                            "seed explicitly (StdRng::seed_from_u64) so every run is replayable",
                        ),
                    );
                }
            }
        }
    }
}

/// Whether `toks[i..]` spells the given punctuation sequence (each entry
/// one char; `"::"` is two tokens).
fn matches(toks: &[crate::lex::Token], mut i: usize, seqs: &[&str]) -> bool {
    for seq in seqs {
        for ch in seq.chars() {
            match toks.get(i) {
                Some(t) if t.kind == TokenKind::Punct && t.text == ch.to_string() => i += 1,
                _ => return false,
            }
        }
    }
    true
}
