//! Rule `retry-exhaustive`: the scheduler's error classifier must take a
//! position on every error the workspace can produce.
//!
//! `ytaudit-sched`'s retry loop decides, per failed task, whether the
//! whole run retries or drains. That decision is only trustworthy if
//! every `ytaudit_types::Error` variant and every `ApiErrorReason` is
//! explicitly classified — a wildcard arm silently absorbs new variants
//! as whatever the wildcard says, which is exactly how a new
//! `rateLimitExceeded`-style reason would end up fatally draining a
//! 12-week collection. Two checks:
//!
//! 1. every variant of `Error` and `ApiErrorReason` (as defined in
//!    `crates/types/src/error.rs`) is mentioned as `Enum::Variant`
//!    somewhere in `crates/sched/src/retry.rs` (classifier or its
//!    tests), and
//! 2. the `classify` function contains no `_ =>` wildcard arm.

use super::Rule;
use crate::diag::Diagnostic;
use crate::lex::{Token, TokenKind};
use crate::source::SourceFile;
use crate::workspace::Workspace;

/// Where the error enums live.
const ENUM_FILE: &str = "crates/types/src/error.rs";

/// Where the classifier lives.
const CLASSIFIER_FILE: &str = "crates/sched/src/retry.rs";

/// The enums the classifier must cover.
const ENUMS: &[&str] = &["Error", "ApiErrorReason"];

/// The retry-exhaustiveness rule.
pub struct RetryExhaustive;

impl Rule for RetryExhaustive {
    fn name(&self) -> &'static str {
        "retry-exhaustive"
    }

    fn description(&self) -> &'static str {
        "every Error/ApiErrorReason variant is classified in sched's retry module"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        let Some(enums) = ws.file(ENUM_FILE) else {
            // Fixture workspaces without the anchor files simply skip
            // the rule; the real workspace always has them (and the
            // workspace-clean test pins that).
            return;
        };
        let Some(classifier) = ws.file(CLASSIFIER_FILE) else {
            out.push(Diagnostic::new(
                self.name(),
                ENUM_FILE,
                1,
                1,
                format!("`{CLASSIFIER_FILE}` is missing, so error variants are unclassified"),
            ));
            return;
        };

        for enum_name in ENUMS {
            let Some((variants, decl_line)) = enum_variants(enums, enum_name) else {
                out.push(
                    Diagnostic::new(
                        self.name(),
                        ENUM_FILE,
                        1,
                        1,
                        format!("rule anchor missing: `enum {enum_name}` not found"),
                    )
                    .with_help("if the enum moved, update crates/lint/src/rules/retry.rs"),
                );
                continue;
            };
            for (variant, _) in &variants {
                if !mentions_variant(classifier, enum_name, variant) {
                    out.push(
                        Diagnostic::new(
                            self.name(),
                            ENUM_FILE,
                            decl_line,
                            1,
                            format!(
                                "`{enum_name}::{variant}` is never mentioned in \
                                 {CLASSIFIER_FILE}: the retry classifier takes no position \
                                 on it"
                            ),
                        )
                        .with_help(
                            "add it to classify()'s match (and to the classification test) \
                             so retry-vs-drain is an explicit decision",
                        ),
                    );
                }
            }
        }

        // No wildcard inside fn classify.
        if let Some((body_start, body_end)) = fn_body_span(classifier, "classify") {
            let toks = &classifier.tokens;
            for i in body_start..body_end {
                if toks[i].kind == TokenKind::Ident
                    && toks[i].text == "_"
                    && toks.get(i + 1).is_some_and(|a| a.text == "=")
                    && toks.get(i + 2).is_some_and(|b| b.text == ">")
                {
                    out.push(
                        Diagnostic::new(
                            self.name(),
                            &classifier.path,
                            toks[i].line,
                            toks[i].col,
                            "wildcard `_ =>` arm in classify(): new error variants would be \
                             classified silently"
                                .to_string(),
                        )
                        .with_help("list every variant explicitly"),
                    );
                }
            }
        } else {
            out.push(Diagnostic::new(
                self.name(),
                &classifier.path,
                1,
                1,
                "rule anchor missing: `fn classify` not found".to_string(),
            ));
        }
    }
}

/// Extracts `(variant, line)` pairs from `enum <name> { … }` in `file`,
/// plus the line of the declaration. Skips attributes and nested
/// field/tuple contents.
pub(crate) fn enum_variants(
    file: &SourceFile,
    name: &str,
) -> Option<(Vec<(String, usize)>, usize)> {
    let toks = &file.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind == TokenKind::Ident
            && toks[i].text == "enum"
            && toks.get(i + 1).is_some_and(|n| n.text == name)
            && toks.get(i + 2).is_some_and(|b| b.text == "{")
        {
            let decl_line = toks[i].line;
            let mut variants = Vec::new();
            let mut j = i + 3;
            let mut depth = 1usize; // inside the enum braces
            let mut expecting_variant = true;
            while j < toks.len() && depth > 0 {
                let t = &toks[j];
                match (t.kind, t.text.as_str()) {
                    (TokenKind::Punct, "{") | (TokenKind::Punct, "(") => {
                        depth += 1;
                        expecting_variant = false;
                    }
                    (TokenKind::Punct, "}") | (TokenKind::Punct, ")") => {
                        depth -= 1;
                    }
                    (TokenKind::Punct, ",") if depth == 1 => {
                        expecting_variant = true;
                    }
                    (TokenKind::Punct, "#") if depth == 1 => {
                        // Skip attribute tokens.
                        let skip = attribute_len(&toks[j..]);
                        j += skip;
                        continue;
                    }
                    (TokenKind::Ident, _) if depth == 1 && expecting_variant => {
                        variants.push((t.text.clone(), t.line));
                        expecting_variant = false;
                    }
                    _ => {}
                }
                j += 1;
            }
            return Some((variants, decl_line));
        }
        i += 1;
    }
    None
}

/// Token length of an attribute starting at `tokens[0] == "#"`.
fn attribute_len(tokens: &[Token]) -> usize {
    let mut depth = 0usize;
    for (idx, t) in tokens.iter().enumerate() {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return idx + 1;
                    }
                }
                _ => {}
            }
        }
    }
    tokens.len()
}

/// Whether `Enum :: Variant` appears anywhere in `file`.
fn mentions_variant(file: &SourceFile, enum_name: &str, variant: &str) -> bool {
    let toks = &file.tokens;
    (0..toks.len()).any(|i| {
        toks[i].kind == TokenKind::Ident
            && toks[i].text == enum_name
            && toks.get(i + 1).is_some_and(|a| a.text == ":")
            && toks.get(i + 2).is_some_and(|b| b.text == ":")
            && toks.get(i + 3).is_some_and(|v| v.text == variant)
    })
}

/// The token index range of `fn <name>`'s body (between its braces).
pub(crate) fn fn_body_span(file: &SourceFile, name: &str) -> Option<(usize, usize)> {
    let toks = &file.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind == TokenKind::Ident
            && toks[i].text == "fn"
            && toks.get(i + 1).is_some_and(|n| n.text == name)
        {
            // Find the opening brace of the body.
            let mut j = i + 2;
            let mut paren_depth = 0usize;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "(" => paren_depth += 1,
                    ")" => paren_depth = paren_depth.saturating_sub(1),
                    "{" if paren_depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            let body_start = j + 1;
            let mut depth = 1usize;
            let mut k = body_start;
            while k < toks.len() && depth > 0 {
                match toks[k].text.as_str() {
                    "{" => depth += 1,
                    "}" => depth -= 1,
                    _ => {}
                }
                k += 1;
            }
            return Some((body_start, k.saturating_sub(1)));
        }
        i += 1;
    }
    None
}
