//! Rule `retry-exhaustive`: every error classifier in the workspace
//! must take a position on every error its callers can produce.
//!
//! A classifier decides, per failure, whether the caller retries,
//! restarts, abandons, or drains. That decision is only trustworthy if
//! every variant of the error enum is explicitly classified — a
//! wildcard arm silently absorbs new variants as whatever the wildcard
//! says, which is exactly how a new `rateLimitExceeded`-style reason
//! would end up fatally draining a 12-week collection. The rule checks
//! each (enum file, classifier file) anchor pair:
//!
//! 1. every variant of the anchor's enums is mentioned as
//!    `Enum::Variant` somewhere in the classifier file (the classifier
//!    or its tests), and
//! 2. the `classify` function contains no `_ =>` wildcard arm.
//!
//! Anchored classifiers: the scheduler's task-retry classifier over
//! `ytaudit_types::{Error, ApiErrorReason}`, and the distribution
//! worker's wire-error classifier over `DistErrorKind`.

use super::Rule;
use crate::diag::Diagnostic;
use crate::lex::{Token, TokenKind};
use crate::source::SourceFile;
use crate::workspace::Workspace;

/// One (error enum file, classifier file) pair the rule holds
/// exhaustive.
struct Anchor {
    /// Where the error enums live.
    enum_file: &'static str,
    /// Where the classifier (a `fn classify` with no wildcard) lives.
    classifier_file: &'static str,
    /// The enums the classifier must cover.
    enums: &'static [&'static str],
}

/// Every classifier the workspace holds exhaustive. Fixture workspaces
/// that lack an anchor's enum file simply skip that anchor.
const ANCHORS: &[Anchor] = &[
    Anchor {
        enum_file: "crates/types/src/error.rs",
        classifier_file: "crates/sched/src/retry.rs",
        enums: &["Error", "ApiErrorReason"],
    },
    Anchor {
        enum_file: "crates/dist/src/protocol.rs",
        classifier_file: "crates/dist/src/retry.rs",
        enums: &["DistErrorKind"],
    },
];

/// The retry-exhaustiveness rule.
pub struct RetryExhaustive;

impl Rule for RetryExhaustive {
    fn name(&self) -> &'static str {
        "retry-exhaustive"
    }

    fn description(&self) -> &'static str {
        "every error-enum variant is classified in its retry module, no wildcard"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for anchor in ANCHORS {
            check_anchor(self.name(), anchor, ws, out);
        }
    }
}

/// Runs both checks for one anchor pair.
fn check_anchor(rule: &'static str, anchor: &Anchor, ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let Some(enums) = ws.file(anchor.enum_file) else {
        // Fixture workspaces without the anchor files simply skip the
        // anchor; the real workspace always has them (and the
        // workspace-clean test pins that).
        return;
    };
    let Some(classifier) = ws.file(anchor.classifier_file) else {
        out.push(Diagnostic::new(
            rule,
            anchor.enum_file,
            1,
            1,
            format!(
                "`{}` is missing, so error variants are unclassified",
                anchor.classifier_file
            ),
        ));
        return;
    };

    for enum_name in anchor.enums {
        let Some((variants, decl_line)) = enum_variants(enums, enum_name) else {
            out.push(
                Diagnostic::new(
                    rule,
                    anchor.enum_file,
                    1,
                    1,
                    format!("rule anchor missing: `enum {enum_name}` not found"),
                )
                .with_help("if the enum moved, update crates/lint/src/rules/retry.rs"),
            );
            continue;
        };
        for (variant, _) in &variants {
            if !mentions_variant(classifier, enum_name, variant) {
                out.push(
                    Diagnostic::new(
                        rule,
                        anchor.enum_file,
                        decl_line,
                        1,
                        format!(
                            "`{enum_name}::{variant}` is never mentioned in \
                             {}: the retry classifier takes no position \
                             on it",
                            anchor.classifier_file
                        ),
                    )
                    .with_help(
                        "add it to classify()'s match (and to the classification test) \
                         so retry-vs-drain is an explicit decision",
                    ),
                );
            }
        }
    }

    // No wildcard inside fn classify.
    if let Some((body_start, body_end)) = fn_body_span(classifier, "classify") {
        let toks = &classifier.tokens;
        for i in body_start..body_end {
            if toks[i].kind == TokenKind::Ident
                && toks[i].text == "_"
                && toks.get(i + 1).is_some_and(|a| a.text == "=")
                && toks.get(i + 2).is_some_and(|b| b.text == ">")
            {
                out.push(
                    Diagnostic::new(
                        rule,
                        &classifier.path,
                        toks[i].line,
                        toks[i].col,
                        "wildcard `_ =>` arm in classify(): new error variants would be \
                         classified silently"
                            .to_string(),
                    )
                    .with_help("list every variant explicitly"),
                );
            }
        }
    } else {
        out.push(Diagnostic::new(
            rule,
            &classifier.path,
            1,
            1,
            "rule anchor missing: `fn classify` not found".to_string(),
        ));
    }
}

/// Extracts `(variant, line)` pairs from `enum <name> { … }` in `file`,
/// plus the line of the declaration. Skips attributes and nested
/// field/tuple contents.
pub(crate) fn enum_variants(
    file: &SourceFile,
    name: &str,
) -> Option<(Vec<(String, usize)>, usize)> {
    let toks = &file.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind == TokenKind::Ident
            && toks[i].text == "enum"
            && toks.get(i + 1).is_some_and(|n| n.text == name)
            && toks.get(i + 2).is_some_and(|b| b.text == "{")
        {
            let decl_line = toks[i].line;
            let mut variants = Vec::new();
            let mut j = i + 3;
            let mut depth = 1usize; // inside the enum braces
            let mut expecting_variant = true;
            while j < toks.len() && depth > 0 {
                let t = &toks[j];
                match (t.kind, t.text.as_str()) {
                    (TokenKind::Punct, "{") | (TokenKind::Punct, "(") => {
                        depth += 1;
                        expecting_variant = false;
                    }
                    (TokenKind::Punct, "}") | (TokenKind::Punct, ")") => {
                        depth -= 1;
                    }
                    (TokenKind::Punct, ",") if depth == 1 => {
                        expecting_variant = true;
                    }
                    (TokenKind::Punct, "#") if depth == 1 => {
                        // Skip attribute tokens.
                        let skip = attribute_len(&toks[j..]);
                        j += skip;
                        continue;
                    }
                    (TokenKind::Ident, _) if depth == 1 && expecting_variant => {
                        variants.push((t.text.clone(), t.line));
                        expecting_variant = false;
                    }
                    _ => {}
                }
                j += 1;
            }
            return Some((variants, decl_line));
        }
        i += 1;
    }
    None
}

/// Token length of an attribute starting at `tokens[0] == "#"`.
fn attribute_len(tokens: &[Token]) -> usize {
    let mut depth = 0usize;
    for (idx, t) in tokens.iter().enumerate() {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return idx + 1;
                    }
                }
                _ => {}
            }
        }
    }
    tokens.len()
}

/// Whether `Enum :: Variant` appears anywhere in `file`.
fn mentions_variant(file: &SourceFile, enum_name: &str, variant: &str) -> bool {
    let toks = &file.tokens;
    (0..toks.len()).any(|i| {
        toks[i].kind == TokenKind::Ident
            && toks[i].text == enum_name
            && toks.get(i + 1).is_some_and(|a| a.text == ":")
            && toks.get(i + 2).is_some_and(|b| b.text == ":")
            && toks.get(i + 3).is_some_and(|v| v.text == variant)
    })
}

/// The token index range of `fn <name>`'s body (between its braces).
pub(crate) fn fn_body_span(file: &SourceFile, name: &str) -> Option<(usize, usize)> {
    let toks = &file.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind == TokenKind::Ident
            && toks[i].text == "fn"
            && toks.get(i + 1).is_some_and(|n| n.text == name)
        {
            // Find the opening brace of the body.
            let mut j = i + 2;
            let mut paren_depth = 0usize;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "(" => paren_depth += 1,
                    ")" => paren_depth = paren_depth.saturating_sub(1),
                    "{" if paren_depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            let body_start = j + 1;
            let mut depth = 1usize;
            let mut k = body_start;
            while k < toks.len() && depth > 0 {
                match toks[k].text.as_str() {
                    "{" => depth += 1,
                    "}" => depth -= 1,
                    _ => {}
                }
                k += 1;
            }
            return Some((body_start, k.saturating_sub(1)));
        }
        i += 1;
    }
    None
}
