//! Rule `panics`: non-test library and binary code must not contain
//! reachable panic sites.
//!
//! A collector that panics mid-run loses its in-flight pair and, worse,
//! can leave a store tail for recovery to clean up; every failure must
//! instead flow through the workspace's typed error enums so the
//! scheduler can classify it (retry vs. drain). Flagged forms:
//!
//! - `.unwrap()` / `.expect(…)`
//! - `panic!`, `unreachable!`, `todo!`, `unimplemented!`, `dbg!`
//!
//! Literal indexing (`xs[0]`) panics too but is checked by the sibling
//! [`indexing`](super::Indexing) rule, so math kernels built on
//! fixed-size arrays can file-allow that rule without weakening this one.
//!
//! Report-generator binaries (see
//! [`PANIC_EXEMPT_CRATES`](crate::workspace::PANIC_EXEMPT_CRATES)) are
//! exempt, as are tests, benches, and examples. Provably-infallible
//! sites keep an `expect` with a `ytlint: allow(panics) — reason`
//! annotation.

use super::Rule;
use crate::diag::Diagnostic;
use crate::lex::TokenKind;
use crate::workspace::{Workspace, PANIC_EXEMPT_CRATES};

/// Method calls that panic on failure.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// Macros that panic (or must not ship, in `dbg!`'s case).
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented", "dbg"];

/// The panic-freedom rule.
pub struct Panics;

impl Rule for Panics {
    fn name(&self) -> &'static str {
        "panics"
    }

    fn description(&self) -> &'static str {
        "no unwrap/expect/panic!/literal-index in non-test library code"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for file in &ws.files {
            if file.is_test_target() || PANIC_EXEMPT_CRATES.contains(&file.crate_name.as_str()) {
                continue;
            }
            let toks = &file.tokens;
            for i in 0..toks.len() {
                let t = &toks[i];
                if file.in_test_code(t.line) {
                    continue;
                }
                // `.unwrap(` / `.expect(`
                if t.kind == TokenKind::Ident
                    && PANIC_METHODS.contains(&t.text.as_str())
                    && i > 0
                    && toks[i - 1].kind == TokenKind::Punct
                    && toks[i - 1].text == "."
                    && toks.get(i + 1).is_some_and(|p| p.text == "(")
                {
                    out.push(
                        Diagnostic::new(
                            self.name(),
                            &file.path,
                            t.line,
                            t.col,
                            format!("`.{}()` in non-test code can panic", t.text),
                        )
                        .with_help(
                            "propagate a typed error (ytaudit_types::Error / store::Error), or \
                             annotate a provably-infallible site with `// ytlint: allow(panics) \
                             — <proof>`",
                        ),
                    );
                }
                // `panic!(` and friends.
                if t.kind == TokenKind::Ident
                    && PANIC_MACROS.contains(&t.text.as_str())
                    && toks.get(i + 1).is_some_and(|p| p.kind == TokenKind::Punct && p.text == "!")
                    && toks
                        .get(i + 2)
                        .is_some_and(|p| matches!(p.text.as_str(), "(" | "[" | "{"))
                {
                    out.push(
                        Diagnostic::new(
                            self.name(),
                            &file.path,
                            t.line,
                            t.col,
                            format!("`{}!` in non-test code", t.text),
                        )
                        .with_help("return an error instead of aborting the worker"),
                    );
                }
            }
        }
    }
}
