//! The rule framework: a trait, a registry, and the domain rules.
//!
//! Rules receive the whole parsed [`Workspace`] (not one file at a time)
//! because two of them — retry-classification exhaustiveness and
//! quota-table consistency — are inherently cross-file: they compare an
//! enum definition in one crate against a `match` in another.

use crate::diag::Diagnostic;
use crate::workspace::Workspace;

mod determinism;
mod indexing;
mod panics;
mod quota;
mod retry;

pub use determinism::Determinism;
pub use indexing::Indexing;
pub use panics::Panics;
pub use quota::QuotaConsistency;
pub use retry::RetryExhaustive;

/// A lint rule.
pub trait Rule {
    /// Stable machine name (used in `ytlint: allow(...)` and `--rule`).
    fn name(&self) -> &'static str;
    /// One-line description for `ytaudit-lint rules`.
    fn description(&self) -> &'static str;
    /// Appends findings for the workspace. Implementations must NOT
    /// apply suppressions themselves — the engine matches findings
    /// against `ytlint: allow` directives so it can also detect unused
    /// ones.
    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>);
}

/// Every registered rule, in reporting order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(Determinism),
        Box::new(Panics),
        Box::new(Indexing),
        Box::new(RetryExhaustive),
        Box::new(QuotaConsistency),
    ]
}

/// Looks a rule up by name.
pub fn rule_names() -> Vec<&'static str> {
    all_rules().iter().map(|r| r.name()).collect()
}
