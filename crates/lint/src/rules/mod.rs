//! The rule framework: a trait, a registry, and the domain rules.
//!
//! Rules receive the whole parsed [`Workspace`] (not one file at a time)
//! because five of the eight — retry-classification exhaustiveness,
//! quota-table consistency, and the three call-graph rules
//! (evloop-blocking, lock-order, fsync-rename) — are inherently
//! cross-file: they compare an enum definition in one crate against a
//! `match` in another, or chase call chains across crate boundaries
//! through the workspace call graph (`crate::callgraph`).

use crate::diag::Diagnostic;
use crate::workspace::Workspace;

mod determinism;
mod evloop;
mod fsync;
mod indexing;
mod lockorder;
mod panics;
mod quota;
mod retry;

pub use determinism::Determinism;
pub use evloop::EvloopBlocking;
pub use fsync::FsyncRename;
pub use indexing::Indexing;
pub use lockorder::{LockOrder, DECLARED_ORDER};
pub use panics::Panics;
pub use quota::QuotaConsistency;
pub use retry::RetryExhaustive;

/// A lint rule.
pub trait Rule {
    /// Stable machine name (used in `ytlint: allow(...)` and `--rule`).
    fn name(&self) -> &'static str;
    /// One-line description for `ytaudit-lint rules`.
    fn description(&self) -> &'static str;
    /// Appends findings for the workspace. Implementations must NOT
    /// apply suppressions themselves — the engine matches findings
    /// against `ytlint: allow` directives so it can also detect unused
    /// ones.
    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>);
}

/// Every registered rule, in reporting order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(Determinism),
        Box::new(Panics),
        Box::new(Indexing),
        Box::new(RetryExhaustive),
        Box::new(QuotaConsistency),
        Box::new(EvloopBlocking),
        Box::new(LockOrder),
        Box::new(FsyncRename),
    ]
}

/// Looks a rule up by name.
pub fn rule_names() -> Vec<&'static str> {
    all_rules().iter().map(|r| r.name()).collect()
}
