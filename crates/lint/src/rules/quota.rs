//! Rule `quota-consistency`: one canonical quota table.
//!
//! Quota arithmetic appears in three places — the simulated API's ledger
//! (`crates/api/src/quota.rs`, the canonical source), the client's
//! planning budget, and the scheduler's governor. If they disagree, the
//! collector either trips the server's 403 mid-run (client prices too
//! low) or wastes researcher quota (prices too high). Checks:
//!
//! 1. `Endpoint::cost()` in the canonical file covers every `Endpoint`
//!    variant explicitly — no `_ =>` wildcard, so a new endpoint cannot
//!    silently inherit a price;
//! 2. any `const NAME: … = <int>` in the mirror files whose name also
//!    exists as a const in the canonical file has the same value.

use super::retry::{enum_variants, fn_body_span};
use super::Rule;
use crate::diag::Diagnostic;
use crate::lex::{int_value, TokenKind};
use crate::source::SourceFile;
use crate::workspace::Workspace;

/// The canonical quota table.
const CANONICAL_FILE: &str = "crates/api/src/quota.rs";

/// Files that mirror quota arithmetic and must agree with the table.
const MIRROR_FILES: &[&str] = &[
    "crates/client/src/budget.rs",
    "crates/sched/src/governor.rs",
    "crates/cli/src/commands/quota.rs",
];

/// The quota-consistency rule.
pub struct QuotaConsistency;

impl Rule for QuotaConsistency {
    fn name(&self) -> &'static str {
        "quota-consistency"
    }

    fn description(&self) -> &'static str {
        "client/scheduler quota constants agree with the canonical api table"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        let Some(canonical) = ws.file(CANONICAL_FILE) else {
            return; // fixture workspaces without the anchor skip the rule
        };

        // 1. Endpoint::cost() must be explicit.
        match enum_variants(canonical, "Endpoint") {
            Some((variants, _)) => {
                if let Some((start, end)) = fn_body_span(canonical, "cost") {
                    let toks = &canonical.tokens;
                    for (variant, line) in &variants {
                        let mentioned = (start..end).any(|i| {
                            toks[i].kind == TokenKind::Ident && toks[i].text == *variant
                        });
                        if !mentioned {
                            out.push(
                                Diagnostic::new(
                                    self.name(),
                                    &canonical.path,
                                    *line,
                                    1,
                                    format!(
                                        "`Endpoint::{variant}` has no explicit arm in cost()"
                                    ),
                                )
                                .with_help("price every endpoint explicitly"),
                            );
                        }
                    }
                    for i in start..end {
                        if toks[i].kind == TokenKind::Ident
                            && toks[i].text == "_"
                            && toks.get(i + 1).is_some_and(|a| a.text == "=")
                            && toks.get(i + 2).is_some_and(|b| b.text == ">")
                        {
                            out.push(
                                Diagnostic::new(
                                    self.name(),
                                    &canonical.path,
                                    toks[i].line,
                                    toks[i].col,
                                    "wildcard `_ =>` in Endpoint::cost(): a new endpoint \
                                     would silently inherit a price"
                                        .to_string(),
                                )
                                .with_help("list every endpoint's cost explicitly"),
                            );
                        }
                    }
                } else {
                    out.push(Diagnostic::new(
                        self.name(),
                        &canonical.path,
                        1,
                        1,
                        "rule anchor missing: `fn cost` not found".to_string(),
                    ));
                }
            }
            None => {
                out.push(Diagnostic::new(
                    self.name(),
                    &canonical.path,
                    1,
                    1,
                    "rule anchor missing: `enum Endpoint` not found".to_string(),
                ));
            }
        }

        // 2. Same-named integer consts must agree.
        let canon_consts = int_consts(canonical);
        for mirror_path in MIRROR_FILES {
            let Some(mirror) = ws.file(mirror_path) else {
                continue;
            };
            for (name, value, line) in int_consts(mirror) {
                if let Some((canon_value, _)) =
                    canon_consts.iter().find(|(n, _, _)| *n == name).map(|(_, v, l)| (*v, *l))
                {
                    if canon_value != value {
                        out.push(
                            Diagnostic::new(
                                self.name(),
                                &mirror.path,
                                line,
                                1,
                                format!(
                                    "const {name} = {value} disagrees with the canonical \
                                     {canon_value} in {CANONICAL_FILE}"
                                ),
                            )
                            .with_help("import the canonical const instead of redefining it"),
                        );
                    }
                }
            }
        }
    }
}

/// Extracts `(name, value, line)` from every `const NAME: … = <int literal>;`.
fn int_consts(file: &SourceFile) -> Vec<(String, u64, usize)> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind == TokenKind::Ident && toks[i].text == "const" {
            if let Some(name_tok) = toks.get(i + 1) {
                if name_tok.kind == TokenKind::Ident {
                    // Scan to `=` then expect an integer then `;`.
                    let mut j = i + 2;
                    while j < toks.len() && toks[j].text != "=" && toks[j].text != ";" {
                        j += 1;
                    }
                    if j < toks.len() && toks[j].text == "=" {
                        if let (Some(val_tok), Some(end_tok)) = (toks.get(j + 1), toks.get(j + 2)) {
                            if val_tok.kind == TokenKind::Int && end_tok.text == ";" {
                                if let Some(value) = int_value(&val_tok.text) {
                                    out.push((name_tok.text.clone(), value, name_tok.line));
                                }
                            }
                        }
                    }
                }
            }
        }
        i += 1;
    }
    out
}
