//! Rule `fsync-rename`: every state-installing `rename` keeps the full
//! crash-safety discipline.
//!
//! The store's durability story (DESIGN §10) is fsync-then-rename: write
//! to a temp file, `sync_all` the data, `rename` into place, then fsync
//! the parent directory so the rename itself survives a power cut. PR 4
//! found a `Store::compact` missing the directory fsync *by hand*; this
//! rule finds that class statically. For every `fs::rename(…)` call in
//! library/binary code it checks three things:
//!
//! 1. **pre-sync** — a `sync_all`/`sync_data` happens before the rename,
//!    either directly in the function or inside any callee on the
//!    preceding call path (resolved through the call graph, so
//!    `self.compact(&tmp)` which fsyncs internally counts);
//! 2. **dir-fsync** — after the rename, the function (or a callee, e.g.
//!    `fsync_dir_of`) syncs the parent directory;
//! 3. **faultpoint** — in the crash-safe crates (`store`, `dist`) the
//!    function must also consult a `faultpoint::should_trip` site, so
//!    the crash matrix can actually kill the process at this boundary —
//!    a rename the crash tests cannot reach is unproven, not safe.
//!
//! Soundness tradeoff (DESIGN §14): the pre/post checks are positional
//! within one function body (token order, not data flow), so a sync on a
//! *different* file than the renamed one satisfies check 1. That
//! imprecision has not mattered in practice — the discipline keeps sync
//! and rename adjacent — and the checks stay cheap and explainable.

use super::Rule;
use crate::callgraph::{CallGraph, FnId};
use crate::diag::Diagnostic;
use crate::lex::{Token, TokenKind};
use crate::workspace::Workspace;
use std::collections::HashSet;

/// Crates whose renames must sit next to a crash-matrix faultpoint.
const FAULTPOINT_CRATES: &[&str] = &["store", "dist"];

/// The fsync-rename rule.
pub struct FsyncRename;

impl Rule for FsyncRename {
    fn name(&self) -> &'static str {
        "fsync-rename"
    }

    fn description(&self) -> &'static str {
        "every fs::rename is preceded by a file sync on its call path, followed by a parent-dir fsync, and (store/dist) adjacent to a faultpoint"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        let cg = CallGraph::build(ws);
        // Functions whose subtree performs a sync_all/sync_data.
        let sync_set: HashSet<FnId> = cg.fns_reaching(|g, id| {
            let toks = &g.file(id).tokens;
            g.items[id.0]
                .own_ranges(id.1)
                .iter()
                .any(|&(s, e)| (s..e).any(|i| is_direct_sync(toks, i)))
        });

        for &id in &cg.fns {
            let file = cg.file(id);
            let item = cg.item(id);
            let ranges = cg.items[id.0].own_ranges(id.1);
            let resolved = cg.call_targets(id);
            let chain = vec![cg.display(id), "std::fs::rename".to_string()];

            let renames: Vec<usize> = ranges
                .iter()
                .flat_map(|&(s, e)| s..e.min(file.tokens.len()))
                .filter(|&i| is_fs_rename(&file.tokens, i))
                .collect();
            if renames.is_empty() {
                continue;
            }

            // Token positions of direct syncs and of calls reaching one.
            let direct_syncs: Vec<usize> = ranges
                .iter()
                .flat_map(|&(s, e)| s..e.min(file.tokens.len()))
                .filter(|&i| is_direct_sync(&file.tokens, i))
                .collect();
            let sync_calls: Vec<usize> = item
                .calls
                .iter()
                .zip(resolved)
                .filter(|(_, callees)| callees.iter().any(|c| sync_set.contains(c)))
                .map(|(call, _)| call.token_idx)
                .collect();
            let has_faultpoint = ranges.iter().any(|&(s, e)| {
                (s..e.min(file.tokens.len())).any(|i| {
                    file.tokens[i].kind == TokenKind::Ident && file.tokens[i].text == "should_trip"
                })
            });

            for rename_idx in renames {
                let rename = &file.tokens[rename_idx];
                let synced_before = direct_syncs.iter().any(|&i| i < rename_idx)
                    || sync_calls.iter().any(|&i| i < rename_idx);
                let synced_after = direct_syncs.iter().any(|&i| i > rename_idx)
                    || sync_calls.iter().any(|&i| i > rename_idx);

                if !synced_before {
                    out.push(
                        Diagnostic::new(
                            self.name(),
                            &file.path,
                            rename.line,
                            rename.col,
                            "rename installs state without a file sync on its preceding call \
                             path — a crash can install an empty or torn file",
                        )
                        .with_help(
                            "sync_all() the temp file (directly or via a callee) before renaming",
                        )
                        .with_chain(chain.clone()),
                    );
                }
                if !synced_after {
                    out.push(
                        Diagnostic::new(
                            self.name(),
                            &file.path,
                            rename.line,
                            rename.col,
                            "rename is not followed by a parent-directory fsync — a crash can \
                             undo the install after it returned",
                        )
                        .with_help("call fsync_dir_of(dest) (or open+sync_all the parent) after the rename")
                        .with_chain(chain.clone()),
                    );
                }
                if FAULTPOINT_CRATES.contains(&file.crate_name.as_str()) && !has_faultpoint {
                    out.push(
                        Diagnostic::new(
                            self.name(),
                            &file.path,
                            rename.line,
                            rename.col,
                            "state-installing rename with no adjacent faultpoint — the crash \
                             matrix cannot kill the process at this boundary",
                        )
                        .with_help(
                            "add a faultpoint::should_trip(\"…\") site in this function and arm \
                             it from a crash test",
                        )
                        .with_chain(chain.clone()),
                    );
                }
            }
        }
    }
}

/// Whether the token at `i` is the `rename` of `fs :: rename (`.
fn is_fs_rename(tokens: &[Token], i: usize) -> bool {
    let text = |j: usize| tokens.get(j).map(|t: &Token| t.text.as_str()).unwrap_or("");
    tokens[i].kind == TokenKind::Ident
        && tokens[i].text == "rename"
        && text(i + 1) == "("
        && i >= 3
        && text(i - 1) == ":"
        && text(i - 2) == ":"
        && text(i - 3) == "fs"
}

/// Whether the token at `i` is the method name of `. sync_all (` /
/// `. sync_data (`.
fn is_direct_sync(tokens: &[Token], i: usize) -> bool {
    let text = |j: usize| tokens.get(j).map(|t: &Token| t.text.as_str()).unwrap_or("");
    tokens[i].kind == TokenKind::Ident
        && (tokens[i].text == "sync_all" || tokens[i].text == "sync_data")
        && text(i + 1) == "("
        && i >= 1
        && text(i - 1) == "."
}
