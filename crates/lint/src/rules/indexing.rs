//! Rule `indexing`: indexing with an integer literal (`xs[0]`) in
//! non-test library code.
//!
//! A literal index on a slice is a hidden bounds panic — the same class
//! of failure the `panics` rule polices, but split out under its own
//! name because the safe exceptions are different: numeric kernels built
//! on fixed-size arrays (`[f64; 6]` coefficient tables, `windows(k)`
//! slices) index with literals that are in-bounds by construction, and
//! those files declare the invariant once with
//! `// ytlint: allow-file(indexing) — reason` instead of annotating
//! every polynomial term. The `panics` rule stays strict in those same
//! files.

use super::Rule;
use crate::diag::Diagnostic;
use crate::lex::TokenKind;
use crate::workspace::{Workspace, PANIC_EXEMPT_CRATES};

/// The literal-indexing rule.
pub struct Indexing;

impl Rule for Indexing {
    fn name(&self) -> &'static str {
        "indexing"
    }

    fn description(&self) -> &'static str {
        "no indexing with integer literals in non-test library code"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for file in &ws.files {
            if file.is_test_target() || PANIC_EXEMPT_CRATES.contains(&file.crate_name.as_str()) {
                continue;
            }
            let toks = &file.tokens;
            for i in 0..toks.len() {
                let t = &toks[i];
                if file.in_test_code(t.line) {
                    continue;
                }
                // Indexing with an integer literal: `expr[0]`. The token
                // before `[` must end an expression (identifier, `)`,
                // `]`) — this distinguishes indexing from array literals
                // like `[0u8; 4]` and from macro brackets.
                if t.kind == TokenKind::Punct
                    && t.text == "["
                    && i > 0
                    && (toks[i - 1].kind == TokenKind::Ident
                        || (toks[i - 1].kind == TokenKind::Punct
                            && matches!(toks[i - 1].text.as_str(), ")" | "]")))
                    && toks.get(i + 1).is_some_and(|n| n.kind == TokenKind::Int)
                    && toks.get(i + 2).is_some_and(|c| c.text == "]")
                {
                    out.push(
                        Diagnostic::new(
                            self.name(),
                            &file.path,
                            t.line,
                            t.col,
                            format!(
                                "indexing with literal `[{}]` hides a bounds panic",
                                toks[i + 1].text
                            ),
                        )
                        .with_help(
                            "use .first()/.get(n), or declare a fixed-size-array kernel with \
                             `// ytlint: allow-file(indexing) — <why indices are in bounds>`",
                        ),
                    );
                }
            }
        }
    }
}
