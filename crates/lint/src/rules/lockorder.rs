//! Rule `lock-order`: every nested Mutex acquisition in the workspace
//! must follow one declared order.
//!
//! Deadlock needs exactly two ingredients: two locks and two code paths
//! acquiring them in opposite orders. The workspace now has a dozen
//! Mutexes spread across four crates (the dist coordinator alone takes
//! its state lock at nine sites), and the compiler enforces nothing
//! about their relative order. The rule collects every *nested* pair —
//! a lock acquired while another guard is provably still held, either
//! directly in the same function or transitively through any resolved
//! callee — and checks each pair against [`DECLARED_ORDER`]:
//!
//! - a pair acquired against the declared order is flagged as a
//!   potential deadlock (some other path can interleave the other way);
//! - a pair involving a lock missing from the declared order is flagged
//!   too, so the declaration stays complete as locks are added;
//! - re-acquiring a lock already held is flagged unconditionally —
//!   `parking_lot::Mutex` is not reentrant, so that one needs no
//!   partner thread to deadlock.
//!
//! Lock identity is the receiver field name (`state` in
//! `self.state.lock()`): coarse, but every Mutex in this workspace has a
//! unique field name, and the workspace-clean keystone keeps it that
//! way. Guard lifetimes come from the item layer: `let`-bound guards
//! live to their enclosing block (truncated at `drop(guard)`),
//! temporaries to their statement.

use super::Rule;
use crate::callgraph::CallGraph;
use crate::diag::Diagnostic;
use crate::workspace::Workspace;
use std::collections::HashSet;

/// The single workspace-wide lock acquisition order, outermost first.
/// A nested acquisition `A → B` is legal iff A appears before B here.
/// Singleton locks (never nested) do not need an entry, but every lock
/// that participates in nesting does — the rule flags undeclared pairs.
pub const DECLARED_ORDER: &[&str] = &[
    // Orchestration locks: taken at task/connection granularity.
    "shared",      // sched scheduler queue + drain state
    "clients",     // sched transport factory pool
    "tenants",     // sched multi-tenant admission registry
    "state",       // dist coordinator lease/shard table
    "registry",    // net server handler registry
    "acceptor",    // net server accept socket
    "workers",     // net server worker handles
    "loop_thread", // net evloop join handle
    "pool",        // net client connection pool
    // Leaf utility locks: short critical sections, never call out.
    "keys",  // api keyed quota ledgers
    "core",  // net token-bucket internals
    "now",   // platform sim/manual clock instants
    "ARMED", // platform faultpoint registry
];

/// The lock-order rule.
pub struct LockOrder;

impl Rule for LockOrder {
    fn name(&self) -> &'static str {
        "lock-order"
    }

    fn description(&self) -> &'static str {
        "nested Mutex acquisitions follow the single declared workspace lock order"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        let cg = CallGraph::build(ws);
        let transitive = cg.transitive_locks();
        // One finding per (file, line, held, acquired).
        let mut seen: HashSet<(String, usize, String, String)> = HashSet::new();

        for &id in &cg.fns {
            let item = cg.item(id);
            let file = cg.file(id);
            let resolved = cg.call_targets(id);
            for guard in &item.locks {
                let held = &guard.name;
                // Direct nesting: another lock site inside the scope.
                for inner in &item.locks {
                    if inner.token_idx > guard.token_idx && inner.token_idx < guard.scope_end {
                        report(
                            self.name(),
                            &mut seen,
                            out,
                            &file.path,
                            inner.line,
                            inner.col,
                            held,
                            &inner.name,
                            vec![cg.display(id)],
                        );
                    }
                }
                // Call-mediated nesting: a callee subtree acquires a lock
                // while the guard is held.
                for (call, callees) in item.calls.iter().zip(resolved) {
                    if call.token_idx <= guard.token_idx || call.token_idx >= guard.scope_end {
                        continue;
                    }
                    for &callee in callees {
                        let Some(locks) = transitive.get(&callee) else {
                            continue;
                        };
                        for acquired in locks {
                            let chain = cg
                                .path_to_lock(callee, acquired)
                                .map(|p| {
                                    let mut c = vec![cg.display(id)];
                                    c.extend(cg.display_chain(&p));
                                    c
                                })
                                .unwrap_or_else(|| vec![cg.display(id), cg.display(callee)]);
                            report(
                                self.name(),
                                &mut seen,
                                out,
                                &file.path,
                                call.line,
                                call.col,
                                held,
                                acquired,
                                chain,
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Validates one nested pair and emits at most one finding per site.
#[allow(clippy::too_many_arguments)]
fn report(
    rule: &'static str,
    seen: &mut HashSet<(String, usize, String, String)>,
    out: &mut Vec<Diagnostic>,
    path: &str,
    line: usize,
    col: usize,
    held: &str,
    acquired: &str,
    chain: Vec<String>,
) {
    let key = (
        path.to_string(),
        line,
        held.to_string(),
        acquired.to_string(),
    );
    if seen.contains(&key) {
        return;
    }
    let pos = |name: &str| DECLARED_ORDER.iter().position(|&o| o == name);
    let diag = if held == acquired {
        Some(
            Diagnostic::new(
                rule,
                path,
                line,
                col,
                format!("lock `{held}` is acquired while a guard for it is already held (parking_lot mutexes are not reentrant — this deadlocks without a second thread)"),
            )
            .with_help("drop the outer guard first, or pass the guard down instead of relocking"),
        )
    } else {
        match (pos(held), pos(acquired)) {
            (Some(h), Some(a)) if h > a => Some(
                Diagnostic::new(
                    rule,
                    path,
                    line,
                    col,
                    format!(
                        "lock `{acquired}` is acquired while `{held}` is held, inverting the \
                         declared order ({acquired} before {held})"
                    ),
                )
                .with_help(
                    "acquire in DECLARED_ORDER (crates/lint/src/rules/lockorder.rs) or drop the \
                     outer guard first",
                ),
            ),
            (Some(_), Some(_)) => None, // ordered correctly
            _ => {
                let missing = if pos(held).is_none() { held } else { acquired };
                Some(
                    Diagnostic::new(
                        rule,
                        path,
                        line,
                        col,
                        format!(
                            "nested acquisition `{held}` → `{acquired}`, but `{missing}` is not \
                             in the declared lock order"
                        ),
                    )
                    .with_help(
                        "add it to DECLARED_ORDER in crates/lint/src/rules/lockorder.rs at the \
                         position that matches every nesting site",
                    ),
                )
            }
        }
    };
    if let Some(d) = diag {
        seen.insert(key);
        out.push(d.with_chain(chain));
    }
}
