//! A small Rust lexer: just enough token structure for pattern-based
//! invariant checks, with precise line/column positions.
//!
//! The lexer is deliberately forgiving — it never fails. Anything it does
//! not recognize becomes a one-character [`TokenKind::Punct`]. What it
//! *must* get right (and what unit tests pin down) is the classification
//! of comments, string/char literals, and raw strings, because rules
//! match token sequences and a `panic!` inside a string literal or a
//! doc comment is not a violation.

/// The coarse kind of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unwrap`, `match`, `r#type`, …).
    Ident,
    /// An integer literal (`0`, `10_000`, `0xFF`, `1u8`).
    Int,
    /// A float literal (`1.0`, `2e9`).
    Float,
    /// A string, raw-string, byte-string, or char literal.
    Str,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// A single punctuation character (`.`, `!`, `[`, …).
    Punct,
}

/// One lexed token with its position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The token text (for `Ident`/`Int`: the exact source spelling).
    pub text: String,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column (in characters).
    pub col: usize,
}

/// A comment, kept separate from the token stream (suppression
/// directives live here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment text including the delimiters (`// …` or `/* … */`).
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: usize,
    /// Whether any non-whitespace source precedes it on its line
    /// (a trailing comment annotates its own line; a standalone one
    /// annotates the next line of code).
    pub trailing: bool,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    chars: Vec<char>,
    src: std::marker::PhantomData<&'a str>,
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Cursor<'a> {
        Cursor {
            chars: src.chars().collect(),
            src: std::marker::PhantomData,
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and comments. Never fails: unrecognized bytes
/// degrade into punctuation tokens.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor::new(src);
    let mut out = Lexed::default();
    // Tracks whether the current line already produced a token (to mark
    // trailing comments).
    let mut line_has_code = false;
    let mut code_line = 0usize;

    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        if line != code_line {
            line_has_code = false;
        }
        match c {
            ch if ch.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek_at(1) == Some('/') => {
                let mut text = String::new();
                while let Some(ch) = cur.peek() {
                    if ch == '\n' {
                        break;
                    }
                    text.push(ch);
                    cur.bump();
                }
                out.comments.push(Comment {
                    text,
                    line,
                    trailing: line_has_code,
                });
            }
            '/' if cur.peek_at(1) == Some('*') => {
                let mut text = String::new();
                let mut depth = 0usize;
                while let Some(ch) = cur.peek() {
                    if ch == '/' && cur.peek_at(1) == Some('*') {
                        depth += 1;
                        text.push('/');
                        text.push('*');
                        cur.bump();
                        cur.bump();
                    } else if ch == '*' && cur.peek_at(1) == Some('/') {
                        depth -= 1;
                        text.push('*');
                        text.push('/');
                        cur.bump();
                        cur.bump();
                        if depth == 0 {
                            break;
                        }
                    } else {
                        text.push(ch);
                        cur.bump();
                    }
                }
                out.comments.push(Comment {
                    text,
                    line,
                    trailing: line_has_code,
                });
            }
            '"' => {
                lex_string(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text: String::new(),
                    line,
                    col,
                });
                line_has_code = true;
                code_line = cur.line;
            }
            'r' | 'b' | 'c' if starts_prefixed_literal(&cur) => {
                lex_prefixed_literal(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text: String::new(),
                    line,
                    col,
                });
                line_has_code = true;
                code_line = cur.line;
            }
            '\'' => {
                if lex_char_or_lifetime(&mut cur) {
                    out.tokens.push(Token {
                        kind: TokenKind::Str,
                        text: String::new(),
                        line,
                        col,
                    });
                } else {
                    // A lifetime: the identifier was consumed.
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: String::new(),
                        line,
                        col,
                    });
                }
                line_has_code = true;
                code_line = cur.line;
            }
            ch if ch.is_ascii_digit() => {
                let (text, float) = lex_number(&mut cur);
                out.tokens.push(Token {
                    kind: if float { TokenKind::Float } else { TokenKind::Int },
                    text,
                    line,
                    col,
                });
                line_has_code = true;
                code_line = cur.line;
            }
            ch if is_ident_start(ch) => {
                let mut text = String::new();
                while let Some(ch) = cur.peek() {
                    if !is_ident_continue(ch) {
                        break;
                    }
                    text.push(ch);
                    cur.bump();
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text,
                    line,
                    col,
                });
                line_has_code = true;
                code_line = cur.line;
            }
            ch => {
                cur.bump();
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: ch.to_string(),
                    line,
                    col,
                });
                line_has_code = true;
                code_line = cur.line;
            }
        }
    }
    out
}

/// Whether the cursor sits on a prefixed literal such as `r"…"`,
/// `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`, or `c"…"` (and not on an
/// identifier like `b` or a raw identifier like `r#type`).
fn starts_prefixed_literal(cur: &Cursor<'_>) -> bool {
    let mut ahead = 0usize;
    // Consume the prefix letters (at most two: `br`, `cr`, `rb`? — Rust
    // only has r, b, c, br, cr; two letters suffice).
    for _ in 0..2 {
        match cur.peek_at(ahead) {
            Some('r' | 'b' | 'c') => ahead += 1,
            _ => break,
        }
    }
    if ahead == 0 {
        return false;
    }
    // Then `"`, `'` (byte char), or `#…"` (raw).
    match cur.peek_at(ahead) {
        Some('"') => true,
        Some('\'') => cur.peek_at(ahead.saturating_sub(1)) == Some('b'),
        Some('#') => {
            let mut j = ahead;
            while cur.peek_at(j) == Some('#') {
                j += 1;
            }
            // `r#ident` is a raw identifier, not a string.
            cur.peek_at(j) == Some('"')
        }
        _ => false,
    }
}

/// Consumes a `"…"` string with escapes. The opening quote is at the
/// cursor.
fn lex_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(ch) = cur.bump() {
        match ch {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Consumes a prefixed literal (`r"…"`, `br#"…"#`, `b'x'`, …).
fn lex_prefixed_literal(cur: &mut Cursor<'_>) {
    let mut raw = false;
    let mut byte = false;
    while let Some(ch) = cur.peek() {
        match ch {
            'r' => {
                raw = true;
                cur.bump();
            }
            'b' | 'c' => {
                byte = ch == 'b';
                cur.bump();
            }
            _ => break,
        }
    }
    if raw {
        let mut hashes = 0usize;
        while cur.peek() == Some('#') {
            hashes += 1;
            cur.bump();
        }
        cur.bump(); // opening quote
        'outer: while let Some(ch) = cur.bump() {
            if ch == '"' {
                for _ in 0..hashes {
                    if cur.peek() == Some('#') {
                        cur.bump();
                    } else {
                        continue 'outer;
                    }
                }
                break;
            }
        }
    } else if byte && cur.peek() == Some('\'') {
        // Byte char `b'x'`.
        cur.bump();
        while let Some(ch) = cur.bump() {
            match ch {
                '\\' => {
                    cur.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
    } else {
        lex_string(cur);
    }
}

/// Consumes either a char literal (returns `true`) or a lifetime
/// (returns `false`). The `'` is at the cursor.
fn lex_char_or_lifetime(cur: &mut Cursor<'_>) -> bool {
    // Lifetime: `'ident` NOT followed by a closing `'`.
    if let Some(next) = cur.peek_at(1) {
        if is_ident_start(next) && cur.peek_at(2) != Some('\'') {
            cur.bump(); // '
            while let Some(ch) = cur.peek() {
                if !is_ident_continue(ch) {
                    break;
                }
                cur.bump();
            }
            return false;
        }
    }
    cur.bump(); // opening '
    while let Some(ch) = cur.bump() {
        match ch {
            '\\' => {
                cur.bump();
            }
            '\'' => break,
            _ => {}
        }
    }
    true
}

/// Consumes a numeric literal, returning (text, is_float).
fn lex_number(cur: &mut Cursor<'_>) -> (String, bool) {
    let mut text = String::new();
    let mut float = false;
    // Radix prefix.
    if cur.peek() == Some('0') && matches!(cur.peek_at(1), Some('x' | 'o' | 'b')) {
        text.push('0');
        cur.bump();
        if let Some(radix) = cur.peek() {
            text.push(radix);
            cur.bump();
        }
        while let Some(ch) = cur.peek() {
            if ch.is_ascii_hexdigit() || ch == '_' {
                text.push(ch);
                cur.bump();
            } else {
                break;
            }
        }
    } else {
        while let Some(ch) = cur.peek() {
            if ch.is_ascii_digit() || ch == '_' {
                text.push(ch);
                cur.bump();
            } else {
                break;
            }
        }
        // Fraction: `1.5` but not `1.max(…)` or `0..n`.
        if cur.peek() == Some('.') {
            if let Some(after) = cur.peek_at(1) {
                if after.is_ascii_digit() {
                    float = true;
                    text.push('.');
                    cur.bump();
                    while let Some(ch) = cur.peek() {
                        if ch.is_ascii_digit() || ch == '_' {
                            text.push(ch);
                            cur.bump();
                        } else {
                            break;
                        }
                    }
                }
            }
        }
        // Exponent.
        if matches!(cur.peek(), Some('e' | 'E'))
            && matches!(cur.peek_at(1), Some(c) if c.is_ascii_digit() || c == '+' || c == '-')
        {
            float = true;
            if let Some(e) = cur.peek() {
                text.push(e);
            }
            cur.bump();
            while let Some(ch) = cur.peek() {
                if ch.is_ascii_digit() || ch == '_' || ch == '+' || ch == '-' {
                    text.push(ch);
                    cur.bump();
                } else {
                    break;
                }
            }
        }
    }
    // Type suffix (`u8`, `f64`, `usize`).
    let mut suffix = String::new();
    while let Some(ch) = cur.peek() {
        if is_ident_continue(ch) {
            suffix.push(ch);
            cur.bump();
        } else {
            break;
        }
    }
    if suffix.starts_with('f') {
        float = true;
    }
    text.push_str(&suffix);
    (text, float)
}

/// Parses the numeric value of an [`TokenKind::Int`] token's text
/// (handling `_` separators, radix prefixes, and type suffixes).
pub fn int_value(text: &str) -> Option<u64> {
    let cleaned: String = text.chars().filter(|&c| c != '_').collect();
    let (digits, radix) = if let Some(hex) = cleaned.strip_prefix("0x") {
        (hex, 16)
    } else if let Some(oct) = cleaned.strip_prefix("0o") {
        (oct, 8)
    } else if let Some(bin) = cleaned.strip_prefix("0b") {
        (bin, 2)
    } else {
        (cleaned.as_str(), 10)
    };
    // Stop at the first character that is not a digit of the radix; this
    // also drops any type suffix (`u8`, `i64`, `usize`).
    let end = digits
        .char_indices()
        .find(|(_, c)| !c.is_digit(radix))
        .map_or(digits.len(), |(i, _)| i);
    u64::from_str_radix(&digits[..end], radix).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_are_not_tokens() {
        let lexed = lex("let x = 1; // panic!\n/* unwrap() */ let y;\n");
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].trailing);
        assert!(!lexed.comments[1].trailing);
        assert!(!idents("// panic!\nfoo").contains(&"panic".to_string()));
    }

    #[test]
    fn strings_swallow_their_contents() {
        assert_eq!(idents(r#"let s = "a.unwrap()"; done"#), vec!["let", "s", "done"]);
        assert_eq!(idents(r##"let s = r#"panic!(x)"# ; done"##), vec!["let", "s", "done"]);
        assert_eq!(idents(r#"let b = b"unwrap"; done"#), vec!["let", "b", "done"]);
    }

    #[test]
    fn chars_versus_lifetimes() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars = lexed.tokens.iter().filter(|t| t.kind == TokenKind::Str).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2, "exactly the two char literals: {lexed:?}");
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("/* outer /* inner */ still comment */ code");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(idents("/* outer /* inner */ still */ code"), vec!["code"]);
    }

    #[test]
    fn numbers_and_positions() {
        let lexed = lex("a[0] + 10_000 + 0xFF + 1.5 + 2e3");
        let kinds: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Int | TokenKind::Float))
            .map(|t| (t.kind, t.text.clone()))
            .collect();
        assert_eq!(kinds[0], (TokenKind::Int, "0".to_string()));
        assert_eq!(kinds[1], (TokenKind::Int, "10_000".to_string()));
        assert_eq!(kinds[2], (TokenKind::Int, "0xFF".to_string()));
        assert_eq!(kinds[3].0, TokenKind::Float);
        assert_eq!(kinds[4].0, TokenKind::Float);
        assert_eq!(int_value("10_000"), Some(10_000));
        assert_eq!(int_value("0xFF"), Some(255));
        assert_eq!(int_value("100u64"), Some(100));
    }

    #[test]
    fn line_numbers_are_accurate() {
        let lexed = lex("one\ntwo three\n\nfour");
        let lines: Vec<_> = lexed.tokens.iter().map(|t| (t.text.clone(), t.line)).collect();
        assert_eq!(
            lines,
            vec![
                ("one".to_string(), 1),
                ("two".to_string(), 2),
                ("three".to_string(), 2),
                ("four".to_string(), 4),
            ]
        );
    }

    #[test]
    fn range_after_int_is_not_a_float() {
        let lexed = lex("for i in 0..n {}");
        assert!(lexed.tokens.iter().any(|t| t.kind == TokenKind::Int && t.text == "0"));
        assert!(!lexed.tokens.iter().any(|t| t.kind == TokenKind::Float));
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "r", "type"]);
    }
}
