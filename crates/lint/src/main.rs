//! `ytaudit-lint` binary: `cargo run -p ytaudit-lint -- check`.
//!
//! Subcommands:
//!
//! - `check` (default) — lint the workspace; exit 0 clean, 1 violations,
//!   2 when the checker itself fails (bad flags, unreadable tree).
//! - `rules` — list the rules and what they enforce.
//!
//! Flags for `check`: `--format human|json|sarif`, `--root PATH`, and
//! repeatable `--rule NAME` to restrict the run.

use std::path::PathBuf;
use std::process::ExitCode;

use ytaudit_lint::{all_rules, check_path, find_root, render, CheckOptions, Format};

const USAGE: &str = "\
ytaudit-lint — workspace-aware static invariant checker

USAGE:
    ytaudit-lint [check] [--format human|json|sarif] [--root PATH] [--rule NAME]...
    ytaudit-lint rules

EXIT CODES:
    0  clean
    1  violations found
    2  usage or I/O error";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut rest = args;
    let mut command = "check";
    if let Some(first) = rest.first() {
        if !first.starts_with('-') {
            command = first.as_str();
            rest = &rest[1..];
        }
    }

    match command {
        "rules" => {
            for rule in all_rules() {
                println!("{:<18} {}", rule.name(), rule.description());
            }
            Ok(ExitCode::SUCCESS)
        }
        "check" => run_check(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn run_check(args: &[String]) -> Result<ExitCode, String> {
    let mut format = Format::Human;
    let mut root: Option<PathBuf> = None;
    let mut options = CheckOptions::default();

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--format" => {
                let value = iter.next().ok_or("--format needs a value")?;
                format = match value.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format {other:?}")),
                };
            }
            "--root" => {
                let value = iter.next().ok_or("--root needs a value")?;
                root = Some(PathBuf::from(value));
            }
            "--rule" => {
                let value = iter.next().ok_or("--rule needs a value")?;
                let known = all_rules().iter().any(|r| r.name() == value.as_str());
                if !known {
                    return Err(format!(
                        "unknown rule {value:?}; run `ytaudit-lint rules` for the list"
                    ));
                }
                options.rules.push(value.clone());
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
            find_root(&cwd).ok_or("no workspace root found (expected Cargo.toml + crates/)")?
        }
    };

    let diags = check_path(&root, &options)
        .map_err(|e| format!("cannot read workspace at {}: {e}", root.display()))?;
    print!("{}", render(&diags, format));
    if diags.is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::FAILURE)
    }
}
