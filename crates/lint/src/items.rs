//! Lightweight item extraction: functions, `impl` blocks, `use` imports,
//! call sites, and lock-acquisition sites, recovered from the token
//! stream of one file.
//!
//! This is not a parser for Rust — it is the minimum structural layer the
//! call-graph rules need, built on the same forgiving lexer as the token
//! rules. It never fails; constructs it does not understand simply
//! produce no items. The recovered shape per function is:
//!
//! - its name and (when declared inside `impl Type` / `impl Trait for
//!   Type` / `trait Type`) its self type,
//! - the token span of its body,
//! - every call site in that body, classified as a path call
//!   (`a::b::f(…)`), a bare call (`f(…)`), or a method call (`x.f(…)`),
//! - every `.lock()` site, with the receiver field name, whether the
//!   guard is bound to a `let` (and therefore outlives the statement),
//!   and the token range over which the guard is held (truncated at an
//!   explicit `drop(guard)`).

use crate::lex::{Token, TokenKind};

/// One `use` import, flattened: `use a::b::{c, d as e};` yields
/// `(c, [a,b,c])` and `(e, [a,b,d])`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseImport {
    /// The name the import binds in this file.
    pub alias: String,
    /// The full path segments the alias stands for.
    pub path: Vec<String>,
}

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `a::b::f(…)` — fully or partially qualified.
    Path {
        /// All path segments including the function name.
        segments: Vec<String>,
    },
    /// `f(…)` — resolved via the local file, crate, then imports.
    Bare {
        /// The callee name.
        name: String,
    },
    /// `receiver.f(…)` — resolved by method name across the workspace.
    Method {
        /// The method name.
        name: String,
        /// What the receiver syntactically is.
        receiver: Receiver,
    },
}

/// The syntactic receiver of a method call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Receiver {
    /// Literally `self.f(…)` — resolvable within the enclosing impl.
    SelfDot,
    /// `name.f(…)` — a local, field, or static.
    Named(String),
    /// Anything else (`expr().f(…)`, `xs[i].f(…)`, …).
    Other,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// How the callee is named.
    pub kind: CallKind,
    /// Token index of the callee-name identifier.
    pub token_idx: usize,
    /// 1-based source line of the callee name.
    pub line: usize,
    /// 1-based source column of the callee name.
    pub col: usize,
}

/// One `.lock()` acquisition site.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// The receiver identifier (`state` in `self.state.lock()`).
    pub name: String,
    /// Token index of the `lock` identifier.
    pub token_idx: usize,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
    /// Whether the guard is bound by a `let` (held past the statement).
    pub bound: bool,
    /// Token index (exclusive) where the guard is dropped: the end of
    /// the enclosing block for bound guards (truncated at an explicit
    /// `drop(binding)`), the end of the statement for temporaries.
    pub scope_end: usize,
}

/// One function item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function name.
    pub name: String,
    /// The enclosing `impl`/`trait` type, when any.
    pub self_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token index of the `fn` keyword.
    pub fn_idx: usize,
    /// Token range `[start, end)` of the body, between its braces.
    pub body: (usize, usize),
    /// Call sites in the body (nested `fn` items excluded).
    pub calls: Vec<CallSite>,
    /// Lock sites in the body (nested `fn` items excluded).
    pub locks: Vec<LockSite>,
}

/// Everything extracted from one file.
#[derive(Debug, Default)]
pub struct FileItems {
    /// Flattened `use` imports.
    pub imports: Vec<UseImport>,
    /// Function items in source order.
    pub fns: Vec<FnItem>,
}

/// Keywords that look like bare calls when followed by `(`.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "in", "match", "loop", "return", "break", "continue", "as",
    "move", "ref", "mut", "let", "unsafe", "where", "impl", "dyn", "fn", "use", "pub", "struct",
    "enum", "type", "trait", "const", "static", "mod", "box", "await",
];

impl FileItems {
    /// Extracts items from a token stream.
    pub fn parse(tokens: &[Token]) -> FileItems {
        let depth = brace_depth_before(tokens);
        let imports = parse_imports(tokens);
        let mut fns = parse_fns(tokens, &depth);
        // Scan each body for calls and locks, skipping nested fn items so
        // their sites are attributed to the inner function only.
        let spans: Vec<(usize, (usize, usize))> = fns.iter().map(|f| (f.fn_idx, f.body)).collect();
        for f in &mut fns {
            let ranges = own_ranges(f.body, f.fn_idx, &spans);
            for &(start, end) in &ranges {
                scan_calls(tokens, start, end, &mut f.calls);
                scan_locks(tokens, &depth, start, end, &mut f.locks);
            }
        }
        FileItems { imports, fns }
    }

    /// The function declared at `fns[idx]`, with the token ranges of its
    /// body that belong to it (nested fn items removed).
    pub fn own_ranges(&self, idx: usize) -> Vec<(usize, usize)> {
        let spans: Vec<(usize, (usize, usize))> =
            self.fns.iter().map(|f| (f.fn_idx, f.body)).collect();
        let f = &self.fns[idx];
        own_ranges(f.body, f.fn_idx, &spans)
    }
}

/// Brace depth *before* each token (length `tokens.len() + 1`).
fn brace_depth_before(tokens: &[Token]) -> Vec<usize> {
    let mut depth = Vec::with_capacity(tokens.len() + 1);
    let mut d = 0usize;
    for t in tokens {
        depth.push(d);
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "{" => d += 1,
                "}" => d = d.saturating_sub(1),
                _ => {}
            }
        }
    }
    depth.push(d);
    depth
}

/// Splits `body` into the ranges not covered by nested fn items.
fn own_ranges(
    body: (usize, usize),
    fn_idx: usize,
    all: &[(usize, (usize, usize))],
) -> Vec<(usize, usize)> {
    let mut holes: Vec<(usize, usize)> = all
        .iter()
        .filter(|&&(inner_fn, (_, inner_end))| {
            inner_fn != fn_idx && inner_fn >= body.0 && inner_end <= body.1
        })
        .map(|&(inner_fn, (_, inner_end))| (inner_fn, inner_end))
        .collect();
    holes.sort_unstable();
    let mut ranges = Vec::new();
    let mut pos = body.0;
    for (start, end) in holes {
        if start > pos {
            ranges.push((pos, start));
        }
        pos = pos.max(end);
    }
    if pos < body.1 {
        ranges.push((pos, body.1));
    }
    ranges
}

/// Parses every `use …;` into flattened imports.
fn parse_imports(tokens: &[Token]) -> Vec<UseImport> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].kind == TokenKind::Ident && tokens[i].text == "use" {
            // Collect tokens until the terminating `;`.
            let start = i + 1;
            let mut j = start;
            while j < tokens.len() && tokens[j].text != ";" {
                j += 1;
            }
            flatten_use_tree(&tokens[start..j], &mut Vec::new(), &mut out);
            i = j;
        }
        i += 1;
    }
    out
}

/// Recursively flattens one use tree (`a::b::{c, d as e, f::*}`).
fn flatten_use_tree(tokens: &[Token], prefix: &mut Vec<String>, out: &mut Vec<UseImport>) {
    let saved = prefix.len();
    let mut i = 0usize;
    let mut last: Option<String> = None;
    while i < tokens.len() {
        let t = &tokens[i];
        match (t.kind, t.text.as_str()) {
            (TokenKind::Ident, "as") => {
                // `path as alias` — the alias replaces the leaf name.
                if let (Some(leaf), Some(alias)) = (last.take(), tokens.get(i + 1)) {
                    prefix.push(leaf);
                    out.push(UseImport {
                        alias: alias.text.clone(),
                        path: prefix.clone(),
                    });
                    prefix.truncate(saved);
                }
                i += 2;
                continue;
            }
            (TokenKind::Ident, _) => {
                if let Some(seg) = last.replace(t.text.clone()) {
                    // Two idents without `::` between: malformed; drop.
                    let _ = seg;
                }
            }
            (TokenKind::Punct, ":") if tokens.get(i + 1).is_some_and(|n| n.text == ":") => {
                if let Some(seg) = last.take() {
                    prefix.push(seg);
                }
                i += 2;
                continue;
            }
            (TokenKind::Punct, "{") => {
                // A group: split the balanced contents on top-level commas
                // and recurse on each.
                let mut depth = 1usize;
                let mut j = i + 1;
                let mut arm_start = j;
                while j < tokens.len() && depth > 0 {
                    match tokens[j].text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 && arm_start < j {
                                flatten_use_tree(&tokens[arm_start..j], prefix, out);
                            }
                        }
                        "," if depth == 1 => {
                            if arm_start < j {
                                flatten_use_tree(&tokens[arm_start..j], prefix, out);
                            }
                            arm_start = j + 1;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                prefix.truncate(saved);
                return;
            }
            (TokenKind::Punct, "*") => {
                // Glob imports bind no specific alias; nothing to record.
                prefix.truncate(saved);
                return;
            }
            _ => {}
        }
        i += 1;
    }
    if let Some(leaf) = last {
        prefix.push(leaf.clone());
        out.push(UseImport {
            alias: leaf,
            path: prefix.clone(),
        });
    }
    prefix.truncate(saved);
}

/// Finds fn items, tracking the enclosing `impl`/`trait` type.
fn parse_fns(tokens: &[Token], depth: &[usize]) -> Vec<FnItem> {
    let mut fns = Vec::new();
    // Stack of (self type, brace depth inside the impl/trait block).
    let mut impls: Vec<(String, usize)> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind == TokenKind::Punct && t.text == "}" {
            while impls.last().is_some_and(|&(_, d)| depth[i] <= d) {
                impls.pop();
            }
        }
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "impl" | "trait" => {
                if let Some((ty, open)) = parse_impl_header(tokens, i) {
                    // Depth *inside* the block is depth at the `{` + 1.
                    impls.push((ty, depth[open] + 1));
                    i = open + 1;
                    continue;
                }
            }
            "fn" => {
                let Some(name_tok) = tokens.get(i + 1) else {
                    i += 1;
                    continue;
                };
                if name_tok.kind == TokenKind::Ident {
                    if let Some((body_start, body_end)) = fn_body(tokens, i + 2) {
                        let self_type = impls
                            .last()
                            .filter(|&&(_, d)| depth[i] >= d)
                            .map(|(ty, _)| ty.clone());
                        fns.push(FnItem {
                            name: name_tok.text.clone(),
                            self_type,
                            line: t.line,
                            fn_idx: i,
                            body: (body_start, body_end),
                            calls: Vec::new(),
                            locks: Vec::new(),
                        });
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    fns
}

/// Parses an `impl`/`trait` header starting at `tokens[kw]`, returning
/// the self type and the index of the opening `{`. The self type is the
/// first identifier after `for` when present (`impl Trait for Type`),
/// otherwise the first identifier after the keyword's generic params.
fn parse_impl_header(tokens: &[Token], kw: usize) -> Option<(String, usize)> {
    let mut angle = 0i32;
    let mut first_ident: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    let mut j = kw + 1;
    while j < tokens.len() {
        let t = &tokens[j];
        match (t.kind, t.text.as_str()) {
            (TokenKind::Punct, "<") => angle += 1,
            (TokenKind::Punct, ">") => angle -= 1,
            (TokenKind::Punct, "{") if angle <= 0 => {
                let ty = after_for.or(first_ident)?;
                return Some((ty, j));
            }
            (TokenKind::Punct, ";") if angle <= 0 => return None,
            (TokenKind::Ident, "for") if angle <= 0 => saw_for = true,
            (TokenKind::Ident, "where") if angle <= 0 => {
                // Bounds may mention arbitrary types; stop collecting.
                while j < tokens.len() && tokens[j].text != "{" {
                    j += 1;
                }
                let ty = after_for.or(first_ident)?;
                return Some((ty, j));
            }
            (TokenKind::Ident, name) if angle <= 0 => {
                if saw_for && after_for.is_none() {
                    after_for = Some(name.to_string());
                } else if first_ident.is_none() {
                    first_ident = Some(name.to_string());
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Locates a fn body's `[start, end)` token range given the index just
/// past the fn name. Returns `None` for bodyless declarations.
fn fn_body(tokens: &[Token], from: usize) -> Option<(usize, usize)> {
    let mut paren = 0i32;
    let mut angle = 0i32;
    let mut j = from;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "(" => paren += 1,
            ")" => paren -= 1,
            "<" => angle += 1,
            ">" if tokens.get(j.wrapping_sub(1)).is_some_and(|p| p.text != "-") => angle -= 1,
            "{" if paren <= 0 => {
                let start = j + 1;
                let mut d = 1usize;
                let mut k = start;
                while k < tokens.len() && d > 0 {
                    match tokens[k].text.as_str() {
                        "{" => d += 1,
                        "}" => d -= 1,
                        _ => {}
                    }
                    k += 1;
                }
                return Some((start, k.saturating_sub(1)));
            }
            ";" if paren <= 0 && angle <= 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Appends call sites found in `tokens[start..end)`.
fn scan_calls(tokens: &[Token], start: usize, end: usize, out: &mut Vec<CallSite>) {
    for i in start..end.min(tokens.len()) {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident
            || tokens.get(i + 1).is_none_or(|n| n.text != "(")
            || NON_CALL_KEYWORDS.contains(&t.text.as_str())
        {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| tokens[p].text.as_str());
        let kind = match prev {
            Some(".") => {
                let receiver = match i.checked_sub(2).map(|p| &tokens[p]) {
                    Some(r) if r.kind == TokenKind::Ident && r.text == "self" => Receiver::SelfDot,
                    Some(r) if r.kind == TokenKind::Ident => Receiver::Named(r.text.clone()),
                    _ => Receiver::Other,
                };
                CallKind::Method {
                    name: t.text.clone(),
                    receiver,
                }
            }
            Some(":") if i >= 2 && tokens[i - 2].text == ":" => {
                // Walk back through `seg ::` pairs collecting the path.
                let mut segments = vec![t.text.clone()];
                let mut k = i;
                while k >= 3
                    && tokens[k - 1].text == ":"
                    && tokens[k - 2].text == ":"
                    && tokens[k - 3].kind == TokenKind::Ident
                {
                    segments.insert(0, tokens[k - 3].text.clone());
                    k -= 3;
                }
                if segments.len() == 1 {
                    // Qualified through something non-ident (turbofish,
                    // `<T as Trait>::f`): keep only the name.
                    CallKind::Bare {
                        name: t.text.clone(),
                    }
                } else {
                    CallKind::Path { segments }
                }
            }
            Some("fn") => continue, // a declaration, not a call
            _ => CallKind::Bare {
                name: t.text.clone(),
            },
        };
        out.push(CallSite {
            kind,
            token_idx: i,
            line: t.line,
            col: t.col,
        });
    }
}

/// Appends `.lock()` sites found in `tokens[start..end)`.
fn scan_locks(
    tokens: &[Token],
    depth: &[usize],
    start: usize,
    end: usize,
    out: &mut Vec<LockSite>,
) {
    for i in start..end.min(tokens.len()) {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident
            || t.text != "lock"
            || i == 0
            || tokens[i - 1].text != "."
            || tokens.get(i + 1).is_none_or(|n| n.text != "(")
            || tokens.get(i + 2).is_none_or(|n| n.text != ")")
        {
            continue;
        }
        let name = match i.checked_sub(2).map(|p| &tokens[p]) {
            Some(r) if r.kind == TokenKind::Ident => r.text.clone(),
            _ => continue, // computed receiver; no stable identity
        };
        // Step past `.unwrap()` / `.expect("…")` on the guard expression
        // (std Mutex) before classifying the statement.
        let mut after = i + 3;
        if tokens.get(after).is_some_and(|d| d.text == ".")
            && tokens
                .get(after + 1)
                .is_some_and(|m| m.text == "unwrap" || m.text == "expect")
        {
            after += 2;
            let mut pd = 0i32;
            while let Some(tok) = tokens.get(after) {
                match tok.text.as_str() {
                    "(" => pd += 1,
                    ")" => {
                        pd -= 1;
                        if pd == 0 {
                            after += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                after += 1;
            }
        }

        // Statement start: walk back to the previous `;`/`{`/`}`.
        let mut stmt = i;
        while stmt > 0 && !matches!(tokens[stmt - 1].text.as_str(), ";" | "{" | "}") {
            stmt -= 1;
        }
        let bound = tokens[stmt].text == "let";
        let stmt_depth = depth[stmt];

        let scope_end = if bound {
            // The binding name: `let [mut] name = …`.
            let mut b = stmt + 1;
            if tokens.get(b).is_some_and(|m| m.text == "mut") {
                b += 1;
            }
            let binding = tokens.get(b).map(|n| n.text.as_str()).unwrap_or("");
            // Held until the enclosing block closes or `drop(binding)`.
            let mut j = after;
            let mut close = end;
            while j < end.min(tokens.len()) {
                if depth[j] < stmt_depth {
                    close = j;
                    break;
                }
                if tokens[j].kind == TokenKind::Ident
                    && tokens[j].text == "drop"
                    && tokens.get(j + 1).is_some_and(|o| o.text == "(")
                    && tokens.get(j + 2).is_some_and(|n| n.text == binding)
                    && tokens.get(j + 3).is_some_and(|c| c.text == ")")
                {
                    close = j;
                    break;
                }
                j += 1;
            }
            close
        } else {
            // A temporary: held to the end of the statement.
            let mut j = after;
            let mut close = end;
            while j < end.min(tokens.len()) {
                if depth[j] < stmt_depth || (tokens[j].text == ";" && depth[j] <= stmt_depth) {
                    close = j;
                    break;
                }
                j += 1;
            }
            close
        };

        out.push(LockSite {
            name,
            token_idx: i,
            line: t.line,
            col: t.col,
            bound,
            scope_end,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn items(src: &str) -> FileItems {
        FileItems::parse(&lex(src).tokens)
    }

    #[test]
    fn imports_flatten_groups_aliases_and_nesting() {
        let it = items(
            "use a::b::{c, d as e, f::{g, h}};\n\
             use x::y;\n\
             use z::*;\n",
        );
        let find = |alias: &str| {
            it.imports
                .iter()
                .find(|i| i.alias == alias)
                .map(|i| i.path.join("::"))
        };
        assert_eq!(find("c").as_deref(), Some("a::b::c"));
        assert_eq!(find("e").as_deref(), Some("a::b::d"));
        assert_eq!(find("g").as_deref(), Some("a::b::f::g"));
        assert_eq!(find("h").as_deref(), Some("a::b::f::h"));
        assert_eq!(find("y").as_deref(), Some("x::y"));
        // Globs bind no alias, so `use z::*;` contributes nothing.
        assert_eq!(it.imports.len(), 5, "{:?}", it.imports);
    }

    #[test]
    fn fns_get_self_types_from_impl_and_trait_blocks() {
        let it = items(
            "fn free() {}\n\
             impl Store { fn open() {} fn commit(&self) {} }\n\
             impl Handler for ServeFront { fn handle(&self) {} }\n\
             impl<T: Clone> Wrap<T> { fn get(&self) {} }\n\
             trait Clock { fn now(&self) -> u64 { 0 } }\n",
        );
        let ty = |name: &str| {
            it.fns
                .iter()
                .find(|f| f.name == name)
                .and_then(|f| f.self_type.clone())
        };
        assert_eq!(ty("free"), None);
        assert_eq!(ty("open").as_deref(), Some("Store"));
        assert_eq!(ty("commit").as_deref(), Some("Store"));
        assert_eq!(ty("handle").as_deref(), Some("ServeFront"));
        assert_eq!(ty("get").as_deref(), Some("Wrap"));
        assert_eq!(ty("now").as_deref(), Some("Clock"));
    }

    #[test]
    fn self_type_does_not_leak_past_the_impl_block() {
        let it = items("impl A { fn x(&self) {} }\nfn y() {}\n");
        assert_eq!(
            it.fns
                .iter()
                .find(|f| f.name == "y")
                .and_then(|f| f.self_type.clone()),
            None
        );
    }

    #[test]
    fn calls_are_classified_and_macros_are_not_calls() {
        let it = items(
            "fn f(&self) {\n\
                 helper();\n\
                 store::open(p);\n\
                 std::fs::rename(a, b);\n\
                 self.commit();\n\
                 conn.flush();\n\
                 format!(\"{x}\");\n\
             }\n",
        );
        let calls = &it.fns[0].calls;
        assert!(calls
            .iter()
            .any(|c| matches!(&c.kind, CallKind::Bare { name } if name == "helper")));
        assert!(calls.iter().any(
            |c| matches!(&c.kind, CallKind::Path { segments } if segments == &["store", "open"])
        ));
        assert!(calls.iter().any(|c| matches!(
            &c.kind,
            CallKind::Path { segments } if segments == &["std", "fs", "rename"]
        )));
        assert!(calls.iter().any(|c| matches!(
            &c.kind,
            CallKind::Method { name, receiver: Receiver::SelfDot } if name == "commit"
        )));
        assert!(calls.iter().any(|c| matches!(
            &c.kind,
            CallKind::Method { name, receiver: Receiver::Named(r) } if name == "flush" && r == "conn"
        )));
        assert!(!calls
            .iter()
            .any(|c| matches!(&c.kind, CallKind::Bare { name } if name == "format")));
    }

    #[test]
    fn nested_fn_sites_belong_to_the_inner_fn_only() {
        let it = items("fn outer() {\n    a();\n    fn inner() { b(); }\n    c();\n}\n");
        let outer = it.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = it.fns.iter().find(|f| f.name == "inner").unwrap();
        let names = |f: &FnItem| -> Vec<String> {
            f.calls
                .iter()
                .filter_map(|c| match &c.kind {
                    CallKind::Bare { name } => Some(name.clone()),
                    _ => None,
                })
                .collect()
        };
        assert_eq!(names(outer), vec!["a", "c"]);
        assert_eq!(names(inner), vec!["b"]);
    }

    #[test]
    fn bound_guard_scope_ends_at_block_close() {
        let it = items(
            "fn f(&self) {\n\
                 let task = {\n\
                     let mut s = self.shared.lock();\n\
                     s.pop()\n\
                 };\n\
                 self.execute(task);\n\
             }\n",
        );
        let f = &it.fns[0];
        assert_eq!(f.locks.len(), 1);
        let g = &f.locks[0];
        assert!(g.bound);
        assert_eq!(g.name, "shared");
        // The execute() call must fall OUTSIDE the guard scope.
        let exec = f
            .calls
            .iter()
            .find(|c| matches!(&c.kind, CallKind::Method { name, .. } if name == "execute"))
            .unwrap();
        assert!(exec.token_idx > g.scope_end, "guard leaked past its block");
        // The pop() call falls inside it.
        let pop = f
            .calls
            .iter()
            .find(|c| matches!(&c.kind, CallKind::Method { name, .. } if name == "pop"))
            .unwrap();
        assert!(pop.token_idx < g.scope_end);
    }

    #[test]
    fn explicit_drop_truncates_the_guard_scope() {
        let it = items(
            "fn f(&self) {\n\
                 let g = self.state.lock();\n\
                 early(g);\n\
                 drop(g);\n\
                 late();\n\
             }\n",
        );
        let f = &it.fns[0];
        let lock = &f.locks[0];
        let late = f
            .calls
            .iter()
            .find(|c| matches!(&c.kind, CallKind::Bare { name } if name == "late"))
            .unwrap();
        assert!(late.token_idx > lock.scope_end);
    }

    #[test]
    fn temporary_guard_scope_is_the_statement() {
        let it = items(
            "fn f(&self) {\n\
                 self.tenants.lock().insert(k, v);\n\
                 other();\n\
             }\n",
        );
        let f = &it.fns[0];
        let lock = &f.locks[0];
        assert!(!lock.bound);
        assert_eq!(lock.name, "tenants");
        let insert = f
            .calls
            .iter()
            .find(|c| matches!(&c.kind, CallKind::Method { name, .. } if name == "insert"))
            .unwrap();
        assert!(
            insert.token_idx < lock.scope_end,
            "chained call is under the temp guard"
        );
        let other = f
            .calls
            .iter()
            .find(|c| matches!(&c.kind, CallKind::Bare { name } if name == "other"))
            .unwrap();
        assert!(other.token_idx > lock.scope_end);
    }

    #[test]
    fn std_mutex_unwrap_is_stepped_over() {
        let it = items("fn f() {\n    let g = M.lock().unwrap();\n    use_it(g);\n}\n");
        let f = &it.fns[0];
        assert_eq!(f.locks.len(), 1);
        assert!(f.locks[0].bound);
        assert_eq!(f.locks[0].name, "M");
    }
}
