//! `ytaudit-lint` — workspace-aware static invariant checker.
//!
//! Clippy knows Rust; it does not know that this workspace promises
//! byte-identical datasets for any worker count, panic-free collection,
//! an explicitly classified error taxonomy, one canonical quota table,
//! a never-blocking event loop, a deadlock-free lock order, and a
//! crash-safe fsync-then-rename discipline. This crate tokenizes the
//! workspace's sources (std only — no registry dependencies, so it
//! builds and runs before anything else does, including offline),
//! recovers a conservative cross-file call graph from them
//! (`items` + `callgraph`), and enforces those domain invariants:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `determinism` | no `Instant::now`/`SystemTime::now`/`thread_rng` outside `ytaudit-platform::clock` |
//! | `panics` | no `unwrap`/`expect`/`panic!` in non-test library code |
//! | `indexing` | no literal-index (`xs[0]`) in non-test library code |
//! | `retry-exhaustive` | every `Error`/`ApiErrorReason` variant classified in `sched/retry.rs` and every `DistErrorKind` in `dist/retry.rs`, no wildcard |
//! | `quota-consistency` | quota constants/cost table agree across api, client, sched, cli |
//! | `evloop-blocking` | no blocking leaf (sleep, fsync, recv/wait/join, blocking connect, guard held across one) reachable from the event-loop sweep thread |
//! | `lock-order` | every nested Mutex acquisition follows the declared workspace lock order |
//! | `fsync-rename` | every state-installing `fs::rename` has a preceding file sync on its call path, a parent-dir fsync after, and (store/dist) an adjacent faultpoint |
//!
//! Violations that are provably safe carry an inline suppression:
//!
//! ```text
//! // ytlint: allow(panics) — slice length checked two lines above
//! ```
//!
//! A suppression without a reason, or one that suppresses nothing, is
//! itself a violation (`allow-hygiene`) — annotations must stay honest
//! and alive. Run via `cargo run -p ytaudit-lint -- check` or
//! `ytaudit lint`; exit code 0 means clean, 1 means violations, 2 means
//! the checker itself could not run.

pub mod callgraph;
pub mod diag;
pub mod items;
pub mod lex;
pub mod rules;
pub mod source;
pub mod workspace;

pub use diag::{render, Diagnostic, Format};
pub use rules::{all_rules, rule_names, Rule};
pub use workspace::Workspace;

use std::path::Path;

/// The engine-level rule name for suppression hygiene findings.
pub const ALLOW_HYGIENE: &str = "allow-hygiene";

/// Options for one check run.
#[derive(Debug, Clone, Default)]
pub struct CheckOptions {
    /// Restrict to these rule names (empty = all rules). Suppression
    /// hygiene (unused-allow detection) only runs with the full set,
    /// since an allow for a deselected rule would look unused.
    pub rules: Vec<String>,
}

/// Runs the rules over an already-loaded workspace and applies the
/// suppression pass. Returns surviving diagnostics.
pub fn check_workspace(ws: &Workspace, options: &CheckOptions) -> Vec<Diagnostic> {
    let full_set = options.rules.is_empty();
    let mut raw = Vec::new();
    for rule in all_rules() {
        if full_set || options.rules.iter().any(|r| r == rule.name()) {
            rule.check(ws, &mut raw);
        }
    }

    // Apply suppressions (marking used directives as we go).
    let mut diags: Vec<Diagnostic> = raw
        .into_iter()
        .filter(|d| {
            ws.file(&d.path)
                .is_none_or(|file| !file.suppressed(d.rule, d.line))
        })
        .collect();

    // Hygiene: every directive needs a reason; on full runs, every
    // directive must have suppressed something; rule names must exist.
    let known = rule_names();
    for file in &ws.files {
        for allow in &file.allows {
            if allow.rules.is_empty() {
                diags.push(Diagnostic::new(
                    ALLOW_HYGIENE,
                    &file.path,
                    allow.directive_line,
                    1,
                    "malformed ytlint directive (expected `ytlint: allow(rule, …) — reason` \
                         or `allow-file(…)`)",
                ));
                continue;
            }
            for rule in &allow.rules {
                if !known.contains(&rule.as_str()) {
                    diags.push(Diagnostic::new(
                        ALLOW_HYGIENE,
                        &file.path,
                        allow.directive_line,
                        1,
                        format!("unknown rule {rule:?} in ytlint allow"),
                    ));
                }
            }
            if allow.reason.is_none() {
                diags.push(
                    Diagnostic::new(
                        ALLOW_HYGIENE,
                        &file.path,
                        allow.directive_line,
                        1,
                        "ytlint allow without a justification",
                    )
                    .with_help("append `— <why this site is safe>` to the directive"),
                );
            }
            if full_set
                && !allow.used.get()
                && allow.rules.iter().all(|r| known.contains(&r.as_str()))
            {
                diags.push(
                    Diagnostic::new(
                        ALLOW_HYGIENE,
                        &file.path,
                        allow.directive_line,
                        1,
                        format!(
                            "ytlint allow({}) suppresses nothing",
                            allow.rules.join(", ")
                        ),
                    )
                    .with_help("the annotated violation is gone; delete the stale directive"),
                );
            }
        }
    }
    diags
}

/// Loads the workspace at `root` and checks it.
pub fn check_path(root: &Path, options: &CheckOptions) -> std::io::Result<Vec<Diagnostic>> {
    let ws = Workspace::load(root)?;
    Ok(check_workspace(&ws, options))
}

/// Locates the workspace root: walks up from `start` until a directory
/// containing both `Cargo.toml` and `crates/` appears.
pub fn find_root(start: &Path) -> Option<std::path::PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppressed_diagnostics_are_dropped_and_marked_used() {
        let ws = Workspace::from_files(&[(
            "crates/x/src/lib.rs",
            "pub fn f(v: Option<u32>) -> u32 {\n    \
             v.unwrap() // ytlint: allow(panics) — caller guarantees Some\n}\n",
        )]);
        let diags = check_workspace(&ws, &CheckOptions::default());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn allow_without_reason_is_reported() {
        let ws = Workspace::from_files(&[(
            "crates/x/src/lib.rs",
            "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap() // ytlint: allow(panics)\n}\n",
        )]);
        let diags = check_workspace(&ws, &CheckOptions::default());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags.first().map(|d| d.rule), Some(ALLOW_HYGIENE));
    }

    #[test]
    fn unused_allow_is_reported_on_full_runs_only() {
        let src = "pub fn f() {} // ytlint: allow(panics) — nothing here panics\n";
        let ws = Workspace::from_files(&[("crates/x/src/lib.rs", src)]);
        let full = check_workspace(&ws, &CheckOptions::default());
        assert!(
            full.iter()
                .any(|d| d.message.contains("suppresses nothing")),
            "{full:?}"
        );
        let ws = Workspace::from_files(&[("crates/x/src/lib.rs", src)]);
        let partial = check_workspace(
            &ws,
            &CheckOptions {
                rules: vec!["determinism".into()],
            },
        );
        assert!(partial.is_empty(), "{partial:?}");
    }

    #[test]
    fn unknown_rule_in_allow_is_reported() {
        let ws = Workspace::from_files(&[(
            "crates/x/src/lib.rs",
            "pub fn f() {} // ytlint: allow(made-up) — whatever\n",
        )]);
        let diags = check_workspace(&ws, &CheckOptions::default());
        assert!(
            diags.iter().any(|d| d.message.contains("unknown rule")),
            "{diags:?}"
        );
    }
}
