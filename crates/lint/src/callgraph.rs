//! The workspace call graph: a symbol table over every analyzable
//! function plus conservative call resolution and reachability queries.
//!
//! Resolution is name-based, not type-based — the linter has no type
//! inference. The rules that consume the graph accept that tradeoff
//! explicitly (DESIGN §14):
//!
//! - **Path calls** (`store::open`, `Store::open`, `Self::f`,
//!   `ytaudit_store::fsync_dir_of`) resolve through the file's `use`
//!   imports, then by qualifier: an uppercase qualifier names an impl
//!   type, a lowercase one a module file stem, a `ytaudit_*`/`crate`
//!   segment narrows to a crate. `std`/`core`/`alloc` paths resolve to
//!   nothing.
//! - **Bare calls** (`f(…)`) resolve to free functions in the same file,
//!   else through imports, else to same-crate free functions.
//! - **Method calls**: `self.f(…)` stays inside the enclosing impl
//!   type; `x.f(…)` dispatches to methods of impl types whose name
//!   correlates with the receiver binding (`client.send` →
//!   `HttpClient::send`, `engine.run` → `SearchEngine::run`), so a std
//!   call like `map.get(…)` or `tx.send(…)` does not alias every
//!   workspace namesake. Chained receivers (`x.lock().f(…)`) are
//!   opaque and resolve to nothing. Dyn-trait dispatch is invisible
//!   here by design — rules that care (evloop-blocking) declare the
//!   concrete handler impls themselves.
//!
//! Test targets and `#[cfg(test)]` regions are excluded from the graph
//! entirely, so a test helper named `handle` never becomes a dispatch
//! target for production rules.

use crate::items::{CallKind, CallSite, FileItems, FnItem, Receiver};
use crate::source::SourceFile;
use crate::workspace::Workspace;
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

/// A function identity: (file index in `ws.files`, fn index in that
/// file's items).
pub type FnId = (usize, usize);

/// The built graph.
pub struct CallGraph<'ws> {
    /// The workspace the graph was built over.
    pub ws: &'ws Workspace,
    /// Per-file extracted items, parallel to `ws.files` (empty for test
    /// targets).
    pub items: Vec<FileItems>,
    /// Every analyzable (non-test) function.
    pub fns: Vec<FnId>,
    /// Resolved callees per analyzable function, parallel to its
    /// `calls` vector.
    targets: HashMap<FnId, Vec<Vec<FnId>>>,
}

/// The result of a forward reachability sweep: which functions were
/// reached and via which call edge (for chain rendering).
pub struct Reach {
    reached: HashSet<FnId>,
    parent: HashMap<FnId, FnId>,
}

impl Reach {
    /// Whether `id` was reached.
    pub fn contains(&self, id: FnId) -> bool {
        self.reached.contains(&id)
    }

    /// All reached functions (unordered).
    pub fn all(&self) -> impl Iterator<Item = FnId> + '_ {
        self.reached.iter().copied()
    }

    /// The call chain from the nearest root to `id` (inclusive).
    pub fn chain_to(&self, id: FnId) -> Vec<FnId> {
        let mut chain = vec![id];
        let mut cur = id;
        while let Some(&p) = self.parent.get(&cur) {
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        chain
    }
}

impl<'ws> CallGraph<'ws> {
    /// Extracts items and resolves every call site in the workspace.
    pub fn build(ws: &'ws Workspace) -> CallGraph<'ws> {
        let items: Vec<FileItems> = ws
            .files
            .iter()
            .map(|f| {
                if f.is_test_target() {
                    FileItems::default()
                } else {
                    FileItems::parse(&f.tokens)
                }
            })
            .collect();

        // Symbol tables: methods (fns with a self type) and free fns.
        let mut methods: HashMap<String, Vec<FnId>> = HashMap::new();
        let mut free: HashMap<String, Vec<FnId>> = HashMap::new();
        let mut fns = Vec::new();
        for (fi, file_items) in items.iter().enumerate() {
            let file = &ws.files[fi];
            for (ni, f) in file_items.fns.iter().enumerate() {
                if file.in_test_code(f.line) {
                    continue;
                }
                fns.push((fi, ni));
                if f.self_type.is_some() {
                    methods.entry(f.name.clone()).or_default().push((fi, ni));
                } else {
                    free.entry(f.name.clone()).or_default().push((fi, ni));
                }
            }
        }

        let mut graph = CallGraph {
            ws,
            items,
            fns,
            targets: HashMap::new(),
        };
        let mut targets = HashMap::new();
        for &id in &graph.fns {
            let item = graph.item(id);
            let resolved: Vec<Vec<FnId>> = item
                .calls
                .iter()
                .map(|call| graph.resolve(id, call, &methods, &free))
                .collect();
            targets.insert(id, resolved);
        }
        graph.targets = targets;
        graph
    }

    /// The source file a function lives in.
    pub fn file(&self, id: FnId) -> &SourceFile {
        &self.ws.files[id.0]
    }

    /// The extracted item for a function.
    pub fn item(&self, id: FnId) -> &FnItem {
        &self.items[id.0].fns[id.1]
    }

    /// Resolved callees per call site, parallel to `item(id).calls`.
    pub fn call_targets(&self, id: FnId) -> &[Vec<FnId>] {
        self.targets.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Human name for chain rendering: `file-stem::fn` or
    /// `file-stem::Type::fn`.
    pub fn display(&self, id: FnId) -> String {
        let stem = std::path::Path::new(&self.file(id).path)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let item = self.item(id);
        match &item.self_type {
            Some(ty) => format!("{stem}::{ty}::{}", item.name),
            None => format!("{stem}::{}", item.name),
        }
    }

    /// Renders a chain of fn ids as display names.
    pub fn display_chain(&self, chain: &[FnId]) -> Vec<String> {
        chain.iter().map(|&id| self.display(id)).collect()
    }

    /// Analyzable functions named `name` in the file at exactly `path`.
    pub fn find_fns(&self, path: &str, name: &str) -> Vec<FnId> {
        self.fns
            .iter()
            .copied()
            .filter(|&id| self.file(id).path == path && self.item(id).name == name)
            .collect()
    }

    /// Forward BFS from `roots` over resolved edges. `filter` can veto
    /// an edge (caller, call site, callee).
    pub fn reach<F>(&self, roots: &[FnId], mut filter: F) -> Reach
    where
        F: FnMut(FnId, &CallSite, FnId) -> bool,
    {
        let mut reached: HashSet<FnId> = roots.iter().copied().collect();
        let mut parent = HashMap::new();
        let mut queue: VecDeque<FnId> = roots.iter().copied().collect();
        while let Some(cur) = queue.pop_front() {
            let calls = &self.item(cur).calls;
            let resolved = self.call_targets(cur);
            for (call, callees) in calls.iter().zip(resolved) {
                for &callee in callees {
                    if !reached.contains(&callee) && filter(cur, call, callee) {
                        reached.insert(callee);
                        parent.insert(callee, cur);
                        queue.push_back(callee);
                    }
                }
            }
        }
        Reach { reached, parent }
    }

    /// The set of functions from which a function satisfying `direct`
    /// is reachable (including those functions themselves) — a reverse
    /// transitive closure.
    pub fn fns_reaching<F>(&self, mut direct: F) -> HashSet<FnId>
    where
        F: FnMut(&CallGraph<'_>, FnId) -> bool,
    {
        let mut set: HashSet<FnId> = self
            .fns
            .iter()
            .copied()
            .filter(|&id| direct(self, id))
            .collect();
        loop {
            let mut changed = false;
            for &id in &self.fns {
                if set.contains(&id) {
                    continue;
                }
                let hits = self
                    .call_targets(id)
                    .iter()
                    .any(|callees| callees.iter().any(|c| set.contains(c)));
                if hits {
                    set.insert(id);
                    changed = true;
                }
            }
            if !changed {
                return set;
            }
        }
    }

    /// For every analyzable function: the set of lock names it acquires
    /// directly or through any resolved callee (fixpoint over cycles).
    pub fn transitive_locks(&self) -> HashMap<FnId, BTreeSet<String>> {
        let mut locks: HashMap<FnId, BTreeSet<String>> = HashMap::new();
        for &id in &self.fns {
            let direct: BTreeSet<String> =
                self.item(id).locks.iter().map(|l| l.name.clone()).collect();
            locks.insert(id, direct);
        }
        loop {
            let mut changed = false;
            for &id in &self.fns {
                let mut add = BTreeSet::new();
                for callees in self.call_targets(id) {
                    for c in callees {
                        if let Some(theirs) = locks.get(c) {
                            for name in theirs {
                                add.insert(name.clone());
                            }
                        }
                    }
                }
                let mine = locks.entry(id).or_default();
                for name in add {
                    if mine.insert(name) {
                        changed = true;
                    }
                }
            }
            if !changed {
                return locks;
            }
        }
    }

    /// Shortest call path from `from` to a function that *directly*
    /// acquires `lock` (inclusive on both ends).
    pub fn path_to_lock(&self, from: FnId, lock: &str) -> Option<Vec<FnId>> {
        let reach = self.reach(&[from], |_, _, _| true);
        let holder = reach
            .all()
            .filter(|&id| self.item(id).locks.iter().any(|l| l.name == lock))
            .min_by_key(|&id| reach.chain_to(id).len())?;
        Some(reach.chain_to(holder))
    }

    /// Resolves one call site to candidate workspace functions.
    fn resolve(
        &self,
        caller: FnId,
        call: &CallSite,
        methods: &HashMap<String, Vec<FnId>>,
        free: &HashMap<String, Vec<FnId>>,
    ) -> Vec<FnId> {
        match &call.kind {
            CallKind::Method { name, receiver } => {
                let caller_type = self.item(caller).self_type.clone();
                match receiver {
                    Receiver::SelfDot => {
                        // `self.f(…)` stays inside the impl type; if the
                        // type has no such method it is a field/trait
                        // call we cannot resolve, not an arbitrary
                        // dispatch.
                        let Some(ty) = caller_type else {
                            return Vec::new();
                        };
                        methods
                            .get(name.as_str())
                            .map(|c| {
                                c.iter()
                                    .copied()
                                    .filter(|&id| {
                                        self.item(id).self_type.as_deref() == Some(ty.as_str())
                                    })
                                    .collect()
                            })
                            .unwrap_or_default()
                    }
                    Receiver::Named(binding) => {
                        // `x.f(…)` dispatches only to impl types whose
                        // name correlates with the binding (`client.send`
                        // → `HttpClient::send`, but `tx.send` → nothing).
                        // Uncorrelated names are almost always std types
                        // (`map.get`, `atomic.load`) whose workspace
                        // namesakes would otherwise flood every chain.
                        methods
                            .get(name.as_str())
                            .map(|c| {
                                c.iter()
                                    .copied()
                                    .filter(|&id| {
                                        self.item(id)
                                            .self_type
                                            .as_deref()
                                            .is_some_and(|ty| correlated(binding, ty))
                                    })
                                    .collect()
                            })
                            .unwrap_or_default()
                    }
                    // A chained-expression receiver (`x.lock().f(…)`,
                    // `iter.map(…)`) is opaque — no dispatch.
                    Receiver::Other => Vec::new(),
                }
            }
            CallKind::Bare { name } => self.resolve_bare(caller, name, methods, free),
            CallKind::Path { segments } => self.resolve_path(caller, segments, methods, free),
        }
    }

    fn resolve_bare(
        &self,
        caller: FnId,
        name: &str,
        methods: &HashMap<String, Vec<FnId>>,
        free: &HashMap<String, Vec<FnId>>,
    ) -> Vec<FnId> {
        let candidates = free.get(name).cloned().unwrap_or_default();
        // Same file wins.
        let same_file: Vec<FnId> = candidates
            .iter()
            .copied()
            .filter(|&id| id.0 == caller.0)
            .collect();
        if !same_file.is_empty() {
            return same_file;
        }
        // An explicit import wins next.
        let imports = &self.items[caller.0].imports;
        if let Some(imp) = imports.iter().find(|i| i.alias == name) {
            let resolved = self.resolve_path(caller, &imp.path, methods, free);
            if !resolved.is_empty() {
                return resolved;
            }
        }
        // Fall back to free fns anywhere in the same crate.
        let crate_name = &self.file(caller).crate_name;
        candidates
            .into_iter()
            .filter(|&id| &self.file(id).crate_name == crate_name)
            .collect()
    }

    fn resolve_path(
        &self,
        caller: FnId,
        segments: &[String],
        methods: &HashMap<String, Vec<FnId>>,
        free: &HashMap<String, Vec<FnId>>,
    ) -> Vec<FnId> {
        // Expand a leading import alias (`faultpoint::should_trip` with
        // `use ytaudit_platform::faultpoint;` in scope).
        let imports = &self.items[caller.0].imports;
        let expanded: Vec<String> = match segments
            .first()
            .and_then(|head| imports.iter().find(|i| &i.alias == head))
        {
            Some(imp) => imp
                .path
                .iter()
                .chain(segments.iter().skip(1))
                .cloned()
                .collect(),
            None => segments.to_vec(),
        };
        let Some((name, qual)) = expanded.split_last() else {
            return Vec::new();
        };
        if qual.is_empty() {
            return self.resolve_bare(caller, name, methods, free);
        }
        // External standard-library paths resolve to nothing.
        if matches!(
            qual.first().map(String::as_str),
            Some("std" | "core" | "alloc")
        ) {
            return Vec::new();
        }
        // Crate scope from `ytaudit_*` or `crate`/`self`/`super`.
        let caller_crate = self.file(caller).crate_name.clone();
        let crate_scope: Option<String> = qual
            .iter()
            .find_map(|s| s.strip_prefix("ytaudit_").map(str::to_string))
            .or_else(|| {
                qual.iter()
                    .any(|s| matches!(s.as_str(), "crate" | "self" | "super"))
                    .then_some(caller_crate.clone())
            });
        // The effective qualifier: last segment that is not a crate ref.
        let effective = qual.iter().rev().find(|s| {
            !matches!(s.as_str(), "crate" | "self" | "super") && !s.starts_with("ytaudit_")
        });

        match effective {
            Some(seg) if seg == "Self" => {
                let Some(ty) = self.item(caller).self_type.clone() else {
                    return Vec::new();
                };
                methods
                    .get(name.as_str())
                    .map(|c| {
                        c.iter()
                            .copied()
                            .filter(|&id| self.item(id).self_type.as_deref() == Some(ty.as_str()))
                            .collect()
                    })
                    .unwrap_or_default()
            }
            Some(seg) if seg.chars().next().is_some_and(char::is_uppercase) => {
                // `Type::assoc(…)`.
                methods
                    .get(name.as_str())
                    .map(|c| {
                        c.iter()
                            .copied()
                            .filter(|&id| self.item(id).self_type.as_deref() == Some(seg.as_str()))
                            .collect()
                    })
                    .unwrap_or_default()
            }
            Some(seg) => {
                // `module::f(…)` — free fns in files with that stem,
                // optionally narrowed to the crate scope.
                let hits: Vec<FnId> = free
                    .get(name.as_str())
                    .map(|c| {
                        c.iter()
                            .copied()
                            .filter(|&id| {
                                let f = self.file(id);
                                let stem = std::path::Path::new(&f.path)
                                    .file_stem()
                                    .map(|s| s.to_string_lossy().into_owned())
                                    .unwrap_or_default();
                                (stem == *seg || (stem == "lib" || stem == "mod"))
                                    && crate_scope.as_ref().is_none_or(|cs| &f.crate_name == cs)
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                hits
            }
            None => {
                // Pure crate qualifier: `ytaudit_store::fsync_dir_of(…)`.
                free.get(name.as_str())
                    .map(|c| {
                        c.iter()
                            .copied()
                            .filter(|&id| {
                                crate_scope
                                    .as_ref()
                                    .is_none_or(|cs| &self.file(id).crate_name == cs)
                            })
                            .collect()
                    })
                    .unwrap_or_default()
            }
        }
    }
}

/// Whether a receiver binding plausibly names a value of type `ty`:
/// `client` ↔ `HttpClient`, `stats` ↔ `PoolStats`, `tenants` ↔
/// `TenantRegistry` — but not `tx` ↔ `HttpClient` or `map` ↔ anything.
/// Compared case-insensitively, with underscores removed and a trailing
/// plural `s` stripped from both sides; the binding matches if it equals
/// the whole type name, is a substring of it (three letters or more), or
/// equals one of its camel-case words.
pub fn correlated(binding: &str, ty: &str) -> bool {
    let recv = binding
        .trim_start_matches("r#")
        .to_ascii_lowercase()
        .replace('_', "");
    let recv = recv.trim_end_matches('s');
    if recv.len() < 2 {
        return false;
    }
    let tylow = ty.to_ascii_lowercase();
    if tylow.trim_end_matches('s') == recv {
        return true;
    }
    if recv.len() >= 3 && tylow.contains(recv) {
        return true;
    }
    camel_words(ty)
        .iter()
        .any(|w| w.trim_end_matches('s') == recv)
}

/// Splits a camel-case type name into lowercase words
/// (`TenantRegistry` → `["tenant", "registry"]`).
fn camel_words(ty: &str) -> Vec<String> {
    let mut words = Vec::new();
    let mut cur = String::new();
    for c in ty.chars() {
        if c.is_uppercase() && !cur.is_empty() {
            words.push(std::mem::take(&mut cur));
        }
        cur.extend(c.to_lowercase());
    }
    if !cur.is_empty() {
        words.push(cur);
    }
    words
}
