//! Diagnostics: the finding type plus human and JSON renderers.
//!
//! Human output is the familiar `path:line:col: rule: message` shape so
//! editors and CI annotations can parse it; JSON output is a stable
//! array-of-objects schema for machine consumption (the CI job uploads
//! it as an artifact).

use std::fmt::Write as _;

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that produced the finding (`panics`, `determinism`, …).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// What is wrong.
    pub message: String,
    /// How to fix or suppress it.
    pub help: Option<String>,
}

impl Diagnostic {
    /// A diagnostic without help text.
    pub fn new(
        rule: &'static str,
        path: &str,
        line: usize,
        col: usize,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            rule,
            path: path.to_string(),
            line,
            col,
            message: message.into(),
            help: None,
        }
    }

    /// Attaches help text.
    pub fn with_help(mut self, help: impl Into<String>) -> Diagnostic {
        self.help = Some(help.into());
        self
    }
}

/// Output format for a check run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// `path:line:col: rule: message` lines plus a summary.
    Human,
    /// A JSON array of finding objects.
    Json,
}

/// Renders diagnostics in the requested format. Diagnostics are sorted
/// by (path, line, col, rule) so output is stable across runs.
pub fn render(diags: &[Diagnostic], format: Format) -> String {
    let mut sorted: Vec<&Diagnostic> = diags.iter().collect();
    sorted.sort_by(|a, b| {
        (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule))
    });
    match format {
        Format::Human => render_human(&sorted),
        Format::Json => render_json(&sorted),
    }
}

fn render_human(diags: &[&Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        let _ = writeln!(out, "{}:{}:{}: {}: {}", d.path, d.line, d.col, d.rule, d.message);
        if let Some(help) = &d.help {
            let _ = writeln!(out, "    help: {help}");
        }
    }
    if diags.is_empty() {
        out.push_str("ytaudit-lint: no violations\n");
    } else {
        let _ = writeln!(
            out,
            "ytaudit-lint: {} violation{} found",
            diags.len(),
            if diags.len() == 1 { "" } else { "s" }
        );
    }
    out
}

fn render_json(diags: &[&Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        let _ = write!(out, "\"rule\": {}", json_str(d.rule));
        let _ = write!(out, ", \"path\": {}", json_str(&d.path));
        let _ = write!(out, ", \"line\": {}", d.line);
        let _ = write!(out, ", \"col\": {}", d.col);
        let _ = write!(out, ", \"message\": {}", json_str(&d.message));
        match &d.help {
            Some(help) => {
                let _ = write!(out, ", \"help\": {}", json_str(help));
            }
            None => {
                out.push_str(", \"help\": null");
            }
        }
        out.push('}');
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Escapes a string as a JSON string literal (std-only, so hand-rolled).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic::new("panics", "b.rs", 3, 9, "`.unwrap()` in library code")
                .with_help("return a typed error"),
            Diagnostic::new("determinism", "a.rs", 1, 1, "wall clock"),
        ]
    }

    #[test]
    fn human_output_is_sorted_and_parseable() {
        let text = render(&sample(), Format::Human);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "a.rs:1:1: determinism: wall clock");
        assert!(lines[1].starts_with("b.rs:3:9: panics:"));
        assert!(text.contains("2 violations found"));
    }

    #[test]
    fn json_output_escapes_and_sorts() {
        let mut diags = sample();
        diags.push(Diagnostic::new("panics", "c.rs", 1, 1, "say \"no\"\nplease"));
        let text = render(&diags, Format::Json);
        assert!(text.starts_with('['));
        assert!(text.contains("\"say \\\"no\\\"\\nplease\""));
        assert!(text.find("a.rs").unwrap() < text.find("b.rs").unwrap());
        assert!(text.contains("\"help\": null"));
    }

    #[test]
    fn empty_run_renders_cleanly() {
        assert!(render(&[], Format::Human).contains("no violations"));
        assert_eq!(render(&[], Format::Json), "[]\n");
    }
}
