//! Diagnostics: the finding type plus human, JSON, and SARIF renderers.
//!
//! Human output is the familiar `path:line:col: rule: message` shape so
//! editors and CI annotations can parse it; JSON output is a stable
//! array-of-objects schema for machine consumption (the CI job uploads
//! it as an artifact); SARIF 2.1.0 output lets CI surface findings as
//! PR-diff annotations. Call-graph rules attach the offending call
//! chain (`evloop::event_loop → tenant::ServeFront::handle → …`), which
//! every renderer includes.

use std::fmt::Write as _;

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that produced the finding (`panics`, `determinism`, …).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// What is wrong.
    pub message: String,
    /// How to fix or suppress it.
    pub help: Option<String>,
    /// For call-graph rules: the call chain from an analysis root to the
    /// finding site (display names, outermost first). Empty for
    /// single-site findings.
    pub chain: Vec<String>,
}

impl Diagnostic {
    /// A diagnostic without help text.
    pub fn new(
        rule: &'static str,
        path: &str,
        line: usize,
        col: usize,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            rule,
            path: path.to_string(),
            line,
            col,
            message: message.into(),
            help: None,
            chain: Vec::new(),
        }
    }

    /// Attaches help text.
    pub fn with_help(mut self, help: impl Into<String>) -> Diagnostic {
        self.help = Some(help.into());
        self
    }

    /// Attaches a call chain (outermost first).
    pub fn with_chain(mut self, chain: Vec<String>) -> Diagnostic {
        self.chain = chain;
        self
    }
}

/// Output format for a check run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// `path:line:col: rule: message` lines plus a summary.
    Human,
    /// A JSON array of finding objects.
    Json,
    /// SARIF 2.1.0, for CI code-scanning annotations.
    Sarif,
}

/// Renders diagnostics in the requested format. Diagnostics are sorted
/// by (path, line, col, rule) so output is stable across runs.
pub fn render(diags: &[Diagnostic], format: Format) -> String {
    let mut sorted: Vec<&Diagnostic> = diags.iter().collect();
    sorted.sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    match format {
        Format::Human => render_human(&sorted),
        Format::Json => render_json(&sorted),
        Format::Sarif => render_sarif(&sorted),
    }
}

fn render_human(diags: &[&Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        let _ = writeln!(
            out,
            "{}:{}:{}: {}: {}",
            d.path, d.line, d.col, d.rule, d.message
        );
        if !d.chain.is_empty() {
            let _ = writeln!(out, "    chain: {}", d.chain.join(" → "));
        }
        if let Some(help) = &d.help {
            let _ = writeln!(out, "    help: {help}");
        }
    }
    if diags.is_empty() {
        out.push_str("ytaudit-lint: no violations\n");
    } else {
        let _ = writeln!(
            out,
            "ytaudit-lint: {} violation{} found",
            diags.len(),
            if diags.len() == 1 { "" } else { "s" }
        );
    }
    out
}

fn render_json(diags: &[&Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        let _ = write!(out, "\"rule\": {}", json_str(d.rule));
        let _ = write!(out, ", \"path\": {}", json_str(&d.path));
        let _ = write!(out, ", \"line\": {}", d.line);
        let _ = write!(out, ", \"col\": {}", d.col);
        let _ = write!(out, ", \"message\": {}", json_str(&d.message));
        match &d.help {
            Some(help) => {
                let _ = write!(out, ", \"help\": {}", json_str(help));
            }
            None => {
                out.push_str(", \"help\": null");
            }
        }
        let _ = write!(out, ", \"chain\": {}", json_array(&d.chain));
        out.push('}');
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Renders a minimal SARIF 2.1.0 log: one run, the rule catalogue as the
/// tool's rule metadata, one result per finding. The call chain and help
/// text are folded into the result message (SARIF code-flow objects are
/// heavier than CI annotation consumers need).
fn render_sarif(diags: &[&Diagnostic]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"ytaudit-lint\",\n");
    out.push_str("          \"informationUri\": \"https://github.com/ytaudit/ytaudit\",\n");
    out.push_str("          \"rules\": [\n");
    let mut catalogue: Vec<(String, String)> = crate::rules::all_rules()
        .iter()
        .map(|r| (r.name().to_string(), r.description().to_string()))
        .collect();
    catalogue.push((
        crate::ALLOW_HYGIENE.to_string(),
        "every ytlint allow directive has a reason, a known rule, and a live violation".to_string(),
    ));
    for (i, (id, desc)) in catalogue.iter().enumerate() {
        let _ = writeln!(
            out,
            "            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}{}",
            json_str(id),
            json_str(desc),
            if i + 1 < catalogue.len() { "," } else { "" }
        );
    }
    out.push_str("          ]\n        }\n      },\n      \"results\": [\n");
    for (i, d) in diags.iter().enumerate() {
        let mut text = d.message.clone();
        if !d.chain.is_empty() {
            text.push_str("\nchain: ");
            text.push_str(&d.chain.join(" → "));
        }
        if let Some(help) = &d.help {
            text.push_str("\nhelp: ");
            text.push_str(help);
        }
        let _ = writeln!(
            out,
            "        {{\"ruleId\": {}, \"level\": \"error\", \"message\": {{\"text\": {}}}, \
             \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}, \
             \"region\": {{\"startLine\": {}, \"startColumn\": {}}}}}}}]}}{}",
            json_str(d.rule),
            json_str(&text),
            json_str(&d.path),
            d.line,
            d.col,
            if i + 1 < diags.len() { "," } else { "" }
        );
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

/// Renders a JSON array of strings.
fn json_array(items: &[String]) -> String {
    let mut out = String::from("[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&json_str(item));
    }
    out.push(']');
    out
}

/// Escapes a string as a JSON string literal (std-only, so hand-rolled).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic::new("panics", "b.rs", 3, 9, "`.unwrap()` in library code")
                .with_help("return a typed error"),
            Diagnostic::new("determinism", "a.rs", 1, 1, "wall clock"),
        ]
    }

    #[test]
    fn human_output_is_sorted_and_parseable() {
        let text = render(&sample(), Format::Human);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "a.rs:1:1: determinism: wall clock");
        assert!(lines[1].starts_with("b.rs:3:9: panics:"));
        assert!(text.contains("2 violations found"));
    }

    #[test]
    fn json_output_escapes_and_sorts() {
        let mut diags = sample();
        diags.push(Diagnostic::new(
            "panics",
            "c.rs",
            1,
            1,
            "say \"no\"\nplease",
        ));
        let text = render(&diags, Format::Json);
        assert!(text.starts_with('['));
        assert!(text.contains("\"say \\\"no\\\"\\nplease\""));
        assert!(text.find("a.rs").unwrap() < text.find("b.rs").unwrap());
        assert!(text.contains("\"help\": null"));
    }

    #[test]
    fn empty_run_renders_cleanly() {
        assert!(render(&[], Format::Human).contains("no violations"));
        assert_eq!(render(&[], Format::Json), "[]\n");
    }

    #[test]
    fn chains_render_in_every_format() {
        let diags = vec![
            Diagnostic::new("evloop-blocking", "a.rs", 4, 2, "blocks").with_chain(vec![
                "evloop::event_loop".into(),
                "tenant::ServeFront::handle".into(),
            ]),
        ];
        let human = render(&diags, Format::Human);
        assert!(
            human.contains("chain: evloop::event_loop → tenant::ServeFront::handle"),
            "{human}"
        );
        let json = render(&diags, Format::Json);
        assert!(
            json.contains("\"chain\": [\"evloop::event_loop\", \"tenant::ServeFront::handle\"]"),
            "{json}"
        );
        let sarif = render(&diags, Format::Sarif);
        assert!(sarif.contains("chain: evloop::event_loop"), "{sarif}");
    }

    #[test]
    fn sarif_output_has_schema_rules_and_located_results() {
        let text = render(&sample(), Format::Sarif);
        assert!(text.contains("\"version\": \"2.1.0\""));
        assert!(text.contains("sarif-2.1.0.json"));
        // Every registered rule appears in the driver catalogue.
        for rule in crate::rules::rule_names() {
            assert!(
                text.contains(&format!("\"id\": \"{rule}\"")),
                "missing {rule}"
            );
        }
        assert!(text.contains(&format!("\"id\": \"{}\"", crate::ALLOW_HYGIENE)));
        // Results carry rule, path, and position.
        assert!(text.contains("\"ruleId\": \"determinism\""));
        assert!(text.contains("\"uri\": \"a.rs\""));
        assert!(text.contains("\"startLine\": 1"));
        // Sorted: a.rs's result precedes b.rs's.
        assert!(text.find("a.rs").unwrap() < text.find("b.rs").unwrap());
    }

    #[test]
    fn sarif_with_no_findings_is_still_a_valid_log() {
        let text = render(&[], Format::Sarif);
        assert!(text.contains("\"results\": [\n      ]"), "{text}");
    }
}
