//! One lintable source file: its token stream, comments, `#[cfg(test)]`
//! regions, and `ytlint: allow` suppression directives.

use crate::lex::{lex, Comment, Lexed, Token, TokenKind};
use std::cell::Cell;

/// What kind of build target a file belongs to. Rules use this to scope
/// themselves (e.g. panic-freedom applies to library and binary code but
/// not to tests, benches, or examples).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetKind {
    /// Part of a crate's library (`src/**` excluding `src/bin`).
    Lib,
    /// A binary (`src/main.rs`, `src/bin/**`).
    Bin,
    /// Integration tests (`tests/**`).
    Test,
    /// Benchmarks (`benches/**`).
    Bench,
    /// Examples (`examples/**`).
    Example,
}

/// One `// ytlint: allow(rule, …) — reason` directive (or its
/// file-scope form `allow-file`, which covers the whole file).
#[derive(Debug)]
pub struct Allow {
    /// The rules this directive suppresses.
    pub rules: Vec<String>,
    /// Whether the directive covers the whole file (`allow-file`).
    pub file_scope: bool,
    /// The line the directive applies to (its own line for trailing
    /// comments, the next code line for standalone ones). Unused for
    /// file-scope directives.
    pub target_line: usize,
    /// The line the directive itself is written on (for diagnostics).
    pub directive_line: usize,
    /// Justification text after the rule list; `None` when missing.
    pub reason: Option<String>,
    /// Set when a diagnostic was actually suppressed by this directive.
    pub used: Cell<bool>,
}

/// A parsed, classified source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Name of the owning crate (directory under `crates/`, or the
    /// workspace package name for root `src/`).
    pub crate_name: String,
    /// Which target the file belongs to.
    pub target: TargetKind,
    /// Non-comment tokens.
    pub tokens: Vec<Token>,
    /// Comments (directives are parsed out of these).
    pub comments: Vec<Comment>,
    /// Suppression directives.
    pub allows: Vec<Allow>,
    /// Line ranges (inclusive) covered by `#[cfg(test)]` items and
    /// `#[test]` functions.
    pub test_spans: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Parses `text` as the file at `path` belonging to `crate_name`.
    pub fn parse(path: &str, crate_name: &str, target: TargetKind, text: &str) -> SourceFile {
        let Lexed { tokens, comments } = lex(text);
        let test_spans = find_test_spans(&tokens);
        let allows = parse_allows(&comments, &tokens);
        SourceFile {
            path: path.to_string(),
            crate_name: crate_name.to_string(),
            target,
            tokens,
            comments,
            allows,
            test_spans,
        }
    }

    /// Whether `line` falls inside test code (`#[cfg(test)]` modules or
    /// `#[test]` functions).
    pub fn in_test_code(&self, line: usize) -> bool {
        self.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// Whether the whole file is test-only (integration tests, benches,
    /// examples).
    pub fn is_test_target(&self) -> bool {
        matches!(self.target, TargetKind::Test | TargetKind::Bench | TargetKind::Example)
    }

    /// Checks directives for a suppression of `rule` covering `line`,
    /// marking the match used.
    pub fn suppressed(&self, rule: &str, line: usize) -> bool {
        for allow in &self.allows {
            if (allow.file_scope || allow.target_line == line)
                && allow.rules.iter().any(|r| r == rule)
            {
                allow.used.set(true);
                return true;
            }
        }
        false
    }
}

/// Finds line spans of `#[cfg(test)]`-gated items and `#[test]`
/// functions by matching the brace block that follows the attribute.
fn find_test_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some(attr_len) = test_attribute_len(&tokens[i..]) {
            let start_line = tokens[i].line;
            // Find the opening brace of the item the attribute gates,
            // then its matching close.
            let mut j = i + attr_len;
            // Skip any further attributes (`#[test] #[ignore] fn …`).
            while j < tokens.len() {
                if tokens[j].kind == TokenKind::Punct && tokens[j].text == "#" {
                    j += skip_attribute(&tokens[j..]);
                } else {
                    break;
                }
            }
            let mut depth = 0usize;
            let mut end_line = start_line;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.kind == TokenKind::Punct {
                    match t.text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth = depth.saturating_sub(1);
                            if depth == 0 {
                                end_line = t.line;
                                break;
                            }
                        }
                        ";" if depth == 0 => {
                            // Braceless item (`#[cfg(test)] use …;`).
                            end_line = t.line;
                            break;
                        }
                        _ => {}
                    }
                }
                end_line = t.line;
                j += 1;
            }
            spans.push((start_line, end_line));
            i = j.max(i + attr_len);
        }
        i += 1;
    }
    spans
}

/// If `tokens` starts with `#[cfg(test)]` or `#[test]`, returns the
/// token length of that attribute.
fn test_attribute_len(tokens: &[Token]) -> Option<usize> {
    let texts: Vec<&str> = tokens
        .iter()
        .take(8)
        .map(|t| t.text.as_str())
        .collect();
    match texts.as_slice() {
        ["#", "[", "cfg", "(", "test", ")", "]", ..] => Some(7),
        ["#", "[", "test", "]", ..] => Some(4),
        _ => None,
    }
}

/// Returns the token length of an attribute starting at `tokens[0]`
/// (which must be `#`).
fn skip_attribute(tokens: &[Token]) -> usize {
    let mut depth = 0usize;
    for (idx, t) in tokens.iter().enumerate() {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return idx + 1;
                    }
                }
                _ => {}
            }
        }
    }
    tokens.len()
}

/// The directive prefix inside a comment.
const DIRECTIVE: &str = "ytlint:";

/// Parses `ytlint: allow(rule, …) — reason` directives out of comments.
/// A trailing comment targets its own line; a standalone comment targets
/// the next line that has code.
fn parse_allows(comments: &[Comment], tokens: &[Token]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for comment in comments {
        let body = comment
            .text
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim();
        let Some(rest) = body.strip_prefix(DIRECTIVE) else {
            continue;
        };
        let rest = rest.trim_start();
        // Verbs: `allow-file` (whole file) and `allow` (one line).
        // Unknown verbs become a malformed directive (reason: None,
        // rules: empty) so the engine reports them instead of silently
        // ignoring them. `allow-file` is checked first because `allow`
        // is its prefix.
        let (file_scope, args) = match rest.strip_prefix("allow-file") {
            Some(after) => (true, Some(after)),
            None => (false, rest.strip_prefix("allow")),
        };
        let (rules, reason) = match args {
            Some(after) => parse_allow_args(after),
            None => (Vec::new(), None),
        };
        let target_line = if comment.trailing {
            comment.line
        } else {
            next_code_line(tokens, comment.line).unwrap_or(comment.line)
        };
        allows.push(Allow {
            rules,
            file_scope,
            target_line,
            directive_line: comment.line,
            reason,
            used: Cell::new(false),
        });
    }
    allows
}

/// Parses `(rule, …) — reason` after the `allow` verb.
fn parse_allow_args(after: &str) -> (Vec<String>, Option<String>) {
    let after = after.trim_start();
    let Some(open) = after.strip_prefix('(') else {
        return (Vec::new(), None);
    };
    let Some(close) = open.find(')') else {
        return (Vec::new(), None);
    };
    let rules: Vec<String> = open[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    let tail = open[close + 1..].trim();
    // Accept `— reason`, `-- reason`, `- reason`, or `: reason`.
    let reason = tail
        .strip_prefix('—')
        .or_else(|| tail.strip_prefix("--"))
        .or_else(|| tail.strip_prefix('-'))
        .or_else(|| tail.strip_prefix(':'))
        .map(str::trim)
        .filter(|r| !r.is_empty())
        .map(str::to_string);
    (rules, reason)
}

/// The first line at or after `line + 1` that holds a token.
fn next_code_line(tokens: &[Token], line: usize) -> Option<usize> {
    tokens.iter().map(|t| t.line).find(|&l| l > line)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse("crates/x/src/lib.rs", "x", TargetKind::Lib, src)
    }

    #[test]
    fn cfg_test_module_span_covers_the_block() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let f = file(src);
        assert!(!f.in_test_code(1));
        assert!(f.in_test_code(2));
        assert!(f.in_test_code(4));
        assert!(f.in_test_code(5));
        assert!(!f.in_test_code(6));
    }

    #[test]
    fn bare_test_fn_span() {
        let src = "fn a() {}\n#[test]\nfn t() {\n    boom();\n}\nfn z() {}\n";
        let f = file(src);
        assert!(!f.in_test_code(1));
        assert!(f.in_test_code(4));
        assert!(!f.in_test_code(6));
    }

    #[test]
    fn trailing_allow_targets_its_own_line() {
        let src = "let x = v.unwrap(); // ytlint: allow(panics) — length checked above\n";
        let f = file(src);
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].target_line, 1);
        assert_eq!(f.allows[0].rules, vec!["panics"]);
        assert!(f.allows[0].reason.is_some());
        assert!(f.suppressed("panics", 1));
        assert!(!f.suppressed("determinism", 1));
    }

    #[test]
    fn standalone_allow_targets_next_code_line() {
        let src = "// ytlint: allow(determinism) — wall-clock metrics only\nlet t = now();\n";
        let f = file(src);
        assert_eq!(f.allows[0].target_line, 2);
        assert!(f.suppressed("determinism", 2));
    }

    #[test]
    fn missing_reason_is_preserved_as_none() {
        let f = file("x(); // ytlint: allow(panics)\n");
        assert_eq!(f.allows[0].reason, None);
        // Suppression still works; hygiene reporting is the engine's job.
        assert!(f.suppressed("panics", 1));
    }

    #[test]
    fn multiple_rules_in_one_directive() {
        let f = file("y(); // ytlint: allow(panics, determinism) -- both fine here\n");
        assert!(f.suppressed("panics", 1));
        assert!(f.suppressed("determinism", 1));
        assert!(f.allows[0].reason.is_some());
    }

    #[test]
    fn allow_file_covers_every_line() {
        let src = "// ytlint: allow-file(indexing) — fixed-size kernel\n\
                   fn a(c: &[f64; 3]) -> f64 { c[0] }\n\
                   fn b(c: &[f64; 3]) -> f64 { c[2] }\n";
        let f = file(src);
        assert!(f.allows[0].file_scope);
        assert!(f.suppressed("indexing", 2));
        assert!(f.suppressed("indexing", 3));
        assert!(!f.suppressed("panics", 2));
    }

    #[test]
    fn used_flag_tracks_suppressions() {
        let f = file("z(); // ytlint: allow(panics) — reason\n");
        assert!(!f.allows[0].used.get());
        f.suppressed("panics", 1);
        assert!(f.allows[0].used.get());
    }
}
