//! Workspace discovery: finds every Rust source file the rules should
//! see, classifies it by crate and target kind, and parses it once.
//!
//! Discovery is path-convention based (`crates/*/src`, `crates/*/tests`,
//! root `src`, `tests`, `examples`) rather than driven by Cargo metadata,
//! so the linter works without Cargo and without network access.

use crate::source::{SourceFile, TargetKind};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose *library and binary* code is exempt from the
/// panic-freedom rule: offline report generators whose process-level
/// panics cannot corrupt a collection. Kept here (not in per-file
/// annotations) so the exemption is visible in one place and documented
/// in DESIGN.md.
pub const PANIC_EXEMPT_CRATES: &[&str] = &["bench"];

/// A parsed workspace.
#[derive(Debug)]
pub struct Workspace {
    /// All discovered files, parsed.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Loads the workspace rooted at `root` from disk. A root that does
    /// not exist or contains no Rust sources is an error, not a clean
    /// result — otherwise a typo'd `--root` would report green in CI.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        if !root.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("workspace root {} is not a directory", root.display()),
            ));
        }
        let mut files = Vec::new();
        // Member crates: crates/<name>/{src,tests,benches,examples}.
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            let mut names: Vec<PathBuf> = fs::read_dir(&crates_dir)?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.is_dir())
                .collect();
            names.sort();
            for krate in names {
                let crate_name = krate
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                collect_crate_files(root, &krate, &crate_name, &mut files)?;
            }
        }
        // The root package.
        collect_crate_files(root, root, "ytaudit", &mut files)?;
        if files.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("no Rust sources found under {}", root.display()),
            ));
        }
        files.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(Workspace { files })
    }

    /// Builds a workspace from in-memory `(path, text)` pairs — the
    /// fixture-test entry point. Paths use the same conventions as
    /// on-disk discovery (`crates/<name>/src/…`).
    pub fn from_files(files: &[(&str, &str)]) -> Workspace {
        let mut parsed = Vec::new();
        for (path, text) in files {
            let (crate_name, target) = classify(path);
            parsed.push(SourceFile::parse(path, &crate_name, target, text));
        }
        parsed.sort_by(|a, b| a.path.cmp(&b.path));
        Workspace { files: parsed }
    }

    /// The file at exactly `path`, if discovered.
    pub fn file(&self, path: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.path == path)
    }
}

/// Classifies a workspace-relative path into (crate name, target kind).
fn classify(path: &str) -> (String, TargetKind) {
    let crate_name = path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("ytaudit")
        .to_string();
    let in_crate = path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split_once('/'))
        .map_or(path, |(_, rest)| rest);
    let target = if in_crate.starts_with("tests/") {
        TargetKind::Test
    } else if in_crate.starts_with("benches/") {
        TargetKind::Bench
    } else if in_crate.starts_with("examples/") {
        TargetKind::Example
    } else if in_crate.starts_with("src/bin/") || in_crate == "src/main.rs" {
        TargetKind::Bin
    } else {
        TargetKind::Lib
    };
    (crate_name, target)
}

/// Walks one package directory for lintable files.
fn collect_crate_files(
    root: &Path,
    package: &Path,
    crate_name: &str,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    for sub in ["src", "tests", "benches", "examples"] {
        let dir = package.join(sub);
        if dir.is_dir() {
            walk(root, &dir, crate_name, out)?;
        }
    }
    Ok(())
}

fn walk(root: &Path, dir: &Path, crate_name: &str, out: &mut Vec<SourceFile>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            walk(root, &entry, crate_name, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            let rel = entry
                .strip_prefix(root)
                .unwrap_or(&entry)
                .to_string_lossy()
                .replace('\\', "/");
            // Root-package discovery would otherwise re-walk crates/*.
            if out.iter().any(|f| f.path == rel) {
                continue;
            }
            let (_, target) = classify(&rel);
            let text = fs::read_to_string(&entry)?;
            out.push(SourceFile::parse(&rel, crate_name, target, &text));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_follows_path_conventions() {
        assert_eq!(classify("crates/net/src/url.rs").1, TargetKind::Lib);
        assert_eq!(classify("crates/net/src/url.rs").0, "net");
        assert_eq!(classify("crates/cli/src/main.rs").1, TargetKind::Bin);
        assert_eq!(classify("crates/bench/src/bin/repro.rs").1, TargetKind::Bin);
        assert_eq!(classify("crates/types/tests/proptests.rs").1, TargetKind::Test);
        assert_eq!(classify("crates/bench/benches/sched.rs").1, TargetKind::Bench);
        assert_eq!(classify("examples/quickstart.rs").1, TargetKind::Example);
        assert_eq!(classify("src/lib.rs").1, TargetKind::Lib);
        assert_eq!(classify("src/lib.rs").0, "ytaudit");
        assert_eq!(classify("tests/audit_pipeline.rs").1, TargetKind::Test);
    }

    #[test]
    fn loading_a_missing_or_sourceless_root_is_an_error() {
        assert!(Workspace::load(Path::new("/nonexistent-ytlint-root")).is_err());
        let empty = std::env::temp_dir().join(format!("ytlint-empty-{}", std::process::id()));
        fs::create_dir_all(&empty).unwrap();
        assert!(Workspace::load(&empty).is_err());
        let _ = fs::remove_dir_all(&empty);
    }

    #[test]
    fn from_files_builds_a_queryable_workspace() {
        let ws = Workspace::from_files(&[
            ("crates/x/src/lib.rs", "pub fn f() {}"),
            ("crates/x/tests/t.rs", "fn t() {}"),
        ]);
        assert_eq!(ws.files.len(), 2);
        assert!(ws.file("crates/x/src/lib.rs").is_some());
        assert_eq!(ws.file("crates/x/tests/t.rs").map(|f| f.target), Some(TargetKind::Test));
    }
}
