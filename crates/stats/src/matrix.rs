//! A small dense-matrix type with LU and Cholesky solvers — just enough
//! linear algebra for regression fitting (normal equations, covariance
//! sandwiches, Newton steps).

use crate::{Result, StatsError};
use std::ops::{Index, IndexMut};

/// A dense, row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from nested row slices; rows must be equal length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Matrix> {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        if rows.iter().any(|row| row.len() != c) {
            return Err(StatsError::InvalidInput("ragged rows".into()));
        }
        Ok(Matrix {
            rows: r,
            cols: c,
            data: rows.iter().flatten().copied().collect(),
        })
    }

    /// Builds a column vector.
    pub fn col_vector(values: &[f64]) -> Matrix {
        Matrix {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Matrix product `self · other`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(StatsError::InvalidInput(format!(
                "cannot multiply {}x{} by {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(StatsError::InvalidInput(format!(
                "cannot multiply {}x{} by vector of {}",
                self.rows,
                self.cols,
                v.len()
            )));
        }
        Ok((0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// `Xᵀ X` — the Gram matrix used in normal equations, computed without
    /// materializing the transpose.
    pub fn gram(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.rows {
            let row = self.row(i);
            for a in 0..self.cols {
                let ra = row[a];
                if ra == 0.0 {
                    continue;
                }
                for b in a..self.cols {
                    out[(a, b)] += ra * row[b];
                }
            }
        }
        for a in 0..self.cols {
            for b in 0..a {
                out[(a, b)] = out[(b, a)];
            }
        }
        out
    }

    /// LU decomposition with partial pivoting; returns (LU, perm, sign).
    fn lu(&self) -> Result<(Matrix, Vec<usize>, f64)> {
        if self.rows != self.cols {
            return Err(StatsError::InvalidInput("LU requires a square matrix".into()));
        }
        let n = self.rows;
        let mut lu = self.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for col in 0..n {
            // Pivot: largest absolute value in the column at or below the
            // diagonal.
            let mut pivot_row = col;
            let mut pivot_val = lu[(col, col)].abs();
            for row in col + 1..n {
                let v = lu[(row, col)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = row;
                }
            }
            if pivot_val < 1e-300 {
                return Err(StatsError::Numeric("singular matrix in LU".into()));
            }
            if pivot_row != col {
                for j in 0..n {
                    let tmp = lu[(col, j)];
                    lu[(col, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(col, pivot_row);
                sign = -sign;
            }
            let pivot = lu[(col, col)];
            for row in col + 1..n {
                let factor = lu[(row, col)] / pivot;
                lu[(row, col)] = factor;
                for j in col + 1..n {
                    let sub = factor * lu[(col, j)];
                    lu[(row, j)] -= sub;
                }
            }
        }
        Ok((lu, perm, sign))
    }

    /// Solves `self · x = b` via LU with partial pivoting.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.rows {
            return Err(StatsError::InvalidInput("rhs length mismatch".into()));
        }
        let (lu, perm, _) = self.lu()?;
        let n = self.rows;
        // Forward substitution on the permuted rhs.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut acc = b[perm[i]];
            for j in 0..i {
                acc -= lu[(i, j)] * y[j];
            }
            y[i] = acc;
        }
        // Back substitution.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in i + 1..n {
                acc -= lu[(i, j)] * x[j];
            }
            x[i] = acc / lu[(i, i)];
        }
        Ok(x)
    }

    /// The matrix inverse via LU (column-by-column solve).
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.rows;
        if self.rows != self.cols {
            return Err(StatsError::InvalidInput("inverse requires a square matrix".into()));
        }
        let mut out = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for col in 0..n {
            e[col] = 1.0;
            let x = self.solve(&e)?;
            for row in 0..n {
                out[(row, col)] = x[row];
            }
            e[col] = 0.0;
        }
        Ok(out)
    }

    /// Determinant via LU.
    pub fn det(&self) -> Result<f64> {
        let (lu, _, sign) = self.lu()?;
        let mut det = sign;
        for i in 0..self.rows {
            det *= lu[(i, i)];
        }
        Ok(det)
    }

    /// Cholesky factor L (lower-triangular, `self = L Lᵀ`). Fails if the
    /// matrix is not symmetric positive-definite.
    pub fn cholesky(&self) -> Result<Matrix> {
        if self.rows != self.cols {
            return Err(StatsError::InvalidInput("Cholesky requires a square matrix".into()));
        }
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(StatsError::Numeric(
                            "matrix is not positive definite".into(),
                        ));
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(l)
    }

    /// Solves `self · x = b` for SPD `self` via Cholesky.
    pub fn solve_spd(&self, b: &[f64]) -> Result<Vec<f64>> {
        let l = self.cholesky()?;
        let n = self.rows;
        if b.len() != n {
            return Err(StatsError::InvalidInput("rhs length mismatch".into()));
        }
        // L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut acc = b[i];
            for j in 0..i {
                acc -= l[(i, j)] * y[j];
            }
            y[i] = acc / l[(i, i)];
        }
        // Lᵀ x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in i + 1..n {
                acc -= l[(j, i)] * x[j];
            }
            x[i] = acc / l[(i, i)];
        }
        Ok(x)
    }

    /// Adds `lambda` to every diagonal entry (ridge regularization used to
    /// rescue near-singular Newton steps).
    pub fn add_ridge(&mut self, lambda: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += lambda;
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_vec_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
        assert!(a.matmul(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn transpose_and_gram_agree() {
        let x = Matrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
        ])
        .unwrap();
        let explicit = x.transpose().matmul(&x).unwrap();
        assert_eq!(x.gram(), explicit);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5; x + 3y = 10 → x = 1, y = 3.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let x = a.solve(&[5.0, 10.0]).unwrap();
        assert_vec_close(&x, &[1.0, 3.0], 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert_vec_close(&x, &[3.0, 2.0], 1e-12);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert!(matches!(a.solve(&[1.0, 2.0]), Err(StatsError::Numeric(_))));
        assert!(a.inverse().is_err());
    }

    #[test]
    fn inverse_times_self_is_identity() {
        let a = Matrix::from_rows(&[
            vec![4.0, 2.0, 0.5],
            vec![2.0, 5.0, 1.0],
            vec![0.5, 1.0, 3.0],
        ])
        .unwrap();
        let inv = a.inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn det_known_values() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert!((a.det().unwrap() - (-2.0)).abs() < 1e-12);
        assert!((Matrix::identity(5).det().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cholesky_round_trip() {
        let a = Matrix::from_rows(&[
            vec![4.0, 2.0, 0.5],
            vec![2.0, 5.0, 1.0],
            vec![0.5, 1.0, 3.0],
        ])
        .unwrap();
        let l = a.cholesky().unwrap();
        let back = l.matmul(&l.transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((back[(i, j)] - a[(i, j)]).abs() < 1e-12);
            }
        }
        // SPD solve agrees with LU solve.
        let b = [1.0, -2.0, 0.5];
        assert_vec_close(&a.solve_spd(&b).unwrap(), &a.solve(&b).unwrap(), 1e-10);
    }

    #[test]
    fn cholesky_rejects_non_pd() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap();
        assert!(a.cholesky().is_err());
    }

    #[test]
    fn matvec_works() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_vec_close(&a.matvec(&[1.0, 1.0]).unwrap(), &[3.0, 7.0], 1e-15);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn ridge_shifts_diagonal() {
        let mut a = Matrix::identity(3);
        a.add_ridge(0.5);
        assert_eq!(a[(0, 0)], 1.5);
        assert_eq!(a[(1, 1)], 1.5);
        assert_eq!(a[(0, 1)], 0.0);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }
}
