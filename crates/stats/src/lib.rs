//! # ytaudit-stats
//!
//! The statistics the audit needs, implemented from scratch (no external
//! numerical dependencies):
//!
//! * [`special`] — log-gamma, error function, regularized incomplete gamma
//!   and beta, and the normal / t / χ² / F distribution functions built on
//!   them;
//! * [`matrix`] — a small dense-matrix type with LU and Cholesky solvers;
//! * [`descriptive`] — means, standard deviations, modes, quantiles,
//!   log-transforms and z-standardization;
//! * [`sets`] — Jaccard similarity and set differences over ID sets
//!   (Figure 1's workhorse);
//! * [`rank`] — mid-rank ranking, Spearman's ρ with p-values (Table 2),
//!   and Pearson's r;
//! * [`ols`] — multiple linear regression with classical and HC1 robust
//!   standard errors (Table 6);
//! * [`ordinal`] — proportional-odds cumulative-link models with logit and
//!   complementary log-log links, fit by Newton–Raphson (Tables 3 and 7);
//! * [`markov`] — first- and second-order Markov chain estimation over
//!   presence/absence sequences (Figure 3);
//! * [`timeseries`] — autocorrelation, periodicity detection, and the
//!   Ljung–Box test (the §6.2 periodicity extension).
//!
//! Every routine is validated in unit tests against hand-computed values or
//! fixtures generated with R/statsmodels (see the test modules).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod descriptive;
pub mod markov;
pub mod matrix;
pub mod ols;
pub mod ordinal;
pub mod rank;
pub mod sets;
pub mod special;
pub mod timeseries;

pub use descriptive::{describe, log1p_transform, standardize, Description, Moments};
pub use markov::{MarkovChain2, PresenceAccumulator, State2};
pub use matrix::Matrix;
pub use ols::{OlsAccumulator, OlsFit, OlsOptions};
pub use ordinal::{Link, ObservationSet, OrdinalFit, OrdinalModel};
pub use rank::{pearson, spearman, Correlation};
pub use sets::{jaccard, set_differences, OverlapAccumulator, OverlapStep};

/// Errors from numerical routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsError {
    /// Inputs had mismatched or insufficient dimensions.
    InvalidInput(String),
    /// A matrix was singular or a fit failed to converge.
    Numeric(String),
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::InvalidInput(m) => write!(f, "invalid input: {m}"),
            StatsError::Numeric(m) => write!(f, "numeric error: {m}"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Result alias for this crate.
pub type Result<T, E = StatsError> = std::result::Result<T, E>;
