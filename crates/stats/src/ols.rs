//! Ordinary least squares with classical and HC1 (heteroskedasticity-
//! robust) standard errors — the model behind the paper's Table 6, where
//! return frequency is regressed on video/channel features "with robust
//! standard errors".

use crate::matrix::Matrix;
use crate::special::{f_sf, t_p_two_sided};
use crate::{Result, StatsError};
use serde::{Deserialize, Serialize};

/// One-pass sufficient statistics for least squares: the accumulator
/// folds `(x-row, y)` observations into running `X'X` (upper triangle)
/// and `X'y`, so the normal equations can be solved without ever holding
/// more than `O(p²)` state. [`OlsFit::fit`] is implemented on top of it,
/// and independent accumulators over disjoint observation shards can be
/// [`OlsAccumulator::merge`]d before solving.
#[derive(Debug, Clone, PartialEq)]
pub struct OlsAccumulator {
    p: usize,
    n: u64,
    /// Upper triangle of X'X; the lower triangle is mirrored on demand in
    /// [`OlsAccumulator::xtx`], matching `Matrix::gram`'s fill order so
    /// the batch and streaming paths agree bit-for-bit.
    xtx_upper: Matrix,
    xty: Vec<f64>,
}

impl OlsAccumulator {
    /// An empty accumulator over `p` design columns.
    pub fn new(p: usize) -> OlsAccumulator {
        OlsAccumulator {
            p,
            n: 0,
            xtx_upper: Matrix::zeros(p, p),
            xty: vec![0.0; p],
        }
    }

    /// Folds one observation (a full design row including any intercept
    /// column, plus its response).
    pub fn fold(&mut self, row: &[f64], y: f64) -> Result<()> {
        if row.len() != self.p {
            return Err(StatsError::InvalidInput(format!(
                "design row has {} columns, accumulator expects {}",
                row.len(),
                self.p
            )));
        }
        // Same traversal (and zero-skip) as Matrix::gram so folding rows
        // one at a time reproduces the batch Gram matrix exactly.
        for a in 0..self.p {
            let ra = row[a];
            if ra == 0.0 {
                continue;
            }
            for (b, &rb) in row.iter().enumerate().skip(a) {
                self.xtx_upper[(a, b)] += ra * rb;
            }
        }
        for (j, &rj) in row.iter().enumerate() {
            self.xty[j] += rj * y;
        }
        self.n += 1;
        Ok(())
    }

    /// Merges another accumulator over the same design width (entrywise
    /// sums — exact for counts, reassociation-only error for floats).
    pub fn merge(&mut self, other: &OlsAccumulator) -> Result<()> {
        if other.p != self.p {
            return Err(StatsError::InvalidInput(format!(
                "cannot merge accumulators of width {} and {}",
                self.p, other.p
            )));
        }
        for a in 0..self.p {
            for b in a..self.p {
                self.xtx_upper[(a, b)] += other.xtx_upper[(a, b)];
            }
        }
        for (j, v) in other.xty.iter().enumerate() {
            self.xty[j] += v;
        }
        self.n += other.n;
        Ok(())
    }

    /// Number of observations folded.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The full (mirrored) `X'X` matrix.
    pub fn xtx(&self) -> Matrix {
        let mut out = self.xtx_upper.clone();
        for a in 0..self.p {
            for b in 0..a {
                out[(a, b)] = out[(b, a)];
            }
        }
        out
    }

    /// The `X'y` vector.
    pub fn xty(&self) -> &[f64] {
        &self.xty
    }

    /// Solves the normal equations for β (Cholesky, with an LU fallback
    /// for near-semidefinite systems) — the same solve `OlsFit::fit`
    /// performs.
    pub fn solve(&self) -> Result<Vec<f64>> {
        let xtx = self.xtx();
        xtx.solve_spd(&self.xty)
            .or_else(|_| xtx.solve(&self.xty))
            .map_err(|_| StatsError::Numeric("X'X is singular (collinear predictors)".into()))
    }
}

/// Options for [`OlsFit::fit`].
#[derive(Debug, Clone, Copy, Default)]
pub struct OlsOptions {
    /// Use the HC1 sandwich estimator for standard errors (the
    /// `statsmodels` `HC1` / Stata `robust` convention) instead of the
    /// classical homoskedastic formula.
    pub robust_hc1: bool,
}

/// A fitted OLS model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OlsFit {
    /// Term names: `"(intercept)"` followed by the predictor names.
    pub names: Vec<String>,
    /// Coefficient estimates, aligned with `names`.
    pub coefficients: Vec<f64>,
    /// Standard errors (classical or HC1 per the fit options).
    pub std_errors: Vec<f64>,
    /// t statistics.
    pub t_values: Vec<f64>,
    /// Two-sided p-values.
    pub p_values: Vec<f64>,
    /// 95% confidence interval lower bounds.
    pub ci_low: Vec<f64>,
    /// 95% confidence interval upper bounds.
    pub ci_high: Vec<f64>,
    /// Coefficient of determination.
    pub r_squared: f64,
    /// Adjusted R².
    pub adj_r_squared: f64,
    /// Overall F statistic (against the intercept-only model).
    pub f_statistic: f64,
    /// p-value of the F statistic.
    pub f_p_value: f64,
    /// Residual degrees of freedom (n − p).
    pub df_resid: usize,
    /// Number of observations.
    pub n: usize,
    /// Residuals.
    pub residuals: Vec<f64>,
}

impl OlsFit {
    /// Fits `y ~ 1 + X`. `x` holds one row per observation (predictors
    /// only; the intercept is added internally), `names` one entry per
    /// predictor column.
    pub fn fit(names: &[&str], x: &[Vec<f64>], y: &[f64], options: OlsOptions) -> Result<OlsFit> {
        let n = y.len();
        if x.len() != n {
            return Err(StatsError::InvalidInput("X/y length mismatch".into()));
        }
        let k = names.len();
        if x.iter().any(|row| row.len() != k) {
            return Err(StatsError::InvalidInput("X row width != names".into()));
        }
        let p = k + 1; // + intercept
        if n <= p {
            return Err(StatsError::InvalidInput(format!(
                "need n > p ({n} observations for {p} parameters)"
            )));
        }
        // Design matrix with leading intercept column.
        let mut design = Matrix::zeros(n, p);
        for i in 0..n {
            design[(i, 0)] = 1.0;
            for j in 0..k {
                design[(i, j + 1)] = x[i][j];
            }
        }
        let mut acc = OlsAccumulator::new(p);
        for (i, &yi) in y.iter().enumerate() {
            acc.fold(design.row(i), yi)?;
        }
        let xtx = acc.xtx();
        let beta = acc.solve()?;

        let fitted = design.matvec(&beta)?;
        let residuals: Vec<f64> = y.iter().zip(&fitted).map(|(yi, fi)| yi - fi).collect();
        let ss_res: f64 = residuals.iter().map(|e| e * e).sum();
        let y_mean = y.iter().sum::<f64>() / n as f64;
        let ss_tot: f64 = y.iter().map(|yi| (yi - y_mean) * (yi - y_mean)).sum();
        let df_resid = n - p;
        let sigma2 = ss_res / df_resid as f64;
        let r_squared = if ss_tot > 0.0 { 1.0 - ss_res / ss_tot } else { 0.0 };
        let adj_r_squared = 1.0 - (1.0 - r_squared) * ((n - 1) as f64 / df_resid as f64);

        let xtx_inv = xtx.inverse()?;
        let cov = if options.robust_hc1 {
            // HC1: (X'X)⁻¹ (Σᵢ eᵢ² xᵢxᵢᵀ) (X'X)⁻¹ · n/(n−p).
            let mut meat = Matrix::zeros(p, p);
            for (i, residual) in residuals.iter().enumerate() {
                let e2 = residual * residual;
                let row = design.row(i);
                for a in 0..p {
                    let ra = row[a] * e2;
                    if ra == 0.0 {
                        continue;
                    }
                    for b in 0..p {
                        meat[(a, b)] += ra * row[b];
                    }
                }
            }
            let mut sandwich = xtx_inv.matmul(&meat)?.matmul(&xtx_inv)?;
            let scale = n as f64 / df_resid as f64;
            for a in 0..p {
                for b in 0..p {
                    sandwich[(a, b)] *= scale;
                }
            }
            sandwich
        } else {
            let mut cov = xtx_inv.clone();
            for a in 0..p {
                for b in 0..p {
                    cov[(a, b)] *= sigma2;
                }
            }
            cov
        };

        let mut std_errors = Vec::with_capacity(p);
        let mut t_values = Vec::with_capacity(p);
        let mut p_values = Vec::with_capacity(p);
        let mut ci_low = Vec::with_capacity(p);
        let mut ci_high = Vec::with_capacity(p);
        // 97.5% t quantile via bisection on the CDF (cheap, done once).
        let t_crit = t_quantile_975(df_resid as f64);
        for j in 0..p {
            let se = cov[(j, j)].max(0.0).sqrt();
            let t = if se > 0.0 { beta[j] / se } else { f64::INFINITY };
            std_errors.push(se);
            t_values.push(t);
            p_values.push(t_p_two_sided(t, df_resid as f64));
            ci_low.push(beta[j] - t_crit * se);
            ci_high.push(beta[j] + t_crit * se);
        }

        let df_model = k as f64;
        let f_statistic = if k > 0 && r_squared < 1.0 {
            (r_squared / df_model) / ((1.0 - r_squared) / df_resid as f64)
        } else {
            f64::INFINITY
        };
        let f_p_value = f_sf(f_statistic, df_model, df_resid as f64);

        let mut all_names = vec!["(intercept)".to_string()];
        all_names.extend(names.iter().map(|s| s.to_string()));
        Ok(OlsFit {
            names: all_names,
            coefficients: beta,
            std_errors,
            t_values,
            p_values,
            ci_low,
            ci_high,
            r_squared,
            adj_r_squared,
            f_statistic,
            f_p_value,
            df_resid,
            n,
            residuals,
        })
    }

    /// Coefficient for a named term, if present.
    pub fn coefficient(&self, name: &str) -> Option<f64> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|idx| self.coefficients[idx])
    }

    /// p-value for a named term, if present.
    pub fn p_value(&self, name: &str) -> Option<f64> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|idx| self.p_values[idx])
    }
}

/// 0.975 quantile of the t distribution via bisection on the CDF.
fn t_quantile_975(df: f64) -> f64 {
    let mut lo = 0.0;
    let mut hi = 200.0;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if crate::special::t_cdf(mid, df) < 0.975 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_coefficients_on_noiseless_data() {
        // y = 1.5 + 2x₁ − 3x₂ exactly.
        let x: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64, (i * i % 7) as f64])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 1.5 + 2.0 * r[0] - 3.0 * r[1]).collect();
        let fit = OlsFit::fit(&["x1", "x2"], &x, &y, OlsOptions::default()).unwrap();
        assert!((fit.coefficients[0] - 1.5).abs() < 1e-9);
        assert!((fit.coefficients[1] - 2.0).abs() < 1e-9);
        assert!((fit.coefficients[2] + 3.0).abs() < 1e-9);
        assert!(fit.r_squared > 0.999_999);
    }

    #[test]
    fn matches_simple_regression_closed_form() {
        // For one predictor, compare against the closed-form slope,
        // intercept and classical SEs computed independently.
        let x_vals = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let y = [2.1, 3.9, 6.2, 7.8, 10.3, 11.9, 14.2, 15.8];
        let n = x_vals.len() as f64;
        let mx = x_vals.iter().sum::<f64>() / n;
        let my = y.iter().sum::<f64>() / n;
        let sxx: f64 = x_vals.iter().map(|v| (v - mx) * (v - mx)).sum();
        let sxy: f64 = x_vals.iter().zip(&y).map(|(a, b)| (a - mx) * (b - my)).sum();
        let slope = sxy / sxx;
        let intercept = my - slope * mx;
        let ss_res: f64 = x_vals
            .iter()
            .zip(&y)
            .map(|(xi, yi)| {
                let e = yi - intercept - slope * xi;
                e * e
            })
            .sum();
        let sigma2 = ss_res / (n - 2.0);
        let se_slope = (sigma2 / sxx).sqrt();
        let se_intercept = (sigma2 * (1.0 / n + mx * mx / sxx)).sqrt();

        let rows: Vec<Vec<f64>> = x_vals.iter().map(|&v| vec![v]).collect();
        let fit = OlsFit::fit(&["x"], &rows, &y, OlsOptions::default()).unwrap();
        assert!((fit.coefficients[0] - intercept).abs() < 1e-10);
        assert!((fit.coefficients[1] - slope).abs() < 1e-10);
        assert!((fit.std_errors[0] - se_intercept).abs() < 1e-10);
        assert!((fit.std_errors[1] - se_slope).abs() < 1e-10);
        assert_eq!(fit.df_resid, 6);
    }

    #[test]
    fn hc1_matches_direct_sandwich_computation() {
        // Heteroskedastic data: variance grows with x.
        let x_vals: Vec<f64> = (1..=12).map(|i| i as f64).collect();
        let y: Vec<f64> = x_vals
            .iter()
            .enumerate()
            .map(|(i, &v)| 2.0 * v + if i % 2 == 0 { v * 0.5 } else { -v * 0.5 })
            .collect();
        let rows: Vec<Vec<f64>> = x_vals.iter().map(|&v| vec![v]).collect();
        let classical = OlsFit::fit(&["x"], &rows, &y, OlsOptions::default()).unwrap();
        let robust = OlsFit::fit(&["x"], &rows, &y, OlsOptions { robust_hc1: true }).unwrap();
        // Coefficients identical; SEs differ.
        assert_eq!(classical.coefficients, robust.coefficients);
        assert_ne!(classical.std_errors[1], robust.std_errors[1]);
        // Direct HC1 computation for the slope entry.
        let n = x_vals.len() as f64;
        let p = 2.0;
        let design: Vec<[f64; 2]> = x_vals.iter().map(|&v| [1.0, v]).collect();
        let mut xtx = [[0.0f64; 2]; 2];
        for row in &design {
            for a in 0..2 {
                for b in 0..2 {
                    xtx[a][b] += row[a] * row[b];
                }
            }
        }
        let det = xtx[0][0] * xtx[1][1] - xtx[0][1] * xtx[1][0];
        let xtx_inv = [
            [xtx[1][1] / det, -xtx[0][1] / det],
            [-xtx[1][0] / det, xtx[0][0] / det],
        ];
        let mut meat = [[0.0f64; 2]; 2];
        for (i, row) in design.iter().enumerate() {
            let e = classical.residuals[i];
            for a in 0..2 {
                for b in 0..2 {
                    meat[a][b] += e * e * row[a] * row[b];
                }
            }
        }
        // sandwich[1][1]
        let mut tmp = [[0.0f64; 2]; 2];
        for a in 0..2 {
            for b in 0..2 {
                for c in 0..2 {
                    tmp[a][b] += xtx_inv[a][c] * meat[c][b];
                }
            }
        }
        let mut sw11 = 0.0;
        for c in 0..2 {
            sw11 += tmp[1][c] * xtx_inv[c][1];
        }
        let expected_se = (sw11 * n / (n - p)).sqrt();
        assert!(
            (robust.std_errors[1] - expected_se).abs() < 1e-10,
            "{} vs {}",
            robust.std_errors[1],
            expected_se
        );
    }

    #[test]
    fn f_statistic_and_r2_consistency() {
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![(i % 7) as f64, (i % 3) as f64]).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, r)| 1.0 + r[0] - 0.5 * r[1] + ((i * 37 % 11) as f64 - 5.0) * 0.3)
            .collect();
        let fit = OlsFit::fit(&["a", "b"], &x, &y, OlsOptions::default()).unwrap();
        assert!(fit.r_squared > 0.0 && fit.r_squared < 1.0);
        assert!(fit.adj_r_squared < fit.r_squared);
        let k = 2.0;
        let expect_f = (fit.r_squared / k) / ((1.0 - fit.r_squared) / fit.df_resid as f64);
        assert!((fit.f_statistic - expect_f).abs() < 1e-10);
        assert!(fit.f_p_value < 0.001);
    }

    #[test]
    fn confidence_intervals_bracket_estimates() {
        let x: Vec<Vec<f64>> = (0..25).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = x.iter().enumerate().map(|(i, r)| 3.0 * r[0] + ((i % 5) as f64)).collect();
        let fit = OlsFit::fit(&["x"], &x, &y, OlsOptions::default()).unwrap();
        for j in 0..fit.coefficients.len() {
            assert!(fit.ci_low[j] < fit.coefficients[j]);
            assert!(fit.coefficients[j] < fit.ci_high[j]);
        }
        // CI half-width should be t_crit × SE.
        let half = (fit.ci_high[1] - fit.ci_low[1]) / 2.0;
        assert!((half / fit.std_errors[1] - t_quantile_975(fit.df_resid as f64)).abs() < 1e-9);
    }

    #[test]
    fn lookup_by_name() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| 2.0 * i as f64 + 1.0).collect();
        let fit = OlsFit::fit(&["slope"], &x, &y, OlsOptions::default()).unwrap();
        assert!((fit.coefficient("slope").unwrap() - 2.0).abs() < 1e-9);
        assert!((fit.coefficient("(intercept)").unwrap() - 1.0).abs() < 1e-9);
        assert!(fit.coefficient("nope").is_none());
        assert!(fit.p_value("slope").unwrap() < 0.05);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(OlsFit::fit(&["x"], &[vec![1.0]], &[1.0], OlsOptions::default()).is_err());
        assert!(OlsFit::fit(&["x"], &[vec![1.0], vec![2.0]], &[1.0], OlsOptions::default()).is_err());
        // Perfectly collinear predictors.
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert!(OlsFit::fit(&["a", "b"], &x, &y, OlsOptions::default()).is_err());
    }

    #[test]
    fn accumulator_reproduces_gram_bit_for_bit() {
        // Rows with zeros exercise gram()'s zero-skip fast path.
        let rows: Vec<Vec<f64>> = (0..15)
            .map(|i| {
                vec![
                    1.0,
                    if i % 3 == 0 { 0.0 } else { (i as f64).sin() },
                    (i as f64 * 0.7).cos(),
                ]
            })
            .collect();
        let y: Vec<f64> = (0..15).map(|i| (i as f64) * 0.3 - 1.0).collect();
        let design = Matrix::from_rows(&rows).unwrap();
        let batch_xtx = design.gram();
        let batch_xty: Vec<f64> = (0..3)
            .map(|j| (0..15).map(|i| design[(i, j)] * y[i]).sum())
            .collect();
        let mut acc = OlsAccumulator::new(3);
        for (row, &yi) in rows.iter().zip(&y) {
            acc.fold(row, yi).unwrap();
        }
        let xtx = acc.xtx();
        for a in 0..3 {
            for b in 0..3 {
                assert_eq!(xtx[(a, b)].to_bits(), batch_xtx[(a, b)].to_bits());
            }
        }
        for j in 0..3 {
            assert_eq!(acc.xty()[j].to_bits(), batch_xty[j].to_bits());
        }
        assert_eq!(acc.count(), 15);
        assert!(acc.fold(&[1.0], 0.0).is_err());
    }

    #[test]
    fn accumulator_merge_matches_single_pass() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![1.0, i as f64 * 0.25]).collect();
        let y: Vec<f64> = rows.iter().map(|r| 2.0 + 0.5 * r[1]).collect();
        let mut whole = OlsAccumulator::new(2);
        for (row, &yi) in rows.iter().zip(&y) {
            whole.fold(row, yi).unwrap();
        }
        let mut a = OlsAccumulator::new(2);
        let mut b = OlsAccumulator::new(2);
        for (i, (row, &yi)) in rows.iter().zip(&y).enumerate() {
            if i < 9 {
                a.fold(row, yi).unwrap();
            } else {
                b.fold(row, yi).unwrap();
            }
        }
        a.merge(&b).unwrap();
        assert_eq!(a.count(), whole.count());
        let beta_a = a.solve().unwrap();
        let beta_w = whole.solve().unwrap();
        for (x, y) in beta_a.iter().zip(&beta_w) {
            assert!((x - y).abs() < 1e-9);
        }
        assert!(a.merge(&OlsAccumulator::new(3)).is_err());
    }

    #[test]
    fn t_quantile_is_correct() {
        // R: qt(0.975, 10) = 2.228139.
        assert!((t_quantile_975(10.0) - 2.228_139).abs() < 1e-5);
        // Large df → normal 1.959964.
        assert!((t_quantile_975(100_000.0) - 1.959_964).abs() < 1e-4);
    }
}
