//! Descriptive statistics and the transforms the paper applies before
//! regression (log transform, z-standardization), plus min/max/mean/std
//! summaries (Tables 1, 2, 4) and the integer mode (Table 4).

use crate::{Result, StatsError};
use serde::{Deserialize, Serialize};

/// A five-number-ish summary used throughout the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Description {
    /// Number of observations.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator).
    pub std: f64,
}

/// One-pass running moments (Welford's algorithm) — the streaming
/// counterpart of [`describe`]. Fold observations as they arrive, then
/// [`Moments::finish`] into a [`Description`]; `describe` itself is
/// implemented as "fold everything, then finish" so batch and streaming
/// analyses share one numeric code path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Moments {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Moments {
    /// An empty accumulator.
    pub fn new() -> Moments {
        Moments {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds one observation into the running moments.
    pub fn fold(&mut self, value: f64) {
        self.n += 1;
        let delta = value - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = value - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another accumulator's state (Chan et al.'s parallel
    /// variance update), enabling sharded analysis. Count, min and max
    /// merge exactly; mean and M2 merge to within floating-point
    /// reassociation error.
    pub fn merge(&mut self, other: &Moments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let n = n1 + n2;
        let delta = other.mean - self.mean;
        self.mean += delta * (n2 / n);
        self.m2 += other.m2 + delta * delta * (n1 * n2 / n);
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations folded so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The raw state `(n, mean, m2, min, max)` — for checkpointing.
    pub fn parts(&self) -> (u64, f64, f64, f64, f64) {
        (self.n, self.mean, self.m2, self.min, self.max)
    }

    /// Rebuilds an accumulator from [`Moments::parts`] output.
    pub fn from_parts(n: u64, mean: f64, m2: f64, min: f64, max: f64) -> Moments {
        Moments {
            n,
            mean,
            m2,
            min,
            max,
        }
    }

    /// Finalizes into a [`Description`]. Errors on an empty accumulator,
    /// matching `describe` on an empty sample.
    pub fn finish(&self) -> Result<Description> {
        if self.n == 0 {
            return Err(StatsError::InvalidInput("describe of empty sample".into()));
        }
        let std = if self.n > 1 {
            (self.m2.max(0.0) / (self.n - 1) as f64).sqrt()
        } else {
            0.0
        };
        Ok(Description {
            n: self.n as usize,
            min: self.min,
            max: self.max,
            mean: self.mean,
            std,
        })
    }
}

impl Default for Moments {
    fn default() -> Moments {
        Moments::new()
    }
}

/// Summarizes a sample. Errors on empty input.
pub fn describe(values: &[f64]) -> Result<Description> {
    let mut acc = Moments::new();
    for &v in values {
        acc.fold(v);
    }
    acc.finish()
}

/// Arithmetic mean; errors on empty input.
pub fn mean(values: &[f64]) -> Result<f64> {
    if values.is_empty() {
        return Err(StatsError::InvalidInput("mean of empty sample".into()));
    }
    Ok(values.iter().sum::<f64>() / values.len() as f64)
}

/// Sample standard deviation (n − 1); errors on fewer than 2 values.
pub fn std_dev(values: &[f64]) -> Result<f64> {
    if values.len() < 2 {
        return Err(StatsError::InvalidInput("std of < 2 values".into()));
    }
    let m = mean(values)?;
    let ss: f64 = values.iter().map(|v| (v - m) * (v - m)).sum();
    Ok((ss / (values.len() - 1) as f64).sqrt())
}

/// Median (average of middle two for even n).
pub fn median(values: &[f64]) -> Result<f64> {
    if values.is_empty() {
        return Err(StatsError::InvalidInput("median of empty sample".into()));
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    Ok(if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    })
}

/// Mode of an integer sample: the most frequent value; ties break toward
/// the smaller value (deterministic). Errors on empty input.
pub fn mode_u64(values: &[u64]) -> Result<u64> {
    if values.is_empty() {
        return Err(StatsError::InvalidInput("mode of empty sample".into()));
    }
    let mut counts = std::collections::BTreeMap::new();
    for &v in values {
        *counts.entry(v).or_insert(0usize) += 1;
    }
    // BTreeMap iterates keys ascending, so `>` keeps the smallest mode.
    let mut best = (0u64, 0usize);
    for (value, count) in counts {
        if count > best.1 {
            best = (value, count);
        }
    }
    Ok(best.0)
}

/// `ln(1 + x)` transform applied element-wise — the paper log-transforms
/// all continuous predictors "to reduce multicollinearity"; `log1p` keeps
/// zero counts finite.
pub fn log1p_transform(values: &[f64]) -> Vec<f64> {
    values.iter().map(|v| v.ln_1p()).collect()
}

/// Z-standardizes a sample: subtract the mean, divide by the sample
/// standard deviation. A constant column standardizes to all zeros rather
/// than erroring (the caller typically drops it).
pub fn standardize(values: &[f64]) -> Vec<f64> {
    let Ok(m) = mean(values) else {
        return Vec::new();
    };
    let sd = std_dev(values).unwrap_or(0.0);
    if sd <= 0.0 {
        return vec![0.0; values.len()];
    }
    values.iter().map(|v| (v - m) / sd).collect()
}

/// Splits `frequency` (1-based) into the paper's four Table-3 bins:
/// 1–5 → 0, 6–10 → 1, 11–15 → 2, 16 (the modal value) → 3. Values above 16
/// clamp into the top bin so reduced-snapshot runs still bin sensibly.
pub fn bin_frequency(frequency: u32) -> u8 {
    match frequency {
        0..=5 => 0,
        6..=10 => 1,
        11..=15 => 2,
        _ => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_known_sample() {
        let d = describe(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(d.n, 8);
        assert_eq!(d.min, 2.0);
        assert_eq!(d.max, 9.0);
        assert!((d.mean - 5.0).abs() < 1e-12);
        // Sample std of this classic sample is sqrt(32/7).
        assert!((d.std - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert!(describe(&[]).is_err());
    }

    #[test]
    fn describe_single_value() {
        let d = describe(&[3.5]).unwrap();
        assert_eq!(d.std, 0.0);
        assert_eq!(d.mean, 3.5);
    }

    #[test]
    fn median_even_and_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]).unwrap(), 2.5);
        assert!(median(&[]).is_err());
    }

    #[test]
    fn mode_picks_most_frequent() {
        assert_eq!(mode_u64(&[1, 2, 2, 3, 3, 3]).unwrap(), 3);
        assert_eq!(mode_u64(&[5]).unwrap(), 5);
        // Tie breaks toward the smaller value.
        assert_eq!(mode_u64(&[7, 7, 9, 9]).unwrap(), 7);
        assert!(mode_u64(&[]).is_err());
    }

    #[test]
    fn log1p_handles_zero_counts() {
        let out = log1p_transform(&[0.0, 1.0, (std::f64::consts::E - 1.0)]);
        assert_eq!(out[0], 0.0);
        assert!((out[1] - 2.0f64.ln()).abs() < 1e-12);
        assert!((out[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn standardize_has_zero_mean_unit_sd() {
        let z = standardize(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((mean(&z).unwrap()).abs() < 1e-12);
        assert!((std_dev(&z).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn standardize_constant_column_is_zeros() {
        assert_eq!(standardize(&[2.0, 2.0, 2.0]), vec![0.0, 0.0, 0.0]);
        assert!(standardize(&[]).is_empty());
    }

    #[test]
    fn moments_agree_with_describe() {
        let sample = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut acc = Moments::new();
        for &v in &sample {
            acc.fold(v);
        }
        let d = acc.finish().unwrap();
        let batch = describe(&sample).unwrap();
        assert_eq!(d, batch);
        assert_eq!(acc.count(), 8);
        assert!(Moments::new().finish().is_err());
    }

    #[test]
    fn moments_merge_matches_single_pass() {
        let sample: Vec<f64> = (0..40).map(|i| ((i * 37) % 11) as f64 - 3.0).collect();
        let mut whole = Moments::new();
        for &v in &sample {
            whole.fold(v);
        }
        let (left, right) = sample.split_at(17);
        let mut a = Moments::new();
        for &v in left {
            a.fold(v);
        }
        let mut b = Moments::new();
        for &v in right {
            b.fold(v);
        }
        a.merge(&b);
        let da = a.finish().unwrap();
        let dw = whole.finish().unwrap();
        assert_eq!(da.n, dw.n);
        assert_eq!(da.min, dw.min);
        assert_eq!(da.max, dw.max);
        assert!((da.mean - dw.mean).abs() < 1e-12);
        assert!((da.std - dw.std).abs() < 1e-12);
        // Merging into an empty accumulator copies the other side.
        let mut empty = Moments::new();
        empty.merge(&whole);
        assert_eq!(empty.finish().unwrap(), dw);
    }

    #[test]
    fn frequency_bins_match_paper() {
        assert_eq!(bin_frequency(1), 0);
        assert_eq!(bin_frequency(5), 0);
        assert_eq!(bin_frequency(6), 1);
        assert_eq!(bin_frequency(10), 1);
        assert_eq!(bin_frequency(11), 2);
        assert_eq!(bin_frequency(15), 2);
        assert_eq!(bin_frequency(16), 3);
        assert_eq!(bin_frequency(20), 3);
    }
}
