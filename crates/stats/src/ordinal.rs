//! Proportional-odds cumulative-link (ordinal) regression, the model
//! behind the paper's Tables 3 (logit link, binned frequency) and 7
//! (complementary log-log link, 16 outcome levels).
//!
//! The model is `P(Y ≤ j | x) = F(θⱼ − xᵀβ)` with ordered thresholds θ and
//! a shared coefficient vector β. It is fit by Newton–Raphson with an
//! analytic gradient and Hessian, step-halving, and ridge rescue — the
//! same strategy R's `MASS::polr` uses.

// ytlint: allow-file(indexing) — threshold ordering checks index windows(2)
// slices, whose length is fixed by the iterator

use crate::matrix::Matrix;
use crate::special::{chi2_sf, normal_p_two_sided, normal_quantile};
use crate::{Result, StatsError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The cumulative link function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Link {
    /// Logistic link: `F(z) = 1/(1+e^{−z})` (Table 3).
    Logit,
    /// Complementary log-log link: `F(z) = 1 − exp(−exp(z))`, appropriate
    /// when the outcome distribution is skewed toward the top category
    /// (Table 7's reasoning).
    Cloglog,
}

impl Link {
    /// The CDF `F(z)`.
    pub fn cdf(self, z: f64) -> f64 {
        match self {
            Link::Logit => {
                if z >= 0.0 {
                    1.0 / (1.0 + (-z).exp())
                } else {
                    let e = z.exp();
                    e / (1.0 + e)
                }
            }
            Link::Cloglog => {
                let z = z.min(30.0);
                1.0 - (-(z.exp())).exp()
            }
        }
    }

    /// The density `f(z) = F′(z)`.
    pub fn pdf(self, z: f64) -> f64 {
        match self {
            Link::Logit => {
                let p = self.cdf(z);
                p * (1.0 - p)
            }
            Link::Cloglog => {
                let z = z.min(30.0);
                (z - z.exp()).exp()
            }
        }
    }

    /// The density derivative `f′(z)`.
    pub fn dpdf(self, z: f64) -> f64 {
        match self {
            Link::Logit => {
                let p = self.cdf(z);
                p * (1.0 - p) * (1.0 - 2.0 * p)
            }
            Link::Cloglog => {
                let z = z.min(30.0);
                self.pdf(z) * (1.0 - z.exp())
            }
        }
    }

    /// The quantile `F⁻¹(p)`, used to initialize thresholds from the
    /// empirical cumulative distribution.
    pub fn quantile(self, p: f64) -> f64 {
        let p = p.clamp(1e-10, 1.0 - 1e-10);
        match self {
            Link::Logit => (p / (1.0 - p)).ln(),
            Link::Cloglog => (-(1.0 - p).ln()).ln(),
        }
    }
}

/// Fit configuration.
#[derive(Debug, Clone, Copy)]
pub struct OrdinalModel {
    /// Link function.
    pub link: Link,
    /// Maximum Newton iterations.
    pub max_iter: usize,
    /// Convergence tolerance on the gradient max-norm.
    pub tol: f64,
}

impl OrdinalModel {
    /// A logit-link model with default iteration settings.
    pub fn logit() -> OrdinalModel {
        OrdinalModel {
            link: Link::Logit,
            max_iter: 100,
            tol: 1e-8,
        }
    }

    /// A cloglog-link model with default iteration settings.
    pub fn cloglog() -> OrdinalModel {
        OrdinalModel {
            link: Link::Cloglog,
            max_iter: 200,
            tol: 1e-6,
        }
    }

    /// Fits the model. `x` holds one row of predictors per observation;
    /// `y` holds 0-based category indices (all categories 0..J−1 must be
    /// observed, J ≥ 2).
    pub fn fit(&self, names: &[&str], x: &[Vec<f64>], y: &[usize]) -> Result<OrdinalFit> {
        let n = y.len();
        let k = names.len();
        if x.len() != n {
            return Err(StatsError::InvalidInput("X/y length mismatch".into()));
        }
        if x.iter().any(|row| row.len() != k) {
            return Err(StatsError::InvalidInput("X row width != names".into()));
        }
        let n_cat = y.iter().copied().max().map_or(0, |m| m + 1);
        if n_cat < 2 {
            return Err(StatsError::InvalidInput("need at least 2 outcome categories".into()));
        }
        let mut counts = vec![0usize; n_cat];
        for &yi in y {
            counts[yi] += 1;
        }
        if counts.contains(&0) {
            return Err(StatsError::InvalidInput(
                "every outcome category 0..J−1 must be observed".into(),
            ));
        }
        let n_thresh = n_cat - 1;
        let n_params = n_thresh + k;

        // Initialize thresholds at the link-quantiles of the empirical
        // cumulative proportions, betas at zero.
        let mut params = vec![0.0; n_params];
        let mut cum = 0usize;
        for j in 0..n_thresh {
            cum += counts[j];
            params[j] = self.link.quantile(cum as f64 / n as f64);
        }

        let mut ll = self.log_likelihood(x, y, &params, n_thresh);
        if !ll.is_finite() {
            return Err(StatsError::Numeric("non-finite initial likelihood".into()));
        }

        let mut converged = false;
        for _iter in 0..self.max_iter {
            let (grad, hessian) = self.derivatives(x, y, &params, n_thresh)?;
            let grad_norm = grad.iter().fold(0.0f64, |m, g| m.max(g.abs()));
            if grad_norm < self.tol {
                converged = true;
                break;
            }
            // Newton step: solve (−H) δ = g.
            let mut neg_h = hessian.clone();
            for a in 0..n_params {
                for b in 0..n_params {
                    neg_h[(a, b)] = -neg_h[(a, b)];
                }
            }
            let mut step = match neg_h.solve_spd(&grad) {
                Ok(step) => step,
                Err(_) => {
                    // Ridge rescue for a non-PD Hessian.
                    let mut ridged = neg_h.clone();
                    ridged.add_ridge(1e-4 * (1.0 + grad_norm));
                    ridged
                        .solve(&grad)
                        .map_err(|_| StatsError::Numeric("Hessian is singular".into()))?
                }
            };
            // Step-halving: accept the first step that improves the
            // likelihood and keeps thresholds ordered.
            let mut accepted = false;
            for _half in 0..40 {
                let candidate: Vec<f64> =
                    params.iter().zip(&step).map(|(p, s)| p + s).collect();
                let ordered = candidate
                    .windows(2)
                    .take(n_thresh.saturating_sub(1))
                    .all(|w| w[0] < w[1]);
                if ordered {
                    let cand_ll = self.log_likelihood(x, y, &candidate, n_thresh);
                    if cand_ll.is_finite() && cand_ll >= ll - 1e-12 {
                        let improved = cand_ll - ll;
                        params = candidate;
                        ll = cand_ll;
                        accepted = true;
                        // A tiny improvement with a tiny step also counts
                        // as convergence.
                        if improved.abs() < 1e-12 && grad_norm < 1e-4 {
                            converged = true;
                        }
                        break;
                    }
                }
                for s in &mut step {
                    *s *= 0.5;
                }
            }
            if !accepted {
                // Cannot improve: treat as converged if the gradient is
                // small, otherwise report failure.
                if grad_norm < 1e-3 {
                    converged = true;
                }
                break;
            }
            if converged {
                break;
            }
        }
        if !converged {
            // One final check: accept if the gradient is small enough for
            // practical purposes.
            let (grad, _) = self.derivatives(x, y, &params, n_thresh)?;
            let grad_norm = grad.iter().fold(0.0f64, |m, g| m.max(g.abs()));
            if grad_norm > 1e-3 * (1.0 + n as f64) {
                return Err(StatsError::Numeric(format!(
                    "ordinal fit failed to converge (‖g‖∞ = {grad_norm:.3e})"
                )));
            }
        }

        // Refresh the Hessian at the optimum for standard errors.
        let (_, hessian) = self.derivatives(x, y, &params, n_thresh)?;
        let mut neg_h = hessian.clone();
        for a in 0..n_params {
            for b in 0..n_params {
                neg_h[(a, b)] = -neg_h[(a, b)];
            }
        }
        let cov = neg_h.inverse().or_else(|_| {
            let mut ridged = neg_h.clone();
            ridged.add_ridge(1e-8);
            ridged.inverse()
        })?;

        // Null model: intercept-only PO model fits the empirical category
        // proportions exactly, so its log-likelihood has a closed form.
        let null_ll: f64 = counts
            .iter()
            .map(|&c| c as f64 * ((c as f64 / n as f64).ln()))
            .sum();
        let lr_chi2 = (2.0 * (ll - null_ll)).max(0.0);
        let lr_df = k as f64;
        let lr_p = chi2_sf(lr_chi2, lr_df.max(1.0));
        let pseudo_r2 = if null_ll < 0.0 { 1.0 - ll / null_ll } else { 0.0 };

        let z_crit = normal_quantile(0.975);
        let mut coefficients = Vec::with_capacity(k);
        let mut std_errors = Vec::with_capacity(k);
        let mut z_values = Vec::with_capacity(k);
        let mut p_values = Vec::with_capacity(k);
        let mut ci_low = Vec::with_capacity(k);
        let mut ci_high = Vec::with_capacity(k);
        for j in 0..k {
            let idx = n_thresh + j;
            let beta = params[idx];
            let se = cov[(idx, idx)].max(0.0).sqrt();
            let z = if se > 0.0 { beta / se } else { f64::INFINITY };
            coefficients.push(beta);
            std_errors.push(se);
            z_values.push(z);
            p_values.push(normal_p_two_sided(z));
            ci_low.push(beta - z_crit * se);
            ci_high.push(beta + z_crit * se);
        }

        Ok(OrdinalFit {
            names: names.iter().map(|s| s.to_string()).collect(),
            link: self.link,
            thresholds: params[..n_thresh].to_vec(),
            coefficients,
            std_errors,
            z_values,
            p_values,
            ci_low,
            ci_high,
            log_likelihood: ll,
            null_log_likelihood: null_ll,
            lr_chi2,
            lr_df: k,
            lr_p,
            pseudo_r2,
            n,
            n_categories: n_cat,
        })
    }

    /// Log-likelihood at `params = [θ…, β…]`.
    fn log_likelihood(&self, x: &[Vec<f64>], y: &[usize], params: &[f64], n_thresh: usize) -> f64 {
        let betas = &params[n_thresh..];
        let mut ll = 0.0;
        for (row, &yi) in x.iter().zip(y) {
            let eta: f64 = row.iter().zip(betas).map(|(a, b)| a * b).sum();
            let upper = if yi < n_thresh {
                self.link.cdf(params[yi] - eta)
            } else {
                1.0
            };
            let lower = if yi > 0 {
                self.link.cdf(params[yi - 1] - eta)
            } else {
                0.0
            };
            let p = (upper - lower).max(1e-300);
            ll += p.ln();
        }
        ll
    }

    /// Analytic gradient and Hessian of the log-likelihood.
    fn derivatives(
        &self,
        x: &[Vec<f64>],
        y: &[usize],
        params: &[f64],
        n_thresh: usize,
    ) -> Result<(Vec<f64>, Matrix)> {
        let k = params.len() - n_thresh;
        let betas = &params[n_thresh..];
        let n_params = params.len();
        let mut grad = vec![0.0; n_params];
        let mut hess = Matrix::zeros(n_params, n_params);
        for (row, &yi) in x.iter().zip(y) {
            let eta: f64 = row.iter().zip(betas).map(|(a, b)| a * b).sum();
            // z1 = θ_y − η (upper bound), z0 = θ_{y−1} − η (lower bound).
            let (has1, z1) = if yi < n_thresh {
                (true, params[yi] - eta)
            } else {
                (false, 0.0)
            };
            let (has0, z0) = if yi > 0 {
                (true, params[yi - 1] - eta)
            } else {
                (false, 0.0)
            };
            let f1 = if has1 { self.link.cdf(z1) } else { 1.0 };
            let f0 = if has0 { self.link.cdf(z0) } else { 0.0 };
            let p = (f1 - f0).max(1e-300);
            let g1 = if has1 { self.link.pdf(z1) } else { 0.0 };
            let g0 = if has0 { self.link.pdf(z0) } else { 0.0 };
            let d1 = if has1 { self.link.dpdf(z1) } else { 0.0 };
            let d0 = if has0 { self.link.dpdf(z0) } else { 0.0 };

            // First derivatives of ℓ = ln p w.r.t. z1 and z0.
            let dz1 = g1 / p;
            let dz0 = -g0 / p;
            // Second derivatives.
            let dz1z1 = d1 / p - dz1 * dz1;
            let dz0z0 = -d0 / p - dz0 * dz0;
            let dz1z0 = -dz1 * dz0; // = g1·g0/p²

            // Parameter sensitivities: ∂z1/∂θ_y = 1, ∂z0/∂θ_{y−1} = 1,
            // ∂z/∂β_m = −x_m for both.
            // Gradient.
            if has1 {
                grad[yi] += dz1;
            }
            if has0 {
                grad[yi - 1] += dz0;
            }
            for m in 0..k {
                grad[n_thresh + m] += -(dz1 + dz0) * row[m];
            }

            // Hessian.
            if has1 {
                hess[(yi, yi)] += dz1z1;
            }
            if has0 {
                hess[(yi - 1, yi - 1)] += dz0z0;
            }
            if has1 && has0 {
                hess[(yi, yi - 1)] += dz1z0;
                hess[(yi - 1, yi)] += dz1z0;
            }
            for m in 0..k {
                let xm = row[m];
                if has1 {
                    let v = -(dz1z1 + dz1z0) * xm;
                    hess[(yi, n_thresh + m)] += v;
                    hess[(n_thresh + m, yi)] += v;
                }
                if has0 {
                    let v = -(dz0z0 + dz1z0) * xm;
                    hess[(yi - 1, n_thresh + m)] += v;
                    hess[(n_thresh + m, yi - 1)] += v;
                }
                for m2 in 0..k {
                    hess[(n_thresh + m, n_thresh + m2)] +=
                        (dz1z1 + 2.0 * dz1z0 + dz0z0) * xm * row[m2];
                }
            }
        }
        Ok((grad, hess))
    }
}

/// A streaming multiset of `(predictor row, category)` observations for
/// ordinal regression. The Newton solver needs several passes over the
/// data, so the accumulator keeps *counted distinct rows* rather than raw
/// per-observation storage: state is bounded by the number of distinct
/// predictor profiles, folds commute exactly (counts are integers keyed
/// by the bit patterns of the row), and `merge` is plain count addition.
/// [`ObservationSet::fit`] expands rows in sorted key order, so any fold
/// order produces a bit-identical fit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObservationSet {
    rows: BTreeMap<(Vec<u64>, usize), u64>,
}

impl ObservationSet {
    /// An empty observation set.
    pub fn new() -> ObservationSet {
        ObservationSet::default()
    }

    /// Folds one observation (predictor row + 0-based outcome category).
    pub fn fold(&mut self, row: &[f64], category: usize) {
        let key: Vec<u64> = row.iter().map(|v| v.to_bits()).collect();
        *self.rows.entry((key, category)).or_insert(0) += 1;
    }

    /// Merges another observation set (exact: counts add).
    pub fn merge(&mut self, other: &ObservationSet) {
        for (key, count) in &other.rows {
            *self.rows.entry(key.clone()).or_insert(0) += count;
        }
    }

    /// Total observations folded.
    pub fn count(&self) -> u64 {
        self.rows.values().sum()
    }

    /// Fits `model` over the accumulated observations, expanding counted
    /// rows in canonical (sorted bit-pattern) order.
    pub fn fit(&self, model: &OrdinalModel, names: &[&str]) -> Result<OrdinalFit> {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for ((bits, category), &count) in &self.rows {
            let row: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
            for _ in 0..count {
                x.push(row.clone());
                y.push(*category);
            }
        }
        model.fit(names, &x, &y)
    }
}

/// A fitted ordinal regression.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OrdinalFit {
    /// Predictor names (no intercept — thresholds play that role).
    pub names: Vec<String>,
    /// The link that was fit.
    pub link: Link,
    /// Ordered thresholds θ₀ < … < θ_{J−2}.
    pub thresholds: Vec<f64>,
    /// β estimates, aligned with `names`.
    pub coefficients: Vec<f64>,
    /// Standard errors from the observed information matrix.
    pub std_errors: Vec<f64>,
    /// Wald z statistics.
    pub z_values: Vec<f64>,
    /// Two-sided p-values.
    pub p_values: Vec<f64>,
    /// 95% CI lower bounds.
    pub ci_low: Vec<f64>,
    /// 95% CI upper bounds.
    pub ci_high: Vec<f64>,
    /// Maximized log-likelihood.
    pub log_likelihood: f64,
    /// Log-likelihood of the thresholds-only null model.
    pub null_log_likelihood: f64,
    /// Likelihood-ratio χ² against the null model.
    pub lr_chi2: f64,
    /// Degrees of freedom of the LR test (number of predictors).
    pub lr_df: usize,
    /// p-value of the LR test.
    pub lr_p: f64,
    /// McFadden pseudo-R².
    pub pseudo_r2: f64,
    /// Number of observations.
    pub n: usize,
    /// Number of outcome categories.
    pub n_categories: usize,
}

impl OrdinalFit {
    /// Coefficient for a named predictor.
    pub fn coefficient(&self, name: &str) -> Option<f64> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| self.coefficients[i])
    }

    /// p-value for a named predictor.
    pub fn p_value(&self, name: &str) -> Option<f64> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| self.p_values[i])
    }

    /// Predicted category probabilities for a predictor row.
    pub fn predict_proba(&self, row: &[f64]) -> Vec<f64> {
        let eta: f64 = row.iter().zip(&self.coefficients).map(|(a, b)| a * b).sum();
        let mut probs = Vec::with_capacity(self.n_categories);
        let mut prev = 0.0;
        for j in 0..self.n_categories {
            let cum = if j < self.thresholds.len() {
                self.link.cdf(self.thresholds[j] - eta)
            } else {
                1.0
            };
            probs.push((cum - prev).max(0.0));
            prev = cum;
        }
        probs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logit(p: f64) -> f64 {
        (p / (1.0 - p)).ln()
    }

    #[test]
    fn link_functions_are_consistent() {
        for link in [Link::Logit, Link::Cloglog] {
            for &z in &[-3.0, -1.0, 0.0, 0.5, 2.0] {
                // f ≈ dF/dz numerically.
                let h = 1e-6;
                let numeric = (link.cdf(z + h) - link.cdf(z - h)) / (2.0 * h);
                assert!(
                    (link.pdf(z) - numeric).abs() < 1e-6,
                    "{link:?} pdf at {z}"
                );
                let numeric2 = (link.pdf(z + h) - link.pdf(z - h)) / (2.0 * h);
                assert!(
                    (link.dpdf(z) - numeric2).abs() < 1e-5,
                    "{link:?} dpdf at {z}"
                );
                // Quantile inverts the CDF.
                let p = link.cdf(z);
                assert!((link.quantile(p) - z).abs() < 1e-6, "{link:?} quantile at {z}");
            }
        }
    }

    /// With J=2 and one binary predictor the model is saturated, so the
    /// MLE matches the empirical log-odds exactly.
    #[test]
    fn binary_logit_matches_closed_form() {
        // Group x=0: 30 of 100 in category 1. Group x=1: 70 of 100.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..100 {
            x.push(vec![0.0]);
            y.push(usize::from(i < 30)); // 30 ones... careful: category 1 means y=1
        }
        for i in 0..100 {
            x.push(vec![1.0]);
            y.push(usize::from(i < 70));
        }
        let fit = OrdinalModel::logit().fit(&["x"], &x, &y).unwrap();
        // P(Y ≤ 0 | x=0) = 0.7 ⇒ θ = logit(0.7); P(Y ≤ 0 | x=1) = 0.3 ⇒
        // θ − β = logit(0.3).
        let theta = logit(0.7);
        let beta = theta - logit(0.3);
        assert!((fit.thresholds[0] - theta).abs() < 1e-6, "{}", fit.thresholds[0]);
        assert!((fit.coefficients[0] - beta).abs() < 1e-6, "{}", fit.coefficients[0]);
        assert!(fit.p_values[0] < 0.001);
        assert!(fit.lr_p < 0.001);
        assert!(fit.pseudo_r2 > 0.0);
    }

    #[test]
    fn binary_cloglog_matches_closed_form() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            x.push(vec![0.0]);
            y.push(usize::from(i < 80)); // P(Y≤0|0) = 0.6
        }
        for i in 0..200 {
            x.push(vec![1.0]);
            y.push(usize::from(i < 140)); // P(Y≤0|1) = 0.3
        }
        let fit = OrdinalModel::cloglog().fit(&["x"], &x, &y).unwrap();
        let inv = |p: f64| (-(1.0f64 - p).ln()).ln();
        let theta = inv(0.6);
        let beta = theta - inv(0.3);
        assert!((fit.thresholds[0] - theta).abs() < 1e-4, "{}", fit.thresholds[0]);
        assert!((fit.coefficients[0] - beta).abs() < 1e-4, "{}", fit.coefficients[0]);
    }

    #[test]
    fn gradient_matches_numeric_gradient() {
        let model = OrdinalModel::logit();
        let x = vec![
            vec![0.5, 1.0],
            vec![-1.0, 0.0],
            vec![2.0, -1.5],
            vec![0.0, 0.5],
            vec![1.0, 1.0],
            vec![-0.5, 2.0],
        ];
        let y = vec![0, 1, 2, 1, 2, 0];
        let params = vec![-0.4, 0.9, 0.3, -0.2]; // θ0 < θ1, β1, β2
        let (grad, hess) = model.derivatives(&x, &y, &params, 2).unwrap();
        let h = 1e-6;
        for i in 0..params.len() {
            let mut up = params.clone();
            up[i] += h;
            let mut down = params.clone();
            down[i] -= h;
            let numeric =
                (model.log_likelihood(&x, &y, &up, 2) - model.log_likelihood(&x, &y, &down, 2))
                    / (2.0 * h);
            assert!(
                (grad[i] - numeric).abs() < 1e-5,
                "param {i}: analytic {} vs numeric {numeric}",
                grad[i]
            );
            // Hessian row i ≈ numeric derivative of the gradient.
            let (gup, _) = model.derivatives(&x, &y, &up, 2).unwrap();
            let (gdown, _) = model.derivatives(&x, &y, &down, 2).unwrap();
            for j in 0..params.len() {
                let numeric_h = (gup[j] - gdown[j]) / (2.0 * h);
                assert!(
                    (hess[(i, j)] - numeric_h).abs() < 1e-4,
                    "hess ({i},{j}): analytic {} vs numeric {numeric_h}",
                    hess[(i, j)]
                );
            }
        }
    }

    #[test]
    fn recovers_simulated_coefficients() {
        // Deterministic "simulation": a grid of x values with category
        // assignment by the model's own quantile structure.
        let model = OrdinalModel::logit();
        let true_beta = 1.2;
        let thresholds = [-0.8, 0.9];
        let mut x = Vec::new();
        let mut y = Vec::new();
        // Integrate out the latent noise by replicating each x with the
        // model-implied category proportions (law of large numbers without
        // randomness).
        for step in -20..=20 {
            let xv = step as f64 / 8.0;
            let eta = true_beta * xv;
            let p0 = Link::Logit.cdf(thresholds[0] - eta);
            let p1 = Link::Logit.cdf(thresholds[1] - eta);
            let reps = 60;
            let n0 = (p0 * reps as f64).round() as usize;
            let n1 = (p1 * reps as f64).round() as usize;
            for i in 0..reps {
                x.push(vec![xv]);
                y.push(if i < n0 {
                    0
                } else if i < n1 {
                    1
                } else {
                    2
                });
            }
        }
        let fit = model.fit(&["x"], &x, &y).unwrap();
        assert!(
            (fit.coefficients[0] - true_beta).abs() < 0.08,
            "recovered {}",
            fit.coefficients[0]
        );
        assert!((fit.thresholds[0] - thresholds[0]).abs() < 0.08);
        assert!((fit.thresholds[1] - thresholds[1]).abs() < 0.08);
        assert!(fit.thresholds[0] < fit.thresholds[1]);
    }

    #[test]
    fn predicted_probabilities_sum_to_one() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0], vec![0.5], vec![1.5], vec![2.5]];
        let y = vec![0, 0, 1, 1, 2, 2];
        let fit = OrdinalModel::logit().fit(&["x"], &x, &y).unwrap();
        for row in &x {
            let probs = fit.predict_proba(row);
            assert_eq!(probs.len(), 3);
            let total: f64 = probs.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
            assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn null_likelihood_matches_empirical_entropy() {
        let x: Vec<Vec<f64>> = (0..60).map(|_| vec![0.0]).collect();
        let y: Vec<usize> = (0..60).map(|i| i % 3).collect();
        // A constant predictor carries no information: LR χ² ≈ 0 and the
        // likelihood equals n Σ pⱼ ln pⱼ.
        let fit = OrdinalModel::logit().fit(&["x"], &x, &y);
        // Constant predictor makes the Hessian singular in β; accept
        // either a clean error or a fit with tiny LR.
        if let Ok(fit) = fit {
            assert!(fit.lr_chi2 < 1e-3);
        }
        // Directly check the closed form with a varying predictor that is
        // independent of y.
        let x2: Vec<Vec<f64>> = (0..60).map(|i| vec![(i % 2) as f64]).collect();
        let fit2 = OrdinalModel::logit().fit(&["x"], &x2, &y).unwrap();
        let expected_null = 60.0 * (1.0f64 / 3.0).ln();
        assert!((fit2.null_log_likelihood - expected_null).abs() < 1e-9);
        assert!(fit2.lr_chi2 < 1.0);
        assert!(fit2.lr_p > 0.3);
    }

    #[test]
    fn observation_set_is_order_invariant() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0], vec![0.5], vec![1.5], vec![2.5]];
        let y = vec![0, 0, 1, 1, 2, 2];
        let mut forward = ObservationSet::new();
        for (row, &yi) in x.iter().zip(&y) {
            forward.fold(row, yi);
        }
        let mut reversed = ObservationSet::new();
        for (row, &yi) in x.iter().zip(&y).rev() {
            reversed.fold(row, yi);
        }
        assert_eq!(forward, reversed);
        assert_eq!(forward.count(), 6);
        let model = OrdinalModel::logit();
        let a = forward.fit(&model, &["x"]).unwrap();
        let b = reversed.fit(&model, &["x"]).unwrap();
        assert_eq!(a.coefficients[0].to_bits(), b.coefficients[0].to_bits());
        assert_eq!(a.thresholds, b.thresholds);
        // Merging two halves equals folding everything into one set.
        let mut left = ObservationSet::new();
        let mut right = ObservationSet::new();
        for (i, (row, &yi)) in x.iter().zip(&y).enumerate() {
            if i % 2 == 0 {
                left.fold(row, yi);
            } else {
                right.fold(row, yi);
            }
        }
        left.merge(&right);
        assert_eq!(left, forward);
    }

    #[test]
    fn rejects_bad_inputs() {
        let model = OrdinalModel::logit();
        assert!(model.fit(&["x"], &[vec![1.0]], &[0, 1]).is_err()); // length mismatch
        assert!(model.fit(&["x"], &[vec![1.0], vec![2.0]], &[0, 0]).is_err()); // one category
        // Category 2 present but category 1 missing.
        assert!(model
            .fit(&["x"], &[vec![1.0], vec![2.0], vec![3.0]], &[0, 0, 2])
            .is_err());
    }

    #[test]
    fn cloglog_handles_top_heavy_outcomes() {
        // Outcome skewed toward the top category, the paper's Table-7
        // scenario.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..300 {
            let xv = (i % 10) as f64 / 3.0;
            x.push(vec![xv]);
            y.push(if i % 10 < 2 {
                0
            } else if i % 10 < 4 {
                1
            } else {
                2
            });
        }
        let fit = OrdinalModel::cloglog().fit(&["x"], &x, &y).unwrap();
        assert_eq!(fit.n_categories, 3);
        assert!(fit.thresholds[0] < fit.thresholds[1]);
        assert!(fit.log_likelihood > fit.null_log_likelihood - 1e-9);
    }
}
