//! Time-series diagnostics for the §6.2 periodicity extension: sample
//! autocorrelation, a dominant-period detector, and the Ljung–Box
//! portmanteau test for "is this series just noise?".

use crate::special::chi2_sf;
use crate::{Result, StatsError};

/// Sample autocorrelation at lags `0..=max_lag` (biased estimator, the
/// standard convention: divide by n and the lag-0 variance).
pub fn acf(series: &[f64], max_lag: usize) -> Result<Vec<f64>> {
    let n = series.len();
    if n < 3 {
        return Err(StatsError::InvalidInput("acf needs n ≥ 3".into()));
    }
    if max_lag >= n {
        return Err(StatsError::InvalidInput(format!(
            "max_lag {max_lag} must be < n = {n}"
        )));
    }
    let mean = series.iter().sum::<f64>() / n as f64;
    let var: f64 = series.iter().map(|v| (v - mean) * (v - mean)).sum();
    if var <= 0.0 {
        return Err(StatsError::Numeric("acf of a constant series".into()));
    }
    Ok((0..=max_lag)
        .map(|lag| {
            let cov: f64 = (0..n - lag)
                .map(|i| (series[i] - mean) * (series[i + lag] - mean))
                .sum();
            cov / var
        })
        .collect())
}

/// The result of a periodicity scan.
#[derive(Debug, Clone, PartialEq)]
pub struct Periodicity {
    /// The lag (≥ 2) with the largest autocorrelation.
    pub dominant_lag: usize,
    /// The autocorrelation at that lag.
    pub strength: f64,
    /// The approximate two-sided significance threshold `±1.96/√n`.
    pub threshold: f64,
    /// Whether the dominant lag clears the threshold.
    pub significant: bool,
}

/// Scans lags `2..=max_lag` for a dominant period in the series.
/// (Lag 1 is excluded: adjacent-snapshot correlation is expected from the
/// rolling window; periodicity means a *recurrence* at longer lags.)
pub fn detect_periodicity(series: &[f64], max_lag: usize) -> Result<Periodicity> {
    let correlations = acf(series, max_lag)?;
    let n = series.len() as f64;
    let threshold = 1.96 / n.sqrt();
    let (dominant_lag, strength) = correlations
        .iter()
        .enumerate()
        .skip(2)
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(lag, &r)| (lag, r))
        .ok_or_else(|| StatsError::InvalidInput("max_lag must be ≥ 2".into()))?;
    Ok(Periodicity {
        dominant_lag,
        strength,
        threshold,
        significant: strength > threshold,
    })
}

/// Ljung–Box portmanteau test: H₀ = the series is white noise up to
/// `max_lag`. Returns (Q statistic, p-value).
pub fn ljung_box(series: &[f64], max_lag: usize) -> Result<(f64, f64)> {
    let correlations = acf(series, max_lag)?;
    let n = series.len() as f64;
    let q: f64 = (1..=max_lag)
        .map(|lag| {
            let r = correlations[lag];
            r * r / (n - lag as f64)
        })
        .sum::<f64>()
        * n
        * (n + 2.0);
    Ok((q, chi2_sf(q, max_lag as f64)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acf_of_constant_trendless_noise_is_small() {
        // A deterministic low-autocorrelation sequence (a hash, not an
        // LCG — linear congruences have strong lag structure).
        let mix = |mut x: u64| {
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        };
        let series: Vec<f64> = (0..200u64).map(|i| (mix(i) % 1000) as f64).collect();
        let r = acf(&series, 10).unwrap();
        assert!((r[0] - 1.0).abs() < 1e-12);
        for &v in &r[1..] {
            assert!(v.abs() < 0.2, "{v}");
        }
        let (_q, p) = ljung_box(&series, 10).unwrap();
        assert!(p > 0.01, "pseudo-random series should look like noise: p={p}");
    }

    #[test]
    fn acf_detects_a_planted_period() {
        // Period-7 signal plus small deterministic jitter.
        let series: Vec<f64> = (0..140)
            .map(|i| (std::f64::consts::TAU * i as f64 / 7.0).sin() + ((i * 37) % 11) as f64 * 0.01)
            .collect();
        let p = detect_periodicity(&series, 20).unwrap();
        assert_eq!(p.dominant_lag, 7, "{p:?}");
        assert!(p.strength > 0.8);
        assert!(p.significant);
        let (_q, pval) = ljung_box(&series, 10).unwrap();
        assert!(pval < 1e-6);
    }

    #[test]
    fn acf_is_symmetric_in_shift_and_scale() {
        let base: Vec<f64> = (0..60).map(|i| ((i * 31) % 17) as f64).collect();
        let scaled: Vec<f64> = base.iter().map(|v| v * 3.0 + 100.0).collect();
        let a = acf(&base, 8).unwrap();
        let b = acf(&scaled, 8).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn errors_on_degenerate_input() {
        assert!(acf(&[1.0, 2.0], 1).is_err());
        assert!(acf(&[1.0; 10], 3).is_err()); // constant
        assert!(acf(&[1.0, 2.0, 3.0, 4.0], 4).is_err()); // lag ≥ n
        assert!(detect_periodicity(&[1.0, 2.0, 1.0, 2.0, 1.0], 1).is_err());
    }

    #[test]
    fn ljung_box_matches_hand_computation_on_tiny_series() {
        let series = [1.0, 3.0, 2.0, 5.0, 4.0, 6.0, 5.0, 8.0];
        let r = acf(&series, 2).unwrap();
        let n = 8.0;
        let expected_q = n * (n + 2.0) * (r[1] * r[1] / (n - 1.0) + r[2] * r[2] / (n - 2.0));
        let (q, p) = ljung_box(&series, 2).unwrap();
        assert!((q - expected_q).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&p));
    }
}
