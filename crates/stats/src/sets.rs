//! Set similarity — the workhorse of the paper's consistency analysis.
//!
//! The audit compares the video-ID sets returned by identical queries made
//! at different times using Jaccard similarity (Figure 1), and reports the
//! two one-sided set differences as "error bars": `S_{t−1} − S_t` (videos
//! that dropped out) and `S_t − S_{t−1}` (videos that dropped in). The
//! latter is the paper's proof that deletions alone cannot explain the
//! inconsistency — deleted videos can leave a set, but a *historical* query
//! should never gain videos it did not return before.

use std::collections::HashSet;
use std::hash::Hash;

/// Jaccard similarity `|A ∩ B| / |A ∪ B|`. Two empty sets are defined as
/// similarity 1 (identical), matching the convention the paper uses before
/// it drops all-empty hours from Table 2.
pub fn jaccard<T: Eq + Hash>(a: &HashSet<T>, b: &HashSet<T>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let intersection = a.intersection(b).count();
    let union = a.len() + b.len() - intersection;
    intersection as f64 / union as f64
}

/// The two one-sided set differences `(|A − B|, |B − A|)` — the "error
/// bars" of Figure 1 with `A = S_{t−1}` and `B = S_t`.
pub fn set_differences<T: Eq + Hash>(a: &HashSet<T>, b: &HashSet<T>) -> (usize, usize) {
    let a_minus_b = a.difference(b).count();
    let b_minus_a = b.difference(a).count();
    (a_minus_b, b_minus_a)
}

/// Overlap coefficient `|A ∩ B| / min(|A|, |B|)` — used in the Appendix-B
/// style coverage comparisons where one set is a subset query of another.
pub fn overlap_coefficient<T: Eq + Hash>(a: &HashSet<T>, b: &HashSet<T>) -> f64 {
    if a.is_empty() || b.is_empty() {
        return if a.is_empty() && b.is_empty() { 1.0 } else { 0.0 };
    }
    let intersection = a.intersection(b).count();
    intersection as f64 / a.len().min(b.len()) as f64
}

/// Fraction of `a`'s elements also present in `b` (`|A ∩ B| / |A|`) — the
/// "percentage of videos for which metadata is returned" of Figure 4.
/// Returns 1.0 for empty `a`.
pub fn coverage<T: Eq + Hash>(a: &HashSet<T>, b: &HashSet<T>) -> f64 {
    if a.is_empty() {
        return 1.0;
    }
    a.intersection(b).count() as f64 / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[&str]) -> HashSet<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn jaccard_known_values() {
        let a = set(&["a", "b", "c"]);
        let b = set(&["b", "c", "d"]);
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard(&a, &a), 1.0);
        assert_eq!(jaccard(&a, &set(&[])), 0.0);
        assert_eq!(jaccard::<String>(&HashSet::new(), &HashSet::new()), 1.0);
    }

    #[test]
    fn jaccard_is_symmetric() {
        let a = set(&["x", "y"]);
        let b = set(&["y", "z", "w"]);
        assert_eq!(jaccard(&a, &b), jaccard(&b, &a));
    }

    #[test]
    fn paper_observation_46_percent_shared() {
        // The paper: Jaccard ≈ 0.3 ⇒ only ~46% of videos per set shared.
        // With |A| = |B| = n and intersection i: J = i/(2n−i) = 0.3
        // ⇒ i ≈ 0.4615 n.
        let n = 1000;
        let shared = 462;
        let a: HashSet<u32> = (0..n).collect();
        let b: HashSet<u32> = (0..shared).chain(n..(2 * n - shared)).collect();
        let j = jaccard(&a, &b);
        assert!((j - 0.3).abs() < 0.01, "J = {j}");
    }

    #[test]
    fn set_differences_both_directions() {
        let prev = set(&["a", "b", "c", "d"]);
        let curr = set(&["c", "d", "e"]);
        let (dropped_out, dropped_in) = set_differences(&prev, &curr);
        assert_eq!(dropped_out, 2); // a, b left
        assert_eq!(dropped_in, 1); // e appeared
    }

    #[test]
    fn overlap_and_coverage() {
        let a = set(&["a", "b"]);
        let b = set(&["a", "b", "c", "d"]);
        assert_eq!(overlap_coefficient(&a, &b), 1.0);
        assert_eq!(coverage(&a, &b), 1.0);
        assert_eq!(coverage(&b, &a), 0.5);
        assert_eq!(coverage::<String>(&HashSet::new(), &a), 1.0);
        assert_eq!(overlap_coefficient(&set(&[]), &a), 0.0);
    }
}
