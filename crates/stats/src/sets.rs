//! Set similarity — the workhorse of the paper's consistency analysis.
//!
//! The audit compares the video-ID sets returned by identical queries made
//! at different times using Jaccard similarity (Figure 1), and reports the
//! two one-sided set differences as "error bars": `S_{t−1} − S_t` (videos
//! that dropped out) and `S_t − S_{t−1}` (videos that dropped in). The
//! latter is the paper's proof that deletions alone cannot explain the
//! inconsistency — deleted videos can leave a set, but a *historical* query
//! should never gain videos it did not return before.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::hash::Hash;

/// Jaccard similarity `|A ∩ B| / |A ∪ B|`. Two empty sets are defined as
/// similarity 1 (identical), matching the convention the paper uses before
/// it drops all-empty hours from Table 2.
pub fn jaccard<T: Eq + Hash>(a: &HashSet<T>, b: &HashSet<T>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let intersection = a.intersection(b).count();
    let union = a.len() + b.len() - intersection;
    intersection as f64 / union as f64
}

/// The two one-sided set differences `(|A − B|, |B − A|)` — the "error
/// bars" of Figure 1 with `A = S_{t−1}` and `B = S_t`.
pub fn set_differences<T: Eq + Hash>(a: &HashSet<T>, b: &HashSet<T>) -> (usize, usize) {
    let a_minus_b = a.difference(b).count();
    let b_minus_a = b.difference(a).count();
    (a_minus_b, b_minus_a)
}

/// Overlap coefficient `|A ∩ B| / min(|A|, |B|)` — used in the Appendix-B
/// style coverage comparisons where one set is a subset query of another.
pub fn overlap_coefficient<T: Eq + Hash>(a: &HashSet<T>, b: &HashSet<T>) -> f64 {
    if a.is_empty() || b.is_empty() {
        return if a.is_empty() && b.is_empty() { 1.0 } else { 0.0 };
    }
    let intersection = a.intersection(b).count();
    intersection as f64 / a.len().min(b.len()) as f64
}

/// Fraction of `a`'s elements also present in `b` (`|A ∩ B| / |A|`) — the
/// "percentage of videos for which metadata is returned" of Figure 4.
/// Returns 1.0 for empty `a`.
pub fn coverage<T: Eq + Hash>(a: &HashSet<T>, b: &HashSet<T>) -> f64 {
    if a.is_empty() {
        return 1.0;
    }
    a.intersection(b).count() as f64 / a.len() as f64
}

/// The similarity measurements produced by one [`OverlapAccumulator::fold`]
/// — the streaming form of a Figure-1 point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverlapStep {
    /// `J(Sₜ, Sₜ₋₁)`; 1.0 for the first fold.
    pub jaccard_prev: f64,
    /// `J(Sₜ, S₀)`.
    pub jaccard_first: f64,
    /// `|Sₜ₋₁ − Sₜ|` — elements that dropped out since the previous fold.
    pub dropped_out: usize,
    /// `|Sₜ − Sₜ₋₁|` — elements that dropped in since the previous fold.
    pub dropped_in: usize,
}

/// Streaming set-overlap accumulator: folds a sequence of sets and
/// reports, per fold, the Jaccard similarity against the previous and the
/// first set plus the one-sided differences. Holds only the first and the
/// most recent set — O(|S|) state regardless of how many folds arrive.
///
/// Folds are inherently ordered (each step is relative to the previous
/// set), so unlike the count-based accumulators this one has no `merge`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverlapAccumulator<T: Eq + Hash> {
    first: HashSet<T>,
    prev: HashSet<T>,
    folds: u64,
}

impl<T: Eq + Hash + Clone> OverlapAccumulator<T> {
    /// An empty accumulator (no sets folded yet).
    pub fn new() -> OverlapAccumulator<T> {
        OverlapAccumulator {
            first: HashSet::new(),
            prev: HashSet::new(),
            folds: 0,
        }
    }

    /// Folds the next set in the sequence and reports its similarity step.
    pub fn fold(&mut self, set: HashSet<T>) -> OverlapStep {
        let step = if self.folds == 0 {
            self.first = set.clone();
            OverlapStep {
                jaccard_prev: 1.0,
                jaccard_first: jaccard(&set, &self.first),
                dropped_out: 0,
                dropped_in: 0,
            }
        } else {
            let (dropped_out, dropped_in) = set_differences(&self.prev, &set);
            OverlapStep {
                jaccard_prev: jaccard(&set, &self.prev),
                jaccard_first: jaccard(&set, &self.first),
                dropped_out,
                dropped_in,
            }
        };
        self.prev = set;
        self.folds += 1;
        step
    }

    /// Number of sets folded so far.
    pub fn folds(&self) -> u64 {
        self.folds
    }

    /// The first set folded (empty before the first fold).
    pub fn first(&self) -> &HashSet<T> {
        &self.first
    }

    /// The most recent set folded (empty before the first fold).
    pub fn last(&self) -> &HashSet<T> {
        &self.prev
    }

    /// Rebuilds an accumulator from checkpointed state: the first set,
    /// the most recent set, and the number of folds so far.
    pub fn from_parts(first: HashSet<T>, prev: HashSet<T>, folds: u64) -> OverlapAccumulator<T> {
        OverlapAccumulator { first, prev, folds }
    }
}

impl<T: Eq + Hash + Clone> Default for OverlapAccumulator<T> {
    fn default() -> OverlapAccumulator<T> {
        OverlapAccumulator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[&str]) -> HashSet<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn jaccard_known_values() {
        let a = set(&["a", "b", "c"]);
        let b = set(&["b", "c", "d"]);
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard(&a, &a), 1.0);
        assert_eq!(jaccard(&a, &set(&[])), 0.0);
        assert_eq!(jaccard::<String>(&HashSet::new(), &HashSet::new()), 1.0);
    }

    #[test]
    fn jaccard_is_symmetric() {
        let a = set(&["x", "y"]);
        let b = set(&["y", "z", "w"]);
        assert_eq!(jaccard(&a, &b), jaccard(&b, &a));
    }

    #[test]
    fn paper_observation_46_percent_shared() {
        // The paper: Jaccard ≈ 0.3 ⇒ only ~46% of videos per set shared.
        // With |A| = |B| = n and intersection i: J = i/(2n−i) = 0.3
        // ⇒ i ≈ 0.4615 n.
        let n = 1000;
        let shared = 462;
        let a: HashSet<u32> = (0..n).collect();
        let b: HashSet<u32> = (0..shared).chain(n..(2 * n - shared)).collect();
        let j = jaccard(&a, &b);
        assert!((j - 0.3).abs() < 0.01, "J = {j}");
    }

    #[test]
    fn set_differences_both_directions() {
        let prev = set(&["a", "b", "c", "d"]);
        let curr = set(&["c", "d", "e"]);
        let (dropped_out, dropped_in) = set_differences(&prev, &curr);
        assert_eq!(dropped_out, 2); // a, b left
        assert_eq!(dropped_in, 1); // e appeared
    }

    #[test]
    fn overlap_accumulator_matches_batch_formulas() {
        let seq = [
            set(&["a", "b", "c", "d"]),
            set(&["c", "d", "e"]),
            set(&["a", "c", "e"]),
        ];
        let mut acc = OverlapAccumulator::new();
        let steps: Vec<OverlapStep> = seq.iter().cloned().map(|s| acc.fold(s)).collect();
        assert_eq!(steps[0].jaccard_prev, 1.0);
        assert_eq!(steps[0].jaccard_first, 1.0);
        assert_eq!((steps[0].dropped_out, steps[0].dropped_in), (0, 0));
        for (i, step) in steps.iter().enumerate().skip(1) {
            let (out, into) = set_differences(&seq[i - 1], &seq[i]);
            assert_eq!(step.dropped_out, out);
            assert_eq!(step.dropped_in, into);
            assert_eq!(step.jaccard_prev, jaccard(&seq[i], &seq[i - 1]));
            assert_eq!(step.jaccard_first, jaccard(&seq[i], &seq[0]));
        }
        assert_eq!(acc.folds(), 3);
        assert_eq!(acc.first(), &seq[0]);
        assert_eq!(acc.last(), &seq[2]);
    }

    #[test]
    fn overlap_and_coverage() {
        let a = set(&["a", "b"]);
        let b = set(&["a", "b", "c", "d"]);
        assert_eq!(overlap_coefficient(&a, &b), 1.0);
        assert_eq!(coverage(&a, &b), 1.0);
        assert_eq!(coverage(&b, &a), 0.5);
        assert_eq!(coverage::<String>(&HashSet::new(), &a), 1.0);
        assert_eq!(overlap_coefficient(&set(&[]), &a), 0.0);
    }
}
