//! Rank-based and product-moment correlation with significance tests.
//!
//! Table 2 reports Spearman ρ between per-hour Jaccard similarity and mean
//! per-hour video count, with star-coded p-values; the regression section
//! reports Pearson correlations between engagement metrics (r ≈ 0.92 for
//! views–likes). Both are implemented here with the usual t-approximation
//! for significance.

use crate::special::t_p_two_sided;
use crate::{Result, StatsError};

/// A correlation estimate with its significance test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Correlation {
    /// The correlation coefficient (ρ or r).
    pub coefficient: f64,
    /// Two-sided p-value from the t approximation.
    pub p_value: f64,
    /// Sample size.
    pub n: usize,
}

impl Correlation {
    /// The paper's star coding: `*` p<0.05, `**` p<0.01, `***` p<0.001.
    pub fn stars(&self) -> &'static str {
        if self.p_value < 0.001 {
            "***"
        } else if self.p_value < 0.01 {
            "**"
        } else if self.p_value < 0.05 {
            "*"
        } else {
            ""
        }
    }
}

/// Mid-rank ranking: ties receive the average of the ranks they span.
/// Ranks are 1-based.
pub fn midranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        // Items order[i..=j] are tied; average rank of positions i..=j
        // (1-based) is (i + j)/2 + 1.
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg_rank;
        }
        i = j + 1;
    }
    ranks
}

/// Pearson product-moment correlation with a t-test p-value.
pub fn pearson(x: &[f64], y: &[f64]) -> Result<Correlation> {
    if x.len() != y.len() {
        return Err(StatsError::InvalidInput("pearson: length mismatch".into()));
    }
    let n = x.len();
    if n < 3 {
        return Err(StatsError::InvalidInput("pearson: need n ≥ 3".into()));
    }
    let mx = x.iter().sum::<f64>() / n as f64;
    let my = y.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = x[i] - mx;
        let dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return Err(StatsError::Numeric("pearson: zero variance".into()));
    }
    let r = (sxy / (sxx * syy).sqrt()).clamp(-1.0, 1.0);
    let df = (n - 2) as f64;
    let p_value = if r.abs() >= 1.0 {
        0.0
    } else {
        let t = r * (df / (1.0 - r * r)).sqrt();
        t_p_two_sided(t, df)
    };
    Ok(Correlation {
        coefficient: r,
        p_value,
        n,
    })
}

/// Spearman rank correlation: Pearson on mid-ranks, with the same
/// t-approximation for the p-value (the convention statsmodels and R use
/// for n beyond the exact-permutation range).
pub fn spearman(x: &[f64], y: &[f64]) -> Result<Correlation> {
    if x.len() != y.len() {
        return Err(StatsError::InvalidInput("spearman: length mismatch".into()));
    }
    pearson(&midranks(x), &midranks(y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn midranks_without_ties() {
        assert_eq!(midranks(&[10.0, 30.0, 20.0]), vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn midranks_with_ties() {
        // Two values tied for ranks 2 and 3 → both get 2.5.
        assert_eq!(midranks(&[1.0, 5.0, 5.0, 9.0]), vec![1.0, 2.5, 2.5, 4.0]);
        // All tied.
        assert_eq!(midranks(&[7.0, 7.0, 7.0]), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 4.0, 6.0, 8.0, 10.0];
        let c = pearson(&x, &y).unwrap();
        assert!((c.coefficient - 1.0).abs() < 1e-12);
        assert!(c.p_value < 1e-10);
        let y_neg: Vec<f64> = y.iter().map(|v| -v).collect();
        assert!((pearson(&x, &y_neg).unwrap().coefficient + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_known_value() {
        // Hand computation: Sxy = 16, Sxx = 17.5, Syy = 70/3
        // ⇒ r = 16/√(17.5·70/3) = 0.791794…; t = r√(4/(1−r²)) = 2.5926
        // ⇒ two-sided p ≈ 0.0606 on 4 df.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let y = [2.0, 1.0, 4.0, 3.0, 7.0, 5.0];
        let c = pearson(&x, &y).unwrap();
        let expect_r = 16.0 / (17.5f64 * 70.0 / 3.0).sqrt();
        assert!((c.coefficient - expect_r).abs() < 1e-12, "{}", c.coefficient);
        assert!((c.p_value - 0.0606).abs() < 0.002, "{}", c.p_value);
        assert_eq!(c.stars(), "");
    }

    #[test]
    fn spearman_is_rank_invariant() {
        // Monotone transform of x leaves ρ unchanged.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let y = [2.0, 1.0, 4.0, 3.0, 7.0, 5.0];
        let x_exp: Vec<f64> = x.iter().map(|v: &f64| v.exp()).collect();
        let a = spearman(&x, &y).unwrap();
        let b = spearman(&x_exp, &y).unwrap();
        assert!((a.coefficient - b.coefficient).abs() < 1e-12);
    }

    #[test]
    fn spearman_known_value() {
        // No ties, so the classic formula applies: Σd² = 6
        // ⇒ ρ = 1 − 6·6/(6·35) = 29/35 = 0.828571…; the t approximation
        // gives t = 2.9599 on 4 df ⇒ p ≈ 0.0417.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let y = [2.0, 1.0, 4.0, 3.0, 7.0, 5.0];
        let c = spearman(&x, &y).unwrap();
        assert!((c.coefficient - 29.0 / 35.0).abs() < 1e-12, "{}", c.coefficient);
        assert!((c.p_value - 0.0417).abs() < 0.002, "{}", c.p_value);
        assert_eq!(c.stars(), "*");
    }

    #[test]
    fn spearman_handles_ties() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 2.0, 3.0, 4.0];
        let c = spearman(&x, &y).unwrap();
        // R: cor(c(1,2,2,3), c(1,2,3,4), method="spearman") = 0.9486833.
        assert!((c.coefficient - 0.948_683_3).abs() < 1e-6, "{}", c.coefficient);
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_err());
        assert!(pearson(&[1.0, 2.0], &[3.0, 4.0]).is_err()); // n < 3
        assert!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_err()); // zero variance
    }

    #[test]
    fn star_thresholds() {
        let make = |p| Correlation {
            coefficient: 0.5,
            p_value: p,
            n: 10,
        };
        assert_eq!(make(0.0005).stars(), "***");
        assert_eq!(make(0.005).stars(), "**");
        assert_eq!(make(0.03).stars(), "*");
        assert_eq!(make(0.2).stars(), "");
    }
}
