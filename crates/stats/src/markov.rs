//! Markov-chain estimation over presence/absence sequences.
//!
//! The paper's attrition analysis (Figure 3) models whether a video is
//! Present (P) or Absent (A) in each collection snapshot as a second-order
//! Markov chain: the probability of the next state is estimated from the
//! two most recent states, sliding a window across every video's 16-long
//! presence sequence, pooled over all topics.

// ytlint: allow-file(indexing) — transition counts are fixed [[u64; 2]; 4]
// tables and windows(3) slices; literal indices are in bounds by construction

use crate::{Result, StatsError};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};
use std::fmt;
use std::hash::Hash;

/// A two-snapshot history `(previous, current)`; `true` = present.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct State2 {
    /// Presence two snapshots ago.
    pub prev: bool,
    /// Presence in the most recent snapshot.
    pub curr: bool,
}

impl State2 {
    /// All four histories in the paper's display order: PP, PA, AP, AA.
    pub const ALL: [State2; 4] = [
        State2 { prev: true, curr: true },
        State2 { prev: true, curr: false },
        State2 { prev: false, curr: true },
        State2 { prev: false, curr: false },
    ];

    fn index(self) -> usize {
        (usize::from(!self.prev) << 1) | usize::from(!self.curr)
    }
}

impl fmt::Display for State2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = |b: bool| if b { 'P' } else { 'A' };
        write!(f, "{}{}", c(self.prev), c(self.curr))
    }
}

/// A fitted second-order Markov chain over presence/absence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarkovChain2 {
    /// counts[state][next]: next = 0 for Present, 1 for Absent.
    counts: [[u64; 2]; 4],
}

impl MarkovChain2 {
    /// An empty (zero-count) chain.
    pub fn new() -> MarkovChain2 {
        MarkovChain2 {
            counts: [[0; 2]; 4],
        }
    }

    /// Adds one presence/absence sequence, sliding a window of three
    /// states across it. Sequences shorter than 3 contribute nothing.
    pub fn add_sequence(&mut self, presence: &[bool]) {
        for window in presence.windows(3) {
            let state = State2 {
                prev: window[0],
                curr: window[1],
            };
            let next_present = window[2];
            self.counts[state.index()][usize::from(!next_present)] += 1;
        }
    }

    /// Records `n` transitions `state → next_present` directly — the
    /// incremental form used by [`PresenceAccumulator`], which folds
    /// presence sets snapshot-by-snapshot instead of replaying whole
    /// sequences.
    pub fn record(&mut self, state: State2, next_present: bool, n: u64) {
        self.counts[state.index()][usize::from(!next_present)] += n;
    }

    /// Total transitions observed from `state`.
    pub fn total(&self, state: State2) -> u64 {
        self.counts[state.index()].iter().sum()
    }

    /// P(next = Present | state), or an error if the state was never
    /// observed.
    pub fn p_present(&self, state: State2) -> Result<f64> {
        let total = self.total(state);
        if total == 0 {
            return Err(StatsError::InvalidInput(format!(
                "no transitions observed from state {state}"
            )));
        }
        Ok(self.counts[state.index()][0] as f64 / total as f64)
    }

    /// P(next = Absent | state).
    pub fn p_absent(&self, state: State2) -> Result<f64> {
        Ok(1.0 - self.p_present(state)?)
    }

    /// The full 4×2 transition matrix in `State2::ALL` order; each row is
    /// `[P(next=P), P(next=A)]`.
    pub fn transition_matrix(&self) -> Result<[[f64; 2]; 4]> {
        let mut out = [[0.0; 2]; 4];
        for (row, &state) in State2::ALL.iter().enumerate() {
            out[row][0] = self.p_present(state)?;
            out[row][1] = 1.0 - out[row][0];
        }
        Ok(out)
    }

    /// Merges another chain's counts into this one (pooling across
    /// topics).
    pub fn merge(&mut self, other: &MarkovChain2) {
        for s in 0..4 {
            for n in 0..2 {
                self.counts[s][n] += other.counts[s][n];
            }
        }
    }

    /// Raw count of transitions `state → next_present`.
    pub fn count(&self, state: State2, next_present: bool) -> u64 {
        self.counts[state.index()][usize::from(!next_present)]
    }
}

impl Default for MarkovChain2 {
    fn default() -> MarkovChain2 {
        MarkovChain2::new()
    }
}

/// Per-key presence history carried between folds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct PresenceState {
    /// Presence two folds ago, once known.
    prev2: Option<bool>,
    /// Presence in the most recent fold.
    prev1: bool,
}

/// Streaming second-order transition counter: fold the set of keys
/// present at each snapshot, in order, and the accumulator maintains
/// exactly the counts [`MarkovChain2::add_sequence`] would produce over
/// the full presence sequences — without ever materializing them.
///
/// A key first seen at fold `t` is retroactively treated as absent in
/// folds `0..t` (the batch convention: presence sequences span every
/// snapshot), which contributes `t − 2` AA→A transitions and one AA→P
/// transition. All state is integer counts plus two booleans per key, so
/// the equivalence with the batch path is exact, not approximate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PresenceAccumulator<K: Ord> {
    folds: u64,
    states: BTreeMap<K, PresenceState>,
    chain: MarkovChain2,
}

impl<K: Ord + Eq + Hash + Clone> PresenceAccumulator<K> {
    /// An empty accumulator.
    pub fn new() -> PresenceAccumulator<K> {
        PresenceAccumulator {
            folds: 0,
            states: BTreeMap::new(),
            chain: MarkovChain2::new(),
        }
    }

    /// Folds the presence set of the next snapshot.
    pub fn fold(&mut self, present: &HashSet<K>) {
        let t = self.folds;
        // Advance every known key, recording a transition once two prior
        // states are known.
        for (key, state) in &mut self.states {
            let next = present.contains(key);
            if let Some(prev2) = state.prev2 {
                self.chain.record(
                    State2 {
                        prev: prev2,
                        curr: state.prev1,
                    },
                    next,
                    1,
                );
            }
            state.prev2 = Some(state.prev1);
            state.prev1 = next;
        }
        // Register newly seen keys, back-filling their absent prefix.
        for key in present {
            if self.states.contains_key(key) {
                continue;
            }
            let state = if t == 0 {
                PresenceState {
                    prev2: None,
                    prev1: true,
                }
            } else {
                if t >= 2 {
                    let aa = State2 {
                        prev: false,
                        curr: false,
                    };
                    self.chain.record(aa, false, t - 2);
                    self.chain.record(aa, true, 1);
                }
                PresenceState {
                    prev2: Some(false),
                    prev1: true,
                }
            };
            self.states.insert(key.clone(), state);
        }
        self.folds += 1;
    }

    /// Number of snapshots folded so far.
    pub fn folds(&self) -> u64 {
        self.folds
    }

    /// Number of distinct keys seen so far.
    pub fn keys(&self) -> usize {
        self.states.len()
    }

    /// The transition counts accumulated so far.
    pub fn chain(&self) -> &MarkovChain2 {
        &self.chain
    }

    /// Per-key carried state `(key, presence two folds ago, most recent
    /// presence)` — for checkpointing.
    pub fn entries(&self) -> impl Iterator<Item = (&K, Option<bool>, bool)> {
        self.states.iter().map(|(k, s)| (k, s.prev2, s.prev1))
    }

    /// Rebuilds an accumulator from [`PresenceAccumulator::entries`]
    /// output plus the fold count and accumulated chain.
    pub fn from_parts(
        folds: u64,
        entries: impl IntoIterator<Item = (K, Option<bool>, bool)>,
        chain: MarkovChain2,
    ) -> PresenceAccumulator<K> {
        PresenceAccumulator {
            folds,
            states: entries
                .into_iter()
                .map(|(k, prev2, prev1)| (k, PresenceState { prev2, prev1 }))
                .collect(),
            chain,
        }
    }
}

impl<K: Ord + Eq + Hash + Clone> Default for PresenceAccumulator<K> {
    fn default() -> PresenceAccumulator<K> {
        PresenceAccumulator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PP: State2 = State2 { prev: true, curr: true };
    const PA: State2 = State2 { prev: true, curr: false };
    const AP: State2 = State2 { prev: false, curr: true };
    const AA: State2 = State2 { prev: false, curr: false };

    #[test]
    fn counts_sliding_windows() {
        let mut chain = MarkovChain2::new();
        // Sequence P P A P: windows (P,P→A), (P,A→P).
        chain.add_sequence(&[true, true, false, true]);
        assert_eq!(chain.count(PP, false), 1);
        assert_eq!(chain.count(PA, true), 1);
        assert_eq!(chain.total(AA), 0);
        assert_eq!(chain.total(PP), 1);
    }

    #[test]
    fn probabilities_from_known_counts() {
        let mut chain = MarkovChain2::new();
        // P P P P: three windows, all PP→P.
        chain.add_sequence(&[true, true, true, true, true]);
        assert_eq!(chain.p_present(PP).unwrap(), 1.0);
        // Mix in one PP→A.
        chain.add_sequence(&[true, true, false]);
        assert!((chain.p_present(PP).unwrap() - 0.75).abs() < 1e-12);
        assert!((chain.p_absent(PP).unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn rows_sum_to_one() {
        let mut chain = MarkovChain2::new();
        // A sequence covering all four histories.
        chain.add_sequence(&[true, true, false, false, true, false, true, true, true]);
        chain.add_sequence(&[false, false, false, true, true, false]);
        let matrix = chain.transition_matrix().unwrap();
        for row in matrix {
            assert!((row[0] + row[1] - 1.0).abs() < 1e-12);
            assert!(row[0] >= 0.0 && row[0] <= 1.0);
        }
    }

    #[test]
    fn unobserved_state_errors() {
        let chain = MarkovChain2::new();
        assert!(chain.p_present(PP).is_err());
        assert!(chain.transition_matrix().is_err());
    }

    #[test]
    fn short_sequences_contribute_nothing() {
        let mut chain = MarkovChain2::new();
        chain.add_sequence(&[]);
        chain.add_sequence(&[true]);
        chain.add_sequence(&[true, false]);
        for state in State2::ALL {
            assert_eq!(chain.total(state), 0);
        }
    }

    #[test]
    fn merge_pools_counts() {
        let mut a = MarkovChain2::new();
        a.add_sequence(&[true, true, true]);
        let mut b = MarkovChain2::new();
        b.add_sequence(&[true, true, false]);
        a.merge(&b);
        assert_eq!(a.total(PP), 2);
        assert!((a.p_present(PP).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn record_matches_add_sequence() {
        let mut via_seq = MarkovChain2::new();
        via_seq.add_sequence(&[true, true, false, true]);
        let mut via_record = MarkovChain2::new();
        via_record.record(PP, false, 1);
        via_record.record(PA, true, 1);
        assert_eq!(via_seq, via_record);
    }

    #[test]
    fn presence_accumulator_matches_sequence_replay() {
        // Presence matrix: rows are snapshots, columns are keys. Key "c"
        // first appears at snapshot 3 to exercise the absent back-fill.
        let rows: [&[&str]; 5] = [
            &["a", "b"],
            &["a"],
            &["a", "b"],
            &["b", "c"],
            &["a", "c"],
        ];
        let keys = ["a", "b", "c"];
        let mut acc = PresenceAccumulator::new();
        for row in rows {
            let present: HashSet<&str> = row.iter().copied().collect();
            acc.fold(&present);
        }
        let mut batch = MarkovChain2::new();
        for key in keys {
            let seq: Vec<bool> = rows.iter().map(|row| row.contains(&key)).collect();
            batch.add_sequence(&seq);
        }
        assert_eq!(acc.chain(), &batch);
        assert_eq!(acc.folds(), 5);
        assert_eq!(acc.keys(), 3);
    }

    #[test]
    fn persistence_shows_up_as_sticky_probabilities() {
        // A "rolling window" style sequence: long runs of presence and
        // absence — the paper's Figure-3 signature.
        let mut chain = MarkovChain2::new();
        let mut seq = Vec::new();
        for block in 0..8 {
            let value = block % 2 == 0;
            seq.extend(std::iter::repeat_n(value, 8));
        }
        chain.add_sequence(&seq);
        // Same-state histories strongly predict staying.
        assert!(chain.p_present(PP).unwrap() > 0.8);
        assert!(chain.p_absent(AA).unwrap() > 0.8);
        assert_eq!(format!("{PP}"), "PP");
        assert_eq!(format!("{AP}"), "AP");
    }
}
