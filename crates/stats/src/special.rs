//! Special functions and distribution functions.
//!
//! Implementations follow the standard numerical recipes: Lanczos
//! log-gamma, Abramowitz–Stegun-style erf via the incomplete gamma, the
//! series/continued-fraction split for the regularized incomplete gamma,
//! and the Lentz continued fraction for the regularized incomplete beta.
//! Accuracy is ~1e-10 relative over the ranges the audit uses, verified in
//! tests against high-precision reference values.

// ytlint: allow-file(indexing) — polynomial coefficients live in fixed-size
// arrays; literal indices are bounds-checked at compile time

/// Natural log of the gamma function (Lanczos approximation, g = 7, n = 9).
pub fn ln_gamma(x: f64) -> f64 {
    // Coefficients for g=7, n=9 (Godfrey/Press).
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
        std::f64::consts::PI.ln() - (std::f64::consts::PI * x).sin().abs().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut acc = COEFFS[0];
        for (i, &c) in COEFFS.iter().enumerate().skip(1) {
            acc += c / (x + i as f64);
        }
        let t = x + 7.5;
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
    }
}

/// Regularized lower incomplete gamma P(a, x) = γ(a, x) / Γ(a).
pub fn gamma_p(a: f64, x: f64) -> f64 {
    if x < 0.0 || a <= 0.0 {
        return f64::NAN;
    }
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma Q(a, x) = 1 − P(a, x).
pub fn gamma_q(a: f64, x: f64) -> f64 {
    if x < 0.0 || a <= 0.0 {
        return f64::NAN;
    }
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Series expansion of P(a, x), valid for x < a + 1.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut n = a;
    for _ in 0..500 {
        n += 1.0;
        term *= x / n;
        sum += term;
        if term.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Modified Lentz continued fraction for Q(a, x), valid for x ≥ a + 1.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Error function, via the incomplete gamma: erf(x) = P(1/2, x²) for x ≥ 0.
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        -erf(-x)
    } else {
        gamma_p(0.5, x * x)
    }
}

/// Complementary error function.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        2.0 - erfc(-x)
    } else {
        gamma_q(0.5, x * x)
    }
}

/// Standard normal probability density.
pub fn normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF Φ(z).
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

/// Two-sided p-value for a standard-normal test statistic.
pub fn normal_p_two_sided(z: f64) -> f64 {
    (erfc(z.abs() / std::f64::consts::SQRT_2)).min(1.0)
}

/// Inverse standard normal CDF (Acklam's rational approximation, refined
/// with one Halley step; |error| < 1e-12 over (1e-300, 1−1e-16)).
pub fn normal_quantile(p: f64) -> f64 {
    if !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement step.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (0.5 * x * x).exp();
    x - u / (1.0 + 0.5 * x * u)
}

/// Regularized incomplete beta I_x(a, b), via the Lentz continued fraction.
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    if !(0.0..=1.0).contains(&x) || a <= 0.0 || b <= 0.0 {
        return f64::NAN;
    }
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    // Use the symmetry relation to keep the continued fraction convergent.
    if x < (a + 1.0) / (a + b + 2.0) {
        ln_front.exp() * beta_cf(a, b, x) / a
    } else {
        1.0 - ln_front.exp() * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Lentz continued fraction for the incomplete beta.
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..500 {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    h
}

/// χ² CDF with `df` degrees of freedom.
pub fn chi2_cdf(x: f64, df: f64) -> f64 {
    if x <= 0.0 {
        0.0
    } else {
        gamma_p(df / 2.0, x / 2.0)
    }
}

/// Upper-tail χ² probability (the p-value of a likelihood-ratio test).
pub fn chi2_sf(x: f64, df: f64) -> f64 {
    if x <= 0.0 {
        1.0
    } else {
        gamma_q(df / 2.0, x / 2.0)
    }
}

/// Student-t CDF with `df` degrees of freedom.
pub fn t_cdf(t: f64, df: f64) -> f64 {
    if df <= 0.0 {
        return f64::NAN;
    }
    let x = df / (df + t * t);
    let tail = 0.5 * beta_inc(df / 2.0, 0.5, x);
    if t >= 0.0 {
        1.0 - tail
    } else {
        tail
    }
}

/// Two-sided p-value for a t statistic.
pub fn t_p_two_sided(t: f64, df: f64) -> f64 {
    (2.0 * (1.0 - t_cdf(t.abs(), df))).clamp(0.0, 1.0)
}

/// F-distribution upper-tail probability (p-value of an F test).
pub fn f_sf(f: f64, df1: f64, df2: f64) -> f64 {
    if f <= 0.0 {
        return 1.0;
    }
    beta_inc(df2 / 2.0, df1 / 2.0, df2 / (df2 + df1 * f)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + b.abs())
    }

    #[test]
    fn ln_gamma_matches_references() {
        // Γ(n) = (n−1)! for integers.
        assert!(close(ln_gamma(1.0), 0.0, 1e-12));
        assert!(close(ln_gamma(2.0), 0.0, 1e-12));
        assert!(close(ln_gamma(5.0), 24f64.ln(), 1e-12));
        assert!(close(ln_gamma(11.0), 3_628_800f64.ln(), 1e-12));
        // Γ(1/2) = √π.
        assert!(close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12));
        // Γ(1.5) = √π/2.
        assert!(close(ln_gamma(1.5), (std::f64::consts::PI.sqrt() / 2.0).ln(), 1e-12));
        // Reflection region.
        assert!(close(ln_gamma(0.1), 2.252_712_651_734_206, 1e-10));
    }

    #[test]
    fn erf_matches_references() {
        // Reference values from Abramowitz & Stegun.
        assert!(close(erf(0.0), 0.0, 1e-15));
        assert!(close(erf(0.5), 0.520_499_877_813_046_5, 1e-10));
        assert!(close(erf(1.0), 0.842_700_792_949_714_9, 1e-10));
        assert!(close(erf(2.0), 0.995_322_265_018_952_7, 1e-10));
        assert!(close(erf(-1.0), -0.842_700_792_949_714_9, 1e-10));
        assert!(close(erfc(1.0), 0.157_299_207_050_285_1, 1e-10));
        assert!(close(erfc(3.0), 2.209_049_699_858_544e-5, 1e-8));
    }

    #[test]
    fn normal_cdf_matches_references() {
        assert!(close(normal_cdf(0.0), 0.5, 1e-14));
        assert!(close(normal_cdf(1.0), 0.841_344_746_068_542_9, 1e-10));
        assert!(close(normal_cdf(1.959_963_984_540_054), 0.975, 1e-9));
        assert!(close(normal_cdf(-2.326_347_874_040_841), 0.01, 1e-9));
        assert!(close(normal_p_two_sided(1.959_963_984_540_054), 0.05, 1e-8));
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        for &p in &[1e-10, 1e-6, 0.001, 0.01, 0.025, 0.1, 0.5, 0.9, 0.975, 0.999, 1.0 - 1e-9] {
            let z = normal_quantile(p);
            assert!(close(normal_cdf(z), p, 1e-10), "p={p}, z={z}");
        }
        assert!(close(normal_quantile(0.975), 1.959_963_984_540_054, 1e-9));
        assert_eq!(normal_quantile(0.0), f64::NEG_INFINITY);
        assert_eq!(normal_quantile(1.0), f64::INFINITY);
        assert!(normal_quantile(-0.1).is_nan());
    }

    #[test]
    fn gamma_p_q_are_complementary() {
        for &(a, x) in &[(0.5, 0.3), (1.0, 1.0), (2.5, 4.0), (10.0, 8.0), (10.0, 14.0)] {
            assert!(close(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12), "a={a} x={x}");
        }
        // P(1, x) = 1 − e^{−x}.
        assert!(close(gamma_p(1.0, 2.0), 1.0 - (-2.0f64).exp(), 1e-12));
        assert_eq!(gamma_p(1.0, 0.0), 0.0);
        assert_eq!(gamma_q(1.0, 0.0), 1.0);
    }

    #[test]
    fn chi2_matches_references() {
        // R: pchisq(3.841458820694124, df=1) = 0.95
        assert!(close(chi2_cdf(3.841_458_820_694_124, 1.0), 0.95, 1e-9));
        // R: pchisq(5.991464547107979, df=2) = 0.95
        assert!(close(chi2_cdf(5.991_464_547_107_979, 2.0), 0.95, 1e-9));
        // LR test from the paper: χ²=1137.63 on 14 df is essentially 0.
        assert!(chi2_sf(1137.63, 14.0) < 1e-200);
        assert!(close(chi2_sf(0.0, 5.0), 1.0, 1e-12));
    }

    #[test]
    fn beta_inc_matches_references() {
        // I_x(a,b) reference values (R: pbeta).
        assert!(close(beta_inc(2.0, 3.0, 0.4), 0.5248, 1e-9)); // pbeta(0.4,2,3)
        assert!(close(beta_inc(0.5, 0.5, 0.5), 0.5, 1e-9));
        assert!(close(beta_inc(5.0, 1.0, 0.8), 0.8f64.powi(5), 1e-9));
        assert_eq!(beta_inc(2.0, 2.0, 0.0), 0.0);
        assert_eq!(beta_inc(2.0, 2.0, 1.0), 1.0);
        // Symmetry: I_x(a,b) = 1 − I_{1−x}(b,a).
        for &(a, b, x) in &[(2.0, 5.0, 0.3), (7.5, 2.2, 0.8), (0.5, 0.5, 0.1)] {
            assert!(
                close(beta_inc(a, b, x), 1.0 - beta_inc(b, a, 1.0 - x), 1e-10),
                "a={a} b={b} x={x}"
            );
        }
    }

    #[test]
    fn t_cdf_matches_references() {
        // R: pt(2.0, df=10) = 0.9633060
        assert!(close(t_cdf(2.0, 10.0), 0.963_306_02, 1e-7));
        // R: pt(1.812461, df=10) = 0.95
        assert!(close(t_cdf(1.812_461_122_811_676, 10.0), 0.95, 1e-8));
        assert!(close(t_cdf(0.0, 5.0), 0.5, 1e-12));
        // Symmetry.
        assert!(close(t_cdf(-1.3, 7.0), 1.0 - t_cdf(1.3, 7.0), 1e-12));
        // Large df approaches the normal.
        assert!(close(t_cdf(1.96, 100_000.0), normal_cdf(1.96), 1e-5));
        // Two-sided p.
        assert!(close(t_p_two_sided(2.228_138_851_986_273, 10.0), 0.05, 1e-8));
    }

    #[test]
    fn f_sf_matches_references() {
        // R: pf(4.964603, 1, 10, lower.tail=FALSE) = 0.05
        assert!(close(f_sf(4.964_602_743_730_36, 1.0, 10.0), 0.05, 1e-7));
        // R: pf(122.3, 14, 5348, lower.tail=FALSE) ~ 0 (the paper's OLS F).
        assert!(f_sf(122.3, 14.0, 5348.0) < 1e-200);
        assert!(close(f_sf(0.0, 3.0, 10.0), 1.0, 1e-12));
    }
}
