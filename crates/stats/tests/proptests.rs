//! Property-based tests for the statistics crate.

use proptest::prelude::*;
use std::collections::HashSet;
use ytaudit_stats::descriptive::{describe, standardize};
use ytaudit_stats::markov::MarkovChain2;
use ytaudit_stats::matrix::Matrix;
use ytaudit_stats::ols::{OlsFit, OlsOptions};
use ytaudit_stats::rank::{midranks, pearson, spearman};
use ytaudit_stats::sets::{jaccard, set_differences};
use ytaudit_stats::special::{chi2_cdf, normal_cdf, normal_quantile, t_cdf};

// Only referenced from inside `proptest!`; offline builds that stub the
// macro out would otherwise flag it as dead.
#[allow(dead_code)]
fn finite_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e6f64..1e6, len)
}

proptest! {
    /// Jaccard is bounded, symmetric, and 1 exactly on equal sets.
    #[test]
    fn jaccard_properties(a in proptest::collection::hash_set(0u32..200, 0..60),
                          b in proptest::collection::hash_set(0u32..200, 0..60)) {
        let j = jaccard(&a, &b);
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert_eq!(j, jaccard(&b, &a));
        prop_assert_eq!(jaccard(&a, &a), 1.0);
        // Set-difference identity: |A∪B| = |A∩B| + |A−B| + |B−A|.
        let (ab, ba) = set_differences(&a, &b);
        let union: HashSet<_> = a.union(&b).collect();
        let inter = a.intersection(&b).count();
        prop_assert_eq!(union.len(), inter + ab + ba);
    }

    /// Midranks are a permutation-with-ties of 1..n: they sum to n(n+1)/2.
    #[test]
    fn midranks_sum_invariant(values in finite_vec(1..50)) {
        let ranks = midranks(&values);
        let n = values.len() as f64;
        let total: f64 = ranks.iter().sum();
        prop_assert!((total - n * (n + 1.0) / 2.0).abs() < 1e-6);
        prop_assert!(ranks.iter().all(|&r| r >= 1.0 && r <= n));
    }

    /// Correlations live in [−1, 1] and are invariant to positive affine
    /// transforms of either argument.
    #[test]
    fn correlation_bounds_and_affine_invariance(
        x in finite_vec(5..30),
        scale in 0.1f64..100.0,
        shift in -1000.0f64..1000.0,
    ) {
        // Build y as a noisy-ish deterministic companion to avoid constant
        // vectors.
        let y: Vec<f64> = x.iter().enumerate().map(|(i, v)| v * 0.5 + ((i * 7919 % 97) as f64)).collect();
        if let (Ok(c1), Ok(c2)) = (
            pearson(&x, &y),
            pearson(&x.iter().map(|v| v * scale + shift).collect::<Vec<_>>(), &y),
        ) {
            prop_assert!((-1.0..=1.0).contains(&c1.coefficient));
            prop_assert!((c1.coefficient - c2.coefficient).abs() < 1e-8);
            prop_assert!((0.0..=1.0).contains(&c1.p_value));
        }
        if let Ok(s) = spearman(&x, &y) {
            prop_assert!((-1.0..=1.0).contains(&s.coefficient));
        }
    }

    /// describe() is exact on location/scale transforms.
    #[test]
    fn describe_affine(values in finite_vec(2..40), scale in 0.001f64..1000.0, shift in -1e5f64..1e5) {
        let base = describe(&values).unwrap();
        let transformed: Vec<f64> = values.iter().map(|v| v * scale + shift).collect();
        let t = describe(&transformed).unwrap();
        prop_assert!((t.mean - (base.mean * scale + shift)).abs() < 1e-4 * (1.0 + t.mean.abs()));
        prop_assert!((t.std - base.std * scale).abs() < 1e-4 * (1.0 + t.std.abs()));
        prop_assert!(t.min <= t.mean + 1e-9 && t.mean <= t.max + 1e-9);
    }

    /// Standardized vectors have mean ~0 and sd ~1 (when non-constant).
    #[test]
    fn standardize_properties(values in finite_vec(3..40)) {
        let z = standardize(&values);
        prop_assert_eq!(z.len(), values.len());
        let d = describe(&z).unwrap();
        if d.std > 0.0 {
            prop_assert!(d.mean.abs() < 1e-8);
            prop_assert!((d.std - 1.0).abs() < 1e-8);
        }
    }

    /// Solving a random well-conditioned SPD system and substituting back
    /// reproduces the RHS.
    #[test]
    fn spd_solve_round_trip(seed in 0u64..1000, n in 2usize..8) {
        // Deterministic pseudo-random SPD matrix A = BᵀB + nI.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 500.0 - 1.0
        };
        let b_rows: Vec<Vec<f64>> = (0..n).map(|_| (0..n).map(|_| next()).collect()).collect();
        let b = Matrix::from_rows(&b_rows).unwrap();
        let mut a = b.transpose().matmul(&b).unwrap();
        a.add_ridge(n as f64);
        let rhs: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = a.solve_spd(&rhs).unwrap();
        let back = a.matvec(&x).unwrap();
        for (r, br) in rhs.iter().zip(&back) {
            prop_assert!((r - br).abs() < 1e-8);
        }
        // LU agrees with Cholesky.
        let x_lu = a.solve(&rhs).unwrap();
        for (u, v) in x.iter().zip(&x_lu) {
            prop_assert!((u - v).abs() < 1e-8);
        }
    }

    /// OLS on exactly-linear data recovers the coefficients regardless of
    /// the design points.
    #[test]
    fn ols_exact_recovery(
        xs in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 10..40),
        b0 in -10.0f64..10.0, b1 in -10.0f64..10.0, b2 in -10.0f64..10.0,
    ) {
        // Ensure the design is not collinear by perturbing the second
        // column deterministically.
        let rows: Vec<Vec<f64>> = xs.iter().enumerate()
            .map(|(i, &(a, b))| vec![a, b + (i as f64) * 0.01])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| b0 + b1 * r[0] + b2 * r[1]).collect();
        if let Ok(fit) = OlsFit::fit(&["a", "b"], &rows, &y, OlsOptions::default()) {
            prop_assert!((fit.coefficients[0] - b0).abs() < 1e-5);
            prop_assert!((fit.coefficients[1] - b1).abs() < 1e-5);
            prop_assert!((fit.coefficients[2] - b2).abs() < 1e-5);
        }
    }

    /// Distribution functions are monotone CDFs in [0, 1], and the normal
    /// quantile inverts the normal CDF.
    #[test]
    fn distribution_functions_are_cdfs(z in -8.0f64..8.0, df in 1.0f64..200.0) {
        let p = normal_cdf(z);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!(normal_cdf(z + 0.1) >= p);
        // Inversion accuracy is limited by the float spacing of p near the
        // tails (δz ≈ δp/φ(z)); restrict the check to where p carries
        // enough precision.
        if z.abs() < 6.0 && p > 1e-10 && p < 1.0 - 1e-10 {
            prop_assert!((normal_quantile(p) - z).abs() < 1e-6);
        }
        let tp = t_cdf(z, df);
        prop_assert!((0.0..=1.0).contains(&tp));
        prop_assert!(t_cdf(z + 0.1, df) >= tp - 1e-12);
        let x = z.abs() * 3.0;
        let cp = chi2_cdf(x, df);
        prop_assert!((0.0..=1.0).contains(&cp));
        prop_assert!(chi2_cdf(x + 0.1, df) >= cp - 1e-12);
    }

    /// Markov transition rows always sum to 1 over observed states, and
    /// counts equal (sequence length − 2) per sequence.
    #[test]
    fn markov_conservation(seqs in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 3..20), 1..10)) {
        let mut chain = MarkovChain2::new();
        let mut expected = 0u64;
        for seq in &seqs {
            chain.add_sequence(seq);
            expected += (seq.len() - 2) as u64;
        }
        let total: u64 = ytaudit_stats::markov::State2::ALL.iter().map(|&s| chain.total(s)).sum();
        prop_assert_eq!(total, expected);
        for state in ytaudit_stats::markov::State2::ALL {
            if chain.total(state) > 0 {
                let p = chain.p_present(state).unwrap();
                prop_assert!((0.0..=1.0).contains(&p));
            }
        }
    }
}

/// Fold-order invariance and `merge` associativity for the streaming
/// accumulators behind `analyze --follow`.
///
/// These are plain `#[test]`s driven by an explicit xorshift generator
/// (seeded from `YTAUDIT_PROP_SEED`, CI rotates it per commit) so they
/// run identically everywhere. The contract under test is the one the
/// batch/follow equivalence suite leans on:
///
/// * count-based state (`ObservationSet`, `MarkovChain2`, every `n`,
///   `min`, `max`) is *exactly* fold-order invariant;
/// * float sums (`Moments`, `OlsAccumulator`) are invariant up to
///   reassociation error, bounded here at 1e-9 relative;
/// * `merge` is associative under the same bounds.
///
/// The sequence accumulators (`OverlapAccumulator`,
/// `PresenceAccumulator`) are deliberately *not* order-invariant — they
/// model ordered snapshot sequences — so for them the property is
/// determinism: identical input sequences produce identical state.
mod fold_invariance {
    use ytaudit_stats::descriptive::Moments;
    use ytaudit_stats::markov::{MarkovChain2, PresenceAccumulator, State2};
    use ytaudit_stats::ols::OlsAccumulator;
    use ytaudit_stats::ordinal::ObservationSet;
    use ytaudit_stats::sets::OverlapAccumulator;

    /// xorshift64*: tiny, seedable, dependency-free.
    struct Rng(u64);

    impl Rng {
        fn seeded(salt: u64) -> Rng {
            // Numeric, or an FNV-hashed commit SHA — the shard-equivalence
            // suite's rotation convention.
            let seed = match std::env::var("YTAUDIT_PROP_SEED") {
                Ok(raw) => raw.parse().unwrap_or_else(|_| {
                    raw.bytes().fold(0xCBF2_9CE4_8422_2325u64, |h, b| {
                        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
                    })
                }),
                Err(_) => 0x5EED_CAFE,
            };
            Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt | 1)
        }

        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n.max(1)
        }

        /// A finite f64 in roughly [-1e3, 1e3].
        fn f64(&mut self) -> f64 {
            (self.next() % 2_000_001) as f64 / 1_000.0 - 1_000.0
        }

        /// Fisher–Yates.
        fn shuffle<T>(&mut self, items: &mut [T]) {
            for i in (1..items.len()).rev() {
                items.swap(i, self.below(i as u64 + 1) as usize);
            }
        }
    }

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn moments_fold_order_invariance() {
        let mut rng = Rng::seeded(1);
        for _ in 0..50 {
            let values: Vec<f64> = (0..2 + rng.below(60)).map(|_| rng.f64()).collect();
            let mut shuffled = values.clone();
            rng.shuffle(&mut shuffled);
            let mut a = Moments::new();
            let mut b = Moments::new();
            values.iter().for_each(|&v| a.fold(v));
            shuffled.iter().for_each(|&v| b.fold(v));
            let (da, db) = (a.finish().unwrap(), b.finish().unwrap());
            assert_eq!(da.n, db.n);
            assert_eq!(da.min, db.min, "min is exact");
            assert_eq!(da.max, db.max, "max is exact");
            assert!(close(da.mean, db.mean, 1e-9), "{} vs {}", da.mean, db.mean);
            assert!(close(da.std, db.std, 1e-9), "{} vs {}", da.std, db.std);
        }
    }

    #[test]
    fn moments_merge_is_associative_and_matches_folding() {
        let mut rng = Rng::seeded(2);
        for _ in 0..50 {
            let chunks: Vec<Vec<f64>> = (0..3)
                .map(|_| (0..1 + rng.below(20)).map(|_| rng.f64()).collect())
                .collect();
            let acc = |values: &[f64]| {
                let mut m = Moments::new();
                values.iter().for_each(|&v| m.fold(v));
                m
            };
            let (a, b, c) = (acc(&chunks[0]), acc(&chunks[1]), acc(&chunks[2]));
            // (a ⊕ b) ⊕ c
            let mut left = a;
            left.merge(&b);
            left.merge(&c);
            // a ⊕ (b ⊕ c)
            let mut bc = b;
            bc.merge(&c);
            let mut right = a;
            right.merge(&bc);
            // ⊕ everything at once, by folding.
            let all: Vec<f64> = chunks.concat();
            let folded = acc(&all);
            for (x, y) in [(left, right), (left, folded)] {
                let (dx, dy) = (x.finish().unwrap(), y.finish().unwrap());
                assert_eq!(dx.n, dy.n);
                assert_eq!(dx.min, dy.min);
                assert_eq!(dx.max, dy.max);
                assert!(close(dx.mean, dy.mean, 1e-9));
                assert!(close(dx.std, dy.std, 1e-9));
            }
        }
    }

    #[test]
    fn ols_accumulator_fold_order_invariance_and_merge_associativity() {
        let mut rng = Rng::seeded(3);
        for _ in 0..25 {
            let p = 2 + rng.below(3) as usize;
            let rows: Vec<(Vec<f64>, f64)> = (0..p as u64 + 4 + rng.below(30))
                .map(|i| {
                    let mut row: Vec<f64> = (0..p - 1).map(|_| rng.f64()).collect();
                    row.insert(0, 1.0);
                    // A deterministic, non-collinear response.
                    let y = row.iter().sum::<f64>() + i as f64 * 0.25;
                    (row, y)
                })
                .collect();
            let acc = |obs: &[(Vec<f64>, f64)]| {
                let mut a = OlsAccumulator::new(p);
                for (row, y) in obs {
                    a.fold(row, *y).unwrap();
                }
                a
            };
            let ordered = acc(&rows);
            let mut shuffled_rows = rows.clone();
            rng.shuffle(&mut shuffled_rows);
            let shuffled = acc(&shuffled_rows);
            assert_eq!(ordered.count(), shuffled.count());
            for (bo, bs) in ordered.solve().unwrap().iter().zip(shuffled.solve().unwrap()) {
                assert!(close(*bo, bs, 1e-6), "{bo} vs {bs}");
            }
            // Merge associativity over three shards.
            let third = rows.len() / 3;
            let (s1, s2, s3) = (
                acc(&rows[..third]),
                acc(&rows[third..2 * third]),
                acc(&rows[2 * third..]),
            );
            let mut left = s1.clone();
            left.merge(&s2).unwrap();
            left.merge(&s3).unwrap();
            let mut s23 = s2.clone();
            s23.merge(&s3).unwrap();
            let mut right = s1.clone();
            right.merge(&s23).unwrap();
            assert_eq!(left.count(), right.count());
            assert_eq!(left.count(), ordered.count());
            for (xl, xr) in left.xty().iter().zip(right.xty()) {
                assert!(close(*xl, *xr, 1e-9));
            }
        }
    }

    #[test]
    fn observation_set_fold_order_and_merge_are_bit_exact() {
        let mut rng = Rng::seeded(4);
        for _ in 0..50 {
            let obs: Vec<(Vec<f64>, usize)> = (0..1 + rng.below(40))
                .map(|_| {
                    // A small value pool forces repeated rows (counted, not
                    // stored) and repeated categories.
                    let row: Vec<f64> = (0..3).map(|_| rng.below(4) as f64).collect();
                    (row, rng.below(3) as usize)
                })
                .collect();
            let mut shuffled_obs = obs.clone();
            rng.shuffle(&mut shuffled_obs);
            let build = |obs: &[(Vec<f64>, usize)]| {
                let mut s = ObservationSet::new();
                for (row, category) in obs {
                    s.fold(row, *category);
                }
                s
            };
            let (ordered, shuffled) = (build(&obs), build(&shuffled_obs));
            assert_eq!(ordered, shuffled, "counted-row state is order-free");
            assert_eq!(ordered.count(), obs.len() as u64);
            // Merge = fold of the concatenation, exactly, in any grouping.
            let half = obs.len() / 2;
            let (a, b) = (build(&obs[..half]), build(&obs[half..]));
            let mut merged = a.clone();
            merged.merge(&b);
            assert_eq!(merged, ordered);
            let mut flipped = b;
            flipped.merge(&a);
            assert_eq!(flipped, ordered, "merge commutes exactly");
        }
    }

    #[test]
    fn markov_chain_fold_order_and_merge_are_exact() {
        let mut rng = Rng::seeded(5);
        for _ in 0..50 {
            let seqs: Vec<Vec<bool>> = (0..1 + rng.below(8))
                .map(|_| (0..3 + rng.below(12)).map(|_| rng.below(2) == 0).collect())
                .collect();
            let build = |seqs: &[Vec<bool>]| {
                let mut c = MarkovChain2::new();
                for seq in seqs {
                    c.add_sequence(seq);
                }
                c
            };
            let ordered = build(&seqs);
            let mut shuffled_seqs = seqs.clone();
            rng.shuffle(&mut shuffled_seqs);
            let shuffled = build(&shuffled_seqs);
            // Counts are integers: any fold order and any merge grouping
            // gives the same chain, bit for bit.
            let half = seqs.len() / 2;
            let mut merged = build(&seqs[..half]);
            merged.merge(&build(&seqs[half..]));
            for state in State2::ALL {
                for next in [true, false] {
                    assert_eq!(ordered.count(state, next), shuffled.count(state, next));
                    assert_eq!(ordered.count(state, next), merged.count(state, next));
                }
            }
        }
    }

    #[test]
    fn sequence_accumulators_are_deterministic() {
        use std::collections::HashSet;
        let mut rng = Rng::seeded(6);
        for _ in 0..20 {
            let snapshots: Vec<HashSet<u64>> = (0..3 + rng.below(8))
                .map(|_| (0..rng.below(12)).map(|_| rng.below(30)).collect())
                .collect();
            let mut overlap_a = OverlapAccumulator::new();
            let mut overlap_b = OverlapAccumulator::new();
            let mut presence_a = PresenceAccumulator::new();
            let mut presence_b = PresenceAccumulator::new();
            for set in &snapshots {
                let step_a = overlap_a.fold(set.clone());
                let step_b = overlap_b.fold(set.clone());
                assert_eq!(step_a.jaccard_prev, step_b.jaccard_prev);
                assert_eq!(step_a.jaccard_first, step_b.jaccard_first);
                presence_a.fold(set);
                presence_b.fold(set);
            }
            assert_eq!(overlap_a.folds(), snapshots.len() as u64);
            for state in State2::ALL {
                for next in [true, false] {
                    assert_eq!(
                        presence_a.chain().count(state, next),
                        presence_b.chain().count(state, next)
                    );
                }
            }
        }
    }
}
