//! Property-based tests for the statistics crate.

use proptest::prelude::*;
use std::collections::HashSet;
use ytaudit_stats::descriptive::{describe, standardize};
use ytaudit_stats::markov::MarkovChain2;
use ytaudit_stats::matrix::Matrix;
use ytaudit_stats::ols::{OlsFit, OlsOptions};
use ytaudit_stats::rank::{midranks, pearson, spearman};
use ytaudit_stats::sets::{jaccard, set_differences};
use ytaudit_stats::special::{chi2_cdf, normal_cdf, normal_quantile, t_cdf};

fn finite_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e6f64..1e6, len)
}

proptest! {
    /// Jaccard is bounded, symmetric, and 1 exactly on equal sets.
    #[test]
    fn jaccard_properties(a in proptest::collection::hash_set(0u32..200, 0..60),
                          b in proptest::collection::hash_set(0u32..200, 0..60)) {
        let j = jaccard(&a, &b);
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert_eq!(j, jaccard(&b, &a));
        prop_assert_eq!(jaccard(&a, &a), 1.0);
        // Set-difference identity: |A∪B| = |A∩B| + |A−B| + |B−A|.
        let (ab, ba) = set_differences(&a, &b);
        let union: HashSet<_> = a.union(&b).collect();
        let inter = a.intersection(&b).count();
        prop_assert_eq!(union.len(), inter + ab + ba);
    }

    /// Midranks are a permutation-with-ties of 1..n: they sum to n(n+1)/2.
    #[test]
    fn midranks_sum_invariant(values in finite_vec(1..50)) {
        let ranks = midranks(&values);
        let n = values.len() as f64;
        let total: f64 = ranks.iter().sum();
        prop_assert!((total - n * (n + 1.0) / 2.0).abs() < 1e-6);
        prop_assert!(ranks.iter().all(|&r| r >= 1.0 && r <= n));
    }

    /// Correlations live in [−1, 1] and are invariant to positive affine
    /// transforms of either argument.
    #[test]
    fn correlation_bounds_and_affine_invariance(
        x in finite_vec(5..30),
        scale in 0.1f64..100.0,
        shift in -1000.0f64..1000.0,
    ) {
        // Build y as a noisy-ish deterministic companion to avoid constant
        // vectors.
        let y: Vec<f64> = x.iter().enumerate().map(|(i, v)| v * 0.5 + ((i * 7919 % 97) as f64)).collect();
        if let (Ok(c1), Ok(c2)) = (
            pearson(&x, &y),
            pearson(&x.iter().map(|v| v * scale + shift).collect::<Vec<_>>(), &y),
        ) {
            prop_assert!((-1.0..=1.0).contains(&c1.coefficient));
            prop_assert!((c1.coefficient - c2.coefficient).abs() < 1e-8);
            prop_assert!((0.0..=1.0).contains(&c1.p_value));
        }
        if let Ok(s) = spearman(&x, &y) {
            prop_assert!((-1.0..=1.0).contains(&s.coefficient));
        }
    }

    /// describe() is exact on location/scale transforms.
    #[test]
    fn describe_affine(values in finite_vec(2..40), scale in 0.001f64..1000.0, shift in -1e5f64..1e5) {
        let base = describe(&values).unwrap();
        let transformed: Vec<f64> = values.iter().map(|v| v * scale + shift).collect();
        let t = describe(&transformed).unwrap();
        prop_assert!((t.mean - (base.mean * scale + shift)).abs() < 1e-4 * (1.0 + t.mean.abs()));
        prop_assert!((t.std - base.std * scale).abs() < 1e-4 * (1.0 + t.std.abs()));
        prop_assert!(t.min <= t.mean + 1e-9 && t.mean <= t.max + 1e-9);
    }

    /// Standardized vectors have mean ~0 and sd ~1 (when non-constant).
    #[test]
    fn standardize_properties(values in finite_vec(3..40)) {
        let z = standardize(&values);
        prop_assert_eq!(z.len(), values.len());
        let d = describe(&z).unwrap();
        if d.std > 0.0 {
            prop_assert!(d.mean.abs() < 1e-8);
            prop_assert!((d.std - 1.0).abs() < 1e-8);
        }
    }

    /// Solving a random well-conditioned SPD system and substituting back
    /// reproduces the RHS.
    #[test]
    fn spd_solve_round_trip(seed in 0u64..1000, n in 2usize..8) {
        // Deterministic pseudo-random SPD matrix A = BᵀB + nI.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 500.0 - 1.0
        };
        let b_rows: Vec<Vec<f64>> = (0..n).map(|_| (0..n).map(|_| next()).collect()).collect();
        let b = Matrix::from_rows(&b_rows).unwrap();
        let mut a = b.transpose().matmul(&b).unwrap();
        a.add_ridge(n as f64);
        let rhs: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = a.solve_spd(&rhs).unwrap();
        let back = a.matvec(&x).unwrap();
        for (r, br) in rhs.iter().zip(&back) {
            prop_assert!((r - br).abs() < 1e-8);
        }
        // LU agrees with Cholesky.
        let x_lu = a.solve(&rhs).unwrap();
        for (u, v) in x.iter().zip(&x_lu) {
            prop_assert!((u - v).abs() < 1e-8);
        }
    }

    /// OLS on exactly-linear data recovers the coefficients regardless of
    /// the design points.
    #[test]
    fn ols_exact_recovery(
        xs in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 10..40),
        b0 in -10.0f64..10.0, b1 in -10.0f64..10.0, b2 in -10.0f64..10.0,
    ) {
        // Ensure the design is not collinear by perturbing the second
        // column deterministically.
        let rows: Vec<Vec<f64>> = xs.iter().enumerate()
            .map(|(i, &(a, b))| vec![a, b + (i as f64) * 0.01])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| b0 + b1 * r[0] + b2 * r[1]).collect();
        if let Ok(fit) = OlsFit::fit(&["a", "b"], &rows, &y, OlsOptions::default()) {
            prop_assert!((fit.coefficients[0] - b0).abs() < 1e-5);
            prop_assert!((fit.coefficients[1] - b1).abs() < 1e-5);
            prop_assert!((fit.coefficients[2] - b2).abs() < 1e-5);
        }
    }

    /// Distribution functions are monotone CDFs in [0, 1], and the normal
    /// quantile inverts the normal CDF.
    #[test]
    fn distribution_functions_are_cdfs(z in -8.0f64..8.0, df in 1.0f64..200.0) {
        let p = normal_cdf(z);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!(normal_cdf(z + 0.1) >= p);
        // Inversion accuracy is limited by the float spacing of p near the
        // tails (δz ≈ δp/φ(z)); restrict the check to where p carries
        // enough precision.
        if z.abs() < 6.0 && p > 1e-10 && p < 1.0 - 1e-10 {
            prop_assert!((normal_quantile(p) - z).abs() < 1e-6);
        }
        let tp = t_cdf(z, df);
        prop_assert!((0.0..=1.0).contains(&tp));
        prop_assert!(t_cdf(z + 0.1, df) >= tp - 1e-12);
        let x = z.abs() * 3.0;
        let cp = chi2_cdf(x, df);
        prop_assert!((0.0..=1.0).contains(&cp));
        prop_assert!(chi2_cdf(x + 0.1, df) >= cp - 1e-12);
    }

    /// Markov transition rows always sum to 1 over observed states, and
    /// counts equal (sequence length − 2) per sequence.
    #[test]
    fn markov_conservation(seqs in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 3..20), 1..10)) {
        let mut chain = MarkovChain2::new();
        let mut expected = 0u64;
        for seq in &seqs {
            chain.add_sequence(seq);
            expected += (seq.len() - 2) as u64;
        }
        let total: u64 = ytaudit_stats::markov::State2::ALL.iter().map(|&s| chain.total(s)).sum();
        prop_assert_eq!(total, expected);
        for state in ytaudit_stats::markov::State2::ALL {
            if chain.total(state) > 0 {
                let p = chain.p_present(state).unwrap();
                prop_assert!((0.0..=1.0).contains(&p));
            }
        }
    }
}
