//! Lease-edge behavior, driven through the coordinator's typed API
//! under a manual clock: renewals racing expiry, duplicate ships after
//! a lease re-issue, and coordinator restart with leases outstanding.
//!
//! Shard payloads are synthetic (store-layer commits, no API client),
//! which keeps each case fast and makes the installed bytes a pure
//! function of the plan — the same trick the workspace's shard-merge
//! suites use.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;
use ytaudit_core::dataset::{HourlyResult, TopicSnapshot, VideoInfo};
use ytaudit_core::shard::shard_configs;
use ytaudit_core::{CollectorConfig, CollectorSink, TopicCommit};
use ytaudit_dist::protocol::{LeaseRequest, RenewRequest, ShipBegin, ShipChunk, ShipCommit};
use ytaudit_dist::{
    classify, Coordinator, DistErrorClass, DistErrorKind, LeaseGrant, LeaseReply, ShipReply,
};
use ytaudit_platform::clock::ManualClock;
use ytaudit_store::crc::crc32;
use ytaudit_store::{Store, TempDir};
use ytaudit_types::{ChannelId, Timestamp, Topic, VideoId};

const TTL: Duration = Duration::from_secs(10);

fn plan() -> CollectorConfig {
    CollectorConfig::quick(vec![Topic::Higgs, Topic::Blm], 2)
}

fn coordinator(parent: &CollectorConfig, dest: &Path, clock: &ManualClock) -> Coordinator {
    Coordinator::new(parent, 2, dest, TTL, Arc::new(clock.clone())).expect("coordinator")
}

fn grant(coord: &Coordinator, worker: &str) -> LeaseGrant {
    match coord.lease(&LeaseRequest {
        worker: worker.to_string(),
    }) {
        Ok(LeaseReply::Grant(grant)) => grant,
        other => panic!("expected a grant, got {other:?}"),
    }
}

fn vid(n: u64) -> VideoId {
    VideoId::new(format!("vid-{n:08}"))
}

/// Builds the complete shard store for topic range `range` of the
/// 2-way split at `path` and returns its bytes. Pure in `(plan,
/// range)`, so two workers building the same range produce identical
/// files.
fn build_shard_bytes(parent: &CollectorConfig, range: usize, path: &Path) -> Vec<u8> {
    let cfg = shard_configs(parent, 2)
        .into_iter()
        .nth(range)
        .expect("range in split");
    let mut store = Store::create(path).expect("create shard");
    CollectorSink::begin(&mut store, &cfg).expect("begin");
    for (snapshot, &date) in cfg.schedule.dates().iter().enumerate() {
        for &topic in &cfg.topics {
            let base = topic.index() as u64 * 100 + snapshot as u64;
            let data = TopicSnapshot {
                hours: vec![HourlyResult {
                    hour: 0,
                    video_ids: vec![vid(base)],
                    total_results: 40_000 + base,
                }],
                meta_returned: vec![vid(base)],
            };
            let videos = vec![VideoInfo {
                id: vid(base),
                channel_id: ChannelId::new(format!("ch-{:03}", base % 3)),
                published_at: Timestamp::from_ymd(2025, 1, 20).expect("date"),
                duration_secs: 60 + base,
                is_sd: base.is_multiple_of(2),
                views: base * 100,
                likes: base * 3,
                comments: base,
            }];
            CollectorSink::commit_topic_snapshot(
                &mut store,
                TopicCommit {
                    topic,
                    snapshot,
                    date,
                    data: &data,
                    comments: None,
                    videos: &videos,
                    quota_delta: 600 + base,
                },
            )
            .expect("commit");
        }
    }
    CollectorSink::finish(&mut store, &[], 0).expect("finish");
    assert!(store.complete());
    drop(store);
    std::fs::read(path).expect("read shard")
}

/// Ships `bytes` for the granted range in two chunks through the typed
/// API, returning the commit reply.
fn ship(coord: &Coordinator, grant: &LeaseGrant, bytes: &[u8]) -> ShipReply {
    let total_len = bytes.len() as u64;
    let total_crc = crc32(bytes);
    let begin = coord
        .ship_begin(&ShipBegin {
            range: grant.range,
            token: grant.token,
            total_len,
            total_crc,
        })
        .expect("ship begin");
    if begin == ShipReply::Duplicate {
        return ShipReply::Duplicate;
    }
    let mid = bytes.len() / 2;
    for (offset, chunk) in [(0usize, &bytes[..mid]), (mid, &bytes[mid..])] {
        coord
            .ship_chunk(&ShipChunk {
                range: grant.range,
                token: grant.token,
                offset: offset as u64,
                crc: crc32(chunk),
                bytes: chunk.to_vec(),
            })
            .expect("ship chunk");
    }
    coord
        .ship_commit(&ShipCommit {
            range: grant.range,
            token: grant.token,
            total_len,
            total_crc,
        })
        .expect("ship commit")
}

fn receiving_sibling(canonical: &Path) -> PathBuf {
    let mut name = canonical.file_name().expect("file name").to_os_string();
    name.push(".receiving");
    canonical.with_file_name(name)
}

#[test]
fn renewal_inside_ttl_extends_the_lease_and_expiry_fences_it() {
    let dir = TempDir::new("dist-lease-renew");
    let parent = plan();
    let clock = ManualClock::new();
    let coord = coordinator(&parent, &dir.file("merged.yts"), &clock);

    let g = grant(&coord, "racer");
    let renew = RenewRequest {
        range: g.range,
        token: g.token,
    };

    // Two renewals, each just inside the ttl: the expiry keeps moving.
    clock.advance(TTL - Duration::from_secs(1));
    assert_eq!(coord.renew(&renew).expect("first renewal").ttl, TTL);
    clock.advance(TTL - Duration::from_secs(1));
    coord.renew(&renew).expect("second renewal");

    // Now the worker goes quiet for a full ttl: the lease expires and
    // the next renewal loses the race.
    clock.advance(TTL);
    let err = coord.renew(&renew).expect_err("expired lease must not renew");
    assert_eq!(err.kind, DistErrorKind::LeaseExpired);
    assert_eq!(classify(err.kind), DistErrorClass::Abandon);
    assert_eq!(coord.counters().leases_expired, 1);

    // The range is grantable again, under a fresh fencing token.
    let reissued = grant(&coord, "successor");
    assert_eq!(reissued.range, g.range);
    assert_ne!(reissued.token, g.token);
    assert_eq!(coord.counters().leases_reissued, 1);
    assert_eq!(coord.counters().leases_granted, 2);

    // The stale holder's renewals stay fenced even though the range is
    // leased again.
    let err = coord.renew(&renew).expect_err("stale token must stay dead");
    assert_eq!(err.kind, DistErrorKind::LeaseExpired);
}

#[test]
fn duplicate_ship_after_reissued_lease_is_a_verified_no_op() {
    let dir = TempDir::new("dist-lease-dup-ship");
    let parent = plan();
    let clock = ManualClock::new();
    let dest = dir.file("merged.yts");
    let coord = coordinator(&parent, &dest, &clock);

    // Worker A leases range 0 and builds its shard, but stalls before
    // shipping; the lease expires.
    let a = grant(&coord, "a");
    let bytes = build_shard_bytes(&parent, a.range as usize, &dir.file("a-local.yts"));
    clock.advance(TTL);

    // Worker B gets the re-issued range and ships to completion.
    let b = grant(&coord, "b");
    assert_eq!(b.range, a.range);
    assert_eq!(ship(&coord, &b, &bytes), ShipReply::Accepted);
    assert_eq!(coord.counters().shards_received, 1);

    // The canonical shard is installed; remember its exact bytes.
    let canonical = ytaudit_store::discover_shard_paths(&dest).expect("installed shard");
    assert_eq!(canonical.len(), 1);
    let installed = std::fs::read(&canonical[0]).expect("installed bytes");

    // A wakes up and ships late: begin answers Duplicate immediately,
    // commit is equally a no-op, and the installed file is untouched.
    assert_eq!(ship(&coord, &a, &bytes), ShipReply::Duplicate);
    let late_commit = coord
        .ship_commit(&ShipCommit {
            range: a.range,
            token: a.token,
            total_len: bytes.len() as u64,
            total_crc: crc32(&bytes),
        })
        .expect("late commit");
    assert_eq!(late_commit, ShipReply::Duplicate);
    assert_eq!(std::fs::read(&canonical[0]).expect("re-read"), installed);
    assert_eq!(coord.counters().shards_received, 1);
    assert_eq!(coord.counters().duplicate_ships, 2);
}

#[test]
fn stale_token_cannot_touch_an_in_flight_reissued_upload() {
    let dir = TempDir::new("dist-lease-fence");
    let parent = plan();
    let clock = ManualClock::new();
    let coord = coordinator(&parent, &dir.file("merged.yts"), &clock);

    let a = grant(&coord, "a");
    let bytes = build_shard_bytes(&parent, a.range as usize, &dir.file("a-local.yts"));
    clock.advance(TTL);
    let b = grant(&coord, "b");

    // B has begun its upload; A's stale token must bounce off every
    // ship endpoint while the range is leased to B.
    coord
        .ship_begin(&ShipBegin {
            range: b.range,
            token: b.token,
            total_len: bytes.len() as u64,
            total_crc: crc32(&bytes),
        })
        .expect("b begins");
    let err = coord
        .ship_chunk(&ShipChunk {
            range: a.range,
            token: a.token,
            offset: 0,
            crc: crc32(&bytes),
            bytes: bytes.clone(),
        })
        .expect_err("stale chunk must be fenced");
    assert_eq!(err.kind, DistErrorKind::LeaseExpired);
    let err = coord
        .ship_begin(&ShipBegin {
            range: a.range,
            token: a.token,
            total_len: bytes.len() as u64,
            total_crc: crc32(&bytes),
        })
        .expect_err("stale begin must be fenced");
    assert_eq!(err.kind, DistErrorKind::LeaseExpired);
}

#[test]
fn restarted_coordinator_adopts_committed_shards_and_reopens_leased_ranges() {
    let dir = TempDir::new("dist-lease-restart");
    let parent = plan();
    let clock = ManualClock::new();
    let dest = dir.file("merged.yts");

    let (committed_range, leased_range, installed_path);
    {
        let coord = coordinator(&parent, &dest, &clock);
        // Range A is shipped and committed; range B is leased out when
        // the coordinator dies.
        let a = grant(&coord, "a");
        let bytes = build_shard_bytes(&parent, a.range as usize, &dir.file("a-local.yts"));
        assert_eq!(ship(&coord, &a, &bytes), ShipReply::Accepted);
        let b = grant(&coord, "b");
        assert_ne!(a.range, b.range);
        committed_range = a.range;
        leased_range = b.range;
        installed_path = ytaudit_store::discover_shard_paths(&dest).expect("shard")[0].clone();
    }

    // A stale `.receiving` tmp from a commit interrupted by the crash.
    let stray = receiving_sibling(&installed_path);
    std::fs::write(&stray, b"torn upload").expect("stray tmp");

    let coord = coordinator(&parent, &dest, &clock);
    assert!(!stray.exists(), "recovery must clear stale .receiving tmps");

    // The committed range was adopted from disk: shipping it again is a
    // duplicate without any lease.
    let dup = coord
        .ship_begin(&ShipBegin {
            range: committed_range,
            token: 0,
            total_len: 0,
            total_crc: 0,
        })
        .expect("duplicate begin");
    assert_eq!(dup, ShipReply::Duplicate);

    // The range that was leased out when the coordinator died is simply
    // grantable again — its lease died with the coordinator's state.
    let regrant = grant(&coord, "successor");
    assert_eq!(regrant.range, leased_range);
    assert!(!coord.all_committed());

    // Adoption restores durable state, not history: the restart's
    // counters start clean.
    assert_eq!(coord.counters().shards_received, 0);
    assert_eq!(coord.counters().leases_granted, 1);
}
