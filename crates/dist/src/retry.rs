//! Worker-side disposition of every dist wire error.
//!
//! The worker's reaction to a coordinator error is a correctness
//! decision, not a convenience: retrying a `LeaseExpired` would fight
//! the worker the range was re-issued to, while abandoning a transient
//! `Internal` would strand a healthy range. As with the scheduler's
//! task classifier, the `retry-exhaustive` lint enforces that
//! [`classify`] takes an explicit position on every [`DistErrorKind`]
//! variant and contains no wildcard arm.

use crate::protocol::DistErrorKind;

/// What the worker should do about a dist error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistErrorClass {
    /// Transient: retry the same call after a short pause (bounded).
    Retry,
    /// The upload state is desynchronized: restart the ship from
    /// `ship/begin` (bounded).
    RestartShip,
    /// The range no longer belongs to this worker: stop working on it
    /// and ask for a fresh lease. Never an error for the run.
    Abandon,
    /// A protocol or data bug: surface it and stop the worker.
    Fatal,
}

/// Classifies a dist wire error into the worker's reaction.
pub fn classify(kind: DistErrorKind) -> DistErrorClass {
    match kind {
        // The coordinator hit a transient failure (I/O hiccup, injected
        // crash): the call is safe to repeat.
        DistErrorKind::Internal => DistErrorClass::Retry,
        // Upload-state mismatches: whatever the coordinator holds no
        // longer lines up with what we sent (a lost chunk, a coordinator
        // restart mid-upload). Re-opening the upload resets both sides.
        DistErrorKind::ChunkOutOfOrder => DistErrorClass::RestartShip,
        DistErrorKind::ChunkCrcMismatch => DistErrorClass::RestartShip,
        DistErrorKind::ShipIncomplete => DistErrorClass::RestartShip,
        // The lease fence says someone else owns this range now (or it
        // is already committed): competing with them can only waste
        // work, never win.
        DistErrorKind::LeaseExpired => DistErrorClass::Abandon,
        DistErrorKind::UnknownRange => DistErrorClass::Abandon,
        // We shipped bytes that do not decode as the leased shard, or
        // sent a malformed request: a bug, not a condition to retry.
        DistErrorKind::ShardInvalid => DistErrorClass::Fatal,
        DistErrorKind::BadRequest => DistErrorClass::Fatal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_is_classified() {
        // One assertion per variant, so a new variant that is added to
        // the match without a deliberate class choice fails loudly here
        // (and the retry-exhaustive lint fails if it never reaches the
        // match at all).
        assert_eq!(classify(DistErrorKind::Internal), DistErrorClass::Retry);
        assert_eq!(
            classify(DistErrorKind::ChunkOutOfOrder),
            DistErrorClass::RestartShip
        );
        assert_eq!(
            classify(DistErrorKind::ChunkCrcMismatch),
            DistErrorClass::RestartShip
        );
        assert_eq!(
            classify(DistErrorKind::ShipIncomplete),
            DistErrorClass::RestartShip
        );
        assert_eq!(
            classify(DistErrorKind::LeaseExpired),
            DistErrorClass::Abandon
        );
        assert_eq!(
            classify(DistErrorKind::UnknownRange),
            DistErrorClass::Abandon
        );
        assert_eq!(classify(DistErrorKind::ShardInvalid), DistErrorClass::Fatal);
        assert_eq!(classify(DistErrorKind::BadRequest), DistErrorClass::Fatal);
    }
}
