//! The worker: leases task ranges, executes them with the ordinary
//! scheduler into a local shard store, and ships the finished shard
//! back over chunked, CRC-checked uploads.
//!
//! The worker is deliberately stateless across ranges: everything it
//! needs arrives in the [`LeaseGrant`] (the plan, the fencing token,
//! and — for the finish range — the channel-ID union), and everything
//! it produces leaves via the ship endpoints. Its only local state is
//! the per-range `.yts` under its work directory, which makes a
//! crashed-and-restarted worker resume collection exactly like a local
//! `collect --resume` (the store skips committed pairs without API
//! calls).
//!
//! Every coordinator error is dispatched through
//! [`crate::retry::classify`]: transient failures retry bounded,
//! upload desyncs restart the ship from `begin`, fencing failures
//! abandon the range (someone else owns it now), and protocol bugs
//! stop the worker.

use crate::coordinator::Coordinator;
use crate::protocol::{
    DistError, DistErrorKind, LeaseGrant, LeaseReply, LeaseRequest, RenewRequest, ShipBegin,
    ShipChunk, ShipCommit, ShipReply, ERROR_HEADER, LEASE_PATH, RENEW_PATH, SHIP_BEGIN_PATH,
    SHIP_CHUNK_PATH, SHIP_COMMIT_PATH,
};
use crate::retry::{classify, DistErrorClass};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use ytaudit_core::shard::{finish_config, shard_configs};
use ytaudit_client::YouTubeClient;
use ytaudit_core::{collect::fetch_channel_meta, CollectorSink};
use ytaudit_net::{HttpClient, Request, Response, Url};
use ytaudit_platform::clock::{MonotonicClock, RealClock};
use ytaudit_platform::faultpoint;
use ytaudit_sched::{Scheduler, SchedulerConfig, TransportFactory};
use ytaudit_store::crc::crc32;
use ytaudit_store::Store;
use ytaudit_types::ChannelId;

/// How a worker reaches its coordinator: over HTTP ([`HttpChannel`]) or
/// directly in process ([`LocalChannel`]); both traverse the same
/// request routing, so the in-process topology exercises the identical
/// protocol path minus the sockets.
pub trait CoordinatorChannel: Send + Sync {
    /// Performs one request/response exchange.
    fn call(&self, req: Request) -> ytaudit_net::Result<Response>;
}

/// A coordinator reached over the ytaudit-net HTTP client.
pub struct HttpChannel {
    client: HttpClient,
    base: Url,
}

impl HttpChannel {
    /// Connects to a coordinator at `base_url`
    /// (e.g. `http://127.0.0.1:7700`).
    pub fn new(base_url: &str) -> ytaudit_net::Result<HttpChannel> {
        Ok(HttpChannel {
            client: HttpClient::new(),
            base: Url::parse(base_url)?,
        })
    }
}

impl CoordinatorChannel for HttpChannel {
    fn call(&self, req: Request) -> ytaudit_net::Result<Response> {
        self.client.send(&self.base, &req)
    }
}

/// A coordinator in the same process, invoked through its request
/// handler without a socket.
pub struct LocalChannel {
    coordinator: Arc<Coordinator>,
}

impl LocalChannel {
    /// Wraps an in-process coordinator.
    pub fn new(coordinator: Arc<Coordinator>) -> LocalChannel {
        LocalChannel { coordinator }
    }
}

impl CoordinatorChannel for LocalChannel {
    fn call(&self, req: Request) -> ytaudit_net::Result<Response> {
        Ok(ytaudit_net::Handler::handle(&*self.coordinator, &req))
    }
}

/// Worker tuning knobs.
pub struct WorkerConfig {
    /// Name shown on the coordinator's status page.
    pub name: String,
    /// Directory for per-range local shard stores (created if missing).
    pub workdir: PathBuf,
    /// Scheduler configuration for range execution (workers, API key).
    pub sched: SchedulerConfig,
    /// Clock for polling, retry pauses, and heartbeat pacing.
    pub clock: Arc<dyn MonotonicClock>,
    /// Pause between `Wait` polls and transient retries.
    pub poll: Duration,
    /// Consecutive `Wait` replies tolerated before giving up (a wedged
    /// coordinator must not hang the worker forever).
    pub max_wait_polls: u32,
    /// Transient (`Retry`-class) attempts per call, and full ship
    /// restarts per range.
    pub max_retries: u32,
    /// Upload chunk size in bytes.
    pub chunk_len: usize,
    /// Renew the lease from a background heartbeat (at a third of the
    /// granted ttl) while a range executes. Disable in tests that drive
    /// expiry with a manual clock.
    pub heartbeat: bool,
}

impl WorkerConfig {
    /// A worker config with production defaults.
    pub fn new(name: impl Into<String>, workdir: impl Into<PathBuf>, sched: SchedulerConfig) -> WorkerConfig {
        WorkerConfig {
            name: name.into(),
            workdir: workdir.into(),
            sched,
            clock: Arc::new(RealClock::default()),
            poll: Duration::from_millis(50),
            max_wait_polls: 20_000,
            max_retries: 8,
            chunk_len: 256 * 1024,
            heartbeat: true,
        }
    }
}

/// What one worker run did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// Leases this worker was granted.
    pub leases: u32,
    /// Ranges executed, shipped, and accepted by the coordinator.
    pub committed: u32,
    /// Ships answered `Duplicate` (another holder beat us to it).
    pub duplicates: u32,
    /// Ranges abandoned because the lease was lost mid-flight.
    pub abandoned: u32,
    /// `Wait` replies received.
    pub waits: u32,
}

enum ShipOutcome {
    Committed,
    Duplicate,
}

/// Runs the worker loop against `chan` until the coordinator reports
/// the run done: lease, execute locally via `factory`, ship, repeat.
pub fn run_worker(
    chan: &dyn CoordinatorChannel,
    factory: &dyn TransportFactory,
    cfg: &WorkerConfig,
) -> Result<WorkerReport, DistError> {
    std::fs::create_dir_all(&cfg.workdir)
        .map_err(|e| DistError::new(DistErrorKind::Internal, e.to_string()))?;
    let mut report = WorkerReport::default();
    let mut consecutive_waits = 0;
    loop {
        let lease_body = post_with_retry(
            chan,
            cfg,
            LEASE_PATH,
            &LeaseRequest {
                worker: cfg.name.clone(),
            }
            .encode(),
        )?;
        match LeaseReply::decode(&lease_body)? {
            LeaseReply::Done => return Ok(report),
            LeaseReply::Wait => {
                report.waits += 1;
                consecutive_waits += 1;
                if consecutive_waits > cfg.max_wait_polls {
                    return Err(DistError::new(
                        DistErrorKind::Internal,
                        "coordinator reported Wait past the poll budget",
                    ));
                }
                cfg.clock.sleep(cfg.poll);
            }
            LeaseReply::Grant(grant) => {
                consecutive_waits = 0;
                report.leases += 1;
                match execute_and_ship(chan, factory, cfg, &grant) {
                    Ok(ShipOutcome::Committed) => report.committed += 1,
                    Ok(ShipOutcome::Duplicate) => report.duplicates += 1,
                    Err(err) if classify(err.kind) == DistErrorClass::Abandon => {
                        report.abandoned += 1;
                    }
                    Err(err) => return Err(err),
                }
            }
        }
    }
}

/// Executes one leased range into a local shard store and ships it.
fn execute_and_ship(
    chan: &dyn CoordinatorChannel,
    factory: &dyn TransportFactory,
    cfg: &WorkerConfig,
    grant: &LeaseGrant,
) -> Result<ShipOutcome, DistError> {
    let path = cfg.workdir.join(format!("range-{}.yts", grant.range));
    with_heartbeat(chan, cfg, grant, || execute_range(factory, cfg, grant, &path))??;
    if faultpoint::should_trip("dist.pre-ship") {
        return Err(DistError::new(
            DistErrorKind::Internal,
            "injected crash: dist.pre-ship",
        ));
    }
    // Reconfirm the lease before the upload: if it expired during
    // execution the range belongs to someone else and shipping would
    // only be refused chunk by chunk.
    post_with_retry(
        chan,
        cfg,
        RENEW_PATH,
        &RenewRequest {
            range: grant.range,
            token: grant.token,
        }
        .encode(),
    )?;
    let outcome = ship(chan, cfg, grant, &path)?;
    // The shard is durably the coordinator's now (either from us or
    // from another holder); the local copy has served its purpose.
    std::fs::remove_file(&path)
        .map_err(|e| DistError::new(DistErrorKind::Internal, e.to_string()))?;
    Ok(outcome)
}

/// Runs range execution under an optional background heartbeat that
/// renews the lease at a third of the granted ttl.
fn with_heartbeat<T>(
    chan: &dyn CoordinatorChannel,
    cfg: &WorkerConfig,
    grant: &LeaseGrant,
    work: impl FnOnce() -> T,
) -> Result<T, DistError> {
    if !cfg.heartbeat {
        return Ok(work());
    }
    let stop = AtomicBool::new(false);
    let interval = (grant.ttl / 3).max(Duration::from_millis(1));
    let renew = RenewRequest {
        range: grant.range,
        token: grant.token,
    }
    .encode();
    Ok(std::thread::scope(|scope| {
        scope.spawn(|| {
            loop {
                // Sleep in short slices so a finished range does not
                // wait out a long heartbeat interval before joining.
                let mut slept = Duration::ZERO;
                while slept < interval {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    let slice = (interval - slept).min(Duration::from_millis(25));
                    cfg.clock.sleep(slice);
                    slept += slice;
                }
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                // Failures here are not fatal: the ship path reconfirms
                // the lease and classifies any loss properly.
                let _ = post_once(chan, RENEW_PATH, &renew);
            }
        });
        let out = work();
        stop.store(true, Ordering::Relaxed);
        out
    }))
}

/// Executes the leased range into the local store at `path`: topic
/// ranges run the ordinary scheduler, the finish range performs the
/// parent's single end-of-collection channel fetch.
fn execute_range(
    factory: &dyn TransportFactory,
    cfg: &WorkerConfig,
    grant: &LeaseGrant,
    path: &std::path::Path,
) -> Result<(), DistError> {
    let internal = |e: &dyn std::fmt::Display| DistError::new(DistErrorKind::Internal, e.to_string());
    let count = grant.plan.ranges as usize;
    let range = grant.range as usize;
    let mut store = Store::open_or_create(path).map_err(|e| internal(&e))?;
    if range < count {
        let shard_cfg = shard_configs(&grant.plan.parent, count)
            .into_iter()
            .nth(range)
            .ok_or_else(|| {
                DistError::new(
                    DistErrorKind::BadRequest,
                    format!("grant for range {range} outside a {count}-way split"),
                )
            })?;
        let run = Scheduler::new(factory, shard_cfg, cfg.sched.clone())
            .run(&mut store)
            .map_err(|e| internal(&e))?;
        if !run.completed() {
            return Err(DistError::new(
                DistErrorKind::Internal,
                format!("range {range} drained before completing"),
            ));
        }
        return Ok(());
    }
    // Finish range: replicate the sharded run's finish phase — one
    // batched channel fetch at the last snapshot's simulated instant.
    let finish_cfg = finish_config(&grant.plan.parent, count);
    store.begin(&finish_cfg).map_err(|e| internal(&e))?;
    if store.complete() {
        return Ok(());
    }
    let mut channels = Vec::new();
    let mut delta = 0;
    if grant.plan.parent.fetch_channels {
        let ids: Vec<ChannelId> = grant
            .channel_ids
            .as_ref()
            .ok_or_else(|| {
                DistError::new(
                    DistErrorKind::BadRequest,
                    "finish grant carries no channel-ID union",
                )
            })?
            .iter()
            .map(|id| ChannelId::from(id.as_str()))
            .collect();
        let client = YouTubeClient::new(factory.transport(), cfg.sched.api_key.clone());
        if let Some(&last) = grant.plan.parent.schedule.dates().last() {
            client.set_sim_time(Some(last));
        }
        channels = fetch_channel_meta(&client, ids).map_err(|e| internal(&e))?;
        client.set_sim_time(None);
        delta = client.budget().units_spent();
    }
    store
        .finish_collection(&channels, delta)
        .map_err(|e| internal(&e))?;
    Ok(())
}

/// Ships the finished local shard: begin, CRC-checked chunks, commit.
/// Upload desyncs restart from `begin`, bounded by `max_retries`.
fn ship(
    chan: &dyn CoordinatorChannel,
    cfg: &WorkerConfig,
    grant: &LeaseGrant,
    path: &std::path::Path,
) -> Result<ShipOutcome, DistError> {
    let data =
        std::fs::read(path).map_err(|e| DistError::new(DistErrorKind::Internal, e.to_string()))?;
    let total_crc = crc32(&data);
    let declared = ShipBegin {
        range: grant.range,
        token: grant.token,
        total_len: data.len() as u64,
        total_crc,
    };
    let mut restarts = 0;
    'ship: loop {
        if restarts > cfg.max_retries {
            return Err(DistError::new(
                DistErrorKind::Internal,
                format!("range {}: ship restarts exhausted", grant.range),
            ));
        }
        restarts += 1;
        let begin_body = post_with_retry(chan, cfg, SHIP_BEGIN_PATH, &declared.encode())?;
        if let ShipReply::Duplicate = ShipReply::decode(&begin_body)? {
            return Ok(ShipOutcome::Duplicate);
        }
        let mut offset = 0usize;
        while offset < data.len() {
            let end = (offset + cfg.chunk_len.max(1)).min(data.len());
            let chunk = ShipChunk {
                range: grant.range,
                token: grant.token,
                offset: offset as u64,
                crc: crc32(&data[offset..end]),
                bytes: data[offset..end].to_vec(),
            };
            match post_with_retry(chan, cfg, SHIP_CHUNK_PATH, &chunk.encode()) {
                Ok(_) => offset = end,
                Err(err) if classify(err.kind) == DistErrorClass::RestartShip => continue 'ship,
                Err(err) => return Err(err),
            }
        }
        let commit = ShipCommit {
            range: grant.range,
            token: grant.token,
            total_len: declared.total_len,
            total_crc: declared.total_crc,
        };
        match post_with_retry(chan, cfg, SHIP_COMMIT_PATH, &commit.encode()) {
            Ok(body) => {
                return Ok(match ShipReply::decode(&body)? {
                    ShipReply::Accepted => ShipOutcome::Committed,
                    ShipReply::Duplicate => ShipOutcome::Duplicate,
                })
            }
            Err(err) if classify(err.kind) == DistErrorClass::RestartShip => continue 'ship,
            Err(err) => return Err(err),
        }
    }
}

/// One POST exchange; non-2xx responses become typed [`DistError`]s via
/// the [`ERROR_HEADER`] key, socket failures come back as `Internal`.
fn post_once(
    chan: &dyn CoordinatorChannel,
    path: &str,
    body: &[u8],
) -> Result<Vec<u8>, DistError> {
    let req = Request::post(path, body.to_vec())
        .with_header("content-type", "application/octet-stream");
    let resp = chan
        .call(req)
        .map_err(|e| DistError::new(DistErrorKind::Internal, e.to_string()))?;
    if resp.status.is_success() {
        return Ok(resp.body);
    }
    let kind = resp
        .headers
        .get(ERROR_HEADER)
        .and_then(DistErrorKind::from_key)
        .unwrap_or(DistErrorKind::Internal);
    let detail = String::from_utf8_lossy(&resp.body).into_owned();
    Err(DistError::new(kind, detail))
}

/// [`post_once`] with bounded retries for `Retry`-class failures.
fn post_with_retry(
    chan: &dyn CoordinatorChannel,
    cfg: &WorkerConfig,
    path: &str,
    body: &[u8],
) -> Result<Vec<u8>, DistError> {
    let mut attempt = 0;
    loop {
        match post_once(chan, path, body) {
            Ok(reply) => return Ok(reply),
            Err(err)
                if classify(err.kind) == DistErrorClass::Retry && attempt < cfg.max_retries =>
            {
                attempt += 1;
                cfg.clock.sleep(cfg.poll);
            }
            Err(err) => return Err(err),
        }
    }
}
