//! # ytaudit-dist
//!
//! Coordinator/worker distribution of a collection plan across
//! processes, over the `ytaudit-net` HTTP stack.
//!
//! The paper's audit (16 snapshots × hour-binned search windows per
//! topic) is embarrassingly partitionable, and the local shard/merge
//! machinery (`ytaudit-core::shard`, `ytaudit-store::merge`) already
//! proves that a topic-sharded collection folds back into a store
//! byte-identical to a single-sink run. This crate adds the missing
//! cross-process leg:
//!
//! * [`protocol`] — the binary wire protocol: lease / renew / chunked
//!   ship endpoints, the [`protocol::DistErrorKind`] wire error enum,
//!   and the [`protocol::DistPlan`] every grant carries so workers need
//!   no out-of-band plan file;
//! * [`coordinator`] — the lease state machine (`Open → Leased →
//!   Committed`, with ttl expiry re-opening a range under a fresh
//!   fencing token) and the exactly-once shard hand-off: the durable
//!   commit marker is the validated shard store installed at its
//!   canonical path, so a restarted coordinator rebuilds state from the
//!   filesystem and a duplicate ship is a verified no-op;
//! * [`worker`] — the lease/execute/ship loop, reusing the ordinary
//!   scheduler against a local shard `.yts` (resumable like `collect
//!   --resume`) and classifying every coordinator error through
//!   [`retry::classify`];
//! * [`retry`] — the worker-side disposition of every wire error kind,
//!   held exhaustive by the `retry-exhaustive` lint.
//!
//! Crash-matrix faultpoints mirror the store's: `dist.lease-grant`
//! (coordinator dies while granting), `dist.pre-ship` (worker dies
//! after executing, before shipping), and `dist.pre-accept`
//! (coordinator dies after validating an upload, before installing
//! it). The correctness bar at every kill point is the workspace's
//! standing one: the merged store is byte-identical to a single-sink
//! run and no task is executed-and-committed twice.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coordinator;
pub mod protocol;
pub mod retry;
pub mod worker;

pub use coordinator::{Coordinator, DistCounters};
pub use protocol::{DistError, DistErrorKind, DistPlan, LeaseGrant, LeaseReply, ShipReply};
pub use retry::{classify, DistErrorClass};
pub use worker::{
    run_worker, CoordinatorChannel, HttpChannel, LocalChannel, WorkerConfig, WorkerReport,
};
