//! The coordinator: owns the plan, leases task ranges to workers, and
//! durably installs the shard stores they ship back.
//!
//! ## Lease state machine
//!
//! Every range is in exactly one of three states:
//!
//! ```text
//!           grant                    ship/commit accepted
//!   Open ──────────▶ Leased{token} ─────────────────────▶ Committed
//!    ▲                   │
//!    └───────────────────┘
//!      ttl elapsed with no renewal (lease expired; next grant
//!      re-issues the range under a fresh fencing token)
//! ```
//!
//! `Committed` is terminal and *durable*: its marker is the complete,
//! validated shard store sitting at the canonical
//! [`shard_store_path`]/[`finish_store_path`] next to the future merged
//! destination — the same invariant a local `collect --shards` run
//! leaves behind, which is why a restarted coordinator can rebuild its
//! entire state by scanning the filesystem. Exactly-once follows: a
//! range transitions to `Committed` at most once (under the state lock,
//! fenced by the lease token), every later ship of the same range is
//! answered [`ShipReply::Duplicate`] without touching the installed
//! file, and the store's own Begin/Commit manifest inside the shipped
//! shard guarantees the shard itself holds each pair exactly once.
//!
//! Uploads are staged in memory keyed by range and written to a
//! `.receiving` sibling only at commit, where the shard is re-opened
//! and validated against the plan before an fsync + atomic rename
//! installs it. A crash between write and rename leaves only the
//! `.receiving` tmp, which recovery deletes.

use crate::protocol::{
    DistError, DistErrorKind, DistPlan, LeaseGrant, LeaseReply, LeaseRequest, RenewReply,
    RenewRequest, ShipBegin, ShipChunk, ShipCommit, ShipReply, ERROR_HEADER, LEASE_PATH,
    METRICS_PATH, RENEW_PATH, SHIP_BEGIN_PATH, SHIP_CHUNK_PATH, SHIP_COMMIT_PATH, STATUS_PATH,
};
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use ytaudit_core::shard::{finish_config, shard_configs};
use ytaudit_core::{CollectorConfig, CollectorSink};
use ytaudit_net::{Handler, Method, Request, Response, StatusCode};
use ytaudit_platform::clock::MonotonicClock;
use ytaudit_platform::faultpoint;
use ytaudit_sched::MetricsRegistry;
use ytaudit_store::crc::crc32;
use ytaudit_store::merge::MergeReport;
use ytaudit_store::records::CollectionMeta;
use ytaudit_store::{finish_store_path, fsync_dir_of, merge_shards, shard_store_path, Store};

/// Per-range lease state (see the module-level state machine).
#[derive(Debug, Clone, PartialEq, Eq)]
enum RangeState {
    /// Grantable.
    Open,
    /// Held by a worker until `expires` (against the coordinator clock).
    Leased {
        token: u64,
        worker: String,
        expires: Duration,
    },
    /// Durably installed at the range's canonical path. Terminal.
    Committed,
}

/// One range's bookkeeping.
#[derive(Debug)]
struct RangeInfo {
    state: RangeState,
    /// How many times this range has been granted (for re-issue counting).
    grants: u64,
}

/// An in-flight shard upload, staged in memory until commit.
struct Upload {
    token: u64,
    total_len: u64,
    total_crc: u32,
    received: Vec<u8>,
}

struct DistState {
    ranges: Vec<RangeInfo>,
    uploads: HashMap<usize, Upload>,
}

/// A point-in-time snapshot of the coordinator's counters, as shown on
/// `/dist/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DistCounters {
    /// Leases granted (including re-issues).
    pub leases_granted: u64,
    /// Leases that expired without commit.
    pub leases_expired: u64,
    /// Grants of a range that had been granted before (crash recovery).
    pub leases_reissued: u64,
    /// Shard stores durably installed.
    pub shards_received: u64,
    /// Ships answered `Duplicate` because the range was already
    /// committed.
    pub duplicate_ships: u64,
    /// Upload payload bytes accepted across all chunks.
    pub bytes_shipped: u64,
}

/// The coordinator of one distributed collection run. Thread-safe:
/// wrap in an `Arc` and serve it directly (it implements
/// [`ytaudit_net::Handler`]) or drive it in-process through
/// [`crate::worker::LocalChannel`].
pub struct Coordinator {
    plan: DistPlan,
    dest: PathBuf,
    ttl: Duration,
    clock: Arc<dyn MonotonicClock>,
    state: Mutex<DistState>,
    next_token: AtomicU64,
    leases_granted: AtomicU64,
    leases_expired: AtomicU64,
    leases_reissued: AtomicU64,
    shards_received: AtomicU64,
    duplicate_ships: AtomicU64,
    bytes_shipped: AtomicU64,
    registry: MetricsRegistry,
}

fn internal(detail: impl std::fmt::Display) -> DistError {
    DistError::new(DistErrorKind::Internal, detail.to_string())
}

fn invalid(detail: impl std::fmt::Display) -> DistError {
    DistError::new(DistErrorKind::ShardInvalid, detail.to_string())
}

impl Coordinator {
    /// Builds the coordinator for `parent` split `shards` ways, with the
    /// merged output destined for `dest`. Leases live `ttl` against
    /// `clock`. Recovery is automatic: any complete, valid shard store
    /// already sitting at its canonical path is adopted as `Committed`
    /// (so a restarted coordinator re-issues only uncommitted ranges),
    /// and stale `.receiving` tmps are cleared.
    pub fn new(
        parent: &CollectorConfig,
        shards: usize,
        dest: &Path,
        ttl: Duration,
        clock: Arc<dyn MonotonicClock>,
    ) -> Result<Coordinator, DistError> {
        if dest.exists() {
            return Err(DistError::new(
                DistErrorKind::BadRequest,
                format!("{} already exists; merging would overwrite it", dest.display()),
            ));
        }
        let shards = shards.max(1);
        let plan = DistPlan::new(parent, shards);
        let coordinator = Coordinator {
            plan,
            dest: dest.to_path_buf(),
            ttl,
            clock,
            state: Mutex::new(DistState {
                ranges: (0..=shards)
                    .map(|_| RangeInfo {
                        state: RangeState::Open,
                        grants: 0,
                    })
                    .collect(),
                uploads: HashMap::new(),
            }),
            next_token: AtomicU64::new(1),
            leases_granted: AtomicU64::new(0),
            leases_expired: AtomicU64::new(0),
            leases_reissued: AtomicU64::new(0),
            shards_received: AtomicU64::new(0),
            duplicate_ships: AtomicU64::new(0),
            bytes_shipped: AtomicU64::new(0),
            registry: MetricsRegistry::new(),
        };
        coordinator.recover()?;
        Ok(coordinator)
    }

    /// The plan this coordinator distributes.
    pub fn plan(&self) -> &DistPlan {
        &self.plan
    }

    /// The merged destination path.
    pub fn dest(&self) -> &Path {
        &self.dest
    }

    /// The sched metrics registry the coordinator aggregates accepted
    /// shards into (pairs committed, quota units).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Current counter values.
    pub fn counters(&self) -> DistCounters {
        DistCounters {
            leases_granted: self.leases_granted.load(Ordering::Relaxed),
            leases_expired: self.leases_expired.load(Ordering::Relaxed),
            leases_reissued: self.leases_reissued.load(Ordering::Relaxed),
            shards_received: self.shards_received.load(Ordering::Relaxed),
            duplicate_ships: self.duplicate_ships.load(Ordering::Relaxed),
            bytes_shipped: self.bytes_shipped.load(Ordering::Relaxed),
        }
    }

    /// Whether every range (topic shards + finish) is committed.
    pub fn all_committed(&self) -> bool {
        let mut state = self.state.lock();
        self.sweep(&mut state);
        state
            .ranges
            .iter()
            .all(|r| r.state == RangeState::Committed)
    }

    /// Merges the committed shard set into the destination store.
    /// Callable only once every range is committed.
    pub fn merge(&self) -> Result<MergeReport, DistError> {
        if !self.all_committed() {
            return Err(DistError::new(
                DistErrorKind::BadRequest,
                "not every range is committed yet",
            ));
        }
        let paths: Vec<PathBuf> = (0..self.total_ranges())
            .map(|range| self.canonical_path(range))
            .collect();
        merge_shards(&self.dest, &paths).map_err(internal)
    }

    fn total_ranges(&self) -> usize {
        self.plan.total_ranges() as usize
    }

    fn shard_count(&self) -> usize {
        self.plan.ranges as usize
    }

    /// The collector config range `range` executes.
    fn range_config(&self, range: usize) -> Result<CollectorConfig, DistError> {
        let count = self.shard_count();
        if range < count {
            shard_configs(&self.plan.parent, count)
                .into_iter()
                .nth(range)
                .ok_or_else(|| internal(format!("no shard config for range {range}")))
        } else if range == count {
            Ok(finish_config(&self.plan.parent, count))
        } else {
            Err(DistError::new(
                DistErrorKind::UnknownRange,
                format!("range {range} out of 0..={count}"),
            ))
        }
    }

    /// Where range `range`'s installed shard store lives.
    fn canonical_path(&self, range: usize) -> PathBuf {
        let count = self.shard_count();
        if range < count {
            let topics = shard_configs(&self.plan.parent, count)
                .into_iter()
                .nth(range)
                .map(|cfg| cfg.topics)
                .unwrap_or_default();
            shard_store_path(&self.dest, range, &topics)
        } else {
            finish_store_path(&self.dest)
        }
    }

    /// Validates that the store at `path` is exactly range `range`'s
    /// complete shard, then feeds its totals into the metrics registry.
    fn validate_installed(&self, path: &Path, range: usize) -> Result<(), DistError> {
        let expected = CollectionMeta::of_config(&self.range_config(range)?);
        let store =
            Store::open(path).map_err(|e| invalid(format!("{}: {e}", path.display())))?;
        let meta = store
            .collection_meta()
            .cloned()
            .ok_or_else(|| invalid(format!("{}: store holds no collection", path.display())))?;
        if meta != expected {
            return Err(invalid(format!(
                "{}: shard manifest does not match range {range} of the plan",
                path.display()
            )));
        }
        if !store.complete() {
            return Err(invalid(format!(
                "{}: shard is incomplete ({}/{} pairs)",
                path.display(),
                store.committed_pairs(),
                meta.pairs()
            )));
        }
        for _ in 0..store.committed_pairs() {
            self.registry.pair_committed();
        }
        self.registry
            .add_quota(store.quota_units_total() + store.final_quota_delta().unwrap_or(0));
        Ok(())
    }

    /// Adopts already-installed shards after a restart and clears stale
    /// upload tmps.
    fn recover(&self) -> Result<(), DistError> {
        let mut state = self.state.lock();
        for range in 0..self.total_ranges() {
            let path = self.canonical_path(range);
            let receiving = receiving_path(&path);
            if receiving.exists() {
                std::fs::remove_file(&receiving).map_err(internal)?;
            }
            if path.exists() {
                self.validate_installed(&path, range)?;
                if let Some(info) = state.ranges.get_mut(range) {
                    info.state = RangeState::Committed;
                }
            }
        }
        Ok(())
    }

    /// Reverts expired leases to `Open` and drops their staged uploads.
    fn sweep(&self, state: &mut DistState) {
        let now = self.clock.now();
        for (range, info) in state.ranges.iter_mut().enumerate() {
            if let RangeState::Leased { expires, .. } = info.state {
                if now >= expires {
                    info.state = RangeState::Open;
                    state.uploads.remove(&range);
                    self.leases_expired.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Whether the caller holds a live lease on `range` under `token`.
    fn check_lease(state: &DistState, range: usize, token: u64) -> Result<(), DistError> {
        match state.ranges.get(range).map(|info| &info.state) {
            None => Err(DistError::new(
                DistErrorKind::UnknownRange,
                format!("range {range} out of range"),
            )),
            Some(RangeState::Leased { token: held, .. }) if *held == token => Ok(()),
            Some(RangeState::Committed) => Err(DistError::new(
                DistErrorKind::LeaseExpired,
                format!("range {range} is already committed"),
            )),
            Some(_) => Err(DistError::new(
                DistErrorKind::LeaseExpired,
                format!("range {range} is not leased under this token"),
            )),
        }
    }

    /// The union of channel IDs across every committed topic shard —
    /// what the finish range's `Channels: list` call must look up.
    fn gather_channel_ids(&self) -> Result<Vec<String>, DistError> {
        let mut ids = BTreeSet::new();
        for range in 0..self.shard_count() {
            let store = Store::open(&self.canonical_path(range)).map_err(internal)?;
            ids.extend(store.known_channel_ids().map_err(internal)?);
        }
        Ok(ids.into_iter().map(|id| id.as_ref().to_string()).collect())
    }

    /// `POST /dist/lease`.
    pub fn lease(&self, req: &LeaseRequest) -> Result<LeaseReply, DistError> {
        let mut state = self.state.lock();
        self.sweep(&mut state);
        if state
            .ranges
            .iter()
            .all(|info| info.state == RangeState::Committed)
        {
            return Ok(LeaseReply::Done);
        }
        // First grantable topic range, else the finish range once every
        // topic shard is in (its channel-ID union is only complete then).
        let count = self.shard_count();
        let grantable = state
            .ranges
            .iter()
            .enumerate()
            .take(count)
            .find(|(_, info)| info.state == RangeState::Open)
            .map(|(range, _)| range)
            .or_else(|| {
                let topics_done = state
                    .ranges
                    .iter()
                    .take(count)
                    .all(|info| info.state == RangeState::Committed);
                let finish_open = state
                    .ranges
                    .get(count)
                    .is_some_and(|info| info.state == RangeState::Open);
                (topics_done && finish_open).then_some(count)
            });
        let Some(range) = grantable else {
            return Ok(LeaseReply::Wait);
        };
        if faultpoint::should_trip("dist.lease-grant") {
            return Err(internal("injected crash: dist.lease-grant"));
        }
        let channel_ids = if range == count {
            Some(self.gather_channel_ids()?)
        } else {
            None
        };
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        let expires = self.clock.now() + self.ttl;
        let info = state
            .ranges
            .get_mut(range)
            .ok_or_else(|| internal(format!("no state for range {range}")))?;
        if info.grants > 0 {
            self.leases_reissued.fetch_add(1, Ordering::Relaxed);
        }
        info.grants += 1;
        info.state = RangeState::Leased {
            token,
            worker: req.worker.clone(),
            expires,
        };
        self.leases_granted.fetch_add(1, Ordering::Relaxed);
        Ok(LeaseReply::Grant(LeaseGrant {
            range: range as u32,
            token,
            ttl: self.ttl,
            plan: self.plan.clone(),
            channel_ids,
        }))
    }

    /// `POST /dist/renew`.
    pub fn renew(&self, req: &RenewRequest) -> Result<RenewReply, DistError> {
        let mut state = self.state.lock();
        self.sweep(&mut state);
        let range = req.range as usize;
        Coordinator::check_lease(&state, range, req.token)?;
        let expires = self.clock.now() + self.ttl;
        if let Some(RangeInfo {
            state: RangeState::Leased { expires: held, .. },
            ..
        }) = state.ranges.get_mut(range)
        {
            *held = expires;
        }
        Ok(RenewReply { ttl: self.ttl })
    }

    /// `POST /dist/ship/begin`.
    pub fn ship_begin(&self, req: &ShipBegin) -> Result<ShipReply, DistError> {
        let mut state = self.state.lock();
        self.sweep(&mut state);
        let range = req.range as usize;
        if let Some(info) = state.ranges.get(range) {
            if info.state == RangeState::Committed {
                self.duplicate_ships.fetch_add(1, Ordering::Relaxed);
                return Ok(ShipReply::Duplicate);
            }
        }
        Coordinator::check_lease(&state, range, req.token)?;
        state.uploads.insert(
            range,
            Upload {
                token: req.token,
                total_len: req.total_len,
                total_crc: req.total_crc,
                received: Vec::with_capacity(req.total_len.min(1 << 24) as usize),
            },
        );
        Ok(ShipReply::Accepted)
    }

    /// `POST /dist/ship/chunk`.
    pub fn ship_chunk(&self, req: &ShipChunk) -> Result<(), DistError> {
        let mut state = self.state.lock();
        self.sweep(&mut state);
        let range = req.range as usize;
        Coordinator::check_lease(&state, range, req.token)?;
        let upload = state.uploads.get_mut(&range).filter(|u| u.token == req.token);
        let Some(upload) = upload else {
            return Err(DistError::new(
                DistErrorKind::ChunkOutOfOrder,
                format!("range {range}: no upload open under this token"),
            ));
        };
        if req.offset != upload.received.len() as u64 {
            return Err(DistError::new(
                DistErrorKind::ChunkOutOfOrder,
                format!(
                    "range {range}: chunk at offset {} but {} bytes received",
                    req.offset,
                    upload.received.len()
                ),
            ));
        }
        if upload.received.len() as u64 + req.bytes.len() as u64 > upload.total_len {
            return Err(DistError::new(
                DistErrorKind::ChunkOutOfOrder,
                format!("range {range}: chunk overruns declared length"),
            ));
        }
        if crc32(&req.bytes) != req.crc {
            return Err(DistError::new(
                DistErrorKind::ChunkCrcMismatch,
                format!("range {range}: chunk CRC mismatch at offset {}", req.offset),
            ));
        }
        upload.received.extend_from_slice(&req.bytes);
        self.bytes_shipped
            .fetch_add(req.bytes.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// `POST /dist/ship/commit`: verify, durably install, mark
    /// committed. Exactly-once: a committed range answers `Duplicate`
    /// without touching the installed file.
    pub fn ship_commit(&self, req: &ShipCommit) -> Result<ShipReply, DistError> {
        let mut state = self.state.lock();
        self.sweep(&mut state);
        let range = req.range as usize;
        if let Some(info) = state.ranges.get(range) {
            if info.state == RangeState::Committed {
                self.duplicate_ships.fetch_add(1, Ordering::Relaxed);
                return Ok(ShipReply::Duplicate);
            }
        }
        Coordinator::check_lease(&state, range, req.token)?;
        let upload = state
            .uploads
            .get(&range)
            .filter(|u| u.token == req.token)
            .ok_or_else(|| {
                DistError::new(
                    DistErrorKind::ShipIncomplete,
                    format!("range {range}: no upload open under this token"),
                )
            })?;
        if upload.total_len != req.total_len
            || upload.total_crc != req.total_crc
            || upload.received.len() as u64 != req.total_len
        {
            return Err(DistError::new(
                DistErrorKind::ShipIncomplete,
                format!(
                    "range {range}: upload holds {} of {} declared bytes",
                    upload.received.len(),
                    req.total_len
                ),
            ));
        }
        if crc32(&upload.received) != req.total_crc {
            return Err(DistError::new(
                DistErrorKind::ShipIncomplete,
                format!("range {range}: whole-file CRC mismatch"),
            ));
        }

        // Stage to the `.receiving` sibling, validate the bytes as the
        // leased shard, then install with the WAL rename discipline.
        let path = self.canonical_path(range);
        let receiving = receiving_path(&path);
        let write = || -> std::io::Result<()> {
            let mut file = std::fs::File::create(&receiving)?;
            file.write_all(&upload.received)?;
            file.sync_all()?;
            Ok(())
        };
        write().map_err(internal)?;
        if let Err(err) = self.validate_installed(&receiving, range) {
            let _ = std::fs::remove_file(&receiving);
            return Err(err);
        }
        if faultpoint::should_trip("dist.pre-accept") {
            return Err(internal("injected crash: dist.pre-accept"));
        }
        std::fs::rename(&receiving, &path).map_err(internal)?;
        fsync_dir_of(&path).map_err(internal)?;

        state.uploads.remove(&range);
        if let Some(info) = state.ranges.get_mut(range) {
            info.state = RangeState::Committed;
        }
        self.shards_received.fetch_add(1, Ordering::Relaxed);
        Ok(ShipReply::Accepted)
    }

    /// The `/dist/status` page: one line per range.
    pub fn status_page(&self) -> String {
        let mut state = self.state.lock();
        self.sweep(&mut state);
        let now = self.clock.now();
        let count = self.shard_count();
        let mut out = format!(
            "dist coordinator: {} topic shard(s) + finish, dest {}\n",
            count,
            self.dest.display()
        );
        for (range, info) in state.ranges.iter().enumerate() {
            let kind = if range == count { "finish" } else { "topic" };
            let line = match &info.state {
                RangeState::Open => format!("range {range} [{kind}]: open"),
                RangeState::Committed => format!("range {range} [{kind}]: committed"),
                RangeState::Leased {
                    worker, expires, ..
                } => format!(
                    "range {range} [{kind}]: leased to {worker} ({}ms left)",
                    expires.saturating_sub(now).as_millis()
                ),
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// The `/dist/metrics` page: dist counters plus the aggregated sched
    /// metrics table for everything accepted so far.
    pub fn metrics_page(&self) -> String {
        let counters = self.counters();
        let outstanding = {
            let mut state = self.state.lock();
            self.sweep(&mut state);
            state
                .ranges
                .iter()
                .filter(|info| matches!(info.state, RangeState::Leased { .. }))
                .count()
        };
        let mut out = String::from("dist metrics\n");
        out.push_str(&format!("  leases outstanding   {outstanding}\n"));
        out.push_str(&format!("  leases granted       {}\n", counters.leases_granted));
        out.push_str(&format!("  leases expired       {}\n", counters.leases_expired));
        out.push_str(&format!("  leases reissued      {}\n", counters.leases_reissued));
        out.push_str(&format!("  shards received      {}\n", counters.shards_received));
        out.push_str(&format!("  duplicate ships      {}\n", counters.duplicate_ships));
        out.push_str(&format!("  bytes shipped        {}\n", counters.bytes_shipped));
        out.push('\n');
        out.push_str(&self.registry.snapshot().render_table());
        out
    }
}

fn receiving_path(canonical: &Path) -> PathBuf {
    let mut name = canonical
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".receiving");
    canonical.with_file_name(name)
}

fn error_response(err: &DistError) -> Response {
    Response::text(StatusCode(err.kind.status()), err.detail.clone())
        .with_header(ERROR_HEADER, err.kind.key())
}

fn octets(body: Vec<u8>) -> Response {
    let mut resp = Response::new(StatusCode::OK);
    resp.headers.set("content-type", "application/octet-stream");
    resp.body = body;
    resp
}

fn respond(result: Result<Vec<u8>, DistError>) -> Response {
    match result {
        Ok(body) => octets(body),
        Err(err) => error_response(&err),
    }
}

impl Handler for Coordinator {
    fn handle(&self, req: &Request) -> Response {
        match (req.method, req.path.as_str()) {
            (Method::Post, LEASE_PATH) => respond(
                LeaseRequest::decode(&req.body)
                    .and_then(|r| self.lease(&r))
                    .map(|reply| reply.encode()),
            ),
            (Method::Post, RENEW_PATH) => respond(
                RenewRequest::decode(&req.body)
                    .and_then(|r| self.renew(&r))
                    .map(|reply| reply.encode()),
            ),
            (Method::Post, SHIP_BEGIN_PATH) => respond(
                ShipBegin::decode(&req.body)
                    .and_then(|r| self.ship_begin(&r))
                    .map(|reply| reply.encode()),
            ),
            (Method::Post, SHIP_CHUNK_PATH) => respond(
                ShipChunk::decode(&req.body)
                    .and_then(|r| self.ship_chunk(&r))
                    .map(|()| Vec::new()),
            ),
            (Method::Post, SHIP_COMMIT_PATH) => respond(
                ShipCommit::decode(&req.body)
                    .and_then(|r| self.ship_commit(&r))
                    .map(|reply| reply.encode()),
            ),
            (Method::Get, STATUS_PATH) => Response::text(StatusCode::OK, self.status_page()),
            (Method::Get, METRICS_PATH) => Response::text(StatusCode::OK, self.metrics_page()),
            _ => Response::text(StatusCode::NOT_FOUND, "unknown dist endpoint"),
        }
    }
}
