//! The dist wire protocol: binary request/response bodies over plain
//! HTTP POSTs, encoded with the store's length-prefixed framing
//! primitives (`ytaudit_store::wire`).
//!
//! A distributed run has exactly one coordinator and any number of
//! workers. The coordinator owns the parent collection plan and splits
//! it into `ranges + 1` *task ranges*: ranges `0..ranges` are the topic
//! shards of an `N`-way `shard_configs` split (each of which the worker
//! further decomposes into `(topic, snapshot, hour-chunk)` tasks through
//! the ordinary scheduler), and range `ranges` is the finish shard (the
//! single end-of-collection `Channels: list` fetch). A leased range is
//! identified by `(range, token)`; the token fences stale holders after
//! a lease expires and is re-issued.
//!
//! Endpoints (all bodies `application/octet-stream`):
//!
//! | path                | body                | reply               |
//! |---------------------|---------------------|---------------------|
//! | `POST /dist/lease`  | [`LeaseRequest`]    | [`LeaseReply`]      |
//! | `POST /dist/renew`  | [`RenewRequest`]    | [`RenewReply`]      |
//! | `POST /dist/ship/begin`  | [`ShipBegin`]  | [`ShipReply`]       |
//! | `POST /dist/ship/chunk`  | [`ShipChunk`]  | empty               |
//! | `POST /dist/ship/commit` | [`ShipCommit`] | [`ShipReply`]       |
//! | `GET /dist/status`  | —                   | text page           |
//! | `GET /dist/metrics` | —                   | text page           |
//!
//! Errors travel as non-2xx responses carrying the machine-readable
//! [`DistErrorKind`] key in the `x-dist-error` header and a
//! human-readable detail in the body; [`crate::retry::classify`] maps
//! every kind to what the worker should do about it.

use std::time::Duration;
use ytaudit_core::{CollectorConfig, Schedule};
use ytaudit_store::records::{topic_code, topic_from_code};
use ytaudit_store::wire::{Reader, WireError, Writer};
use ytaudit_types::{PlatformKind, Timestamp};

/// `POST` — request a lease.
pub const LEASE_PATH: &str = "/dist/lease";
/// `POST` — heartbeat-renew a held lease.
pub const RENEW_PATH: &str = "/dist/renew";
/// `POST` — open a shard upload.
pub const SHIP_BEGIN_PATH: &str = "/dist/ship/begin";
/// `POST` — append one verified chunk to an open upload.
pub const SHIP_CHUNK_PATH: &str = "/dist/ship/chunk";
/// `POST` — finish an upload and durably commit the range.
pub const SHIP_COMMIT_PATH: &str = "/dist/ship/commit";
/// `GET` — coordinator counters + the sched metrics registry table.
pub const METRICS_PATH: &str = "/dist/metrics";
/// `GET` — per-range lease states.
pub const STATUS_PATH: &str = "/dist/status";
/// Response header carrying a [`DistErrorKind`] key on failures.
pub const ERROR_HEADER: &str = "x-dist-error";

/// Machine-readable classification of every error the coordinator can
/// return over the wire. The worker-side disposition of each kind lives
/// in [`crate::retry::classify`]; the `retry-exhaustive` lint keeps the
/// two in sync.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistErrorKind {
    /// The `(range, token)` lease is not currently held by the caller:
    /// it expired (and may have been re-issued to another worker), was
    /// never granted, or the range is already committed.
    LeaseExpired,
    /// The range index is outside the coordinator's plan.
    UnknownRange,
    /// A chunk arrived out of sequence (or with no upload open); the
    /// upload must be restarted from `ship/begin`.
    ChunkOutOfOrder,
    /// A chunk's CRC32 did not match its bytes.
    ChunkCrcMismatch,
    /// The committed upload does not match its declared length/CRC.
    ShipIncomplete,
    /// The shipped bytes are not a complete shard store for the leased
    /// range (wrong spec, wrong parent plan, or unreadable).
    ShardInvalid,
    /// The request body or parameters were malformed.
    BadRequest,
    /// A transient coordinator-side failure (I/O error, injected
    /// crash); safe to retry.
    Internal,
}

impl DistErrorKind {
    /// The stable wire key carried in [`ERROR_HEADER`].
    pub fn key(self) -> &'static str {
        match self {
            DistErrorKind::LeaseExpired => "lease-expired",
            DistErrorKind::UnknownRange => "unknown-range",
            DistErrorKind::ChunkOutOfOrder => "chunk-out-of-order",
            DistErrorKind::ChunkCrcMismatch => "chunk-crc-mismatch",
            DistErrorKind::ShipIncomplete => "ship-incomplete",
            DistErrorKind::ShardInvalid => "shard-invalid",
            DistErrorKind::BadRequest => "bad-request",
            DistErrorKind::Internal => "internal",
        }
    }

    /// Inverse of [`key`](DistErrorKind::key). Unknown keys (a newer
    /// coordinator) come back as `None`; callers treat that as
    /// [`DistErrorKind::Internal`].
    pub fn from_key(key: &str) -> Option<DistErrorKind> {
        Some(match key {
            "lease-expired" => DistErrorKind::LeaseExpired,
            "unknown-range" => DistErrorKind::UnknownRange,
            "chunk-out-of-order" => DistErrorKind::ChunkOutOfOrder,
            "chunk-crc-mismatch" => DistErrorKind::ChunkCrcMismatch,
            "ship-incomplete" => DistErrorKind::ShipIncomplete,
            "shard-invalid" => DistErrorKind::ShardInvalid,
            "bad-request" => DistErrorKind::BadRequest,
            "internal" => DistErrorKind::Internal,
            _ => return None,
        })
    }

    /// The HTTP status the coordinator sends this kind with.
    pub fn status(self) -> u16 {
        match self {
            DistErrorKind::LeaseExpired | DistErrorKind::UnknownRange => 403,
            DistErrorKind::ChunkOutOfOrder
            | DistErrorKind::ChunkCrcMismatch
            | DistErrorKind::ShipIncomplete
            | DistErrorKind::ShardInvalid
            | DistErrorKind::BadRequest => 400,
            DistErrorKind::Internal => 500,
        }
    }
}

/// A typed dist protocol failure: the wire kind plus human detail.
#[derive(Debug, Clone)]
pub struct DistError {
    /// What went wrong, machine-readably.
    pub kind: DistErrorKind,
    /// Human-readable detail for logs.
    pub detail: String,
}

impl DistError {
    /// Builds an error of `kind` with formatted `detail`.
    pub fn new(kind: DistErrorKind, detail: impl Into<String>) -> DistError {
        DistError {
            kind,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.key(), self.detail)
    }
}

impl std::error::Error for DistError {}

fn wire_err(what: &str, e: WireError) -> DistError {
    DistError::new(DistErrorKind::BadRequest, format!("malformed {what}: {e}"))
}

/// The parent plan plus the range count, shipped inside every lease
/// grant so a worker needs no out-of-band plan file.
#[derive(Debug, Clone, PartialEq)]
pub struct DistPlan {
    /// The parent collector configuration (`shard` always `None`).
    pub parent: CollectorConfig,
    /// Topic-shard count; task ranges are `0..=ranges` with range
    /// `ranges` being the finish shard.
    pub ranges: u32,
}

impl DistPlan {
    /// Derives the wire plan from a parent config.
    pub fn new(parent: &CollectorConfig, ranges: usize) -> DistPlan {
        DistPlan {
            parent: CollectorConfig {
                shard: None,
                ..parent.clone()
            },
            ranges: ranges as u32,
        }
    }

    /// Total task ranges including the finish range.
    pub fn total_ranges(&self) -> u32 {
        self.ranges + 1
    }

    fn encode_into(&self, w: &mut Writer) {
        w.put_u16(self.parent.topics.len() as u16);
        for &topic in &self.parent.topics {
            w.put_u8(topic_code(topic));
        }
        let dates = self.parent.schedule.dates();
        w.put_u16(dates.len() as u16);
        for &date in dates {
            w.put_i64(date.as_secs());
        }
        w.put_bool(self.parent.hourly_bins);
        w.put_bool(self.parent.fetch_metadata);
        w.put_bool(self.parent.fetch_channels);
        w.put_bool(self.parent.fetch_comments);
        w.put_u32(self.ranges);
        w.put_u8(self.parent.platform.code());
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<DistPlan, WireError> {
        let topic_count = r.u16()? as usize;
        let mut topics = Vec::with_capacity(topic_count);
        for _ in 0..topic_count {
            topics.push(topic_from_code(r.u8()?)?);
        }
        let date_count = r.u16()? as usize;
        let mut dates = Vec::with_capacity(date_count);
        for _ in 0..date_count {
            dates.push(Timestamp(r.i64()?));
        }
        let hourly_bins = r.bool()?;
        let fetch_metadata = r.bool()?;
        let fetch_channels = r.bool()?;
        let fetch_comments = r.bool()?;
        let ranges = r.u32()?;
        let platform = PlatformKind::from_code(r.u8()?)
            .ok_or_else(|| String::from("unknown platform code"))?;
        Ok(DistPlan {
            parent: CollectorConfig {
                topics,
                schedule: Schedule::explicit(dates),
                hourly_bins,
                fetch_metadata,
                fetch_channels,
                fetch_comments,
                shard: None,
                platform,
            },
            ranges,
        })
    }
}

/// `POST /dist/lease` body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseRequest {
    /// A worker name for the status page (not an identity: the lease is
    /// fenced by its token, not by this string).
    pub worker: String,
}

impl LeaseRequest {
    /// Encodes the request body.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_str(&self.worker);
        w.into_bytes()
    }

    /// Decodes a request body.
    pub fn decode(body: &[u8]) -> Result<LeaseRequest, DistError> {
        let mut r = Reader::new(body);
        let worker = r.str().map_err(|e| wire_err("lease request", e))?.to_string();
        r.expect_end().map_err(|e| wire_err("lease request", e))?;
        Ok(LeaseRequest { worker })
    }
}

/// A granted lease: the work, the fence, and everything the worker
/// needs to execute the range locally.
#[derive(Debug, Clone, PartialEq)]
pub struct LeaseGrant {
    /// The leased task range (`0..ranges` topic shard, `ranges` finish).
    pub range: u32,
    /// Fencing token; every later call for this range must present it.
    pub token: u64,
    /// Lease lifetime from now; renew before it runs out.
    pub ttl: Duration,
    /// The parent plan and split.
    pub plan: DistPlan,
    /// For the finish range only: the union of channel IDs across every
    /// committed topic shard (what the finish fetch must look up).
    pub channel_ids: Option<Vec<String>>,
}

/// `POST /dist/lease` reply.
#[derive(Debug, Clone, PartialEq)]
pub enum LeaseReply {
    /// Work granted.
    Grant(LeaseGrant),
    /// No range is currently grantable, but the run is not finished
    /// (everything open is leased out, or only the finish range remains
    /// and its topic shards are still incomplete). Poll again shortly.
    Wait,
    /// Every range is committed; the worker can exit.
    Done,
}

const LEASE_TAG_GRANT: u8 = 1;
const LEASE_TAG_WAIT: u8 = 2;
const LEASE_TAG_DONE: u8 = 3;

impl LeaseReply {
    /// Encodes the reply body.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            LeaseReply::Wait => w.put_u8(LEASE_TAG_WAIT),
            LeaseReply::Done => w.put_u8(LEASE_TAG_DONE),
            LeaseReply::Grant(grant) => {
                w.put_u8(LEASE_TAG_GRANT);
                w.put_u32(grant.range);
                w.put_u64(grant.token);
                w.put_u64(grant.ttl.as_millis().min(u128::from(u64::MAX)) as u64);
                grant.plan.encode_into(&mut w);
                match &grant.channel_ids {
                    None => w.put_bool(false),
                    Some(ids) => {
                        w.put_bool(true);
                        w.put_u32(ids.len() as u32);
                        for id in ids {
                            w.put_str(id);
                        }
                    }
                }
            }
        }
        w.into_bytes()
    }

    /// Decodes a reply body.
    pub fn decode(body: &[u8]) -> Result<LeaseReply, DistError> {
        let mut r = Reader::new(body);
        let inner = |e| wire_err("lease reply", e);
        let reply = match r.u8().map_err(inner)? {
            LEASE_TAG_WAIT => LeaseReply::Wait,
            LEASE_TAG_DONE => LeaseReply::Done,
            LEASE_TAG_GRANT => {
                let range = r.u32().map_err(inner)?;
                let token = r.u64().map_err(inner)?;
                let ttl = Duration::from_millis(r.u64().map_err(inner)?);
                let plan = DistPlan::decode_from(&mut r).map_err(inner)?;
                let channel_ids = if r.bool().map_err(inner)? {
                    let count = r.u32().map_err(inner)? as usize;
                    let mut ids = Vec::with_capacity(count.min(1 << 20));
                    for _ in 0..count {
                        ids.push(r.str().map_err(inner)?.to_string());
                    }
                    Some(ids)
                } else {
                    None
                };
                LeaseReply::Grant(LeaseGrant {
                    range,
                    token,
                    ttl,
                    plan,
                    channel_ids,
                })
            }
            other => {
                return Err(DistError::new(
                    DistErrorKind::BadRequest,
                    format!("unknown lease reply tag {other}"),
                ))
            }
        };
        r.expect_end().map_err(inner)?;
        Ok(reply)
    }
}

/// `POST /dist/renew` body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenewRequest {
    /// The leased range.
    pub range: u32,
    /// The fencing token from the grant.
    pub token: u64,
}

/// `POST /dist/renew` reply: the fresh lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenewReply {
    /// Lease lifetime from now.
    pub ttl: Duration,
}

impl RenewRequest {
    /// Encodes the request body.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u32(self.range);
        w.put_u64(self.token);
        w.into_bytes()
    }

    /// Decodes a request body.
    pub fn decode(body: &[u8]) -> Result<RenewRequest, DistError> {
        let mut r = Reader::new(body);
        let inner = |e| wire_err("renew request", e);
        let req = RenewRequest {
            range: r.u32().map_err(inner)?,
            token: r.u64().map_err(inner)?,
        };
        r.expect_end().map_err(inner)?;
        Ok(req)
    }
}

impl RenewReply {
    /// Encodes the reply body.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u64(self.ttl.as_millis().min(u128::from(u64::MAX)) as u64);
        w.into_bytes()
    }

    /// Decodes a reply body.
    pub fn decode(body: &[u8]) -> Result<RenewReply, DistError> {
        let mut r = Reader::new(body);
        let inner = |e| wire_err("renew reply", e);
        let reply = RenewReply {
            ttl: Duration::from_millis(r.u64().map_err(inner)?),
        };
        r.expect_end().map_err(inner)?;
        Ok(reply)
    }
}

/// `POST /dist/ship/begin` body: opens (or restarts) the upload for a
/// leased range, declaring the shard file's total length and CRC32.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShipBegin {
    /// The leased range.
    pub range: u32,
    /// The fencing token from the grant.
    pub token: u64,
    /// Total shard file length in bytes.
    pub total_len: u64,
    /// CRC32 of the whole shard file.
    pub total_crc: u32,
}

impl ShipBegin {
    /// Encodes the request body.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u32(self.range);
        w.put_u64(self.token);
        w.put_u64(self.total_len);
        w.put_u32(self.total_crc);
        w.into_bytes()
    }

    /// Decodes a request body.
    pub fn decode(body: &[u8]) -> Result<ShipBegin, DistError> {
        let mut r = Reader::new(body);
        let inner = |e| wire_err("ship begin", e);
        let req = ShipBegin {
            range: r.u32().map_err(inner)?,
            token: r.u64().map_err(inner)?,
            total_len: r.u64().map_err(inner)?,
            total_crc: r.u32().map_err(inner)?,
        };
        r.expect_end().map_err(inner)?;
        Ok(req)
    }
}

/// `POST /dist/ship/chunk` body: one contiguous, CRC-checked slice of
/// the shard file. The byte payload rides as the record tail (its length
/// is implied by the HTTP body).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShipChunk {
    /// The leased range.
    pub range: u32,
    /// The fencing token from the grant.
    pub token: u64,
    /// Byte offset of this chunk; must equal the bytes received so far.
    pub offset: u64,
    /// CRC32 of `bytes`.
    pub crc: u32,
    /// The chunk payload.
    pub bytes: Vec<u8>,
}

impl ShipChunk {
    /// Encodes the request body.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u32(self.range);
        w.put_u64(self.token);
        w.put_u64(self.offset);
        w.put_u32(self.crc);
        let mut out = w.into_bytes();
        out.extend_from_slice(&self.bytes);
        out
    }

    /// Decodes a request body.
    pub fn decode(body: &[u8]) -> Result<ShipChunk, DistError> {
        let mut r = Reader::new(body);
        let inner = |e| wire_err("ship chunk", e);
        Ok(ShipChunk {
            range: r.u32().map_err(inner)?,
            token: r.u64().map_err(inner)?,
            offset: r.u64().map_err(inner)?,
            crc: r.u32().map_err(inner)?,
            bytes: r.rest().to_vec(),
        })
    }
}

/// `POST /dist/ship/commit` body: closes the upload; the coordinator
/// verifies, durably installs the shard, and marks the range committed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShipCommit {
    /// The leased range.
    pub range: u32,
    /// The fencing token from the grant.
    pub token: u64,
    /// Total shard file length in bytes (re-declared; must match).
    pub total_len: u64,
    /// CRC32 of the whole shard file (re-declared; must match).
    pub total_crc: u32,
}

impl ShipCommit {
    /// Encodes the request body.
    pub fn encode(&self) -> Vec<u8> {
        ShipBegin {
            range: self.range,
            token: self.token,
            total_len: self.total_len,
            total_crc: self.total_crc,
        }
        .encode()
    }

    /// Decodes a request body.
    pub fn decode(body: &[u8]) -> Result<ShipCommit, DistError> {
        let b = ShipBegin::decode(body)?;
        Ok(ShipCommit {
            range: b.range,
            token: b.token,
            total_len: b.total_len,
            total_crc: b.total_crc,
        })
    }
}

/// Reply to `ship/begin` and `ship/commit`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShipReply {
    /// Begin: upload opened. Commit: shard durably installed.
    Accepted,
    /// The range is already committed (a re-issued lease's original
    /// holder shipped late, or the same shard was shipped twice): the
    /// call is a no-op and the worker should move on.
    Duplicate,
}

const SHIP_TAG_ACCEPTED: u8 = 1;
const SHIP_TAG_DUPLICATE: u8 = 2;

impl ShipReply {
    /// Encodes the reply body.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u8(match self {
            ShipReply::Accepted => SHIP_TAG_ACCEPTED,
            ShipReply::Duplicate => SHIP_TAG_DUPLICATE,
        });
        w.into_bytes()
    }

    /// Decodes a reply body.
    pub fn decode(body: &[u8]) -> Result<ShipReply, DistError> {
        let mut r = Reader::new(body);
        let inner = |e| wire_err("ship reply", e);
        let reply = match r.u8().map_err(inner)? {
            SHIP_TAG_ACCEPTED => ShipReply::Accepted,
            SHIP_TAG_DUPLICATE => ShipReply::Duplicate,
            other => {
                return Err(DistError::new(
                    DistErrorKind::BadRequest,
                    format!("unknown ship reply tag {other}"),
                ))
            }
        };
        r.expect_end().map_err(inner)?;
        Ok(reply)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ytaudit_types::Topic;

    fn plan() -> DistPlan {
        DistPlan::new(
            &CollectorConfig::quick(vec![Topic::Higgs, Topic::Blm, Topic::Brexit], 3),
            2,
        )
    }

    #[test]
    fn plan_round_trips() {
        let p = plan();
        let mut w = Writer::new();
        p.encode_into(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let decoded = DistPlan::decode_from(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(decoded, p);
        assert_eq!(decoded.parent.schedule.dates(), p.parent.schedule.dates());
        assert_eq!(decoded.total_ranges(), 3);
    }

    #[test]
    fn lease_reply_round_trips() {
        for reply in [
            LeaseReply::Wait,
            LeaseReply::Done,
            LeaseReply::Grant(LeaseGrant {
                range: 2,
                token: 99,
                ttl: Duration::from_millis(1500),
                plan: plan(),
                channel_ids: Some(vec!["UCaaa".into(), "UCbbb".into()]),
            }),
            LeaseReply::Grant(LeaseGrant {
                range: 0,
                token: 1,
                ttl: Duration::from_secs(30),
                plan: plan(),
                channel_ids: None,
            }),
        ] {
            assert_eq!(LeaseReply::decode(&reply.encode()).unwrap(), reply);
        }
        assert!(LeaseReply::decode(&[9]).is_err());
        assert!(LeaseReply::decode(&[]).is_err());
    }

    #[test]
    fn ship_messages_round_trip() {
        let begin = ShipBegin {
            range: 1,
            token: 7,
            total_len: 4096,
            total_crc: 0xDEAD_BEEF,
        };
        assert_eq!(ShipBegin::decode(&begin.encode()).unwrap(), begin);
        let chunk = ShipChunk {
            range: 1,
            token: 7,
            offset: 1024,
            crc: 42,
            bytes: vec![1, 2, 3, 4],
        };
        assert_eq!(ShipChunk::decode(&chunk.encode()).unwrap(), chunk);
        let commit = ShipCommit {
            range: 1,
            token: 7,
            total_len: 4096,
            total_crc: 0xDEAD_BEEF,
        };
        assert_eq!(ShipCommit::decode(&commit.encode()).unwrap(), commit);
        for reply in [ShipReply::Accepted, ShipReply::Duplicate] {
            assert_eq!(ShipReply::decode(&reply.encode()).unwrap(), reply);
        }
    }

    #[test]
    fn renew_round_trips() {
        let req = RenewRequest { range: 3, token: 5 };
        assert_eq!(RenewRequest::decode(&req.encode()).unwrap(), req);
        let reply = RenewReply {
            ttl: Duration::from_millis(250),
        };
        assert_eq!(RenewReply::decode(&reply.encode()).unwrap(), reply);
    }

    #[test]
    fn error_kind_keys_round_trip() {
        for kind in [
            DistErrorKind::LeaseExpired,
            DistErrorKind::UnknownRange,
            DistErrorKind::ChunkOutOfOrder,
            DistErrorKind::ChunkCrcMismatch,
            DistErrorKind::ShipIncomplete,
            DistErrorKind::ShardInvalid,
            DistErrorKind::BadRequest,
            DistErrorKind::Internal,
        ] {
            assert_eq!(DistErrorKind::from_key(kind.key()), Some(kind));
        }
        assert_eq!(DistErrorKind::from_key("nope"), None);
    }
}
