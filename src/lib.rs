//! # ytaudit
//!
//! A full reproduction of *"I'm Sorry Dave, I'm Afraid I Can't Return
//! That: On YouTube Search API Use in Research"* (IMC 2025) as a Rust
//! workspace: a synthetic YouTube-like platform, a simulated Data API v3,
//! an HTTP stack, a typed client, a statistics library, and the paper's
//! complete audit methodology.
//!
//! This facade crate re-exports the workspace members under short module
//! names and hosts the runnable examples and cross-crate integration
//! tests. Start with the quickstart below, the `examples/` directory, or
//! the per-crate documentation:
//!
//! * [`types`] — domain model (ids, civil time, resources, topics);
//! * [`net`] — HTTP/1.1 over `std::net` (server, client, resilience);
//! * [`platform`] — the synthetic platform and its hidden search sampler;
//! * [`api`] — the simulated Data API v3 (endpoints, quota, wire schemas);
//! * [`client`] — the typed researcher-side client;
//! * [`stats`] — regressions, correlations, Markov chains, Jaccard;
//! * [`core`] — the audit harness and every table/figure analysis;
//! * [`store`] — the crash-safe, append-only snapshot store behind
//!   resumable collections (`ytaudit collect --store … --resume`);
//! * [`sched`] — the concurrent collection scheduler: worker pool,
//!   shared quota governor, task retry policy, plan-order reorder
//!   buffer, and metrics (`ytaudit collect --workers N`);
//! * [`dist`] — cross-process distribution of a collection plan:
//!   crash-safe coordinator leases, worker execution over the ordinary
//!   scheduler, and exactly-once chunked shard hand-off (`ytaudit
//!   coordinate` / `ytaudit work`);
//! * [`tiktok`] — a TikTok-shaped research-API backend: the second
//!   implementation of the `core::Platform` seam, with a daily request
//!   budget, date-windowed cursor queries, and hidden sampling quirks
//!   (`ytaudit collect --platform tiktok`).
//!
//! ## Quickstart
//!
//! ```
//! use ytaudit::core::testutil::test_client;
//! use ytaudit::client::SearchQuery;
//! use ytaudit::types::{Timestamp, Topic};
//!
//! // An in-process platform + API + client, at reduced corpus scale.
//! let (client, _service) = test_client(0.1);
//!
//! // Run the paper's Brexit query at two collection dates…
//! let query = SearchQuery::for_topic(Topic::Brexit);
//! client.set_sim_time(Some(Timestamp::from_ymd(2025, 2, 9).unwrap()));
//! let first = client.search_all(&query).unwrap();
//! client.set_sim_time(Some(Timestamp::from_ymd(2025, 4, 30).unwrap()));
//! let last = client.search_all(&query).unwrap();
//!
//! // …and observe the paper's core finding: identical historical
//! // queries return different video sets at different request dates.
//! assert_ne!(first.video_ids(), last.video_ids());
//! ```

#![forbid(unsafe_code)]

pub use ytaudit_api as api;
pub use ytaudit_client as client;
pub use ytaudit_core as core;
pub use ytaudit_dist as dist;
pub use ytaudit_net as net;
pub use ytaudit_platform as platform;
pub use ytaudit_sched as sched;
pub use ytaudit_stats as stats;
pub use ytaudit_store as store;
pub use ytaudit_tiktok_sim as tiktok;
pub use ytaudit_types as types;
