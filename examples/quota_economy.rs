//! Quota economics over a real HTTP connection: a default API key dies
//! after 100 searches (100 units each against a 10 000-unit daily budget),
//! a researcher-program key survives a paper-scale collection, and the
//! wire carries the exact `quotaExceeded` envelope the real API sends.
//!
//! Run with: `cargo run --release --example quota_economy`

use std::sync::Arc;
use ytaudit::api::{serve, ApiService, RESEARCHER_DAILY_QUOTA};
use ytaudit::client::{HttpTransport, SearchQuery, YouTubeClient};
use ytaudit::platform::{Platform, SimClock};
use ytaudit::types::{ApiErrorReason, Topic};

fn main() {
    // A real HTTP server on loopback, fronting the simulated API.
    let service = Arc::new(ApiService::new(
        Arc::new(Platform::small(0.2)),
        SimClock::at_audit_start(),
    ));
    service.quota().register("research-key", RESEARCHER_DAILY_QUOTA);
    let server = serve(Arc::clone(&service), "127.0.0.1:0").expect("bind loopback");
    println!("simulated Data API listening on {}\n", server.base_url());

    // --- A default key: 10 000 units/day = 100 searches. ---
    let default_client = YouTubeClient::new(
        Box::new(HttpTransport::new(server.base_url())),
        "default-key",
    );
    let query = SearchQuery::for_topic(Topic::Higgs).max_results(5);
    let mut completed = 0;
    let error = loop {
        match default_client.search_page(&query, None) {
            Ok(_) => completed += 1,
            Err(err) => break err,
        }
    };
    println!("default key: {completed} searches succeeded, then:");
    println!("  {error}");
    assert_eq!(error.api_reason(), Some(ApiErrorReason::QuotaExceeded));

    // The hourly-binned methodology costs far more than one default key
    // per snapshot:
    let per_snapshot = 24 * 28 * 6 * 100u64;
    println!(
        "\none paper snapshot = 4 032 searches = {per_snapshot} units\n\
         = {:.1} default-key days — hence the researcher access program.",
        per_snapshot as f64 / 10_000.0
    );

    // --- A researcher key: survives a full topic collection. ---
    let research_client = YouTubeClient::new(
        Box::new(HttpTransport::new(server.base_url())),
        "research-key",
    )
    .with_rate_limit(5_000.0, 5_000.0); // client-side pacing
    research_client.set_sim_time(Some(service.clock().now()));
    let window_start = Topic::Higgs.window_start();
    let mut returned = 0;
    for hour in 0..(24 * 28) {
        let hourly = SearchQuery::for_topic(Topic::Higgs).hour_bin(window_start.add_hours(hour));
        returned += research_client
            .search_all(&hourly)
            .expect("researcher quota holds")
            .items
            .len();
    }
    println!(
        "\nresearcher key: full hourly-binned Higgs collection succeeded —\n\
         {returned} videos over 672 queries, {} units spent.",
        research_client.budget().units_spent()
    );
    println!("\nper-endpoint breakdown (calls, units):");
    for (endpoint, calls, units) in research_client.budget().breakdown() {
        println!("  {endpoint:15} {calls:6} {units:8}");
    }

    server.shutdown();
}
