//! A reduced end-to-end audit: collect several snapshots for two topics,
//! then run the paper's consistency, attrition, and pool-size analyses.
//!
//! This is the whole §3–§5 pipeline in miniature; the full 16-snapshot
//! version is `cargo run --release -p ytaudit-bench --bin repro`.
//!
//! Run with: `cargo run --release --example consistency_audit`

use ytaudit::core::testutil::test_client;
use ytaudit::core::{Collector, CollectorConfig};
use ytaudit::types::Topic;

fn main() {
    let (client, _service) = test_client(0.4);
    let config = CollectorConfig::quick(vec![Topic::Blm, Topic::Higgs], 6);
    println!(
        "Collecting {} snapshots × {:?} (hourly-binned queries)…\n",
        config.schedule.len(),
        config
            .topics
            .iter()
            .map(|t| t.display_name())
            .collect::<Vec<_>>()
    );
    let dataset = Collector::new(&client, config).run().expect("collection succeeds");

    // --- Figure 1: rolling Jaccards ---
    println!("Rolling Jaccard similarity (the paper's Figure 1):");
    for tc in ytaudit::core::consistency::figure1(&dataset) {
        print!("  {:9} J(St,S1):", tc.topic.key());
        for p in &tc.points {
            print!(" {:.2}", p.jaccard_first);
        }
        println!("   (final {:.3})", tc.final_jaccard_first());
    }

    // --- Table 1: returned counts ---
    println!("\nReturned per snapshot (the paper's Table 1):");
    for row in ytaudit::core::consistency::table1(&dataset) {
        println!(
            "  {:9} min {:4} max {:4} mean {:7.1} std {:5.1}",
            row.topic.key(),
            row.min,
            row.max,
            row.mean,
            row.std
        );
    }

    // --- Figure 3: attrition Markov chain ---
    if let Some(fig3) = ytaudit::core::attrition::figure3(&dataset) {
        println!("\nSecond-order Markov transitions (the paper's Figure 3):");
        for (i, label) in ["PP", "PA", "AP", "AA"].iter().enumerate() {
            println!(
                "  {label} → P {:.3} | A {:.3}   (n = {})",
                fig3.transitions[i][0], fig3.transitions[i][1], fig3.counts[i]
            );
        }
        println!(
            "  persistence: P(P|PP) = {:.3}, P(A|AA) = {:.3} — the 'rolling window'.",
            fig3.p_stay_present(),
            fig3.p_stay_absent()
        );
    }

    // --- Table 4: pool sizes ---
    println!("\ntotalResults pool estimates (the paper's Table 4):");
    for row in ytaudit::core::poolsize::table4(&dataset) {
        println!(
            "  {:9} min {:>8} max {:>8} mean {:>8} mode {:>8}",
            row.topic.key(),
            row.min,
            row.max,
            row.mean,
            row.mode
        );
    }

    println!(
        "\nCollection cost: {} quota units (≈ {:.1} default-key days).",
        dataset.quota_units_spent,
        dataset.quota_units_spent as f64 / ytaudit::api::DEFAULT_DAILY_QUOTA as f64
    );
}
