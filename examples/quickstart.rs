//! Quickstart: stand up the simulated platform, run the paper's exact
//! query for one topic at two collection dates, and watch the search
//! endpoint return different historical answers.
//!
//! Run with: `cargo run --release --example quickstart`

use std::collections::HashSet;
use ytaudit::client::SearchQuery;
use ytaudit::core::testutil::test_client;
use ytaudit::types::{Timestamp, Topic, VideoId};

fn main() {
    // An in-process platform + simulated Data API + typed client, at 30%
    // corpus scale (fast). `test_client(1.0)` is full audit scale.
    let (client, _service) = test_client(0.3);

    let topic = Topic::Brexit;
    let query = SearchQuery::for_topic(topic);
    println!(
        "Topic: {}  (q = \"{}\", window {} … {})\n",
        topic.display_name(),
        topic.spec().query,
        topic.window_start(),
        topic.window_end()
    );

    // Collection 1: 2025-02-09 (the paper's first snapshot).
    client.set_sim_time(Some(Timestamp::from_ymd(2025, 2, 9).unwrap()));
    let first = client.search_all(&query).expect("search succeeds");
    println!(
        "2025-02-09: {} videos returned, totalResults ≈ {}",
        first.items.len(),
        first.total_results
    );

    // Collection 2: 2025-04-30 (the last snapshot) — same query, 12 weeks
    // later, still strictly historical.
    client.set_sim_time(Some(Timestamp::from_ymd(2025, 4, 30).unwrap()));
    let last = client.search_all(&query).expect("search succeeds");
    println!(
        "2025-04-30: {} videos returned, totalResults ≈ {}",
        last.items.len(),
        last.total_results
    );

    let a: HashSet<VideoId> = first.video_ids().into_iter().collect();
    let b: HashSet<VideoId> = last.video_ids().into_iter().collect();
    let intersection = a.intersection(&b).count();
    let union = a.len() + b.len() - intersection;
    println!(
        "\nJaccard(first, last) = {:.3}  ({} shared of {} total)",
        intersection as f64 / union as f64,
        intersection,
        union
    );
    println!(
        "videos gained since Feb 9: {} — a historical query *gained*\n\
         videos, so deletions can't explain the difference. That is the\n\
         paper's headline finding.",
        b.difference(&a).count()
    );

    // Quota bookkeeping: searches cost 100 units each.
    println!(
        "\nQuota spent: {} units across {} calls ({} searches × 100 + ID calls × 1).",
        client.budget().units_spent(),
        client.budget().calls_made(),
        client.budget().units_for(ytaudit::api::Endpoint::Search) / 100,
    );
}
