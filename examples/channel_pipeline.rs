//! §6.1's recommendation, demonstrated: to collect a channel's catalogue,
//! use the ID-based `Channels: list` → `PlaylistItems: list` pipeline —
//! never the search endpoint with a `channelId` filter.
//!
//! Run with: `cargo run --release --example channel_pipeline`

use std::collections::HashSet;
use ytaudit::client::SearchQuery;
use ytaudit::core::testutil::test_client;
use ytaudit::types::{Timestamp, VideoId};

fn main() {
    let (client, service) = test_client(0.5);
    let platform = service.platform();

    // Pick the busiest channel in the corpus.
    let now = Timestamp::from_ymd(2025, 2, 9).unwrap();
    let channel = platform
        .corpus()
        .channels
        .iter()
        .max_by_key(|c| {
            platform
                .playlist_items(&c.id.uploads_playlist(), now)
                .map(|v| v.len())
                .unwrap_or(0)
        })
        .expect("corpus has channels")
        .clone();
    println!("Channel under study: {} ({})\n", channel.title, channel.id);

    for date in [
        Timestamp::from_ymd(2025, 2, 9).unwrap(),
        Timestamp::from_ymd(2025, 4, 30).unwrap(),
    ] {
        client.set_sim_time(Some(date));

        // Strategy A (recommended): Channels:list → uploads playlist →
        // PlaylistItems:list. ID-based, complete, stable, 1 unit per call.
        let uploads = client
            .channel_uploads(&channel.id)
            .expect("pipeline succeeds");
        let playlist_ids: HashSet<VideoId> = uploads
            .iter()
            .filter_map(|item| item.snippet.as_ref())
            .map(|s| VideoId::new(s.resource_id.video_id.clone()))
            .collect();

        // Strategy B (§6.1 warns against): the search endpoint with a
        // channelId filter. 100 units per call AND randomized returns.
        let searched = client
            .search_all(&SearchQuery::channel(channel.id.clone()))
            .expect("search succeeds");
        let search_ids: HashSet<VideoId> = searched.video_ids().into_iter().collect();

        let missing = playlist_ids.difference(&search_ids).count();
        println!("collection date {date}:");
        println!(
            "  PlaylistItems pipeline : {:3} videos  (complete catalogue)",
            playlist_ids.len()
        );
        println!(
            "  Search w/ channelId    : {:3} videos  ({} missing vs playlist)",
            search_ids.len(),
            missing
        );
    }

    println!(
        "\nQuota: search cost {} units vs {} units for the whole ID-based pipeline.",
        client.budget().units_for(ytaudit::api::Endpoint::Search),
        client.budget().units_for(ytaudit::api::Endpoint::Channels)
            + client.budget().units_for(ytaudit::api::Endpoint::PlaylistItems),
    );
    println!(
        "The ID-based route is both cheaper and complete — the paper's\n\
         recommendation verbatim."
    );
}
