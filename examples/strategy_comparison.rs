//! The §6.1 strategy experiment as a runnable example: progressively
//! more restrictive queries shrink the reported pool and improve
//! replicability, and splitting a topic into subtopic queries beats one
//! broad query.
//!
//! Run with: `cargo run --release --example strategy_comparison`

use ytaudit::core::strategy::{restriction_ladder, split_topics, StrategyConfig};
use ytaudit::core::testutil::test_client;
use ytaudit::types::Topic;

fn main() {
    let (client, _service) = test_client(0.8);
    let topic = Topic::WorldCup;

    println!(
        "Restriction ladder for {} (base query \"{}\"):\n",
        topic.display_name(),
        topic.spec().query
    );
    let config = StrategyConfig {
        levels: 3,
        hourly: false, // single capped queries: cheap and illustrative
        ..StrategyConfig::new(topic)
    };
    let ladder = restriction_ladder(&client, &config).expect("ladder runs");
    println!(
        "{:<6} {:<55} {:>9} {:>9} {:>14}",
        "terms", "query", "pool", "returned", "J(first,last)"
    );
    for point in &ladder {
        println!(
            "{:<6} {:<55} {:>9} {:>9} {:>14.3}",
            point.level,
            format!("\"{}\"", point.query),
            point.pool_mean,
            point.returned_first,
            point.jaccard
        );
    }
    println!(
        "\n→ the query metadata's totalResults is 'a crucial way of assessing\n\
          how optimal a query is (with lower being better/more stable)' — §6.1.\n"
    );

    println!("Broad query vs union of subtopic queries:\n");
    let comparison = split_topics(&client, &config).expect("comparison runs");
    println!(
        "  broad : J(first,last) = {:.3}  ({} videos, {} quota units)",
        comparison.broad_jaccard, comparison.broad_returned, comparison.broad_quota
    );
    println!(
        "  split : J(first,last) = {:.3}  ({} videos, {} quota units)",
        comparison.split_jaccard, comparison.split_returned, comparison.split_quota
    );
    println!(
        "\n→ 'researchers may experiment with breaking up their topics as\n\
          opposed to their time frames' — §6.1, validated."
    );
}
